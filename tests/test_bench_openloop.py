"""Open-loop arrival generation and coordinated-omission honesty.

Covers the generator's statistical contracts (seeded determinism,
Poisson interarrival mean, modulated thinning, churn marking), the
client's churn invariant (a churned-away connection is never reused),
DET-01 cleanliness of the new module, and — the reason the harness
exists — the coordinated-omission regression: against the same
deterministically-stalled server, open-loop p99 with scheduled-arrival
attribution must expose the stall that closed-loop p99 hides.
"""

import math
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.openloop import (
    Arrival,
    BurstModulation,
    DiurnalModulation,
    OpenLoopSource,
    plant_stall,
)
from repro.bench.testbed import SERVER_IP, make_testbed
from repro.bench.wrk import OpenLoopWrkClient, WrkClient
from repro.bench.workloads import TrafficSource
from repro.storage.server import ServerConfig


def arrivals(source, count, start=0.0):
    out = []
    for _ in range(count):
        out.append(source.next_arrival(start))
    return out


class TestOpenLoopSource:
    def test_is_a_traffic_source(self):
        source = OpenLoopSource(10_000.0)
        assert isinstance(source, TrafficSource)
        method, key, value = source.next_op()
        assert method == "PUT" and key.startswith("ol-")
        assert isinstance(value, bytes)

    def test_arrival_times_are_monotonic_and_self_advancing(self):
        source = OpenLoopSource(100_000.0, seed=3)
        times = [t for t, _ in arrivals(source, 200)]
        assert all(b > a for a, b in zip(times, times[1:]))
        # The clock ignores now_ns after the first call: asking late
        # never compresses or stretches the schedule.
        t_next, _ = source.next_arrival(times[-1] + 1e9)
        assert t_next > times[-1]
        assert t_next < times[-1] + 1e9

    def test_churn_marks_a_seeded_fraction(self):
        source = OpenLoopSource(100_000.0, churn=0.2, seed=5)
        churned = sum(1 for _, a in arrivals(source, 3000)
                      if a.new_connection)
        assert 0.15 < churned / 3000 < 0.25
        assert all(not a.new_connection
                   for _, a in arrivals(OpenLoopSource(1_000.0, seed=5), 50))

    def test_client_attribution_spans_the_population(self):
        source = OpenLoopSource(100_000.0, clients=50, seed=7)
        ids = {a.client_id for _, a in arrivals(source, 2000)}
        assert ids <= set(range(50))
        assert len(ids) > 40

    def test_read_fraction_mixes_gets(self):
        source = OpenLoopSource(100_000.0, read_fraction=0.5, seed=9)
        ops = [a.op() for _, a in arrivals(source, 1000)]
        gets = sum(1 for method, _k, v in ops if method == "GET" and v is None)
        assert 400 < gets < 600

    def test_describe_is_json_shaped(self):
        import json

        source = OpenLoopSource(
            50_000.0, burst=BurstModulation(), diurnal=DiurnalModulation())
        description = source.describe()
        assert description["source"] == "openloop"
        assert description["burst"]["kind"] == "burst"
        json.dumps(description)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            OpenLoopSource(0.0)
        with pytest.raises(ValueError):
            OpenLoopSource(1000.0, clients=0)
        with pytest.raises(ValueError):
            OpenLoopSource(1000.0, churn=1.5)
        with pytest.raises(ValueError):
            BurstModulation(duty=1.0)
        with pytest.raises(ValueError):
            DiurnalModulation(amplitude=1.0)


@settings(max_examples=20, deadline=None)
@given(rate=st.floats(1_000.0, 500_000.0), seed=st.integers(0, 1000),
       churn=st.floats(0.0, 0.5))
def test_property_same_seed_identical_stream(rate, seed, churn):
    first = OpenLoopSource(rate, churn=churn, seed=seed)
    second = OpenLoopSource(rate, churn=churn, seed=seed)
    for _ in range(100):
        t_a, a = first.next_arrival(0.0)
        t_b, b = second.next_arrival(0.0)
        assert t_a == t_b
        assert (a.client_id, a.new_connection, a.op()) == \
            (b.client_id, b.new_connection, b.op())


@settings(max_examples=15, deadline=None)
@given(rate=st.floats(10_000.0, 1_000_000.0), seed=st.integers(0, 200))
def test_property_poisson_interarrival_mean(rate, seed):
    source = OpenLoopSource(rate, seed=seed)
    times = [t for t, _ in arrivals(source, 3000)]
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean = sum(gaps) / len(gaps)
    expected = 1e9 / rate
    # 3000 exponential samples: the sample mean is within ~6 standard
    # errors of 1/λ with overwhelming probability.
    assert abs(mean - expected) < 6 * expected / math.sqrt(len(gaps))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200))
def test_property_modulated_stream_is_deterministic_and_rate_bounded(seed):
    burst = BurstModulation(factor=4.0, period_ns=1_000_000.0, duty=0.25)
    diurnal = DiurnalModulation(amplitude=0.4, period_ns=10_000_000.0)
    make = lambda: OpenLoopSource(  # noqa: E731
        50_000.0, burst=burst, diurnal=diurnal, seed=seed)
    first, second = make(), make()
    for _ in range(200):
        t_a, _ = first.next_arrival(0.0)
        t_b, _ = second.next_arrival(0.0)
        assert t_a == t_b
    assert first.peak_rate_rps == pytest.approx(50_000.0 * 4.0 * 1.4)
    for t in (0.0, 123_456.0, 5_000_000.0):
        assert 0.0 < first.rate_at(t) <= first.peak_rate_rps


class TestBurstThinning:
    def test_burst_windows_see_more_arrivals(self):
        burst = BurstModulation(factor=5.0, period_ns=2_000_000.0, duty=0.5)
        source = OpenLoopSource(100_000.0, burst=burst, seed=11)
        in_burst = out_burst = 0
        for _ in range(4000):
            t, _ = source.next_arrival(0.0)
            if burst.factor_at(t) > 1.0:
                in_burst += 1
            else:
                out_burst += 1
        # duty=0.5 at 5x: burst halves should carry ~5x the arrivals.
        assert in_burst > 3 * out_burst


class TestDet01Cleanliness:
    def test_openloop_module_is_det01_clean(self):
        from repro.analysis.pmlint import run_lint

        module = os.path.join(
            os.path.dirname(__file__), os.pardir,
            "src", "repro", "bench", "openloop.py",
        )
        report = run_lint([module], select="DET-01", interprocedural=False)
        assert not report.findings, [str(f) for f in report.findings]


class TestChurnInvariants:
    def test_churned_connections_are_never_reused(self):
        testbed = make_testbed(ServerConfig(engine="pktstore"))
        source = OpenLoopSource(
            40_000.0, clients=1_000, key_space=200, value_size=128,
            churn=0.15, seed=13)
        client = OpenLoopWrkClient(
            testbed.client, SERVER_IP, source, sockets=8,
            duration_ns=4_000_000.0, warmup_ns=1_000_000.0)
        stats = client.run()
        assert client.use_after_close == 0
        assert stats.errors == 0
        assert stats.resets == 0
        assert stats.churns > 0
        # Every churn paid a real handshake beyond the initial pool.
        assert stats.handshakes == 8 + stats.churns
        # The pool stayed bounded through all the churn.
        assert client.open_sockets <= 8

    def test_arrival_op_shape(self):
        arrival = Arrival(7, True, "PUT", "k", b"v")
        assert arrival.op() == ("PUT", "k", b"v")
        assert "new-conn" in repr(arrival)


class TestPlantStall:
    def test_stall_freezes_the_core(self):
        testbed = make_testbed(ServerConfig(engine="pktstore"))
        plant_stall(testbed.server, 1_000_000.0, 500_000.0)
        testbed.sim.run(until=1_000_001.0)
        core = testbed.server.cpus[0]
        assert core.free_at >= 1_500_000.0

    def test_rejects_nonpositive_duration(self):
        testbed = make_testbed(ServerConfig(engine="pktstore"))
        with pytest.raises(ValueError):
            plant_stall(testbed.server, 0.0, 0.0)


class TestCoordinatedOmission:
    """The whole reason this harness exists, pinned as a regression.

    The same deterministic 2 ms stall is planted in two otherwise
    identical servers.  The closed-loop client's connections go quiet
    for the stall — at most one inflated sample per connection, far
    below p99 — while the open-loop client keeps time from *scheduled*
    arrivals, so the entire queueing wave lands in its tail.
    """

    STALL_AT = 15_000_000.0
    STALL_NS = 2_000_000.0
    WINDOW = dict(duration_ns=30_000_000.0, warmup_ns=5_000_000.0)

    def _stalled_testbed(self):
        testbed = make_testbed(ServerConfig(engine="pktstore"))
        plant_stall(testbed.server, self.STALL_AT, self.STALL_NS)
        return testbed

    def test_open_loop_p99_exposes_the_stall_closed_loop_hides(self):
        closed = WrkClient(
            self._stalled_testbed().client, SERVER_IP, connections=4,
            value_size=256, **self.WINDOW)
        closed_stats = closed.run()

        source = OpenLoopSource(
            30_000.0, clients=200_000, key_space=2_000, value_size=256,
            seed=1)
        open_client = OpenLoopWrkClient(
            self._stalled_testbed().client, SERVER_IP, source, sockets=32,
            **self.WINDOW)
        open_stats = open_client.run()

        closed_p99_ns = closed_stats.percentile_us(99) * 1_000.0
        open_p99_ns = open_stats.percentile_us(99) * 1_000.0
        # Both saw plenty of traffic.
        assert len(closed_stats.rtts_ns) > 500
        assert open_stats.admitted > 500
        # The closed loop hid the stall: its p99 stays an order of
        # magnitude below the stall duration...
        assert closed_p99_ns < self.STALL_NS / 4
        # ...while open-loop scheduled-arrival attribution exposes it:
        # p99 exceeds closed-loop p99 by a stall-derived bound.
        assert open_p99_ns > closed_p99_ns + self.STALL_NS / 4
        # Both felt it at the max — the stall really hit both servers.
        assert closed_stats.percentile_us(100) * 1_000.0 > self.STALL_NS / 2
        assert open_stats.percentile_us(100) * 1_000.0 > self.STALL_NS / 2
