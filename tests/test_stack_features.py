"""Tests for stack extras: packet taps, GSO/TSO jumbo segments, range scans."""

import pytest

from repro.bench.costmodel import CostModel
from repro.bench.testbed import make_testbed
from repro.bench.wrk import WrkClient
from repro.net.fabric import Fabric
from repro.net.nic import NicFeatures
from repro.net.stack import Host
from repro.net.http import HttpParser, build_request
from repro.sim.engine import Simulator
from repro.storage.kvserver import decode_scan_body, encode_scan_body
from repro.storage.server import ServerConfig


def make_pair(server_features=None, client_features=None):
    sim = Simulator()
    fabric = Fabric(sim)
    server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(), cores=1,
                  nic_features=server_features)
    client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel(), cores=2,
                  nic_features=client_features)
    return sim, server, client


class TestPacketTap:
    """Figure 3: packet metadata shared between the socket path and a
    capture consumer via refcounts — no copies."""

    def test_tap_sees_packets_app_still_gets_data(self):
        sim, server, client = make_pair()
        captured = []
        delivered = bytearray()

        def tap(pkt, ctx):
            captured.append((pkt.tcp.flag_names(), pkt.data_len))
            pkt.release()

        server.stack.add_tap(tap)

        def on_accept(sock, ctx):
            sock.on_data = lambda s, seg, c: delivered.extend(seg.bytes())

        server.stack.listen(7000, on_accept)

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 7000, ctx)
            sock.on_established = lambda s, c: s.send(b"watched bytes", c)

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert bytes(delivered) == b"watched bytes"
        assert len(captured) >= 2  # SYN + data at least
        assert server.stack.stats["tapped"] == len(captured)

    def test_tap_retaining_packets_keeps_buffers_alive(self):
        sim, server, client = make_pair()
        held = []
        server.stack.add_tap(lambda pkt, ctx: held.append(pkt))  # never releases

        server.stack.listen(7000, lambda sock, ctx: None)

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 7000, ctx)
            sock.on_established = lambda s, c: s.send(b"hold me", c)

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert held
        # The capture's references pin the rx buffers even though the
        # socket path fully processed and released them.
        assert server.rx_pool.in_use >= len(held) - 1
        for pkt in held:
            pkt.release()

    def test_remove_tap(self):
        sim, server, client = make_pair()
        tap = server.stack.add_tap(lambda pkt, ctx: pkt.release())
        server.stack.remove_tap(tap)
        server.stack.listen(7000, lambda sock, ctx: None)
        client.process_on_core(
            client.cpus[0],
            lambda ctx: client.stack.connect("10.0.0.1", 7000, ctx),
        )
        sim.run_until_idle()
        assert server.stack.stats["tapped"] == 0


class TestTSO:
    def test_jumbo_segments_split_by_nic(self):
        features = NicFeatures(tso=True)
        sim, server, client = make_pair(client_features=features)
        client.stack.gso_size = 16 << 10
        received = bytearray()

        def on_accept(sock, ctx):
            sock.on_data = lambda s, seg, c: received.extend(seg.bytes())

        server.stack.listen(7000, on_accept)
        payload = bytes(i % 256 for i in range(40_000))

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 7000, ctx)
            sock.on_established = lambda s, c: s.send(payload, c)

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert bytes(received) == payload
        # The stack emitted few jumbo segments; the NIC split them into
        # many MSS-sized wire frames.
        assert client.nic.stats["tso_splits"] > 0
        assert client.nic.stats["tx_frames"] > client.stack.stats["tx_packets"]

    def test_gso_disabled_without_tso_capability(self):
        sim, server, client = make_pair()  # NIC without TSO
        client.stack.gso_size = 16 << 10
        received = bytearray()

        def on_accept(sock, ctx):
            sock.on_data = lambda s, seg, c: received.extend(seg.bytes())

        server.stack.listen(7000, on_accept)

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 7000, ctx)
            sock.on_established = lambda s, c: s.send(bytes(8000), c)

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert len(received) == 8000
        assert client.nic.stats["tso_splits"] == 0


class TestRangeScan:
    def run_scan(self, engine, puts, query):
        testbed = make_testbed(ServerConfig(engine=engine))
        requests = [build_request("PUT", f"/{k}", v) for k, v in puts]
        requests.append(build_request("GET", query))
        responses = []
        parser = HttpParser(is_response=True)
        done = {"count": 0}

        def start(ctx):
            sock = testbed.client.stack.connect("10.0.0.1", 80, ctx)

            def on_data(s, seg, c):
                for message in parser.feed(seg):
                    responses.append((message.status, message.body))
                    message.release()
                    done["count"] += 1
                    if done["count"] < len(requests):
                        s.send(requests[done["count"]], c)

            sock.on_data = on_data
            sock.on_established = lambda s, c: s.send(requests[0], c)

        testbed.client.process_on_core(testbed.client.cpus[0], start)
        testbed.sim.run_until_idle(max_events=2_000_000)
        return responses[-1]

    @pytest.mark.parametrize("engine", ["novelsm", "pktstore"])
    def test_range_query_over_network(self, engine):
        puts = [(f"item-{i:02d}", f"value-{i}".encode()) for i in range(10)]
        status, body = self.run_scan(
            engine, puts, "/__scan__?start=item-03&end=item-07"
        )
        assert status == 200
        pairs = decode_scan_body(body)
        assert [k.decode() for k, _ in pairs] == ["item-03", "item-04",
                                                  "item-05", "item-06"]
        assert pairs[0][1] == b"value-3"

    def test_unbounded_scan_returns_everything(self):
        puts = [(f"k{i}", b"v") for i in range(5)]
        status, body = self.run_scan("novelsm", puts, "/__scan__")
        assert status == 200
        assert len(decode_scan_body(body)) == 5

    def test_codec_roundtrip(self):
        pairs = [(b"a", b"1"), (b"key", bytes(300)), (b"", b""), (b"z" * 100, b"x")]
        assert decode_scan_body(encode_scan_body(pairs)) == pairs
