"""RecoveryReport accounting: every field is exercised and checked.

The report is the recovery path's observability surface — reclaimed
slots, CRC failures, re-adopted buffers.  These tests engineer each
counter's trigger (clean recovery, an in-flight orphan record, a torn
metadata write) and assert exact values.
"""

from repro.core.ppktbuf import FLAG_VALID, KIND_NODE, PPktRecord
from repro.core.recovery import RecoveryReport
from repro.testing import PacketStoreWorld, make_cursor, sequential_puts


def drained_device(world, corrupt=None):
    """Materialise the full-drain post-crash device for a world,
    optionally flipping bytes first (``corrupt`` = list of offsets)."""
    trace = world.device.trace
    cursor = make_cursor(trace)
    for event in trace:
        cursor.apply(event)
    image = cursor.crash_image(cursor.pending_units())
    for offset in corrupt or ():
        image[offset] ^= 0xFF
    return cursor.materialize(image)


def test_clean_recovery_report_fields():
    world = PacketStoreWorld(seed=3)
    sequential_puts(world, n=5, value_size=40)
    recovered = world.recover(drained_device(world))
    report = recovered.report
    assert report.recovered == 5
    assert report.adopted_buffers == 5       # one payload buffer per put
    assert report.discarded_records == 0
    assert report.crc_failures == 0
    assert report.reclaimed_buffers == 0
    assert report.max_seq == 5               # seq starts at 1
    assert report.scan_cost_ns > 0           # the scan charges PM accesses
    assert "crc_failures=0" in repr(report)


def test_orphan_record_reclaims_slot_and_buffer():
    """A record persisted but never linked — exactly what an in-flight
    put leaves behind — must be discarded and its payload buffer
    reclaimed, with both showing up in the report."""
    world = PacketStoreWorld(seed=3)
    sequential_puts(world, n=3, value_size=40)

    buf = world.pool.alloc()
    buf.write(0, b"orphan-payload")
    slot = world.store.slab.alloc()
    orphan = PPktRecord(
        kind=KIND_NODE, flags=FLAG_VALID, height=1, key=b"orphan", seq=50,
        value_len=14, frags=[(buf.slot, 0, 14)],
    )
    world.store.slab.write_record(slot, orphan)
    world.meta_region.fence()

    recovered = world.recover(drained_device(world))
    report = recovered.report
    assert report.recovered == 3
    assert report.adopted_buffers == 3
    assert report.discarded_records == 1     # the orphan slot
    assert report.reclaimed_buffers == 1     # its unshared payload buffer
    assert report.crc_failures == 0
    assert report.max_seq == 3               # orphan seq must not leak in
    # The orphan key is invisible and its buffer is allocatable again.
    assert recovered.mapping().keys() == {b"key-0000", b"key-0001", b"key-0002"}
    assert buf.slot not in recovered.pool._in_use


def test_torn_metadata_write_counts_crc_failures():
    """Flip one byte inside the first linked record (magic left intact):
    recovery must truncate the chain there, count the CRC failure, and
    reclaim everything that became unreachable."""
    world = PacketStoreWorld(seed=3)
    sequential_puts(world, n=3, value_size=40)
    slab = world.store.slab
    first_slot = slab.read_next(world.store.head_slot, 0) - 1
    victim = world.meta_region.base + slab.slot_base(first_slot) + 16

    recovered = world.recover(drained_device(world, corrupt=[victim]))
    report = recovered.report
    assert report.recovered == 0             # chain truncated at the head
    assert report.crc_failures >= 1
    assert report.discarded_records >= 2     # the two now-orphaned records
    assert report.reclaimed_buffers == 2     # their payload buffers
    assert report.adopted_buffers == 0
    assert recovered.mapping() == {}


def test_report_defaults_and_repr():
    report = RecoveryReport()
    assert report.recovered == 0
    assert report.discarded_records == 0
    assert report.crc_failures == 0
    assert report.adopted_buffers == 0
    assert report.reclaimed_buffers == 0
    text = repr(report)
    assert "recovered=0" in text and "crc_failures=0" in text
