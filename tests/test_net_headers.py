"""Unit tests for the Ethernet/IPv4/TCP wire codecs."""

import pytest

from repro.net.headers import (
    ACK,
    ETH_HEADER_LEN,
    FIN,
    IPV4_HEADER_LEN,
    PSH,
    SYN,
    TCP_HEADER_LEN,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    int_to_ip,
    ip_to_int,
    mac_to_bytes,
)


class TestAddressHelpers:
    def test_ip_roundtrip(self):
        for ip in ["0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.77"]:
            assert int_to_ip(ip_to_int(ip)) == ip

    def test_ip_int_passthrough(self):
        assert ip_to_int(0x0A000001) == 0x0A000001

    def test_bad_ips_rejected(self):
        for bad in ["10.0.0", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"]:
            with pytest.raises(ValueError):
                ip_to_int(bad)

    def test_mac_parsing(self):
        assert mac_to_bytes("02:00:0a:00:00:01") == b"\x02\x00\x0a\x00\x00\x01"
        assert mac_to_bytes(b"\x01\x02\x03\x04\x05\x06") == b"\x01\x02\x03\x04\x05\x06"
        with pytest.raises(ValueError):
            mac_to_bytes("02:00")
        with pytest.raises(ValueError):
            mac_to_bytes(b"\x01\x02")


class TestEthernet:
    def test_roundtrip(self):
        hdr = EthernetHeader("02:00:00:00:00:01", "02:00:00:00:00:02")
        packed = hdr.pack()
        assert len(packed) == ETH_HEADER_LEN
        parsed = EthernetHeader.unpack(packed)
        assert parsed.dst == hdr.dst
        assert parsed.src == hdr.src
        assert parsed.ethertype == 0x0800

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 13)


class TestIPv4:
    def test_roundtrip(self):
        hdr = IPv4Header("10.0.0.1", "10.0.0.2", total_len=120, ttl=17, ident=42)
        raw = hdr.pack()
        assert len(raw) == IPV4_HEADER_LEN
        parsed = IPv4Header.unpack(raw)
        assert int_to_ip(parsed.src) == "10.0.0.1"
        assert int_to_ip(parsed.dst) == "10.0.0.2"
        assert parsed.total_len == 120
        assert parsed.ttl == 17
        assert parsed.ident == 42

    def test_header_checksum_valid_when_packed(self):
        hdr = IPv4Header("10.0.0.1", "10.0.0.2", total_len=40)
        raw = hdr.pack()
        assert hdr.verify_checksum(raw)

    def test_header_checksum_catches_corruption(self):
        raw = bytearray(IPv4Header("10.0.0.1", "10.0.0.2", total_len=40).pack())
        raw[8] ^= 0xFF  # ttl
        assert not IPv4Header.unpack(bytes(raw)).verify_checksum(bytes(raw))

    def test_non_ipv4_rejected(self):
        raw = bytearray(IPv4Header("1.2.3.4", "5.6.7.8").pack())
        raw[0] = 0x65  # version 6
        with pytest.raises(ValueError):
            IPv4Header.unpack(bytes(raw))


class TestTCP:
    def test_roundtrip(self):
        hdr = TCPHeader(8080, 80, seq=1234, ack=5678, flags=SYN | ACK, window=4321)
        raw = hdr.pack()
        assert len(raw) == TCP_HEADER_LEN
        parsed = TCPHeader.unpack(raw)
        assert (parsed.src_port, parsed.dst_port) == (8080, 80)
        assert (parsed.seq, parsed.ack) == (1234, 5678)
        assert parsed.flags == SYN | ACK
        assert parsed.window == 4321

    def test_sequence_numbers_wrap_mod_32_bits(self):
        hdr = TCPHeader(1, 2, seq=(1 << 32) + 7)
        assert hdr.seq == 7

    def test_checksum_roundtrip_with_payload(self):
        ip = IPv4Header("10.0.0.1", "10.0.0.2",
                        total_len=IPV4_HEADER_LEN + TCP_HEADER_LEN + 11)
        hdr = TCPHeader(1000, 80, seq=1, ack=2, flags=ACK | PSH)
        hdr.compute_checksum(ip, b"hello world")
        assert hdr.verify_checksum(ip, b"hello world")

    def test_checksum_catches_payload_corruption(self):
        ip = IPv4Header("10.0.0.1", "10.0.0.2",
                        total_len=IPV4_HEADER_LEN + TCP_HEADER_LEN + 11)
        hdr = TCPHeader(1000, 80, seq=1, ack=2, flags=ACK)
        hdr.compute_checksum(ip, b"hello world")
        assert not hdr.verify_checksum(ip, b"hello worle")

    def test_checksum_catches_port_corruption(self):
        ip = IPv4Header("10.0.0.1", "10.0.0.2",
                        total_len=IPV4_HEADER_LEN + TCP_HEADER_LEN)
        hdr = TCPHeader(1000, 80, seq=1, ack=2, flags=ACK)
        hdr.compute_checksum(ip, b"")
        hdr.src_port = 1001
        assert not hdr.verify_checksum(ip, b"")

    def test_checksum_binds_to_addresses(self):
        """The pseudo-header makes misdelivered segments detectable."""
        ip_a = IPv4Header("10.0.0.1", "10.0.0.2",
                          total_len=IPV4_HEADER_LEN + TCP_HEADER_LEN)
        ip_b = IPv4Header("10.0.0.1", "10.0.0.3",
                          total_len=IPV4_HEADER_LEN + TCP_HEADER_LEN)
        hdr = TCPHeader(1, 2)
        hdr.compute_checksum(ip_a, b"")
        assert hdr.verify_checksum(ip_a, b"")
        assert not hdr.verify_checksum(ip_b, b"")

    def test_flag_names(self):
        assert TCPHeader(1, 2, flags=SYN | ACK).flag_names() == "SYN|ACK"
        assert TCPHeader(1, 2, flags=FIN | ACK | PSH).flag_names() == "ACK|FIN|PSH"
        assert TCPHeader(1, 2, flags=0).flag_names() == "-"
