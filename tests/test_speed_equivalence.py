"""Golden-trace equivalence: "faster" must never mean "different".

The fixtures under tests/fixtures/speed_golden_*.json were captured
from the canned wall-clock scenarios (repro.bench.speed) BEFORE the
raw-speed overhaul of the dispatch/checksum/header/device hot paths,
via ``repro-bench-speed --golden``.  Each one pins the simulated
results of a seeded run:

- the sha256 of the exact fired-event sequence (time, seq, callback),
- op counts, simulated clock, wrk latency stats,
- the full metrics snapshot (including t-digest quantiles),
- for the ingest scenario: the recovered key->value mapping digest,
  the op-journal digest, and per-kind persistence event counts.

These tests re-run every scenario on the optimized code and assert the
golden documents match byte-for-byte.  Any optimization that reorders
an event, drops a charge, changes a checksum, or perturbs recovery
shows up as a digest mismatch here — which is what lets the perf work
in this module's history claim "identical simulated results".

To regenerate after an *intentional* behaviour change (never for a
pure optimization):  PYTHONPATH=src python -m repro.bench.speed \
    --golden tests/fixtures
"""

import json
import os

import pytest

from repro.bench.speed import SCENARIOS, run_scenario

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture_path(name):
    return os.path.join(FIXTURE_DIR, f"speed_golden_{name}.json")


def _canonical(doc):
    """The byte form the --golden flag writes (sorted, 2-space indent)."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fixture_exists(name):
    assert os.path.exists(_fixture_path(name)), (
        f"missing golden fixture for {name}; regenerate with "
        f"PYTHONPATH=src python -m repro.bench.speed --golden tests/fixtures"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_reproduces_golden_fixture(name):
    golden = run_scenario(name, scale=1.0, golden=True)["golden"]
    with open(_fixture_path(name)) as handle:
        fixture_bytes = handle.read()
    fixture = json.loads(fixture_bytes)

    # Compare field by field first so a mismatch names the divergence
    # (event order vs metrics vs recovery) instead of dumping two blobs.
    fresh = json.loads(_canonical(golden))
    assert set(fresh) == set(fixture), "golden document keys changed"
    for field in sorted(fixture):
        assert fresh[field] == fixture[field], (
            f"{name}: golden field {field!r} diverged from the "
            f"pre-optimization capture"
        )
    # And the exact serialized bytes, the strongest form of the claim.
    assert _canonical(golden) == fixture_bytes


def test_goldens_are_deterministic_run_to_run():
    """Two in-process runs of the same scenario agree exactly."""
    first = run_scenario("novelsm-ingest-recovery", scale=0.2, golden=True)
    second = run_scenario("novelsm-ingest-recovery", scale=0.2, golden=True)
    assert first["golden"] == second["golden"]
    assert first["ops"] == second["ops"]
    assert first["events"] == second["events"]


def test_event_digest_covers_order():
    """The event digest is order-sensitive (its reason to exist)."""
    import hashlib

    a = hashlib.sha256()
    a.update(b"1.0|0|f\n")
    a.update(b"1.0|1|g\n")
    b = hashlib.sha256()
    b.update(b"1.0|1|g\n")
    b.update(b"1.0|0|f\n")
    assert a.hexdigest() != b.hexdigest()
