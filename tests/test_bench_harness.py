"""Unit tests for the harness itself: wrk stats, testbed, reports, contexts."""

import pytest

from repro.bench.report import format_table, pct_delta, us
from repro.bench.testbed import make_testbed, preload
from repro.bench.wrk import WrkClient, WrkStats
from repro.sim import ExecutionContext
from repro.sim.context import FilterContext
from repro.sim.units import MICROS, MILLIS, SECONDS, ns_to_us, us as us_units
from repro.storage.server import ServerConfig


class TestUnits:
    def test_constants(self):
        assert MICROS == 1_000.0
        assert MILLIS == 1_000_000.0
        assert SECONDS == 1_000_000_000.0

    def test_conversions(self):
        assert us_units(3.5) == 3_500.0
        assert ns_to_us(26_710.0) == pytest.approx(26.71)


class TestFilterContext:
    def test_dropped_category_charges_nothing(self):
        inner = ExecutionContext()
        filtered = FilterContext(inner, drop={"persist"})
        filtered.charge(100, "persist")
        filtered.charge(50, "datamgmt.copy")
        assert inner.category("persist") == 0.0
        assert inner.category("datamgmt.copy") == 50.0
        assert inner.elapsed == 50.0

    def test_passthrough_properties(self):
        inner = ExecutionContext()
        filtered = FilterContext(inner, drop=set())
        filtered.charge(10, "x")
        assert filtered.elapsed == 10.0
        assert filtered.category("x") == 10.0
        assert filtered.snapshot() == {"x": 10.0}


class TestWrkStats:
    def test_average_and_percentiles(self):
        stats = WrkStats()
        stats.rtts_ns = [float(i) * 1000 for i in range(1, 101)]
        stats.measure_start, stats.measure_end = 0.0, 1e9
        assert stats.avg_rtt_us == pytest.approx(50.5)
        # Linear interpolation at rank = p/100 * (n-1): over 1..100 us
        # the p-th percentile is exactly 1 + 0.99*p us.
        assert stats.percentile_us(50) == pytest.approx(50.5)
        assert stats.percentile_us(99) == pytest.approx(99.01)
        assert stats.percentile_us(0) == pytest.approx(1.0)
        assert stats.percentile_us(100) == pytest.approx(100.0)

    def test_throughput_from_window(self):
        stats = WrkStats()
        stats.rtts_ns = [1.0] * 500
        stats.measure_start = 0.0
        stats.measure_end = 10_000_000.0  # 10 ms
        assert stats.throughput_krps == pytest.approx(50.0)

    def test_empty_stats_are_zero(self):
        stats = WrkStats()
        assert stats.avg_rtt_us == 0.0
        assert stats.percentile_us(99) == 0.0
        assert stats.throughput_krps == 0.0


class TestReport:
    def test_format_table_aligns(self):
        table = format_table("T", ["a", "bb"], [("x", 1), ("longer", 22)])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "longer" in table
        widths = {len(line) for line in lines[2:-1]}
        assert len(widths) <= 2  # header and rows aligned

    def test_pct_delta(self):
        assert pct_delta(11.0, 10.0) == "+10.0%"
        assert pct_delta(9.0, 10.0) == "-10.0%"
        assert pct_delta(1.0, 0.0) == "n/a"

    def test_us_formatting(self):
        assert us(3.14159) == "3.14"


class TestTestbed:
    def test_engines_constructible(self):
        for engine in ("null", "rawpm", "novelsm", "novelsm-nopersist", "pktstore"):
            testbed = make_testbed(ServerConfig(engine=engine))
            assert testbed.kv.engine is testbed.engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            make_testbed(ServerConfig(engine="mongodb"))

    def test_server_is_paste_single_core(self):
        testbed = make_testbed(ServerConfig(engine="null"))
        assert testbed.server.paste_mode
        assert len(testbed.server.cpus) == 1
        assert not testbed.client.paste_mode
        assert len(testbed.client.cpus) == 12

    def test_non_paste_testbed(self):
        testbed = make_testbed(ServerConfig(engine="null"), paste=False)
        assert not testbed.server.paste_mode

    def test_pktstore_requires_paste(self):
        with pytest.raises(ValueError):
            make_testbed(ServerConfig(engine="pktstore"), paste=False)

    def test_preload_steady_state(self):
        testbed = make_testbed(ServerConfig(engine="novelsm"))
        count = preload(testbed, entries=20, value_size=64)
        assert count == 20
        assert testbed.engine.get(b"warm-19") == bytes(64)


class TestWrkClient:
    def test_zero_duration_completes_nothing(self):
        testbed = make_testbed(ServerConfig(engine="null"))
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                        duration_ns=0.0, warmup_ns=0.0)
        stats = wrk.run()
        assert stats.completed == 0

    def test_get_workload(self):
        testbed = make_testbed(ServerConfig(engine="novelsm"))
        preload(testbed, entries=10, value_size=128, key_prefix="key-0")
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                        method="GET", key_space=5, key_prefix="key",
                        duration_ns=400_000, warmup_ns=100_000)
        stats = wrk.run()
        assert stats.completed > 0
        assert testbed.kv.stats["gets"] == stats.completed

    def test_multiple_connections_complete_independently(self):
        testbed = make_testbed(ServerConfig(engine="null"))
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=8,
                        duration_ns=400_000, warmup_ns=100_000)
        stats = wrk.run()
        sents = [conn.sent for conn in wrk._conns]
        assert all(sent > 0 for sent in sents)
        assert stats.completed == sum(sents) - sum(
            1 for conn in wrk._conns if conn.inflight_since is not None and not conn.stopped
        ) or stats.completed <= sum(sents)
