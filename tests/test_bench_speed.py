"""Unit tests for the repro.bench.speed harness itself.

These stay cheap (synthetic documents, tiny scaled scenario runs) so
they belong to tier-1; the wall-clock assertions live in the perf lane
(tests/test_speed_regression.py).
"""

import copy
import json
import os

import pytest

from repro.bench.speed import (
    SCENARIOS,
    SCHEMA,
    check_schema,
    compare,
    main,
    merge_best,
    run_all,
    run_scenario,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _doc(norms, score=1_000_000.0):
    """A minimal valid document with given per-scenario normalized rates."""
    scenarios = {}
    total_ops, total_wall = 0, 0.0
    for name, norm in norms.items():
        ops = 1000
        wall = 0.5
        scenarios[name] = {
            "ops": ops,
            "events": 5000,
            "sim_ns": 1e6,
            "wall_s": wall,
            "ops_per_wall_s": norm * score,
            "events_per_wall_s": 10000.0,
            "normalized_ops_per_wall_s": norm,
            "peak_rss_kb": 1000,
        }
        total_ops += ops
        total_wall += wall
    agg = total_ops / total_wall if total_wall else 0.0
    return {
        "schema": SCHEMA,
        "scale": 1.0,
        "calibration": {"score": score, "loops": 3},
        "scenarios": scenarios,
        "aggregate": {
            "total_ops": total_ops,
            "total_wall_s": total_wall,
            "ops_per_wall_s": agg,
            "normalized_ops_per_wall_s": agg / score,
            "peak_rss_kb": 1000,
        },
    }


THREE = {"a": 0.5, "b": 0.5, "c": 0.5}


class TestCheckSchema:
    def test_committed_baseline_is_valid(self):
        path = os.path.join(REPO_ROOT, "BENCH_speed.json")
        with open(path) as handle:
            doc = json.load(handle)
        check_schema(doc)
        # The baseline may trail SCENARIOS (new scenarios bake in the
        # perf lane before they gate) but never name unknown ones, and
        # the core three must always be gated.
        assert set(doc["scenarios"]) <= set(SCENARIOS)
        assert {"wrk-tcp", "homa-storm",
                "novelsm-ingest-recovery"} <= set(doc["scenarios"])

    def test_accepts_synthetic(self):
        check_schema(_doc(THREE))

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("schema"),
            lambda d: d.update(schema="bogus/v0"),
            lambda d: d.pop("calibration"),
            lambda d: d["calibration"].update(score=0),
            lambda d: d.pop("scenarios"),
            lambda d: d["scenarios"].pop("a"),
            lambda d: d["scenarios"]["a"].pop("ops"),
            lambda d: d["scenarios"]["a"].update(ops=0),
            lambda d: d["scenarios"]["a"].update(wall_s="fast"),
            lambda d: d["scenarios"]["a"].update(peak_rss_kb=True),
            lambda d: d.pop("aggregate"),
        ],
    )
    def test_rejects_mutations(self, mutate):
        doc = _doc(THREE)
        mutate(doc)
        with pytest.raises(ValueError):
            check_schema(doc)

    def test_min_scenarios_relaxation(self):
        doc = _doc({"a": 0.5})
        with pytest.raises(ValueError):
            check_schema(doc)
        check_schema(doc, min_scenarios=1)


class TestCompare:
    def test_equal_docs_pass(self):
        base = _doc(THREE)
        ok, rows = compare(base, base, tolerance=0.85)
        assert ok and len(rows) == 3
        assert all(ratio == pytest.approx(1.0) for _n, _b, _c, ratio, _p in rows)

    def test_regression_fails_only_the_slow_scenario(self):
        base = _doc(THREE)
        cur = _doc({"a": 0.5, "b": 0.2, "c": 0.5})
        ok, rows = compare(cur, base, tolerance=0.85)
        assert not ok
        verdicts = {name: passed for name, _b, _c, _r, passed in rows}
        assert verdicts == {"a": True, "b": False, "c": True}

    def test_missing_scenario_fails_when_required(self):
        base = _doc(THREE)
        cur = _doc({"a": 0.5, "b": 0.5})
        cur["scenarios"]["c"] = None
        del cur["scenarios"]["c"]
        ok, _rows = compare(cur, base, tolerance=0.85, require_all=True)
        assert not ok
        ok, rows = compare(cur, base, tolerance=0.85, require_all=False)
        assert ok and len(rows) == 2

    def test_faster_always_passes(self):
        base = _doc(THREE)
        cur = _doc({k: 5.0 for k in THREE})
        ok, _rows = compare(cur, base, tolerance=0.85)
        assert ok


class TestMergeBest:
    def test_picks_fastest_per_scenario(self):
        slow = _doc({"a": 0.1, "b": 0.9, "c": 0.5})
        fast = _doc({"a": 0.9, "b": 0.1, "c": 0.5})
        best = merge_best([slow, fast])
        assert best["scenarios"]["a"]["ops_per_wall_s"] == \
            fast["scenarios"]["a"]["ops_per_wall_s"]
        assert best["scenarios"]["b"]["ops_per_wall_s"] == \
            slow["scenarios"]["b"]["ops_per_wall_s"]
        check_schema(best)

    def test_does_not_mutate_inputs(self):
        docs = [_doc(THREE), _doc({k: 9.0 for k in THREE})]
        keep = copy.deepcopy(docs)
        merge_best(docs)
        assert docs == keep


class TestScaledRuns:
    """Tiny scaled scenario runs: the harness works end to end."""

    def test_run_scenario_fields(self):
        result = run_scenario("novelsm-ingest-recovery", scale=0.02)
        assert result["ops"] > 0
        assert result["events"] > 0
        assert result["wall_s"] > 0
        assert result["ops_per_wall_s"] > 0
        assert result["peak_rss_kb"] > 0

    def test_run_all_subset_schema(self):
        doc = run_all(scale=0.02, scenarios=["novelsm-ingest-recovery"],
                      calibration_loops=1)
        check_schema(doc, min_scenarios=1)
        assert doc["scale"] == 0.02

    def test_run_all_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            run_all(scenarios=["no-such-scenario"])


class TestCli:
    def test_check_against_temp_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        code = main([
            "--scenario", "novelsm-ingest-recovery", "--scale", "0.02",
            "--repeat", "1", "--update", "--baseline", str(baseline),
        ])
        assert code == 0
        assert baseline.exists()
        code = main([
            "--scenario", "novelsm-ingest-recovery", "--scale", "0.02",
            "--repeat", "1", "--check", "--tolerance", "0.05",
            "--baseline", str(baseline),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_check_missing_baseline_exits_2(self, tmp_path):
        code = main([
            "--scenario", "novelsm-ingest-recovery", "--scale", "0.02",
            "--repeat", "1", "--check",
            "--baseline", str(tmp_path / "absent.json"),
        ])
        assert code == 2

    def test_impossible_tolerance_exits_1(self, tmp_path):
        baseline = tmp_path / "base.json"
        main([
            "--scenario", "novelsm-ingest-recovery", "--scale", "0.02",
            "--repeat", "1", "--update", "--baseline", str(baseline),
        ])
        code = main([
            "--scenario", "novelsm-ingest-recovery", "--scale", "0.02",
            "--repeat", "1", "--check", "--tolerance", "1000",
            "--baseline", str(baseline),
        ])
        assert code == 1

    def test_golden_capture_writes_fixture(self, tmp_path):
        out_dir = tmp_path / "goldens"
        code = main([
            "--scenario", "novelsm-ingest-recovery", "--scale", "0.02",
            "--golden", str(out_dir),
        ])
        assert code == 0
        path = out_dir / "speed_golden_novelsm-ingest-recovery.json"
        golden = json.loads(path.read_text())
        assert "recovered_digest" in golden
        assert "journal_digest" in golden
