"""Tests for the post-POSIX packet-metadata I/O API (§5.1)."""

from repro.bench.costmodel import CostModel
from repro.core.api import PacketIO
from repro.core.pktstore import PacketStore
from repro.net.fabric import Fabric
from repro.net.pool import BufferPool
from repro.net.stack import Host
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim.engine import Simulator


def make_pair():
    sim = Simulator()
    fabric = Fabric(sim)
    pm = PMDevice(32 << 20)
    ns = PMNamespace(pm)
    server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(),
                  rx_pool_region=ns.create("rx", 4 << 20))
    client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel())
    return sim, server, client, ns, pm


def test_precv_delivers_packet_metadata():
    sim, server, client, ns, _ = make_pair()
    seen = []

    def on_accept(sock, ctx):
        pio = PacketIO(sock)
        pio.precv(lambda p, seg, c: seen.append(
            (seg.bytes(), seg.pktbuf.hw_tstamp, seg.pktbuf.csum_verified)
        ))

    server.stack.listen(80, on_accept)

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", 80, ctx)
        sock.on_established = lambda s, c: s.send(b"metadata please", c)

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle()
    assert len(seen) == 1
    data, hw_tstamp, verified = seen[0]
    assert data == b"metadata please"
    assert hw_tstamp is not None      # NIC stamped it
    assert verified                   # NIC verified the TCP checksum


def test_precv_retained_segment_owns_pm_payload():
    """The §4 adoption: retained packet payload lives in PM, flushable."""
    sim, server, client, ns, pm = make_pair()
    kept = []

    def on_accept(sock, ctx):
        def handler(pio, segment, c):
            segment.retain()
            segment.pktbuf.persist_payload(c, "persist")
            kept.append(segment)

        PacketIO(sock).precv(handler)

    server.stack.listen(80, on_accept)

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", 80, ctx)
        sock.on_established = lambda s, c: s.send(b"durable payload bytes", c)

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle()
    assert len(kept) == 1
    segment = kept[0]
    # Crash: the retained payload must survive (it was flushed in place).
    pm.crash()
    base = segment.pktbuf.buf.pool.region.global_offset(
        segment.pktbuf.buf.region_offset(segment.pktbuf.data_off + segment.offset)
    )
    assert pm.persisted_view(base, segment.length) == b"durable payload bytes"


def test_psend_transmits_buffer_refs_zero_copy():
    sim, server, client, ns, _ = make_pair()
    received = bytearray()

    def on_accept(sock, ctx):
        pio = PacketIO(sock)
        buf = server.tx_pool.alloc()
        buf.write(0, b"response from buffer refs")
        pio.psend([(buf, 0, 25)], ctx)
        buf.put()

    server.stack.listen(80, on_accept)

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", 80, ctx)
        sock.on_data = lambda s, seg, c: received.extend(seg.bytes())

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle()
    assert bytes(received) == b"response from buffer refs"


def test_psend_record_serves_store_value_from_pm():
    """GET path of the proposal: value goes out straight from the store."""
    sim, server, client, ns, _ = make_pair()

    pool = BufferPool(ns.create("store-pool", 2 << 20), 2048)
    store = PacketStore.create(ns.create("store-meta", 1 << 20), pool)
    buf = pool.alloc()
    buf.write(0, b"stored-in-pm")
    store.put(b"key", [(buf, 0, 12)], 12, 0, 0)

    def on_accept(sock, ctx):
        pio = PacketIO(sock)
        sent = pio.psend_record(store, b"key", ctx)
        assert sent == 12
        assert pio.psend_record(store, b"missing", ctx) is None

    server.stack.listen(80, on_accept)
    received = bytearray()

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", 80, ctx)
        sock.on_data = lambda s, seg, c: received.extend(seg.bytes())

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle()
    assert bytes(received) == b"stored-in-pm"


def test_psend_bytes_classic_path_counts():
    sim, server, client, ns, _ = make_pair()

    def on_accept(sock, ctx):
        pio = PacketIO(sock)
        pio.psend_bytes(b"classic", ctx)
        assert pio.tx_bytes == 7

    server.stack.listen(80, on_accept)
    client.process_on_core(
        client.cpus[0], lambda ctx: client.stack.connect("10.0.0.1", 80, ctx)
    )
    sim.run_until_idle()
