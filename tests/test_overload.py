"""Overload resilience: containment, backpressure, degradation.

Covers the serving-path failure contract (docs/RESILIENCE.md): pressure
watermarks on the pools and the PM arena, the overload controller's
admission/reclaim/defer decisions, per-request error containment with
the 400/503/507 status mapping, bounded send queues, the hardened
parsers, the namespace's torn-directory rollback, and the chaos storm
(positive and negative).
"""

import pytest

from repro.bench.costmodel import CostModel
from repro.core.overload import (
    OVERLOADED,
    STORAGE_FULL,
    OverloadController,
    status_for_failure,
)
from repro.core.pktstore import PacketStoreEngine
from repro.core.ppktbuf import SlabExhausted
from repro.net.fabric import Fabric
from repro.net.http import HttpError, HttpParser, build_request
from repro.net.pool import BufferPool, PoolExhausted
from repro.net.stack import Host
from repro.net.tcp import SendQueueFull
from repro.pm.alloc import AllocationError, PMAllocator
from repro.pm.device import DRAMDevice, PMDevice
from repro.pm.namespace import (
    DIR_SLOT_SIZE,
    NamespaceError,
    PMNamespace,
)
from repro.sim.context import NULL_CONTEXT
from repro.sim.engine import Simulator
from repro.storage.kvserver import KVServer, decode_scan_body, encode_scan_body
from repro.testing.chaos import run_overload_storm


# -- pressure watermarks ------------------------------------------------------


def make_pool(slots=10, slot_size=2048):
    size = slots * slot_size
    dev = DRAMDevice(size)
    return BufferPool(dev.region(0, size, "pool"), slot_size)


class TestPoolWatermarks:
    def test_hysteresis_and_listener(self):
        pool = make_pool(slots=10)
        events = []
        pool.add_pressure_listener(lambda src, on: events.append(on))

        bufs = [pool.alloc() for _ in range(8)]
        assert not pool.under_pressure  # 8/10 < 0.9
        bufs.append(pool.alloc())
        assert pool.under_pressure      # 9/10 >= 0.9
        assert events == [True]
        assert pool.pressure_events == 1

        # Dropping to 8/10 is above low_watermark: still pressured.
        bufs.pop().put()
        assert pool.under_pressure
        # Dropping below 0.7 clears it.
        bufs.pop().put()
        bufs.pop().put()
        assert not pool.under_pressure
        assert events == [True, False]
        for buf in bufs:
            buf.put()

    def test_exhaustion_counted(self):
        pool = make_pool(slots=2)
        bufs = [pool.alloc(), pool.alloc()]
        with pytest.raises(PoolExhausted):
            pool.alloc()
        assert pool.exhaustions == 1
        for buf in bufs:
            buf.put()

    def test_bad_watermarks_rejected(self):
        dev = DRAMDevice(1 << 14)
        with pytest.raises(ValueError):
            BufferPool(dev.region(0, 1 << 14, "p"), 2048,
                       high_watermark=0.5, low_watermark=0.8)


class TestArenaWatermarks:
    def test_allocator_pressure_cycle(self):
        dev = PMDevice(1 << 16)
        alloc = PMAllocator(dev.region(0, 1 << 16, "heap"))
        events = []
        alloc.add_pressure_listener(lambda src, on: events.append(on))

        offsets = []
        while not alloc.under_pressure:
            offsets.append(alloc.alloc(4096))
        assert events == [True]
        assert alloc.occupancy() >= alloc.high_watermark
        while offsets:
            alloc.free(offsets.pop())
        assert not alloc.under_pressure
        assert events == [True, False]

    def test_failure_counted(self):
        dev = PMDevice(1 << 14)
        alloc = PMAllocator(dev.region(0, 1 << 14, "heap"))
        with pytest.raises(AllocationError):
            alloc.alloc(1 << 20)
        assert alloc.allocation_failures == 1


# -- status contract + controller ---------------------------------------------


def test_status_for_failure_mapping():
    assert status_for_failure(SlabExhausted("full")) == STORAGE_FULL
    assert status_for_failure(AllocationError("full")) == STORAGE_FULL
    assert status_for_failure(PoolExhausted("empty")) == OVERLOADED
    assert status_for_failure(MemoryError("oom")) == OVERLOADED
    assert status_for_failure(ValueError("nope")) is None


class _FakeSource:
    """Minimal pressure-source: the protocol the controller needs."""

    def __init__(self):
        self.under_pressure = False
        self._listeners = []

    def add_pressure_listener(self, callback):
        self._listeners.append(callback)
        return callback

    def remove_pressure_listener(self, callback):
        self._listeners.remove(callback)

    def set(self, pressured):
        if pressured != self.under_pressure:
            self.under_pressure = pressured
            for listener in self._listeners:
                listener(self, pressured)


class TestOverloadController:
    def test_admit_sheds_under_pressure(self):
        source = _FakeSource()
        ctl = OverloadController(reclaim_on_pressure=False)
        ctl.watch(source)
        assert ctl.admit()
        source.set(True)
        assert not ctl.admit()
        assert ctl.stats["shed"] == 1
        source.set(False)
        assert ctl.admit()

    def test_reclaim_can_avert_shedding(self):
        source = _FakeSource()
        ctl = OverloadController()
        ctl.watch(source)
        ctl.add_reclaimer(lambda ctx: (source.set(False), 3)[1])
        source.set(True)
        assert ctl.admit()          # reclaimed its way out
        assert ctl.stats["shed"] == 0
        assert ctl.stats["reclaimed"] == 3

    def test_watch_is_idempotent(self):
        source = _FakeSource()
        ctl = OverloadController()
        assert ctl.watch(source) is source
        ctl.watch(source)
        source.set(True)
        assert ctl.stats["pressure_transitions"] == 1

    def test_degrade_follows_pressure(self):
        source = _FakeSource()
        ctl = OverloadController()
        ctl.watch(source)
        assert not ctl.should_degrade_zero_copy()
        source.set(True)
        assert ctl.should_degrade_zero_copy()
        ctl.degrade_zero_copy = False
        assert not ctl.should_degrade_zero_copy()

    def test_deferred_requests_replay_when_pressure_clears(self):
        sim = Simulator()
        source = _FakeSource()
        ctl = OverloadController(sim=sim, max_deferred=4,
                                 reclaim_on_pressure=False)
        ctl.watch(source)
        source.set(True)
        replayed = []
        assert ctl.try_defer(lambda: replayed.append("a"))
        assert ctl.try_defer(lambda: replayed.append("b"))
        assert not replayed
        source.set(False)           # listener schedules the drain
        sim.run_until_idle()
        assert replayed == ["a", "b"]
        assert ctl.stats["replayed"] == 2

    def test_defer_queue_is_bounded(self):
        ctl = OverloadController(max_deferred=1)
        assert ctl.try_defer(lambda: None)
        assert not ctl.try_defer(lambda: None)


# -- scan body hardening ------------------------------------------------------


class TestScanBodyDecoding:
    def test_roundtrip(self):
        pairs = [(b"k1", b"v1"), (b"k2", b"")]
        assert decode_scan_body(encode_scan_body(pairs)) == pairs

    def test_truncated_header_rejected(self):
        body = encode_scan_body([(b"key", b"value")])
        with pytest.raises(ValueError, match="pair header"):
            decode_scan_body(body + b"\x01\x00")

    def test_truncated_payload_rejected(self):
        body = encode_scan_body([(b"key", b"value")])
        with pytest.raises(ValueError, match="declares"):
            decode_scan_body(body[:-2])

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            decode_scan_body(b"\xff" * 5)


# -- parser hardening ---------------------------------------------------------


class TestParserHardening:
    def _feed(self, raw, is_response=False, parser=None):
        from repro.net.pktbuf import PktBuf
        from repro.net.tcp import RxSegment

        pool = make_pool(slots=4)
        pkt = PktBuf.alloc(pool, headroom=0)
        pkt.append(raw)
        parser = parser or HttpParser(is_response=is_response)
        return parser.feed(RxSegment(pkt, 0, len(raw)))

    def test_malformed_request_line(self):
        with pytest.raises(HttpError):
            self._feed(b"GARBAGE\r\n\r\n")

    def test_non_http_version_token(self):
        with pytest.raises(HttpError):
            self._feed(b"GET /k JUNK/1.1\r\n\r\n")

    def test_non_numeric_content_length(self):
        with pytest.raises(HttpError):
            self._feed(b"PUT /k HTTP/1.1\r\ncontent-length: ten\r\n\r\n")

    def test_absurd_content_length(self):
        with pytest.raises(HttpError, match="Content-Length"):
            self._feed(b"PUT /k HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n")

    def test_negative_content_length(self):
        with pytest.raises(HttpError):
            self._feed(b"PUT /k HTTP/1.1\r\ncontent-length: -5\r\n\r\n")

    def test_bad_response_status(self):
        with pytest.raises(HttpError):
            self._feed(b"HTTP/1.1 OK?? bad\r\n\r\n", is_response=True)

    def test_reset_clears_partial_state(self):
        parser = HttpParser()
        self._feed(b"PUT /k HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc",
                   parser=parser)
        parser.reset()
        # A fresh request parses cleanly: no leftover body expectation.
        messages = self._feed(b"GET /x HTTP/1.1\r\n\r\n", parser=parser)
        assert [m.method for m in messages] == ["GET"]


# -- network worlds -----------------------------------------------------------


def make_world(meta_bytes=8 << 20, pool_bytes=8 << 20, kv_kwargs=None):
    sim = Simulator()
    fabric = Fabric(sim)
    pm = PMDevice(64 << 20)
    ns = PMNamespace(pm)
    server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(),
                  rx_pool_region=ns.create("paste-pktbufs", pool_bytes))
    client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel())
    engine = PacketStoreEngine.build(server, ns, meta_bytes=meta_bytes)
    kv = KVServer(server, engine, port=80, **(kv_kwargs or {}))
    return sim, server, client, engine, kv


def run_requests(sim, client, requests):
    responses = []
    parser = HttpParser(is_response=True)
    done = {"count": 0}

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", 80, ctx)

        def on_data(s, seg, c):
            for message in parser.feed(seg):
                responses.append((message.status, message.body))
                message.release()
                done["count"] += 1
                if done["count"] < len(requests):
                    s.send(requests[done["count"]], c)

        sock.on_data = on_data
        sock.on_established = lambda s, c: s.send(requests[0], c)

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle(max_events=2_000_000)
    return responses


# -- error containment over the wire ------------------------------------------


class _ExplodingEngine:
    """Engine whose put always hits packet-memory exhaustion."""

    def __init__(self, exc):
        self.exc = exc

    def put(self, key, message, ctx):
        raise self.exc

    def get(self, key, ctx):
        return None


class TestErrorContainment:
    def test_pool_exhausted_mid_put_answers_503_leak_free(self):
        sim, server, client, engine, kv = make_world()
        kv.engine = _ExplodingEngine(PoolExhausted("rx pool empty"))
        responses = run_requests(sim, client, [
            build_request("PUT", "/k", b"x" * 3000),
            build_request("GET", "/k"),
        ])
        assert responses[0][0] == 503
        assert responses[1][0] == 404          # server still serving
        assert kv.stats["contained_errors"] == 1
        # Leak-free: the failed PUT's rx buffers all went back.
        assert server.rx_pool.in_use == 0
        assert server.tx_pool.in_use == 0

    def test_slab_exhausted_answers_507_and_recovers(self):
        # A metadata slab with ~24 records: distinct-key puts exhaust it.
        sim, server, client, engine, kv = make_world(meta_bytes=24 * 256)
        requests = [build_request("PUT", f"/k{i}", b"v" * 32)
                    for i in range(30)]
        requests.append(build_request("GET", "/k0"))
        responses = run_requests(sim, client, requests)
        statuses = [status for status, _ in responses]
        assert 507 in statuses                 # storage filled up
        assert statuses[-1] == 200             # and the server survived
        first_507 = statuses.index(507)
        assert all(status == 200 for status in statuses[:first_507])
        assert kv.stats["contained_errors"] == statuses.count(507)

    def test_containment_disabled_lets_failures_escape(self):
        sim, server, client, engine, kv = make_world(
            kv_kwargs={"contain_errors": False})
        kv.engine = _ExplodingEngine(PoolExhausted("rx pool empty"))
        with pytest.raises(PoolExhausted):
            run_requests(sim, client, [build_request("PUT", "/k", b"x")])

    def test_malformed_request_line_answers_400(self):
        sim, server, client, engine, kv = make_world()
        responses = run_requests(sim, client, [b"NOT AN HTTP LINE\r\n\r\n"])
        assert responses[0][0] == 400
        assert kv.stats["parse_errors"] == 1
        assert server.rx_pool.in_use == 0

    def test_unknown_method_answers_400(self):
        sim, server, client, engine, kv = make_world()
        responses = run_requests(sim, client, [
            b"PATCH /k HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        ])
        assert responses[0][0] in (400, 404)
        assert server.rx_pool.in_use == 0


# -- admission + degradation over the wire ------------------------------------


class TestAdmissionAndDegrade:
    def test_pressured_server_sheds_with_503(self):
        source = _FakeSource()
        ctl = OverloadController(reclaim_on_pressure=False)
        sim, server, client, engine, kv = make_world(
            kv_kwargs={"overload": ctl})
        ctl.watch(source)
        source.set(True)
        responses = run_requests(sim, client, [
            build_request("PUT", "/k", b"v"),
            build_request("GET", "/k"),
        ])
        assert responses[0][0] == 503           # PUT shed
        assert responses[1][0] == 404           # GET admitted (read path)
        assert kv.stats["shed"] == 1

    def test_zero_copy_get_degrades_to_copy_under_pressure(self):
        source = _FakeSource()
        ctl = OverloadController(reclaim_on_pressure=False)
        sim, server, client, engine, kv = make_world(
            kv_kwargs={"overload": ctl, "zero_copy_get": True})
        ctl.watch(source)
        value = bytes(i % 256 for i in range(1024))
        responses = run_requests(sim, client, [
            build_request("PUT", "/obj", value),
            build_request("GET", "/obj"),
        ])
        assert responses[1] == (200, value)
        assert kv.stats["zero_copy_gets"] == 1

        source.set(True)                        # now pressured
        responses = run_requests(sim, client, [build_request("GET", "/obj")])
        assert responses[0] == (200, value)     # same bytes, copy path
        assert kv.stats["zero_copy_gets"] == 1  # unchanged
        assert kv.stats["degraded_gets"] == 1

        source.set(False)                       # pressure clears
        responses = run_requests(sim, client, [build_request("GET", "/obj")])
        assert responses[0] == (200, value)
        assert kv.stats["zero_copy_gets"] == 2  # zero-copy again


# -- bounded send queues ------------------------------------------------------


class TestSendQueueBound:
    def test_oversized_send_rejected_before_queueing(self):
        sim, server, client, engine, kv = make_world()
        client.stack.send_queue_limit = 4096
        outcome = {}

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 80, ctx)

            def on_established(s, c):
                try:
                    s.send(b"x" * 65536, c)
                except SendQueueFull as exc:
                    outcome["error"] = exc
                    s.abort(c)

            sock.on_established = on_established

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle(max_events=2_000_000)
        assert isinstance(outcome["error"], SendQueueFull)
        # The rejected send took no references and the abort leaked none.
        assert client.tx_pool.in_use == 0
        assert server.rx_pool.in_use == 0


# -- namespace torn-directory rollback ----------------------------------------


class TestNamespaceDirectoryCrashSafety:
    def _corrupt_slot(self, device, slot):
        offset = slot * DIR_SLOT_SIZE + 16
        device.write(offset, b"\xde\xad\xbe\xef")
        device.persist(offset, 4, NULL_CONTEXT)

    def test_torn_latest_slot_rolls_back_to_previous_directory(self):
        dev = PMDevice(1 << 20)
        ns = PMNamespace(dev)          # seq 1 -> slot 1
        ns.create("a", 4096)           # seq 2 -> slot 0
        ns.create("b", 4096)           # seq 3 -> slot 1
        self._corrupt_slot(dev, 1)     # tear the newest directory write
        reopened = PMNamespace.reopen(dev)
        assert reopened.names() == ["a"]   # rolled back, not garbage

    def test_both_slots_torn_is_detected(self):
        dev = PMDevice(1 << 20)
        ns = PMNamespace(dev)
        ns.create("a", 4096)
        self._corrupt_slot(dev, 0)
        self._corrupt_slot(dev, 1)
        with pytest.raises(NamespaceError, match="checksum"):
            PMNamespace.reopen(dev)

    def test_next_create_after_rollback_is_consistent(self):
        dev = PMDevice(1 << 20)
        ns = PMNamespace(dev)
        ns.create("a", 4096)
        ns.create("b", 4096)
        self._corrupt_slot(dev, 1)
        reopened = PMNamespace.reopen(dev)
        region = reopened.create("c", 4096)
        assert reopened.names() == ["a", "c"]
        # The rolled-back directory's next_base still covers "b"'s
        # extent, so "c" must not overlap "a".
        base_a, size_a = reopened._entries["a"]
        assert region.base >= base_a + size_a


# -- the chaos storm ----------------------------------------------------------


class TestChaosStorm:
    def test_contained_storm_upholds_contract(self):
        report = run_overload_storm(
            connections=40, puts_per_conn=5, keys_per_conn=2,
            pool_slots=96, stalls=2, seed=3,
        )
        assert report.crashed is None
        assert report.ok, report.summary()
        assert report.responses.get(503, 0) > 0     # overload was real
        assert report.acked_puts > 0                # and progress happened

    def test_uncontained_storm_reports_violations(self):
        report = run_overload_storm(
            connections=40, puts_per_conn=5, keys_per_conn=2,
            pool_slots=96, stalls=2, seed=3, contain=False,
        )
        assert not report.ok
        kinds = {kind for kind, _ in report.violations}
        assert kinds & {"crash", "liveness:probe", "liveness:stalled",
                        "leak:server-rx", "durability"}

    def test_homa_storm_upholds_contract(self):
        # The ROADMAP open item: chaos coverage beyond tcp x 1 core.
        # Homa's storm leans on sender-timeout retransmission and
        # duplicate suppression to stay live through wire loss.
        report = run_overload_storm(
            transport="homa", connections=60, puts_per_conn=6,
            pool_slots=128, seed=5,
        )
        assert report.crashed is None
        assert report.ok, report.summary()
        assert report.responses.get(503, 0) > 0     # overload was real
        assert report.acked_puts > 0

    def test_multicore_storm_upholds_contract(self):
        report = run_overload_storm(
            cores=4, connections=40, puts_per_conn=5, keys_per_conn=2,
            pool_slots=96, stalls=2, seed=7,
        )
        assert report.crashed is None
        assert report.ok, report.summary()
        assert report.acked_puts > 0

    def test_homa_multicore_storm_upholds_contract(self):
        # The acceptance-criteria pairing: homa transport x 4 cores,
        # oracles reading the recorder's gauges.
        report = run_overload_storm(
            transport="homa", cores=4, connections=60, puts_per_conn=6,
            pool_slots=128, seed=9,
        )
        assert report.crashed is None
        assert report.ok, report.summary()
        assert report.responses.get(503, 0) > 0
        assert report.acked_puts > 0
