"""End-to-end crash consistency: kill the server mid-benchmark.

The contract a networked store owes its clients: every write the
client saw acknowledged must survive the crash; writes in flight may
vanish, but only whole — never torn.  We drive the full simulated
testbed (client, TCP, PASTE server, PacketStore), stop the world at an
arbitrary instant, power-cycle the PM device, recover, and check
``acked ⊆ recovered ⊆ attempted`` with bit-exact values.
"""

import random

import pytest

from repro.bench.testbed import make_testbed
from repro.core.pktstore import PacketStore
from repro.net.http import HttpParser, build_request
from repro.net.pool import BufferPool
from repro.pm.namespace import PMNamespace
from repro.storage.server import ServerConfig


class TrackingClient:
    """Issues sequential PUTs with distinct values, tracking acks."""

    def __init__(self, testbed, total):
        self.testbed = testbed
        self.total = total
        self.attempted = {}
        self.acked = {}
        self.parser = HttpParser(is_response=True)
        self._inflight_key = None
        self.sock = None

    def start(self):
        client = self.testbed.client

        def begin(ctx):
            self.sock = client.stack.connect("10.0.0.1", 80, ctx)
            self.sock.on_data = self._on_data
            self.sock.on_established = lambda s, c: self._send_next(c)

        client.process_on_core(client.cpus[0], begin)

    def _send_next(self, ctx):
        index = len(self.attempted)
        if index >= self.total:
            return
        key = f"key-{index:04d}"
        value = bytes((index + j) % 256 for j in range(64 + index))
        self.attempted[key.encode()] = value
        self._inflight_key = key.encode()
        self.sock.send(build_request("PUT", f"/{key}", value), ctx)

    def _on_data(self, sock, segment, ctx):
        for message in self.parser.feed(segment):
            if message.status == 200:
                self.acked[self._inflight_key] = self.attempted[self._inflight_key]
            message.release()
            self._send_next(ctx)


def crash_and_recover(testbed, rng=None):
    testbed.pm_device.crash(rng=rng)
    ns = PMNamespace.reopen(testbed.pm_device)
    pool = BufferPool(ns.open("paste-pktbufs"), 2048)
    return PacketStore.recover(ns.open("pktstore-meta"), pool)


@pytest.mark.parametrize("crash_at_us", [40, 137, 333, 1001, 2718])
def test_acked_writes_survive_arbitrary_crash_points(crash_at_us):
    testbed = make_testbed(ServerConfig(engine="pktstore"))
    client = TrackingClient(testbed, total=200)
    client.start()
    testbed.sim.run(until=crash_at_us * 1000.0)

    recovered_store, report = crash_and_recover(testbed)
    recovered = dict(recovered_store.scan())

    # Every acknowledged write must be present, bit-exact.
    for key, value in client.acked.items():
        assert recovered.get(key) == value, f"acked {key!r} lost or torn"
    # Nothing invented: recovered keys all correspond to attempts with
    # the exact attempted bytes.
    for key, value in recovered.items():
        assert client.attempted.get(key) == value


def test_acked_writes_survive_with_random_pending_line_drain():
    """Same contract when unfenced write-backs drain nondeterministically."""
    for seed in range(5):
        rng = random.Random(seed)
        testbed = make_testbed(ServerConfig(engine="pktstore"))
        client = TrackingClient(testbed, total=100)
        client.start()
        testbed.sim.run(until=rng.uniform(50, 3000) * 1000.0)
        recovered_store, _ = crash_and_recover(testbed, rng=rng)
        recovered = dict(recovered_store.scan())
        for key, value in client.acked.items():
            assert recovered.get(key) == value
        for key, value in recovered.items():
            assert client.attempted.get(key) == value


def test_server_resumes_service_after_recovery():
    """Crash, recover, keep serving: old data readable, new writes land."""
    testbed = make_testbed(ServerConfig(engine="pktstore"))
    client = TrackingClient(testbed, total=50)
    client.start()
    testbed.sim.run(until=3_000_000)
    assert len(client.acked) == 50

    recovered_store, report = crash_and_recover(testbed)
    assert report.recovered >= 50
    # Put through the recovered store directly (server restart path).
    pool = recovered_store.pool
    buf = pool.alloc()
    buf.write(0, b"post-crash value")
    recovered_store.put(b"new-key", [(buf, 0, 16)], 16, 0, 0)
    assert recovered_store.get(b"new-key") == b"post-crash value"
    assert recovered_store.get(b"key-0000") == client.acked[b"key-0000"]


def test_double_crash_recovery_is_stable():
    """Recover, crash again immediately, recover again: same contents."""
    testbed = make_testbed(ServerConfig(engine="pktstore"))
    client = TrackingClient(testbed, total=60)
    client.start()
    testbed.sim.run(until=2_000_000)

    store1, _ = crash_and_recover(testbed)
    first = dict(store1.scan())
    testbed.pm_device.crash()
    ns = PMNamespace.reopen(testbed.pm_device)
    pool = BufferPool(ns.open("paste-pktbufs"), 2048)
    store2, _ = PacketStore.recover(ns.open("pktstore-meta"), pool)
    assert dict(store2.scan()) == first
