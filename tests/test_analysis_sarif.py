"""SARIF 2.1.0 emission: shape, levels, and in-source suppressions."""

import json

from repro.analysis import pmlint
from repro.analysis.cli import main as lint_main
from repro.analysis.sarif import to_sarif

DISABLE = "# pmlint" ": disable"


def report_for(source, path="src/repro/net/_virtual.py"):
    from repro.analysis.findings import AnalysisReport

    module = pmlint.ModuleSource(path, source)
    out = AnalysisReport(tool="pmlint")
    out.extend(pmlint.lint_module(module))
    out.files_checked = 1
    return out


BAD = (
    "import random\n"
    "def jitter():\n"
    "    return random.random()\n"
)


class TestDocumentShape:
    def test_envelope(self):
        doc = to_sarif(report_for(BAD), list(pmlint.iter_rules()))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "pmlint"

    def test_rule_catalogue_in_driver(self):
        doc = to_sarif(report_for(BAD), list(pmlint.iter_rules()))
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        ids = {r["id"] for r in rules}
        assert {"PM-I01", "REF-I01", "CTX-01", "DET-01"} <= ids
        for rule in rules:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning", "note")

    def test_result_location_and_level(self):
        doc = to_sarif(report_for(BAD), list(pmlint.iter_rules()))
        results = doc["runs"][0]["results"]
        det = [r for r in results if r["ruleId"] == "DET-01"]
        assert det, results
        location = det[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("_virtual.py")
        assert location["region"]["startLine"] == 3

    def test_suppressed_finding_carries_justification(self):
        source = (
            "import random\n"
            "def jitter(rng):\n"
            f"    return rng.random()  {DISABLE}=DET-01 — seeded by the "
            "harness deterministically\n"
        )
        doc = to_sarif(report_for(source), list(pmlint.iter_rules()))
        suppressed = [r for r in doc["runs"][0]["results"]
                      if r.get("suppressions")]
        # the import itself is not suppressed; the call is
        calls = [r for r in suppressed if "jitter" in r["message"]["text"]]
        for result in calls:
            (sup,) = result["suppressions"]
            assert sup["kind"] == "inSource"
            assert "seeded" in sup["justification"]


class TestCli:
    def test_sarif_output_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        out = tmp_path / "report.sarif"
        assert lint_main([str(bad), "--format", "sarif",
                          "--output", str(out), "--no-cache"]) == 1
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert any(r["ruleId"] == "DET-01"
                   for r in doc["runs"][0]["results"])

    def test_clean_tree_sarif_exit_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def nop():\n    return 0\n")
        assert lint_main([str(good), "--format", "sarif",
                          "--no-cache"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []
