"""Failover end-to-end: kill a host, promote its backup, keep serving.

The durability claim under test: with ``ack_policy="sync"``, a
client-acked PUT is durable on two hosts, so killing the primary and
failing over must leave the put readable — from the engine directly
and over the network from the promoted node.  Plus the trimmings:
cross-host span stitching, replication-lag gauges, graceful
degradation when the *backup* dies, and the host-kill chaos storm
that wraps all of it in oracles.
"""

import pytest

from repro.cluster.backoff import Backoff
from repro.cluster.topology import ClusterConfig, build_cluster
from repro.net.http import HttpParser, build_request
from repro.storage.server import ServerConfig
from repro.testing.chaos_cluster import HostKillStorm

FAST_BACKOFF = Backoff(base_ns=500_000.0, multiplier=2.0,
                       cap_ns=2_000_000.0, max_retries=3)


def _request(cluster, method, key, value=b"", to=None):
    """One RPC from the client to ``key``'s current primary (or ``to``)."""
    result = {"status": None, "body": None, "rpc_id": None}
    name = to if to is not None else cluster.ring.primary(key)
    ip = cluster.nodes[name].ip
    parser = HttpParser(is_response=True)

    def on_reply(segments, ctx):
        for segment in segments:
            for message in parser.feed(segment):
                result["status"] = message.status
                result["body"] = message.body
                message.release()

    def start(ctx):
        result["rpc_id"] = cluster.client.homa.send_request(
            ip, cluster.config.port,
            build_request(method, "/" + key.decode(), value),
            ctx, on_reply=on_reply)

    cluster.client.process_on_core(cluster.client.cpus[0], start)
    cluster.sim.run_until_idle(max_events=5_000_000)
    return result


class TestSyncReplicationPath:
    def test_acked_put_is_on_both_hosts(self):
        cluster = build_cluster(ClusterConfig(hosts=3))
        key, value = b"both", b"hosts" * 20
        primary = cluster.ring.primary(key)
        backup = cluster.ring.backup(key)
        assert _request(cluster, "PUT", key, value)["status"] == 200
        assert cluster.nodes[primary].engine.get(key) == value
        assert cluster.nodes[backup].engine.get(key) == value
        kv_stats = cluster.nodes[primary].kv.stats
        assert kv_stats["replicated_puts"] == 1
        assert kv_stats["repl_acked"] == 1
        assert kv_stats["deferred_replies"] == 1

    def test_replication_lag_gauge_is_live(self):
        cluster = build_cluster(ClusterConfig(hosts=3))
        key = b"lagged"
        primary = cluster.ring.primary(key)
        assert _request(cluster, "PUT", key, b"v" * 32)["status"] == 200
        lag = cluster.metrics.value(f"{primary}.repl.lag_ns_last")
        assert lag > 0
        assert cluster.metrics.value(f"{primary}.repl.lag_ns_max") >= lag
        assert cluster.metrics.value(f"{primary}.repl.pending") == 0

    def test_cross_host_spans_stitch_into_one_trace(self):
        cluster = build_cluster(ClusterConfig(hosts=3))
        result = _request(cluster, "PUT", b"traced", b"t" * 32)
        assert result["status"] == 200
        stitched = cluster.recorder.stitched(result["rpc_id"])
        # Origin RPC plus at least the replication hop.
        assert stitched[0] == result["rpc_id"]
        assert len(stitched) >= 2

    def test_provenance_restored_on_backup(self):
        """The backup indexes the *client's* packet provenance, not the
        replication hop's — the forwarded bytes carry it."""
        cluster = build_cluster(ClusterConfig(hosts=2))
        key = b"prov"
        backup = cluster.ring.backup(key)
        assert _request(cluster, "PUT", key, b"p" * 48)["status"] == 200
        applier = cluster.nodes[backup].applier
        assert applier.stats["applied"] == 1


class TestFailover:
    def test_acked_put_survives_primary_kill(self):
        cluster = build_cluster(ClusterConfig(hosts=3))
        key, value = b"survive", b"the-kill" * 12
        primary = cluster.ring.primary(key)
        backup = cluster.ring.backup(key)
        assert _request(cluster, "PUT", key, value)["status"] == 200

        cluster.kill(primary)
        cluster.failover(primary)

        # Promotion: the old backup is the new primary.
        assert cluster.ring.primary(key) == backup
        assert cluster.read_value(key) == value
        # And over the network, from the promoted node.
        result = _request(cluster, "GET", key)
        assert result["status"] == 200
        assert result["body"] == value

    def test_promoted_primary_replicates_onward(self):
        cluster = build_cluster(ClusterConfig(hosts=3))
        key = b"onward"
        primary = cluster.ring.primary(key)
        assert _request(cluster, "PUT", key, b"one" * 8)["status"] == 200
        cluster.kill(primary)
        cluster.failover(primary)
        new_primary = cluster.ring.primary(key)
        new_backup = cluster.ring.backup(key)
        assert new_backup is not None and new_backup != primary
        assert _request(cluster, "PUT", key, b"two" * 8)["status"] == 200
        assert cluster.nodes[new_backup].engine.get(key) == b"two" * 8
        assert cluster.nodes[new_primary].kv.stats["repl_acked"] >= 1

    def test_dead_backup_degrades_to_primary_only_ack(self):
        cluster = build_cluster(
            ClusterConfig(hosts=3, backoff=FAST_BACKOFF))
        key, value = b"degrade", b"still-acked" * 6
        primary = cluster.ring.primary(key)
        backup = cluster.ring.backup(key)
        cluster.kill(backup)   # backup dead, no failover declared
        result = _request(cluster, "PUT", key, value)
        # The client still gets its 200 after the bounded retry budget.
        assert result["status"] == 200
        replicator = cluster.nodes[primary].replicator
        assert replicator.stats["give_ups"] == 1
        assert replicator.stats["degraded_acks"] == 1
        assert cluster.nodes[primary].kv.stats["repl_degraded"] == 1
        assert cluster.read_value(key) == value

    def test_failover_resets_suspicion(self):
        cluster = build_cluster(
            ClusterConfig(hosts=3, backoff=FAST_BACKOFF))
        key = b"resus"
        primary = cluster.ring.primary(key)
        backup = cluster.ring.backup(key)
        cluster.kill(backup)
        _request(cluster, "PUT", key, b"x" * 16)
        assert cluster.nodes[backup].ip in \
            cluster.nodes[primary].replicator.suspect
        cluster.failover(backup)
        assert not cluster.nodes[primary].replicator.suspect

    def test_kill_twice_raises(self):
        cluster = build_cluster(ClusterConfig(hosts=2))
        cluster.kill("s0")
        with pytest.raises(RuntimeError):
            cluster.kill("s0")

    def test_dead_host_drops_frames_silently(self):
        cluster = build_cluster(ClusterConfig(hosts=2))
        key = b"void"
        victim = cluster.ring.primary(key)
        cluster.kill(victim)
        result = _request(cluster, "PUT", key, b"x", to=victim)
        # No reply ever comes; the RPC is abandoned at idle (the Homa
        # give-up needs 50 ms of sim time, which run_until_idle gives).
        assert result["status"] is None


class TestRouterDetection:
    def test_threshold_failures_trigger_failover(self):
        cluster = build_cluster(ClusterConfig(hosts=3))
        router = cluster.router
        assert not router.report_failure("s0")
        assert router.report_failure("s0")      # threshold = 2
        assert router.stats["failovers_triggered"] == 1
        assert "s0" not in cluster.ring.alive

    def test_success_resets_the_count(self):
        cluster = build_cluster(ClusterConfig(hosts=3))
        router = cluster.router
        assert not router.report_failure("s1")
        router.report_success("s1")
        assert not router.report_failure("s1")
        assert "s1" in cluster.ring.alive

    def test_reports_against_evicted_node_are_noops(self):
        cluster = build_cluster(ClusterConfig(hosts=3))
        cluster.failover("s2")
        assert not cluster.router.report_failure("s2")
        assert cluster.stats["failovers"] == 1


class TestServeValidation:
    def test_ack_policy_requires_homa(self):
        with pytest.raises(ValueError):
            ServerConfig(transport="tcp", ack_policy="sync").validate()
        with pytest.raises(ValueError):
            ServerConfig(transport="homa", ack_policy="weird").validate()

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(hosts=0).validate()
        with pytest.raises(ValueError):
            ClusterConfig(ack_policy="never").validate()
        with pytest.raises(ValueError):
            ClusterConfig(repl_port=80, port=80).validate()
        with pytest.raises(TypeError):
            ClusterConfig(backoff=123).validate()


class TestHostKillStorm:
    """The chaos acceptance check, as a test: kill a primary mid-storm
    and every oracle — durability, refcounts, span stitching, vacuity
    — must hold."""

    def test_storm_contract_holds_sync(self):
        report = HostKillStorm(hosts=3, loops=6, puts_per_loop=4,
                               value_size=600, seed=3).run()
        assert report.crashed is None
        assert report.ok, report.summary()
        # Non-vacuous by oracle, but pin the headline numbers too.
        assert report.kills == 1
        assert report.failovers == 1
        assert report.acked_by_phase["pre"] > 0
        assert report.acked_by_phase["post"] > 0
        assert report.stitched_families > 0
        assert report.probe_ok

    def test_storm_contract_holds_primary_only(self):
        report = HostKillStorm(hosts=3, loops=6, puts_per_loop=4,
                               value_size=600, ack_policy="primary-only",
                               seed=7).run()
        assert report.crashed is None
        assert report.ok, report.summary()
