"""Unit and property tests for the persistent-memory allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pm import AllocationError, PMAllocator, PMDevice
from repro.pm.alloc import HEADER_SIZE
from repro.sim import ExecutionContext


def make_allocator(size=1 << 16):
    dev = PMDevice(size)
    return PMAllocator(dev.region(0, size, "heap")), dev


class TestAllocFree:
    def test_alloc_returns_usable_offset(self):
        alloc, dev = make_allocator()
        off = alloc.alloc(100)
        dev.region(0, 1 << 16, "heap").write(off, b"x" * 100)
        assert alloc.usable_size(off) == 100

    def test_allocations_do_not_overlap(self):
        alloc, _ = make_allocator()
        spans = []
        for size in [10, 100, 64, 1, 255, 4096]:
            off = alloc.alloc(size)
            spans.append((off, off + size))
        spans.sort()
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_free_then_realloc_reuses_space(self):
        alloc, _ = make_allocator()
        a = alloc.alloc(128)
        alloc.free(a)
        b = alloc.alloc(128)
        assert b == a

    def test_double_free_rejected(self):
        alloc, _ = make_allocator()
        off = alloc.alloc(16)
        alloc.free(off)
        with pytest.raises(AllocationError):
            alloc.free(off)

    def test_free_of_garbage_offset_rejected(self):
        alloc, _ = make_allocator()
        with pytest.raises(AllocationError):
            alloc.free(12345)

    def test_zero_or_negative_size_rejected(self):
        alloc, _ = make_allocator()
        with pytest.raises(ValueError):
            alloc.alloc(0)
        with pytest.raises(ValueError):
            alloc.alloc(-8)

    def test_exhaustion_raises(self):
        alloc, _ = make_allocator(size=1024)
        with pytest.raises(AllocationError):
            for _ in range(100):
                alloc.alloc(128)

    def test_coalescing_allows_large_realloc(self):
        alloc, _ = make_allocator(size=4096)
        offs = [alloc.alloc(256) for _ in range(8)]
        for off in offs:
            alloc.free(off)
        # After coalescing, one big allocation must fit in the freed space.
        big = alloc.alloc(2048)
        assert big >= HEADER_SIZE

    def test_alloc_charges_cost(self):
        alloc, _ = make_allocator()
        ctx = ExecutionContext()
        alloc.alloc(64, ctx)
        assert ctx.category("pm.alloc") > 0


class TestRecovery:
    def test_live_allocations_survive_crash(self):
        size = 1 << 16
        dev = PMDevice(size)
        region = dev.region(0, size, "heap")
        alloc = PMAllocator(region)
        kept = alloc.alloc(100)
        freed = alloc.alloc(50)
        alloc.free(freed)
        dev.crash()
        alloc2 = PMAllocator.attach(dev.region(0, size, "heap"))
        live = alloc2.recover()
        assert live == [kept]

    def test_recovery_tolerates_torn_frontier(self):
        size = 1 << 16
        dev = PMDevice(size)
        region = dev.region(0, size, "heap")
        alloc = PMAllocator(region)
        committed = alloc.alloc(64)
        # Simulate a torn in-flight allocation: write garbage past the
        # heap frontier without persisting a valid header.
        dev.write(2048, b"\xff" * 32)
        dev.crash()
        alloc2 = PMAllocator.attach(dev.region(0, size, "heap"))
        assert committed in alloc2.recover()

    def test_realloc_after_recovery_does_not_clobber_live_data(self):
        size = 1 << 16
        dev = PMDevice(size)
        region = dev.region(0, size, "heap")
        alloc = PMAllocator(region)
        off = alloc.alloc(32)
        region.write(off, b"precious-data-here-for-checking!")
        region.persist(off, 32)
        dev.crash()
        alloc2 = PMAllocator.attach(dev.region(0, size, "heap"))
        alloc2.recover()
        fresh = alloc2.alloc(64)
        assert not (fresh < off + 32 and off < fresh + 64)
        assert region.read(off, 32) == b"precious-data-here-for-checking!"


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=512)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
        ),
        max_size=60,
    )
)
def test_property_no_live_overlap_under_random_ops(ops):
    """Whatever the alloc/free sequence, live allocations never overlap."""
    alloc, _ = make_allocator(size=1 << 17)
    live = {}
    for op, arg in ops:
        if op == "alloc":
            try:
                off = alloc.alloc(arg)
            except AllocationError:
                continue
            live[off] = arg
        elif live:
            keys = sorted(live)
            victim = keys[arg % len(keys)]
            alloc.free(victim)
            del live[victim]
    spans = sorted((off, off + size) for off, size in live.items())
    for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
        assert end_a <= start_b
    assert alloc.live_allocations == len(live)
