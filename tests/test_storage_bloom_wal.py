"""Unit + property tests for Bloom filters and the write-ahead log."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import ExecutionContext
from repro.storage.blockdev import BlockDevice
from repro.storage.bloom import BloomFilter
from repro.storage.wal import WriteAheadLog


class TestBloom:
    def test_added_keys_always_found(self):
        bloom = BloomFilter.for_entries(100)
        keys = [f"key-{i}".encode() for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.for_entries(1000, bits_per_key=10)
        for i in range(1000):
            bloom.add(f"present-{i}".encode())
        false_hits = sum(
            bloom.might_contain(f"absent-{i}".encode()) for i in range(2000)
        )
        # 10 bits/key gives ~1% FP; allow generous slack.
        assert false_hits / 2000 < 0.05

    def test_serialize_roundtrip(self):
        bloom = BloomFilter.for_entries(50)
        for i in range(50):
            bloom.add(bytes([i]))
        again = BloomFilter.deserialize(bloom.serialize())
        assert again.nbits == bloom.nbits
        assert again.nhashes == bloom.nhashes
        for i in range(50):
            assert again.might_contain(bytes([i]))

    def test_truncated_serialization_rejected(self):
        bloom = BloomFilter.for_entries(50)
        with pytest.raises(ValueError):
            BloomFilter.deserialize(bloom.serialize()[:10])

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 3)
        with pytest.raises(ValueError):
            BloomFilter(64, 0)

    def test_fp_estimate_grows_with_load(self):
        bloom = BloomFilter(256, 4)
        assert bloom.false_positive_rate_estimate() == 0.0
        for i in range(20):
            bloom.add(bytes([i]))
        low = bloom.false_positive_rate_estimate()
        for i in range(20, 200):
            bloom.add(bytes([i, i % 7]))
        assert bloom.false_positive_rate_estimate() > low


@settings(max_examples=50, deadline=None)
@given(keys=st.sets(st.binary(min_size=1, max_size=32), max_size=200))
def test_property_bloom_no_false_negatives(keys):
    bloom = BloomFilter.for_entries(max(1, len(keys)))
    for key in keys:
        bloom.add(key)
    assert all(bloom.might_contain(key) for key in keys)


def make_wal(size=1 << 20):
    dev = BlockDevice(1 << 21)
    return WriteAheadLog(dev, 0, size), dev


class TestWal:
    def test_append_then_replay(self):
        wal, dev = make_wal()
        records = [b"first", b"second", b"third" * 100]
        for record in records:
            wal.append(record)
        assert list(wal.replay()) == records

    def test_replay_reads_only_synced_records(self):
        wal, dev = make_wal()
        wal.append(b"durable", sync=True)
        wal.append(b"lost", sync=False)
        dev.crash()
        assert list(wal.replay()) == [b"durable"]

    def test_torn_tail_discarded(self):
        wal, dev = make_wal()
        wal.append(b"good-record")
        # Corrupt the durable image past the first record: garbage tail.
        import struct

        tail = wal.tail
        dev.write(tail, struct.pack("<II", 10, 0xDEAD) + b"corrupted!")
        dev.sync()
        replayed = list(wal.replay())
        assert replayed == [b"good-record"]

    def test_reset_truncates(self):
        wal, _ = make_wal()
        wal.append(b"one")
        wal.reset()
        assert list(wal.replay()) == []
        wal.append(b"two")
        assert list(wal.replay()) == [b"two"]

    def test_full_log_raises(self):
        wal, _ = make_wal(size=64)
        wal.append(b"x" * 30)
        with pytest.raises(IOError):
            wal.append(b"y" * 40)

    def test_append_charges_write_and_sync(self):
        wal, _ = make_wal()
        ctx = ExecutionContext()
        wal.append(b"data", ctx)
        assert ctx.category("wal.write") > 0
        assert ctx.category("wal.sync") > 0

    def test_unaligned_extent_rejected(self):
        dev = BlockDevice(1 << 20)
        with pytest.raises(ValueError):
            WriteAheadLog(dev, 100, 4096)


class TestBlockDevice:
    def test_write_read_roundtrip(self):
        dev = BlockDevice(1 << 16)
        dev.write(4096, b"block data")
        assert dev.read(4096, 10) == b"block data"

    def test_unsynced_writes_lost_on_crash(self):
        dev = BlockDevice(1 << 16)
        dev.write(0, b"volatile")
        dev.crash()
        assert dev.read(0, 8) == b"\x00" * 8

    def test_synced_writes_survive(self):
        dev = BlockDevice(1 << 16)
        dev.write(0, b"durable!")
        dev.sync()
        dev.crash()
        assert dev.read(0, 8) == b"durable!"

    def test_costs_charged_per_block(self):
        dev = BlockDevice(1 << 16)
        ctx = ExecutionContext()
        dev.write(0, bytes(8192), ctx)  # 2 blocks
        assert ctx.category("blockdev.write") == pytest.approx(2 * dev.write_ns)
        ctx2 = ExecutionContext()
        dev.read(0, 4096, ctx2)
        assert ctx2.category("blockdev.read") == pytest.approx(dev.read_ns)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            BlockDevice(1000)  # not a block multiple
        with pytest.raises(ValueError):
            BlockDevice(0)
