"""Cross-cutting property tests: parser segmentation, Homa reassembly,
PktFS model equivalence, example smoke checks."""

import importlib.util
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pktfs import PktFS, PktFSError
from repro.net.homa import _InMessage
from repro.net.http import HttpParser, build_request
from repro.net.pktbuf import PktBuf
from repro.net.pool import BufferPool
from repro.net.tcp import RxSegment
from repro.pm.device import DRAMDevice, PMDevice
from repro.pm.namespace import PMNamespace


def make_pool(slots=64):
    dev = DRAMDevice(slots * 2048)
    return BufferPool(dev.region(0, slots * 2048, "pool"), 2048)


def feed_with_splits(parser, pool, raw, cuts):
    """Feed ``raw`` split at the given offsets; return parsed messages."""
    bounds = sorted({0, len(raw), *[c % (len(raw) + 1) for c in cuts]})
    messages = []
    for start, end in zip(bounds, bounds[1:]):
        if start == end:
            continue
        chunk = raw[start:end]
        # Respect the pool's slot size like TCP segmentation would.
        for off in range(0, len(chunk), 1400):
            piece = chunk[off:off + 1400]
            pkt = PktBuf.alloc(pool, headroom=0)
            pkt.append(piece)
            seg = RxSegment(pkt, 0, len(piece))
            messages.extend(parser.feed(seg))
            seg.release()
    return messages


@settings(max_examples=60, deadline=None)
@given(
    bodies=st.lists(st.binary(min_size=0, max_size=3000), min_size=1, max_size=4),
    cuts=st.lists(st.integers(0, 10_000), max_size=8),
)
def test_property_http_parse_invariant_under_any_segmentation(bodies, cuts):
    """A pipelined request stream parses identically however TCP slices it."""
    raw = b"".join(
        build_request("PUT", f"/key-{i}", body) for i, body in enumerate(bodies)
    )
    parser = HttpParser()
    pool = make_pool(slots=256)
    messages = feed_with_splits(parser, pool, raw, cuts)
    assert len(messages) == len(bodies)
    for i, (message, body) in enumerate(zip(messages, bodies)):
        assert message.method == "PUT"
        assert message.path == f"/key-{i}"
        assert message.body == body
        message.release()
    assert pool.in_use == 0  # every packet reference released


@settings(max_examples=60, deadline=None)
@given(
    msg_len=st.integers(1, 20_000),
    arrivals=st.lists(st.integers(0, 19_999), max_size=30),
)
def test_property_homa_missing_range_finds_first_hole(msg_len, arrivals):
    """missing_range always reports the first gap, or None when complete."""
    message = _InMessage(1, 0, 0, 0, msg_len)

    class _Seg:
        def __init__(self, length):
            self.length = length

    chunk = 1000
    for arrival in arrivals:
        offset = (arrival // chunk) * chunk
        if offset >= msg_len or offset in message.segments:
            continue
        length = min(chunk, msg_len - offset)
        message.segments[offset] = _Seg(length)
        message.received += length
    hole = message.missing_range()
    covered = set()
    for offset, seg in message.segments.items():
        covered.update(range(offset, offset + seg.length))
    if len(covered) == msg_len:
        assert hole is None
    else:
        first_missing = next(i for i in range(msg_len) if i not in covered)
        assert hole is not None
        offset, length = hole
        assert offset == first_missing
        assert length >= 1
        assert all(offset + j not in covered for j in range(length))


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "unlink", "overwrite"]),
            st.integers(0, 5),
            st.binary(min_size=0, max_size=4000),
        ),
        max_size=25,
    )
)
def test_property_pktfs_matches_model_dict(ops):
    """PktFS behaves like a dict of files under arbitrary op sequences."""
    dev = PMDevice(16 << 20)
    ns = PMNamespace(dev)
    pool = BufferPool(ns.create("pages", 8 << 20), 2048)
    fs = PktFS.create(ns.create("meta", 1 << 20), pool)
    model = {}
    for op, file_id, data in ops:
        name = f"file-{file_id}"
        if op in ("write", "overwrite"):
            fs.write(name, data)
            model[name] = data
        elif name in model:
            fs.unlink(name)
            del model[name]
        else:
            with pytest.raises(PktFSError):
                fs.unlink(name)
    assert sorted(fs.list()) == sorted(model)
    for name, data in model.items():
        assert fs.read(name, verify=True) == data
    # Crash + remount: same view.
    dev.crash()
    ns2 = PMNamespace.reopen(dev)
    pool2 = BufferPool(ns2.open("pages"), 2048)
    fs2, _ = PktFS.recover(ns2.open("meta"), pool2)
    assert sorted(fs2.list()) == sorted(model)
    for name, data in model.items():
        assert fs2.read(name, verify=True) == data


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestExamplesSmoke:
    @pytest.mark.parametrize("name", [
        "quickstart", "edge_cdn", "crash_recovery",
        "pktfs_demo", "overhead_tour", "homa_transport",
    ])
    def test_example_importable_with_main(self, name):
        spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)

    def test_pktfs_demo_runs(self, capsys):
        spec = importlib.util.spec_from_file_location(
            "pktfs_demo", EXAMPLES / "pktfs_demo.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        out = capsys.readouterr().out
        assert "All files intact" in out
