"""Unit tests for the DAX-style PM namespace."""

import pytest

from repro.pm import DRAMDevice, PMDevice, PMNamespace
from repro.pm.namespace import NamespaceError


def test_create_and_open_roundtrip():
    dev = PMDevice(1 << 16)
    ns = PMNamespace(dev)
    region = ns.create("memtable", 4096)
    region.write(0, b"abc")
    again = ns.open("memtable")
    assert again.read(0, 3) == b"abc"
    assert again.base == region.base


def test_duplicate_name_rejected():
    ns = PMNamespace(PMDevice(1 << 16))
    ns.create("a", 128)
    with pytest.raises(NamespaceError):
        ns.create("a", 128)


def test_open_unknown_rejected():
    ns = PMNamespace(PMDevice(1 << 16))
    with pytest.raises(NamespaceError):
        ns.open("ghost")


def test_namespace_requires_pm():
    with pytest.raises(NamespaceError):
        PMNamespace(DRAMDevice(1 << 16))


def test_regions_do_not_overlap_directory_or_each_other():
    dev = PMDevice(1 << 16)
    ns = PMNamespace(dev)
    r1 = ns.create("one", 1000)
    r2 = ns.create("two", 1000)
    assert r1.base >= 4096
    assert r1.base + r1.size <= r2.base


def test_reopen_after_crash_finds_regions():
    dev = PMDevice(1 << 16)
    ns = PMNamespace(dev)
    region = ns.create("log", 4096)
    region.write(0, b"persist me")
    region.persist(0, 10)
    dev.crash()
    ns2 = PMNamespace.reopen(dev)
    assert ns2.names() == ["log"]
    recovered = ns2.open("log")
    assert recovered.read(0, 10) == b"persist me"


def test_reopen_without_directory_rejected():
    dev = PMDevice(1 << 16)
    with pytest.raises(NamespaceError):
        PMNamespace.reopen(dev)


def test_device_exhaustion_raises():
    dev = PMDevice(8192)
    ns = PMNamespace(dev)
    with pytest.raises(NamespaceError):
        ns.create("huge", 8192)


def test_open_or_create_idempotent():
    ns = PMNamespace(PMDevice(1 << 16))
    a = ns.open_or_create("x", 512)
    b = ns.open_or_create("x", 512)
    assert a.base == b.base


def test_remove_forgets_name():
    ns = PMNamespace(PMDevice(1 << 16))
    ns.create("tmp", 128)
    ns.remove("tmp")
    assert not ns.exists("tmp")
    with pytest.raises(NamespaceError):
        ns.remove("tmp")


def test_unpersisted_region_creation_lost_on_crash():
    # The directory itself is persisted on create, so creation survives;
    # but region *contents* written without persist do not.
    dev = PMDevice(1 << 16)
    ns = PMNamespace(dev)
    region = ns.create("data", 4096)
    region.write(0, b"volatile")
    dev.crash()
    ns2 = PMNamespace.reopen(dev)
    assert ns2.exists("data")
    assert ns2.open("data").read(0, 8) == b"\x00" * 8
