"""Unit, integration and crash-property tests for the packet store."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pktstore import PacketStore
from repro.net.pool import BufferPool
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim import ExecutionContext
from repro.storage.server import ServerConfig


def make_store(pool_slots=256, meta_bytes=1 << 20):
    dev = PMDevice((pool_slots * 2048) + meta_bytes + (1 << 16))
    ns = PMNamespace(dev)
    pool = BufferPool(ns.create("pool", pool_slots * 2048), 2048)
    store = PacketStore.create(ns.create("meta", meta_bytes), pool)
    return store, pool, dev, ns


def adopt_value(pool, payload):
    """Simulate a DMA'd request: payload lands in a pool buffer."""
    buf = pool.alloc()
    buf.write(128, payload)  # as if after headers
    return [(buf, 128, len(payload))]


class TestPutGet:
    def test_put_then_get(self):
        store, pool, _, _ = make_store()
        store.put(b"k1", adopt_value(pool, b"value-1"), 7, 1000, 0xABCD)
        store.put(b"k2", adopt_value(pool, b"value-2"), 7, 2000, 0x1234)
        assert store.get(b"k1") == b"value-1"
        assert store.get(b"k2") == b"value-2"
        assert store.get(b"nope") is None

    def test_zero_copy_no_data_movement(self):
        """The stored bytes are the adopted buffer's bytes — same slot."""
        store, pool, dev, _ = make_store()
        refs = adopt_value(pool, b"stay-put")
        buf, off, _ = refs[0]
        slot_before = buf.slot
        store.put(b"k", refs, 8, 0, 0)
        record, frags = store.get_refs(b"k")
        assert frags == [(slot_before, off, 8)]

    def test_versioning_latest_wins(self):
        store, pool, _, _ = make_store()
        store.put(b"k", adopt_value(pool, b"v1"), 2, 0, 0)
        store.put(b"k", adopt_value(pool, b"v2"), 2, 0, 0)
        assert store.get(b"k") == b"v2"
        assert store.count == 2

    def test_delete_tombstones(self):
        store, pool, _, _ = make_store()
        store.put(b"k", adopt_value(pool, b"v"), 1, 0, 0)
        store.delete(b"k")
        assert store.get(b"k") is None
        assert list(store.scan()) == []

    def test_multi_frag_value(self):
        store, pool, _, _ = make_store()
        refs = []
        expected = b""
        for i in range(3):
            chunk = bytes([65 + i]) * 100
            refs.extend(adopt_value(pool, chunk))
            expected += chunk
        store.put(b"big", refs, 300, 0, 0)
        assert store.get(b"big") == expected

    def test_frag_chain_beyond_inline_capacity(self):
        store, pool, _, _ = make_store()
        refs = []
        expected = b""
        for i in range(11):  # > 2 continuation records
            chunk = bytes([48 + i]) * 50
            refs.extend(adopt_value(pool, chunk))
            expected += chunk
        store.put(b"huge", refs, len(expected), 0, 0)
        assert store.get(b"huge") == expected
        assert store.stats["frag_chains"] == 1

    def test_scan_sorted_latest_live(self):
        store, pool, _, _ = make_store()
        for key in [b"c", b"a", b"b"]:
            store.put(key, adopt_value(pool, b"v-" + key), 3, 0, 0)
        store.delete(b"b")
        assert list(store.scan()) == [(b"a", b"v-a"), (b"c", b"v-c")]

    def test_metadata_carries_nic_timestamp_and_csum(self):
        store, pool, _, _ = make_store()
        store.put(b"k", adopt_value(pool, b"v"), 1, hw_tstamp=987654,
                  wire_csum=0x4242)
        record, _ = store.get_refs(b"k")
        assert record.hw_tstamp == 987654
        assert record.wire_csum == 0x4242

    def test_empty_key_rejected(self):
        store, pool, _, _ = make_store()
        with pytest.raises(ValueError):
            store.put(b"", adopt_value(pool, b"v"), 1, 0, 0)

    def test_costs_no_checksum_no_copy(self):
        """The §4.2 claim, enforced: no datamgmt checksum/copy charges."""
        store, pool, _, _ = make_store()
        ctx = ExecutionContext()
        store.put(b"k", adopt_value(pool, b"v" * 1024), 1024, 0, 0, ctx)
        assert ctx.category("datamgmt.checksum") == 0.0
        assert ctx.category("datamgmt.copy") == 0.0
        assert ctx.category("datamgmt.insert") > 0
        assert ctx.category("persist") > 0


class TestCrashRecovery:
    def test_contents_survive_crash(self):
        store, pool, dev, ns = make_store()
        expected = {}
        for i in range(40):
            key = f"key-{i:02d}".encode()
            value = bytes([i]) * (i + 1)
            store.put(key, adopt_value(pool, value), len(value), i, i)
            expected[key] = value
        dev.crash()
        ns2 = PMNamespace.reopen(dev)
        pool2 = BufferPool(ns2.open("pool"), 2048)
        store2, report = PacketStore.recover(ns2.open("meta"), pool2)
        assert dict(store2.scan()) == expected
        assert report.recovered == 40
        assert report.adopted_buffers == 40

    def test_unlinked_record_reclaimed(self):
        store, pool, dev, ns = make_store()
        store.put(b"committed", adopt_value(pool, b"v"), 1, 0, 0)
        # Hand-craft an in-flight insert: record persisted, never linked.
        from repro.core.ppktbuf import PPktRecord

        orphan = store.slab.alloc()
        store.slab.write_record(orphan, PPktRecord(key=b"orphan", seq=99))
        dev.crash()
        ns2 = PMNamespace.reopen(dev)
        pool2 = BufferPool(ns2.open("pool"), 2048)
        store2, report = PacketStore.recover(ns2.open("meta"), pool2)
        assert dict(store2.scan()) == {b"committed": b"v"}
        assert report.discarded_records == 1

    def test_recovered_store_accepts_new_puts(self):
        store, pool, dev, ns = make_store()
        store.put(b"old", adopt_value(pool, b"1"), 1, 0, 0)
        dev.crash()
        ns2 = PMNamespace.reopen(dev)
        pool2 = BufferPool(ns2.open("pool"), 2048)
        store2, _ = PacketStore.recover(ns2.open("meta"), pool2)
        store2.put(b"new", adopt_value(pool2, b"2"), 1, 0, 0)
        assert store2.get(b"old") == b"1"
        assert store2.get(b"new") == b"2"

    def test_recovery_does_not_reuse_adopted_buffer_slots(self):
        store, pool, dev, ns = make_store(pool_slots=8)
        for i in range(4):
            store.put(f"k{i}".encode(), adopt_value(pool, bytes([i]) * 8), 8, 0, 0)
        dev.crash()
        ns2 = PMNamespace.reopen(dev)
        pool2 = BufferPool(ns2.open("pool"), 2048)
        store2, _ = PacketStore.recover(ns2.open("meta"), pool2)
        used = {frag[0] for _k, _v in [] or []}  # noqa: placeholder
        adopted = set(store2._buffers)
        for _ in range(4):  # remaining free slots only
            buf = pool2.alloc()
            assert buf.slot not in adopted


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 99999),
    nputs=st.integers(1, 25),
)
def test_property_crash_preserves_every_completed_put(seed, nputs):
    """acked ⊆ recovered ⊆ attempted, with bit-exact values."""
    rng = random.Random(seed)
    store, pool, dev, ns = make_store()
    completed = {}
    for i in range(nputs):
        key = f"key-{rng.randrange(10)}".encode()
        value = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
        store.put(key, adopt_value(pool, value), len(value), i, i)
        completed[key] = value
    dev.crash(rng=rng)
    ns2 = PMNamespace.reopen(dev)
    pool2 = BufferPool(ns2.open("pool"), 2048)
    store2, _ = PacketStore.recover(ns2.open("meta"), pool2)
    assert dict(store2.scan()) == completed


class TestIntegrity:
    def test_wire_checksum_verifies_stored_frames(self):
        """End-to-end: store frames via the real stack, verify in place."""
        from repro.bench.testbed import make_testbed
        from repro.bench.wrk import WrkClient

        tb = make_testbed(ServerConfig(engine="pktstore"))
        wrk = WrkClient(tb.client, "10.0.0.1", connections=1,
                        duration_ns=500_000, warmup_ns=100_000)
        wrk.run()
        store = tb.engine.store
        assert store.count > 0
        # Every stored record's frames pass their embedded TCP checksum.
        cursor = store.slab.read_next(store.head_slot, 0)
        checked = 0
        while cursor:
            checked += store.verify_slot(cursor - 1)
            cursor = store.slab.read_next(cursor - 1, 0)
        assert checked > 0

    def test_pm_corruption_detected_by_wire_checksum(self):
        from repro.bench.testbed import make_testbed
        from repro.bench.wrk import WrkClient

        tb = make_testbed(ServerConfig(engine="pktstore"))
        wrk = WrkClient(tb.client, "10.0.0.1", connections=1,
                        duration_ns=500_000, warmup_ns=100_000)
        wrk.run()
        store = tb.engine.store
        first = store.slab.read_next(store.head_slot, 0) - 1
        record = store.slab.read_record(first)
        buf_slot, off, length = record.frags[0]
        # Silently corrupt one stored payload byte in PM (§4: storage
        # devices are faulty; data can corrupt silently).
        base = store.pool.region.global_offset(
            store.pool.slot_region_base(buf_slot) + off
        )
        tb.pm_device.data[base] ^= 0xFF
        with pytest.raises(IOError):
            store.verify_slot(first)
