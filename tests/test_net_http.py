"""Unit tests for the HTTP codec and incremental parser."""

import pytest

from repro.net.http import (
    HttpError,
    HttpParser,
    build_request,
    build_response,
)
from repro.net.pktbuf import PktBuf
from repro.net.pool import BufferPool
from repro.net.tcp import RxSegment
from repro.pm.device import DRAMDevice


def make_pool(slots=32):
    dev = DRAMDevice(slots * 2048)
    return BufferPool(dev.region(0, slots * 2048, "pool"), 2048)


def segments_for(pool, payload, split=None):
    """Turn a byte string into RxSegments, optionally split at offsets."""
    cuts = [0] + sorted(split or []) + [len(payload)]
    segments = []
    for start, end in zip(cuts, cuts[1:]):
        if start == end:
            continue
        pkt = PktBuf.alloc(pool, headroom=0)
        pkt.append(payload[start:end])
        segments.append(RxSegment(pkt, 0, end - start))
    return segments


class TestBuilders:
    def test_put_request_format(self):
        raw = build_request("PUT", "/key1", b"value")
        assert raw == b"PUT /key1 HTTP/1.1\r\nContent-Length: 5\r\n\r\nvalue"

    def test_get_request_has_empty_body(self):
        raw = build_request("GET", "/key1")
        assert raw.endswith(b"Content-Length: 0\r\n\r\n")

    def test_response_reason_phrases(self):
        assert b"200 OK" in build_response(200)
        assert b"404 Not Found" in build_response(404)
        assert b"500 Internal Server Error" in build_response(500)

    def test_response_extra_headers(self):
        raw = build_response(200, b"x", extra_headers={"X-Store": "pktstore"})
        assert b"X-Store: pktstore\r\n" in raw


class TestParser:
    def test_single_segment_request(self):
        pool = make_pool()
        parser = HttpParser()
        raw = build_request("PUT", "/k", b"hello")
        (seg,) = segments_for(pool, raw)
        (msg,) = parser.feed(seg)
        assert msg.method == "PUT"
        assert msg.path == "/k"
        assert msg.body == b"hello"
        msg.release()

    def test_body_spanning_segments(self):
        pool = make_pool()
        parser = HttpParser()
        raw = build_request("PUT", "/k", b"A" * 3000)
        segs = segments_for(pool, raw, split=[1460, 2920])
        messages = []
        for seg in segs:
            messages.extend(parser.feed(seg))
        assert len(messages) == 1
        assert messages[0].body == b"A" * 3000
        assert len(messages[0].body_slices) == 3

    def test_headers_spanning_segments(self):
        pool = make_pool()
        parser = HttpParser()
        raw = build_request("PUT", "/some-much-longer-key-name", b"v")
        segs = segments_for(pool, raw, split=[10, 20, 30])
        messages = []
        for seg in segs:
            messages.extend(parser.feed(seg))
        assert len(messages) == 1
        assert messages[0].path == "/some-much-longer-key-name"
        assert messages[0].body == b"v"

    def test_multiple_messages_in_one_segment(self):
        pool = make_pool()
        parser = HttpParser()
        raw = build_request("PUT", "/a", b"1") + build_request("GET", "/b")
        (seg,) = segments_for(pool, raw)
        messages = parser.feed(seg)
        assert [m.method for m in messages] == ["PUT", "GET"]
        assert messages[0].body == b"1"
        assert messages[1].content_length == 0

    def test_pipelined_boundary_mid_header(self):
        pool = make_pool()
        parser = HttpParser()
        raw = build_request("PUT", "/a", b"xx") + build_request("PUT", "/b", b"yy")
        # Split inside the second request's header block.
        split_at = len(build_request("PUT", "/a", b"xx")) + 7
        segs = segments_for(pool, raw, split=[split_at])
        messages = []
        for seg in segs:
            messages.extend(parser.feed(seg))
        assert [(m.path, m.body) for m in messages] == [("/a", b"xx"), ("/b", b"yy")]

    def test_response_parsing(self):
        pool = make_pool()
        parser = HttpParser(is_response=True)
        (seg,) = segments_for(pool, build_response(200, b"payload"))
        (msg,) = parser.feed(seg)
        assert msg.status == 200
        assert msg.body == b"payload"

    def test_malformed_request_line_raises(self):
        pool = make_pool()
        parser = HttpParser()
        (seg,) = segments_for(pool, b"NONSENSE\r\n\r\n")
        with pytest.raises(HttpError):
            parser.feed(seg)

    def test_oversized_headers_rejected(self):
        pool = make_pool()
        parser = HttpParser()
        with pytest.raises(HttpError):
            for seg in segments_for(pool, b"GET /" + b"x" * 9000, split=[2000, 4000, 6000, 8000]):
                parser.feed(seg)

    def test_body_slices_are_zero_copy_views(self):
        """Body slices reference the original packet buffers."""
        pool = make_pool()
        parser = HttpParser()
        raw = build_request("PUT", "/k", b"Z" * 100)
        (seg,) = segments_for(pool, raw)
        (msg,) = parser.feed(seg)
        buf, offset, length = msg.body_slices[0].buffer_ref()
        assert buf is seg.pktbuf.buf
        assert buf.read(offset, length) == b"Z" * 100

    def test_message_holds_packet_refs_until_release(self):
        pool = make_pool(slots=1)
        parser = HttpParser()
        raw = build_request("PUT", "/k", b"data")
        (seg,) = segments_for(pool, raw)
        (msg,) = parser.feed(seg)
        seg.release()  # the stack's reference
        assert pool.in_use == 1  # message still holds it
        msg.release()
        assert pool.in_use == 0

    def test_zero_length_body_put(self):
        pool = make_pool()
        parser = HttpParser()
        (seg,) = segments_for(pool, build_request("PUT", "/empty", b""))
        (msg,) = parser.feed(seg)
        assert msg.content_length == 0
        assert msg.body == b""
