"""Calibration tests: the reproduction must match the paper's shape.

These are the acceptance tests of the whole reproduction: Table 1's
rows and Figure 2's penalty bands, plus the §4.2 projection that the
packet-native store eliminates the checksum and copy rows.  Tolerances
are deliberately loose on individual fitted rows and tight on the
headline structure (who wins, by roughly what factor).
"""

import pytest

from repro.bench.figure2 import measure_point
from repro.bench.table1 import PAPER, run_table1
from repro.bench.testbed import make_testbed
from repro.bench.wrk import WrkClient
from repro.storage.server import ServerConfig


@pytest.fixture(scope="module")
def table1():
    return run_table1(duration_ns=2_000_000, warmup_ns=400_000)


class TestTable1(object):
    def test_networking_rtt(self, table1):
        assert table1.networking == pytest.approx(PAPER["networking"], rel=0.10)

    def test_request_preparation(self, table1):
        assert table1.prep == pytest.approx(PAPER["prep"], rel=0.25)

    def test_checksum(self, table1):
        assert table1.checksum == pytest.approx(PAPER["checksum"], rel=0.25)

    def test_copy(self, table1):
        assert table1.copy == pytest.approx(PAPER["copy"], rel=0.25)

    def test_alloc_insert(self, table1):
        assert table1.alloc_insert == pytest.approx(PAPER["alloc_insert"], rel=0.35)

    def test_datamgmt_sum(self, table1):
        assert table1.datamgmt == pytest.approx(PAPER["datamgmt"], rel=0.20)

    def test_persistence(self, table1):
        assert table1.persistence == pytest.approx(PAPER["persistence"], rel=0.25)

    def test_total(self, table1):
        assert table1.total == pytest.approx(PAPER["total"], rel=0.10)

    def test_rows_sum_to_total(self, table1):
        reconstructed = table1.networking + table1.datamgmt + table1.persistence
        assert reconstructed == pytest.approx(table1.total, rel=0.05)


class TestFigure2Shape:
    """One mid-sweep point (n=25): the full sweep runs in benchmarks/."""

    @pytest.fixture(scope="class")
    def points(self):
        raw = measure_point("rawpm", 25, base_duration_ns=4_000_000,
                            base_warmup_ns=1_200_000)
        nov = measure_point("novelsm", 25, base_duration_ns=4_000_000,
                            base_warmup_ns=1_200_000)
        return raw, nov

    def test_novelsm_is_slower(self, points):
        raw, nov = points
        assert nov.avg_rtt_us > raw.avg_rtt_us
        assert nov.throughput_krps < raw.throughput_krps

    def test_latency_penalty_in_paper_band(self, points):
        raw, nov = points
        penalty = (nov.avg_rtt_us / raw.avg_rtt_us - 1) * 100
        assert 11.0 <= penalty <= 50.0  # paper: 11-41 %, slack for the fit

    def test_throughput_penalty_in_paper_band(self, points):
        raw, nov = points
        penalty = (1 - nov.throughput_krps / raw.throughput_krps) * 100
        assert 9.0 <= penalty <= 35.0  # paper: 9-28 %, slack for the fit

    def test_queueing_dominates_at_concurrency(self, points):
        """At 25 connections, RTT is far above the single-request RTT."""
        raw, _ = points
        assert raw.avg_rtt_us > 5 * 29.0


class TestProposalProjection:
    """§4.2: the packet-native store removes checksum/copy/alloc costs."""

    @pytest.fixture(scope="class")
    def rtts(self):
        out = {}
        for engine in ("novelsm", "pktstore"):
            testbed = make_testbed(ServerConfig(engine=engine))
            wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                            duration_ns=2_000_000, warmup_ns=400_000)
            stats = wrk.run()
            out[engine] = (stats.avg_rtt_us, testbed)
        return out

    def test_pktstore_beats_novelsm(self, rtts):
        assert rtts["pktstore"][0] < rtts["novelsm"][0]

    def test_savings_at_least_checksum_plus_copy(self, rtts):
        """The paper names 1.77 (checksum) + 1.14 (copy) µs as reclaimable;
        the packet-native design should save at least that."""
        saving = rtts["novelsm"][0] - rtts["pktstore"][0]
        assert saving >= 1.77 + 1.14

    def test_pktstore_still_pays_persistence(self, rtts):
        _, testbed = rtts["pktstore"]
        acct = testbed.server.accounting
        assert acct.category("persist") > 0
