"""TCP integration tests: two hosts over the simulated fabric.

These exercise the full path — socket → TCP → IP → NIC → fabric →
NIC → demux → socket — including handshake, segmentation, reassembly,
loss recovery, reordering, duplication, corruption and teardown.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.costmodel import CostModel
from repro.net.fabric import Fabric, LinkFaults
from repro.net.stack import Host
from repro.net.tcp import TcpState
from repro.sim.engine import Simulator


def make_pair(faults=None, client_features=None, server_features=None):
    sim = Simulator()
    fabric = Fabric(sim, faults=faults)
    server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(), cores=1,
                  nic_features=server_features)
    client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel(), cores=2,
                  nic_features=client_features)
    return sim, server, client


class Collector:
    """Accumulates delivered bytes on the server side."""

    def __init__(self):
        self.data = bytearray()
        self.socks = []
        self.closed = 0

    def on_accept(self, sock, ctx):
        self.socks.append(sock)
        sock.on_data = self.on_data
        sock.on_close = lambda s: self._close()

    def on_data(self, sock, segment, ctx):
        self.data.extend(segment.bytes())

    def _close(self):
        self.closed += 1


def transfer(payload, faults=None, echo=False):
    """Send ``payload`` client->server; return (collector, client_sock, sim)."""
    sim, server, client = make_pair(faults=faults)
    collector = Collector()
    server.stack.listen(7000, collector.on_accept)

    state = {}

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", 7000, ctx)
        state["sock"] = sock

        def on_established(s, c):
            s.send(payload, c)

        sock.on_established = on_established

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle(max_events=2_000_000)
    return collector, state["sock"], sim, server, client


class TestHandshakeAndTransfer:
    def test_small_transfer(self):
        collector, sock, sim, _, _ = transfer(b"hello over tcp")
        assert bytes(collector.data) == b"hello over tcp"
        assert sock.state is TcpState.ESTABLISHED

    def test_multi_segment_transfer(self):
        payload = bytes(i % 251 for i in range(50_000))
        collector, sock, _, _, _ = transfer(payload)
        assert bytes(collector.data) == payload

    def test_exact_mss_boundary(self):
        payload = b"x" * (1460 * 3)
        collector, _, _, _, _ = transfer(payload)
        assert bytes(collector.data) == payload

    def test_empty_connect_then_close(self):
        sim, server, client = make_pair()
        collector = Collector()
        server.stack.listen(7000, collector.on_accept)
        holder = {}

        def start(ctx):
            holder["sock"] = client.stack.connect("10.0.0.1", 7000, ctx)

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert holder["sock"].state is TcpState.ESTABLISHED
        client.process_on_core(
            client.cpus[0], lambda ctx: holder["sock"].close(ctx)
        )
        sim.run_until_idle()
        # Server app saw the close; half-closed until it closes too.
        assert collector.closed == 1
        assert holder["sock"].state is TcpState.FIN_WAIT_2
        server.process_on_core(
            server.cpus[0], lambda ctx: collector.socks[0].close(ctx)
        )
        sim.run_until_idle()
        assert holder["sock"].state is TcpState.CLOSED

    def test_bidirectional_echo(self):
        sim, server, client = make_pair()
        received_back = bytearray()

        def on_accept(sock, ctx):
            sock.on_data = lambda s, seg, c: s.send(seg.bytes().upper(), c)

        server.stack.listen(7000, on_accept)

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 7000, ctx)
            sock.on_data = lambda s, seg, c: received_back.extend(seg.bytes())
            sock.on_established = lambda s, c: s.send(b"make me loud", c)

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert bytes(received_back) == b"MAKE ME LOUD"

    def test_syn_to_closed_port_gets_rst(self):
        sim, server, client = make_pair()
        events = []

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 4242, ctx)  # nobody listens
            sock.on_reset = lambda s: events.append("reset")

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert events == ["reset"]

    def test_connection_count_tracks_teardown(self):
        sim, server, client = make_pair()
        collector = Collector()
        server.stack.listen(7000, collector.on_accept)
        holder = {}
        client.process_on_core(
            client.cpus[0],
            lambda ctx: holder.update(sock=client.stack.connect("10.0.0.1", 7000, ctx)),
        )
        sim.run_until_idle()
        assert server.stack.connection_count() == 1
        client.process_on_core(client.cpus[0], lambda ctx: holder["sock"].close(ctx))
        sim.run_until_idle()
        server.process_on_core(
            server.cpus[0], lambda ctx: collector.socks[0].close(ctx)
        )
        sim.run_until_idle()
        # FINs exchanged both ways; TIME_WAIT expires; tables drain.
        assert client.stack.connection_count() == 0
        assert server.stack.connection_count() == 0


class TestZeroCopySend:
    def test_send_buffer_transmits_frag_payload(self):
        sim, server, client = make_pair()
        collector = Collector()
        server.stack.listen(7000, collector.on_accept)

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 7000, ctx)

            def on_established(s, c):
                buf = client.tx_pool.alloc()
                buf.write(100, b"zero-copy payload")
                s.send_buffer(buf, 100, 17, c)
                buf.put()  # the connection holds its own references

            sock.on_established = on_established

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert bytes(collector.data) == b"zero-copy payload"

    def test_send_buffer_refcounts_released_after_ack(self):
        sim, server, client = make_pair()
        collector = Collector()
        server.stack.listen(7000, collector.on_accept)
        pool = client.tx_pool
        baseline = pool.in_use

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 7000, ctx)

            def on_established(s, c):
                buf = pool.alloc()
                buf.write(0, b"q" * 2000)
                s.send_buffer(buf, 0, 1000, c)
                s.send_buffer(buf, 1000, 1000, c)
                buf.put()

            sock.on_established = on_established

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert bytes(collector.data) == b"q" * 2000
        # Everything ACKed: clones released, buffer back in the pool.
        assert pool.in_use == baseline


class TestFaultTolerance:
    def test_loss_recovery(self):
        payload = bytes(i % 256 for i in range(30_000))
        faults = LinkFaults(random.Random(42), loss=0.05)
        collector, _, _, server, client = transfer(payload, faults=faults)
        assert bytes(collector.data) == payload
        assert faults.dropped > 0

    def test_heavy_loss_recovery(self):
        payload = bytes(i % 256 for i in range(8_000))
        faults = LinkFaults(random.Random(1), loss=0.25)
        collector, _, _, _, _ = transfer(payload, faults=faults)
        assert bytes(collector.data) == payload

    def test_reordering_recovery_uses_ooo_queue(self):
        payload = bytes(i % 256 for i in range(40_000))
        faults = LinkFaults(random.Random(7), reorder=0.3, reorder_delay_ns=200_000)
        collector, _, _, server, _ = transfer(payload, faults=faults)
        assert bytes(collector.data) == payload
        ooo = sum(c.stats["ooo_queued"]
                  for c in server.stack._connections.values())
        assert ooo > 0

    def test_duplication_tolerated(self):
        payload = bytes(i % 256 for i in range(20_000))
        faults = LinkFaults(random.Random(3), duplicate=0.2)
        collector, _, _, _, _ = transfer(payload, faults=faults)
        assert bytes(collector.data) == payload

    def test_corruption_detected_and_recovered(self):
        """Flipped bits on the wire never reach the application."""
        payload = bytes(i % 256 for i in range(20_000))
        faults = LinkFaults(random.Random(5), corrupt=0.1)
        collector, _, _, server, client = transfer(payload, faults=faults)
        assert bytes(collector.data) == payload
        bad = server.nic.stats["rx_bad_csum"] + client.nic.stats["rx_bad_csum"]
        assert bad > 0

    def test_combined_chaos(self):
        payload = bytes((i * 7) % 256 for i in range(25_000))
        faults = LinkFaults(
            random.Random(11), loss=0.05, reorder=0.1, duplicate=0.05, corrupt=0.03
        )
        collector, _, _, _, _ = transfer(payload, faults=faults)
        assert bytes(collector.data) == payload


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    loss=st.floats(0.0, 0.2),
    reorder=st.floats(0.0, 0.3),
    duplicate=st.floats(0.0, 0.15),
    corrupt=st.floats(0.0, 0.08),
    size=st.integers(1, 20_000),
)
def test_property_stream_integrity_under_arbitrary_faults(
    seed, loss, reorder, duplicate, corrupt, size
):
    """TCP delivers exactly the sent byte stream whatever the link does."""
    payload = bytes((i * 13 + seed) % 256 for i in range(size))
    faults = LinkFaults(
        random.Random(seed), loss=loss, reorder=reorder,
        duplicate=duplicate, corrupt=corrupt,
    )
    collector, _, _, _, _ = transfer(payload, faults=faults)
    assert bytes(collector.data) == payload


class TestSoftwareChecksumPath:
    def test_transfer_without_offloads(self):
        from repro.net.nic import NicFeatures

        sim, server, client = make_pair(
            client_features=NicFeatures(tx_csum_offload=False, rx_csum_offload=False,
                                        hw_timestamps=False),
            server_features=NicFeatures(tx_csum_offload=False, rx_csum_offload=False,
                                        hw_timestamps=False),
        )
        collector = Collector()
        server.stack.listen(7000, collector.on_accept)

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 7000, ctx)
            sock.on_established = lambda s, c: s.send(b"software csum", c)

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert bytes(collector.data) == b"software csum"
        # The software path must have charged checksum CPU time.
        assert server.accounting.category("net.csum") > 0
