"""Unit + crash tests for the packet-metadata file system."""

import pytest

from repro.core.pktfs import PktFS, PktFSError
from repro.net.checksum import crc32c
from repro.net.http import HttpParser, build_request
from repro.net.pktbuf import PktBuf
from repro.net.pool import BufferPool
from repro.net.tcp import RxSegment
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace


def make_fs(pool_slots=128, meta_bytes=1 << 20):
    dev = PMDevice(pool_slots * 2048 + meta_bytes + (1 << 16))
    ns = PMNamespace(dev)
    pool = BufferPool(ns.create("pages", pool_slots * 2048), 2048)
    fs = PktFS.create(ns.create("meta", meta_bytes), pool)
    return fs, pool, dev, ns


def http_message(pool, name, body):
    """Build a parsed HTTP message whose body sits in pool buffers."""
    parser = HttpParser()
    raw = build_request("PUT", f"/{name}", body)
    messages = []
    offset = 0
    while offset < len(raw):
        chunk = raw[offset:offset + 1400]
        pkt = PktBuf.alloc(pool, headroom=0)
        pkt.append(chunk)
        pkt.hw_tstamp = 123456.0
        seg = RxSegment(pkt, 0, len(chunk))
        messages.extend(parser.feed(seg))
        seg.release()
        offset += 1400
    assert len(messages) == 1
    return messages[0]


class TestWriteRead:
    def test_write_then_read(self):
        fs, _, _, _ = make_fs()
        fs.write("motd", b"hello filesystem")
        assert fs.read("motd") == b"hello filesystem"

    def test_read_missing_raises(self):
        fs, _, _, _ = make_fs()
        with pytest.raises(PktFSError):
            fs.read("ghost")

    def test_multi_page_file(self):
        fs, _, _, _ = make_fs()
        data = bytes(i % 256 for i in range(9000))  # 5 pages
        fs.write("big", data)
        assert fs.read("big") == data
        assert fs.stat("big").nextents == 5

    def test_overwrite_replaces(self):
        fs, pool, _, _ = make_fs()
        fs.write("f", b"old contents")
        fs.write("f", b"new")
        assert fs.read("f") == b"new"
        assert fs.list().count("f") == 1

    def test_list_and_exists(self):
        fs, _, _, _ = make_fs()
        for name in ["a", "b", "c"]:
            fs.write(name, name.encode())
        assert sorted(fs.list()) == ["a", "b", "c"]
        assert fs.exists("b")
        assert not fs.exists("z")

    def test_stat_reports_size_and_checksum(self):
        fs, _, _, _ = make_fs()
        data = b"check me please"
        fs.write("f", data, mtime=777)
        st = fs.stat("f")
        assert st.size == len(data)
        assert st.checksum == crc32c(data)
        assert st.mtime == 777

    def test_read_verify_detects_corruption(self):
        fs, pool, dev, _ = make_fs()
        fs.write("f", b"precious-bytes")
        assert fs.read("f", verify=True) == b"precious-bytes"
        pos = bytes(dev.data).find(b"precious-bytes")
        dev.data[pos] ^= 0x10
        with pytest.raises(PktFSError):
            fs.read("f", verify=True)

    def test_unlink_frees_everything(self):
        fs, pool, _, _ = make_fs()
        fs.write("f", b"x" * 5000)
        pages_used = pool.in_use
        records_used = fs.slab.used
        fs.unlink("f")
        assert pool.in_use < pages_used
        assert fs.slab.used < records_used
        assert not fs.exists("f")
        with pytest.raises(PktFSError):
            fs.unlink("f")


class TestIngest:
    def test_ingest_from_http_message_zero_copy(self):
        fs, pool, _, _ = make_fs()
        body = bytes(i % 251 for i in range(3000))
        message = http_message(pool, "upload.bin", body)
        fs.ingest("upload.bin", message)
        message.release()
        assert fs.read("upload.bin") == body
        # Extents reference the original rx buffers — no new pages were
        # allocated for data (only what the message arrived in remains).
        st = fs.stat("upload.bin")
        assert st.nextents == len(fs.extent_refs("upload.bin"))

    def test_ingest_records_nic_timestamp(self):
        fs, pool, _, _ = make_fs()
        message = http_message(pool, "f", b"data")
        fs.ingest("f", message)
        message.release()
        assert fs.stat("f").mtime == 123456

    def test_ingest_checksum_matches_content(self):
        fs, pool, _, _ = make_fs()
        body = b"payload under checksum"
        message = http_message(pool, "f", body)
        fs.ingest("f", message)
        message.release()
        assert fs.stat("f").checksum == crc32c(body)
        assert fs.read("f", verify=True) == body


class TestCrashRecovery:
    def test_files_survive_crash(self):
        fs, pool, dev, ns = make_fs()
        expected = {}
        for i in range(12):
            name, data = f"file-{i}", bytes([i]) * (500 * (i + 1) % 4000 + 10)
            fs.write(name, data)
            expected[name] = data
        dev.crash()
        ns2 = PMNamespace.reopen(dev)
        pool2 = BufferPool(ns2.open("pages"), 2048)
        fs2, report = PktFS.recover(ns2.open("meta"), pool2)
        assert report.recovered == 12
        for name, data in expected.items():
            assert fs2.read(name) == data

    def test_unlinked_files_stay_gone_after_crash(self):
        fs, pool, dev, ns = make_fs()
        fs.write("keep", b"1")
        fs.write("drop", b"2")
        fs.unlink("drop")
        dev.crash()
        ns2 = PMNamespace.reopen(dev)
        pool2 = BufferPool(ns2.open("pages"), 2048)
        fs2, _ = PktFS.recover(ns2.open("meta"), pool2)
        assert fs2.list() == ["keep"]

    def test_recovered_fs_supports_all_operations(self):
        fs, pool, dev, ns = make_fs()
        fs.write("a", b"alpha")
        dev.crash()
        ns2 = PMNamespace.reopen(dev)
        pool2 = BufferPool(ns2.open("pages"), 2048)
        fs2, _ = PktFS.recover(ns2.open("meta"), pool2)
        fs2.write("b", b"beta")
        fs2.unlink("a")
        assert fs2.list() == ["b"]
        assert fs2.read("b") == b"beta"


class TestZeroCopyServe:
    def test_send_file_over_real_stack(self):
        """Write a file into PktFS, then serve it zero-copy over TCP."""
        from repro.bench.costmodel import CostModel
        from repro.net.fabric import Fabric
        from repro.net.stack import Host
        from repro.sim.engine import Simulator

        sim = Simulator()
        fabric = Fabric(sim)
        pm = PMDevice(32 << 20, name="pm")
        ns = PMNamespace(pm)
        server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(),
                      rx_pool_region=ns.create("rx", 4 << 20))
        client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel())

        # Server-side file system over its own PM pool.
        pages = BufferPool(ns.create("pages", 4 << 20), 2048)
        fs = PktFS.create(ns.create("meta", 1 << 20), pages)
        content = bytes(i % 256 for i in range(6000))
        fs.write("video.bin", content)

        def on_accept(sock, ctx):
            fs.send_file("video.bin", sock, ctx)

        server.stack.listen(80, on_accept)
        received = bytearray()

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 80, ctx)
            sock.on_data = lambda s, seg, c: received.extend(seg.bytes())

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        assert bytes(received) == content
