"""Unit + integration tests for SSTables and the LSM store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pm.device import DRAMDevice, PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim import ExecutionContext
from repro.storage.blockdev import BlockDevice
from repro.storage.lsm import leveldb_store, novelsm_store
from repro.storage.sstable import SSTable, SSTableBuilder, SSTableError


def build_table(entries, device=None, base=0):
    device = device or BlockDevice(1 << 22)
    builder = SSTableBuilder()
    for key, value, tombstone in entries:
        builder.add(key, value, tombstone)
    return SSTable.write(device, base, builder), device


class TestSSTable:
    def test_build_and_get(self):
        entries = [(f"k{i:04d}".encode(), f"v{i}".encode(), False) for i in range(100)]
        table, _ = build_table(entries)
        assert table.nentries == 100
        assert table.get(b"k0042") == (True, b"v42")
        assert table.get(b"k9999") == (False, None)

    def test_unsorted_keys_rejected(self):
        builder = SSTableBuilder()
        builder.add(b"b", b"1")
        with pytest.raises(SSTableError):
            builder.add(b"a", b"2")
        with pytest.raises(SSTableError):
            builder.add(b"b", b"dup")

    def test_tombstones_stored(self):
        table, _ = build_table([(b"dead", b"", True), (b"live", b"v", False)])
        assert table.get(b"dead") == (True, None)
        assert table.get(b"live") == (True, b"v")

    def test_multi_block_layout_and_iteration(self):
        entries = [(f"k{i:05d}".encode(), b"x" * 200, False) for i in range(200)]
        table, _ = build_table(entries)
        assert len(table._index) > 1
        assert [k for k, _v, _t in table.entries()] == [e[0] for e in entries]

    def test_get_before_first_key(self):
        table, _ = build_table([(b"m", b"v", False)])
        assert table.get(b"a") == (False, None)

    def test_key_range(self):
        entries = [(f"k{i:03d}".encode(), b"v", False) for i in range(50)]
        table, _ = build_table(entries)
        assert table.key_range() == (b"k000", b"k049")

    def test_block_crc_detects_corruption(self):
        entries = [(f"k{i:04d}".encode(), b"val" * 50, False) for i in range(100)]
        table, device = build_table(entries)
        # Flip a byte inside the first data block.
        device.data[5] ^= 0xFF
        device.durable[5] ^= 0xFF
        with pytest.raises(SSTableError):
            table.get(b"k0000")

    def test_footer_crc_detects_corruption(self):
        entries = [(b"k", b"v", False)]
        table, device = build_table(entries)
        device.data[table.length - 10] ^= 0xFF
        with pytest.raises(SSTableError):
            SSTable(device, 0, table.length)

    def test_bloom_filter_skips_absent_keys_without_reads(self):
        entries = [(f"k{i:04d}".encode(), b"v", False) for i in range(500)]
        table, device = build_table(entries)
        reads_before = device.reads
        misses = sum(
            table.get(f"zz{i}".encode()) == (False, None) for i in range(200)
        )
        assert misses == 200
        # The bloom filter should have answered nearly all of them.
        assert device.reads - reads_before < 20

    def test_read_charges_block_latency(self):
        entries = [(b"key", b"value", False)]
        table, device = build_table(entries)
        ctx = ExecutionContext()
        table.get(b"key", ctx)
        assert ctx.category("sstable.read") >= device.read_ns


def make_novelsm():
    dev = PMDevice(64 << 20)
    ns = PMNamespace(dev)
    return novelsm_store(ns, arena_size=16 << 20), dev


def make_leveldb():
    dram = DRAMDevice(64 << 20)
    blockdev = BlockDevice(128 << 20)
    return leveldb_store(dram, blockdev, arena_size=8 << 20,
                         memtable_limit=64 << 10), blockdev


class TestLSMStore:
    def test_put_get_roundtrip(self):
        store, _ = make_novelsm()
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        assert store.get(b"a") == b"1"
        assert store.get(b"missing") is None

    def test_overwrite_and_delete(self):
        store, _ = make_novelsm()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        store.delete(b"k")
        assert store.get(b"k") is None

    def test_scan_merges_correctly(self):
        store, _ = make_novelsm()
        for i in range(20):
            store.put(f"k{i:02d}".encode(), str(i).encode())
        store.delete(b"k05")
        store.put(b"k07", b"updated")
        result = dict(store.scan())
        assert b"k05" not in result
        assert result[b"k07"] == b"updated"
        assert len(result) == 19

    def test_rotation_flushes_to_sstable(self):
        store, _ = make_leveldb()
        value = b"x" * 1000
        for i in range(100):  # 100 KB > 64 KB memtable limit
            store.put(f"key-{i:04d}".encode(), value)
        assert store.stats["rotations"] >= 1
        assert sum(len(level) for level in store.levels) >= 1
        for i in range(100):
            assert store.get(f"key-{i:04d}".encode()) == value

    def test_reads_cross_memtable_and_tables(self):
        store, _ = make_leveldb()
        store.put(b"old", b"in-sstable")
        store.rotate()
        store.put(b"new", b"in-memtable")
        assert store.get(b"old") == b"in-sstable"
        assert store.get(b"new") == b"in-memtable"

    def test_newer_version_wins_across_levels(self):
        store, _ = make_leveldb()
        store.put(b"k", b"v-old")
        store.rotate()
        store.put(b"k", b"v-new")
        store.rotate()
        assert store.get(b"k") == b"v-new"

    def test_compaction_preserves_contents(self):
        store, _ = make_leveldb()
        expected = {}
        for round_no in range(6):
            for i in range(30):
                key = f"key-{i:03d}".encode()
                value = f"r{round_no}-{i}".encode()
                store.put(key, value)
                expected[key] = value
            store.rotate()
        store.compact_l0()
        assert store.stats["compactions"] >= 1
        assert len(store.levels[0]) == 0
        for key, value in expected.items():
            assert store.get(key) == value

    def test_compaction_drops_tombstones(self):
        store, _ = make_leveldb()
        store.put(b"gone", b"v")
        store.rotate()
        store.delete(b"gone")
        store.rotate()
        store.compact_l0()
        assert store.get(b"gone") is None
        for level in store.levels[1:]:
            for table in level:
                for key, _value, tombstone in table.entries():
                    assert not tombstone

    def test_leveldb_wal_recovery(self):
        store, blockdev = make_leveldb()
        store.put(b"acked-1", b"v1")
        store.put(b"acked-2", b"v2")
        blockdev.crash()
        store.recover()
        assert store.get(b"acked-1") == b"v1"
        assert store.get(b"acked-2") == b"v2"

    def test_leveldb_recovery_after_rotation(self):
        store, blockdev = make_leveldb()
        store.put(b"flushed", b"in-table")
        store.rotate()
        store.put(b"logged", b"in-wal")
        blockdev.crash()
        store.recover()
        assert store.get(b"flushed") == b"in-table"
        assert store.get(b"logged") == b"in-wal"

    def test_novelsm_recovery_without_log(self):
        store, dev = make_novelsm()
        for i in range(30):
            store.put(f"k{i}".encode(), f"v{i}".encode())
        dev.crash()
        store.recover()
        for i in range(30):
            assert store.get(f"k{i}".encode()) == f"v{i}".encode()

    def test_novelsm_charges_pm_persist_leveldb_charges_wal(self):
        novelsm, _ = make_novelsm()
        leveldb, _ = make_leveldb()
        nctx, lctx = ExecutionContext(), ExecutionContext()
        novelsm.put(b"k", b"v" * 512, nctx)
        leveldb.put(b"k", b"v" * 512, lctx)
        assert nctx.category("persist") > 0
        assert nctx.category("wal.sync") == 0
        assert lctx.category("wal.sync") > 0


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "del", "rotate"]),
            st.integers(0, 15),
            st.binary(min_size=0, max_size=40),
        ),
        max_size=40,
    )
)
def test_property_lsm_model_equivalence(ops):
    """LSM == dict regardless of rotations interleaved with ops."""
    store, _ = make_leveldb()
    model = {}
    for op, key_id, value in ops:
        key = f"key-{key_id:02d}".encode()
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "del":
            store.delete(key)
            model.pop(key, None)
        elif store.memtable.count > 0:
            store.rotate()
    for key, value in model.items():
        assert store.get(key) == value
    live = sorted(model.items())
    assert list(store.scan()) == live


class TestDeepCompaction:
    def test_cascade_populates_deeper_levels(self):
        store, _ = make_leveldb()
        store.level1_table_bytes = 8 << 10  # tiny budgets force cascades
        expected = {}
        for round_no in range(12):
            for i in range(40):
                # All-distinct keys so merged volume exceeds L1's budget.
                key = f"key-{round_no:02d}-{i:03d}".encode()
                value = bytes([round_no + 1]) * 400
                store.put(key, value)
                expected[key] = value
            store.rotate()
        store.compact_l0()
        deep_tables = sum(len(level) for level in store.levels[2:])
        assert deep_tables > 0, "cascade never reached level 2"
        for key, value in expected.items():
            assert store.get(key) == value

    def test_tombstone_survives_intermediate_level(self):
        """A tombstone must keep hiding older versions that live deeper."""
        store, _ = make_leveldb()
        store.put(b"k", b"ancient")
        store.rotate()
        store.compact_level(0)   # value now in L1
        store.compact_level(1)   # value now in L2
        store.delete(b"k")
        store.rotate()           # tombstone in L0
        store.compact_level(0)   # tombstone merges into L1; L2 still has data
        assert store.get(b"k") is None
        store.compact_level(1)   # now it meets the value and both die
        assert store.get(b"k") is None

    def test_compacting_deepest_level_rejected(self):
        store, _ = make_leveldb()
        with pytest.raises(ValueError):
            store.compact_level(6)

    def test_recovery_restores_deep_levels(self):
        store, blockdev = make_leveldb()
        store.level1_table_bytes = 8 << 10
        for round_no in range(8):
            for i in range(30):
                store.put(f"key-{i:03d}".encode(), bytes([round_no]) * 300)
            store.rotate()
        store.compact_l0()
        layout_before = [len(level) for level in store.levels]
        blockdev.crash()
        store.recover()
        assert [len(level) for level in store.levels] == layout_before
        assert store.get(b"key-000") == bytes([7]) * 300
