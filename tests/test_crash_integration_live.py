"""Live-simulation crash scheduling: the full testbed on a recording
device, stopped at an exact persistence-event boundary.

The probabilistic integration tests (test_integration_crash.py) stop
the world at wall-clock instants; here the crash point is pinned to the
persistence-event sequence via ``run_until_persistence_events``, so a
given (seed, target) pair always crashes the server at the same
protocol step — reproducible by construction.
"""

import random

import pytest

from repro.bench.testbed import PM_BYTES, make_testbed
from repro.core.pktstore import PacketStore
from repro.net.pool import BufferPool
from repro.pm.namespace import PMNamespace
from repro.testing import RecordingPMDevice, run_until_persistence_events

from tests.test_integration_crash import TrackingClient
from repro.storage.server import ServerConfig


def build_recording_testbed():
    device = RecordingPMDevice(PM_BYTES, name="optane-rec")
    testbed = make_testbed(ServerConfig(engine="pktstore"), pm_device=device)
    device._clock = lambda: testbed.sim.now
    return testbed, device


def recover(device):
    ns = PMNamespace.reopen(device)
    pool = BufferPool(ns.open("paste-pktbufs"), 2048)
    return PacketStore.recover(ns.open("pktstore-meta"), pool)


@pytest.mark.parametrize("target_events", [120, 350, 550])
def test_crash_pinned_to_persistence_event_boundary(target_events):
    testbed, device = build_recording_testbed()
    client = TrackingClient(testbed, total=60)
    client.start()

    stopped_at = run_until_persistence_events(
        testbed.sim, device, target_events, until=50_000_000
    )
    assert stopped_at >= target_events

    device.crash(rng=random.Random(target_events))
    store, report = recover(device)
    recovered = dict(store.scan())
    for key, value in client.acked.items():
        assert recovered.get(key) == value, f"acked {key!r} lost or torn"
    for key, value in recovered.items():
        assert client.attempted.get(key) == value
    assert report.recovered == len(
        {r.key for r in store.versions()}
    )


def test_event_pinned_stop_is_deterministic():
    def run_once():
        testbed, device = build_recording_testbed()
        client = TrackingClient(testbed, total=40)
        client.start()
        stopped = run_until_persistence_events(
            testbed.sim, device, 300, until=50_000_000
        )
        return stopped, testbed.sim.now, sorted(client.acked)

    assert run_once() == run_once()


def test_stop_does_not_warp_clock_to_until():
    """Stopping early must leave ``sim.now`` at the stop event, not at
    the ``until`` horizon — later phases resume from the true time."""
    testbed, device = build_recording_testbed()
    client = TrackingClient(testbed, total=30)
    client.start()
    run_until_persistence_events(testbed.sim, device, 100, until=50_000_000)
    assert testbed.sim.now < 50_000_000


def test_trace_event_times_follow_sim_clock():
    testbed, device = build_recording_testbed()
    client = TrackingClient(testbed, total=20)
    client.start()
    run_until_persistence_events(testbed.sim, device, 200, until=50_000_000)
    times = [e.time for e in device.trace if e.time is not None]
    assert times, "recording device should stamp events with sim time"
    assert times == sorted(times)
