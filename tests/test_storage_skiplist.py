"""Unit + property + crash tests for the region skip list (memtable)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.pm.device import DRAMDevice, PMDevice
from repro.sim import ExecutionContext
from repro.storage.skiplist import RegionSkipList, SkipListCorruption


def fresh(pm=True, size=1 << 20, seed=1):
    dev = PMDevice(size) if pm else DRAMDevice(size)
    slist = RegionSkipList.create(dev.region(0, size, "mt"), seed=seed)
    return slist, dev


class TestBasicOps:
    def test_insert_then_get(self):
        slist, _ = fresh()
        slist.insert(b"alpha", b"1")
        slist.insert(b"beta", b"2")
        assert slist.get(b"alpha") == (True, b"1")
        assert slist.get(b"beta") == (True, b"2")
        assert slist.get(b"gamma") == (False, None)

    def test_update_returns_latest_version(self):
        slist, _ = fresh()
        slist.insert(b"k", b"old")
        slist.insert(b"k", b"new")
        assert slist.get(b"k") == (True, b"new")
        assert slist.count == 2  # both versions retained (LSM semantics)

    def test_delete_is_tombstone(self):
        slist, _ = fresh()
        slist.insert(b"k", b"v")
        slist.delete(b"k")
        assert slist.get(b"k") == (True, None)
        assert list(slist.scan()) == []

    def test_empty_key_rejected(self):
        slist, _ = fresh()
        with pytest.raises(ValueError):
            slist.insert(b"", b"v")

    def test_scan_is_sorted_latest_live(self):
        slist, _ = fresh()
        for key, value in [(b"c", b"3"), (b"a", b"1"), (b"b", b"2")]:
            slist.insert(key, value)
        slist.insert(b"b", b"2'")
        slist.delete(b"a")
        assert list(slist.scan()) == [(b"b", b"2'"), (b"c", b"3")]

    def test_scan_range_bounds(self):
        slist, _ = fresh()
        for i in range(10):
            slist.insert(f"k{i}".encode(), str(i).encode())
        result = [k for k, _ in slist.scan(start=b"k3", end=b"k7")]
        assert result == [b"k3", b"k4", b"k5", b"k6"]

    def test_binary_keys_and_values(self):
        slist, _ = fresh()
        key = bytes(range(1, 256))
        value = bytes(255 - b for b in range(256))
        slist.insert(key, value)
        assert slist.get(key) == (True, value)

    def test_get_verify_checks_value_crc(self):
        slist, dev = fresh()
        slist.insert(b"k", b"important")
        assert slist.get(b"k", verify=True) == (True, b"important")
        # Corrupt the value bytes behind the structure's back.
        pos = bytes(dev.data).find(b"important")
        dev.data[pos] ^= 0xFF
        with pytest.raises(SkipListCorruption):
            slist.get(b"k", verify=True)

    def test_insert_charges_costs(self):
        slist, _ = fresh()
        ctx = ExecutionContext()
        slist.insert(b"key", b"v" * 512, ctx)
        assert ctx.category("datamgmt.insert") > 0
        assert ctx.category("persist") > 0

    def test_pm_insert_costlier_than_dram(self):
        pm_list, _ = fresh(pm=True)
        dram_list, _ = fresh(pm=False)
        for i in range(50):
            pm_list.insert(f"k{i}".encode(), b"x")
            dram_list.insert(f"k{i}".encode(), b"x")
        pm_ctx, dram_ctx = ExecutionContext(), ExecutionContext()
        pm_list.insert(b"probe", b"x", pm_ctx)
        dram_list.insert(b"probe", b"x", dram_ctx)
        assert pm_ctx.category("datamgmt.insert") > dram_ctx.category("datamgmt.insert")

    def test_invariants_after_many_inserts(self):
        slist, _ = fresh()
        rng = random.Random(3)
        for _ in range(300):
            slist.insert(f"key-{rng.randrange(100)}".encode(), b"v")
        slist.check_invariants()


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "del"]),
            st.integers(0, 20),
            st.binary(min_size=0, max_size=64),
        ),
        max_size=60,
    )
)
def test_property_model_equivalence(ops):
    """Skip list == dict with tombstones, whatever the op sequence."""
    slist, _ = fresh(size=1 << 21)
    model = {}
    for op, key_id, value in ops:
        key = f"key-{key_id:02d}".encode()
        if op == "put":
            slist.insert(key, value)
            model[key] = value
        else:
            slist.delete(key)
            model[key] = None
    live = sorted((k, v) for k, v in model.items() if v is not None)
    assert list(slist.scan()) == live
    for key, value in model.items():
        found, got = slist.get(key)
        assert found and got == value
    slist.check_invariants()


class TestCrashRecovery:
    def test_all_persisted_inserts_survive(self):
        size = 1 << 20
        dev = PMDevice(size)
        slist = RegionSkipList.create(dev.region(0, size, "mt"))
        expected = {}
        for i in range(60):
            key, value = f"k{i:03d}".encode(), f"v{i}".encode() * 3
            slist.insert(key, value)
            expected[key] = value
        dev.crash()
        recovered = RegionSkipList.recover(dev.region(0, size, "mt"))
        assert dict(recovered.scan()) == expected
        recovered.check_invariants()

    def test_recovered_list_accepts_new_inserts(self):
        size = 1 << 20
        dev = PMDevice(size)
        slist = RegionSkipList.create(dev.region(0, size, "mt"))
        slist.insert(b"before", b"1")
        dev.crash()
        recovered = RegionSkipList.recover(dev.region(0, size, "mt"))
        recovered.insert(b"after", b"2")
        assert recovered.get(b"before") == (True, b"1")
        assert recovered.get(b"after") == (True, b"2")
        # Sequence numbers must not collide with pre-crash ones.
        seqs = [seq for _k, seq, _t, _v in recovered.versions()]
        assert len(seqs) == len(set(seqs))

    def test_torn_final_insert_discarded_cleanly(self):
        """Crash after allocation but before linking: node vanishes."""
        size = 1 << 20
        dev = PMDevice(size)
        region = dev.region(0, size, "mt")
        slist = RegionSkipList.create(region)
        slist.insert(b"committed", b"yes")

        # Begin an insert by hand: allocate + write, but never link.
        node = slist._write_node(b"torn", b"nope", 1, 0, 99, [0], ExecutionContext())
        assert node  # allocated and persisted, but unreachable
        dev.crash()
        recovered = RegionSkipList.recover(dev.region(0, size, "mt"))
        assert dict(recovered.scan()) == {b"committed": b"yes"}
        # The torn node's space must be reusable.
        before = recovered.allocator.live_allocations
        recovered.insert(b"new", b"data")
        assert recovered.allocator.live_allocations == before + 1

    def test_crash_mid_run_random_points_never_corrupts(self):
        """Pseudo-random crash schedule: recovered ⊆ inserted, order intact."""
        rng = random.Random(1234)
        for trial in range(5):
            size = 1 << 20
            dev = PMDevice(size)
            slist = RegionSkipList.create(dev.region(0, size, "mt"))
            inserted = {}
            for i in range(rng.randrange(5, 40)):
                key, value = f"k{i:02d}".encode(), bytes([i]) * (i + 1)
                slist.insert(key, value)
                inserted[key] = value
            dev.crash(rng=rng)  # pending lines drain probabilistically
            recovered = RegionSkipList.recover(dev.region(0, size, "mt"))
            got = dict(recovered.scan())
            # Every recovered entry matches what was written; every insert
            # completed before the crash (we crashed between ops), so all
            # must be present.
            assert got == inserted
            recovered.check_invariants()
