"""Property tests: batch event dispatch == naive single-pop dispatch.

``Simulator.run`` drains same-timestamp runs in one batch (see
repro/sim/engine.py).  That is only a speedup if it is *unobservable*:
for any interleaving of scheduling, cancellation, watchers, ``stop()``
and ``max_events``, the fired sequence, watcher notifications, clock,
and leftover queue must match what the naive one-pop-at-a-time loop
produces.  This file checks exactly that against a reference
implementation with Hypothesis-generated event programs whose events
schedule, cancel, and stop from inside their own handlers — including
events scheduled at the *current* instant, the case batching is most
likely to get wrong.
"""

import heapq
import itertools

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator


class ReferenceSimulator:
    """The naive dispatch loop: pop one event, fire it, repeat.

    API-compatible with :class:`repro.sim.engine.Simulator` for
    everything the property programs use.
    """

    def __init__(self):
        self._queue = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_fired = 0
        self._watchers = []
        self._stop_requested = False

    def add_watcher(self, fn):
        self._watchers.append(fn)
        return fn

    def stop(self):
        self._stop_requested = True

    def schedule(self, delay, fn, *args):
        assert delay >= 0
        time = self.now + delay
        seq = next(self._seq)
        entry = _RefEvent(time, seq, fn, args)
        heapq.heappush(self._queue, (time, seq, entry))
        return entry

    def pending(self):
        return sum(1 for entry in self._queue if not entry[2].cancelled)

    def run(self, until=None, max_events=None):
        self._stop_requested = False
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                break
            time, _seq, event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            self.events_fired += 1
            event.fn(*event.args)
            fired += 1
            for watcher in self._watchers:
                watcher(event)
            if self._stop_requested:
                break
        if until is not None and self.now < until and not self._stop_requested:
            self.now = until
        return fired


class _RefEvent:
    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


# One event spec = list of actions its handler performs when fired:
#   ("schedule", spec_index, delay)  - schedule another instance
#   ("cancel", spec_index, _)       - cancel the newest live instance of a spec
#   ("stop", _, _)                  - ask the loop to stop
_ACTIONS = st.tuples(
    st.sampled_from(["schedule", "cancel", "stop"]),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=2),  # small delays force ties
)

_PROGRAMS = st.fixed_dictionaries(
    {
        "specs": st.lists(
            st.lists(_ACTIONS, max_size=3), min_size=1, max_size=8
        ),
        "roots": st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 2)),
            min_size=1,
            max_size=6,
        ),
        "watchers": st.integers(min_value=0, max_value=2),
        "max_events": st.one_of(st.none(), st.integers(0, 10)),
        "until": st.one_of(st.none(), st.integers(0, 4)),
    }
)


def _execute(sim, program):
    """Interpret ``program`` against ``sim``; returns the observations."""
    specs = program["specs"]
    n = len(specs)
    fired_log = []
    watch_logs = [[] for _ in range(program["watchers"])]
    instances = {}  # spec index -> list of live handles (newest last)
    counter = itertools.count()
    # Programs can schedule themselves at delay 0 forever; cap total
    # spawns so every run terminates.  The cap is hit in the same
    # dispatch step on both simulators, so equivalence still holds.
    spawn_budget = [64]

    def make_handler(spec_index):
        def handler(instance_id):
            fired_log.append((sim.now, instance_id, spec_index))
            for action, target, delay in specs[spec_index]:
                target %= n
                if action == "schedule":
                    _spawn(target, delay)
                elif action == "cancel":
                    live = instances.get(target)
                    if live:
                        live.pop().cancel()
                else:
                    sim.stop()

        return handler

    def _spawn(spec_index, delay):
        if spawn_budget[0] <= 0:
            return
        spawn_budget[0] -= 1
        handle = sim.schedule(delay, make_handler(spec_index), next(counter))
        instances.setdefault(spec_index, []).append(handle)

    for index in range(program["watchers"]):
        log = watch_logs[index]
        sim.add_watcher(lambda event, log=log: log.append(
            (event.time, event.seq)
        ))

    for spec_index, delay in program["roots"]:
        _spawn(spec_index % n, delay)

    fired = sim.run(until=program["until"], max_events=program["max_events"])
    # A second drain exercises leftover-queue equivalence after an
    # interrupted run (stop()/max_events push-back in the batched loop).
    fired += sim.run(max_events=40)
    return {
        "fired": fired,
        "log": fired_log,
        "watch": watch_logs,
        "now": sim.now,
        "events_fired": sim.events_fired,
        "pending": sim.pending(),
    }


@settings(max_examples=200, deadline=None)
@given(program=_PROGRAMS)
def test_batched_dispatch_matches_single_pop_reference(program):
    optimized = _execute(Simulator(), program)
    reference = _execute(ReferenceSimulator(), program)
    assert optimized["log"] == reference["log"]
    assert optimized["watch"] == reference["watch"]
    assert optimized["fired"] == reference["fired"]
    assert optimized["now"] == reference["now"]
    assert optimized["events_fired"] == reference["events_fired"]
    assert optimized["pending"] == reference["pending"]


@settings(max_examples=50, deadline=None)
@given(program=_PROGRAMS)
def test_watchers_see_exactly_the_fired_events(program):
    result = _execute(Simulator(), program)
    fired_keys = [(time, None) for time, _id, _spec in result["log"]]
    for log in result["watch"]:
        assert len(log) == len(fired_keys)
        assert [time for time, _seq in log] == [t for t, _ in fired_keys]
        # seqs strictly increase within one timestamp: scheduling order.
        for (t1, s1), (t2, s2) in zip(log, log[1:]):
            assert t2 > t1 or s2 > s1
