"""Wall-clock perf regression lane (``-m perf``; excluded from tier-1).

Asserts ops/wall-second on the canned scenarios stays within tolerance
of the committed ``BENCH_speed.json`` baseline, using the same
calibration-normalized comparison as ``repro-bench-speed --check``.
Wall-clock numbers flake on loaded machines, so this lane runs as a
separate CI job with retries and is non-blocking on flake — the
blocking gate is the CLI check in the bench-speed CI job.

Run locally with:  PYTHONPATH=src python -m pytest -m perf -q
"""

import json
import os

import pytest

from repro.bench.speed import (
    DEFAULT_BASELINE,
    DEFAULT_TOLERANCE,
    check_schema,
    compare,
    merge_best,
    run_all,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, DEFAULT_BASELINE)

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def baseline():
    if not os.path.exists(BASELINE_PATH):
        pytest.skip(f"no committed baseline at {BASELINE_PATH}")
    with open(BASELINE_PATH) as handle:
        return check_schema(json.load(handle))


def test_normalized_throughput_within_tolerance(baseline):
    # Best-of-2, exactly like the CLI gate's --check default.
    current = merge_best([run_all(), run_all()])
    ok, rows = compare(current, baseline, tolerance=DEFAULT_TOLERANCE)
    detail = ", ".join(
        f"{name} {ratio:.2f}x" for name, _b, _c, ratio, _p in rows
    )
    assert ok, (
        f"normalized ops/wall-s regressed below "
        f"{DEFAULT_TOLERANCE:.2f}x baseline: {detail}"
    )


def test_peak_rss_within_budget(baseline):
    current = run_all()
    base_rss = baseline["aggregate"]["peak_rss_kb"]
    cur_rss = current["aggregate"]["peak_rss_kb"]
    if base_rss <= 0:
        pytest.skip("baseline has no RSS measurement")
    # RSS is stable run to run (deterministic allocations); 2x headroom
    # only guards against a pathological blowup, not noise.
    assert cur_rss <= 2 * base_rss, (
        f"peak RSS {cur_rss} KiB is more than twice the "
        f"baseline {base_rss} KiB"
    )
