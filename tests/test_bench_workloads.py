"""Tests for the YCSB-style workload generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.openloop import OpenLoopSource
from repro.bench.testbed import make_testbed, preload
from repro.bench.workloads import (YcsbWorkload, ZipfianGenerator,
                                   check_zipf_shape)
from repro.bench.wrk import WrkClient
from repro.storage.server import ServerConfig


class TestZipfian:
    def test_values_in_range(self):
        gen = ZipfianGenerator(100, seed=3)
        assert all(0 <= gen.next() < 100 for _ in range(2000))

    def test_skew_concentrates_on_hot_items(self):
        gen = ZipfianGenerator(1000, theta=0.99, seed=5)
        samples = gen.sample(5000)
        hot = sum(1 for s in samples if s < 10)
        # Zipf(0.99): the top 1% of keys should draw far more than 1%.
        assert hot / len(samples) > 0.15

    def test_lower_theta_is_flatter(self):
        skewed = ZipfianGenerator(1000, theta=0.99, seed=7).sample(4000)
        flat = ZipfianGenerator(1000, theta=0.2, seed=7).sample(4000)
        hot_skewed = sum(1 for s in skewed if s < 10) / 4000
        hot_flat = sum(1 for s in flat if s < 10) / 4000
        assert hot_skewed > hot_flat

    def test_deterministic_per_seed(self):
        a = ZipfianGenerator(500, seed=9).sample(100)
        b = ZipfianGenerator(500, seed=9).sample(100)
        assert a == b

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)


@settings(max_examples=30, deadline=None)
@given(
    nitems=st.integers(1, 5000),
    theta=st.floats(0.01, 0.99),
    seed=st.integers(0, 1000),
)
def test_property_zipfian_always_in_range(nitems, theta, seed):
    gen = ZipfianGenerator(nitems, theta, seed)
    assert all(0 <= gen.next() < nitems for _ in range(200))


class TestZetaCache:
    def test_incremental_extension_matches_direct_sum(self):
        theta = 0.77
        ZipfianGenerator._ZETA_CACHE.pop(theta, None)
        direct = sum(1.0 / i ** theta for i in range(1, 2001))
        # Prime with a small n, then extend — the cached extension must
        # agree with the from-scratch sum.
        ZipfianGenerator._zeta(500, theta)
        extended = ZipfianGenerator._zeta(2000, theta)
        assert extended == pytest.approx(direct, rel=1e-12)
        # Asking for a smaller prefix after caching a larger one.
        smaller = ZipfianGenerator._zeta(500, theta)
        assert smaller == pytest.approx(
            sum(1.0 / i ** theta for i in range(1, 501)), rel=1e-12)

    def test_cache_shared_across_generators(self):
        theta = 0.63
        ZipfianGenerator._ZETA_CACHE.pop(theta, None)
        ZipfianGenerator(3000, theta, seed=1)
        cached_n, _ = ZipfianGenerator._ZETA_CACHE[theta]
        assert cached_n == 3000
        # A second generator over the same space reuses the entry.
        ZipfianGenerator(3000, theta, seed=2)
        assert ZipfianGenerator._ZETA_CACHE[theta][0] == 3000


class TestZipfShapeConformance:
    """The one shape contract, checked at BOTH Zipf call sites.

    ``check_zipf_shape`` compares observed top-k probability mass to
    the analytic ζ(k, θ)/ζ(n, θ) — the YCSB mixes and the open-loop
    arrival stream must both conform, because they share the single
    :class:`ZipfianGenerator` implementation.
    """

    NITEMS, THETA, SAMPLES = 2_000, 0.99, 30_000

    @staticmethod
    def _rank(key):
        return int(key.rsplit("-", 1)[1])

    def test_generator_conforms(self):
        gen = ZipfianGenerator(self.NITEMS, self.THETA, seed=21)
        checked = check_zipf_shape(
            gen.sample(self.SAMPLES), self.NITEMS, self.THETA)
        assert set(checked) == {1, 10, 20, 200}

    def test_ycsb_keys_conform(self):
        workload = YcsbWorkload("W", key_space=self.NITEMS,
                                theta=self.THETA, seed=23)
        ranks = [self._rank(workload.next_op()[1])
                 for _ in range(self.SAMPLES)]
        check_zipf_shape(ranks, self.NITEMS, self.THETA)

    def test_openloop_keys_conform(self):
        source = OpenLoopSource(100_000.0, key_space=self.NITEMS,
                                theta=self.THETA, seed=25)
        ranks = [self._rank(source.next_arrival(0.0)[1].key)
                 for _ in range(self.SAMPLES)]
        check_zipf_shape(ranks, self.NITEMS, self.THETA)

    def test_shape_check_rejects_uniform_samples(self):
        uniform = [i % self.NITEMS for i in range(self.SAMPLES)]
        with pytest.raises(AssertionError, match="top-1"):
            check_zipf_shape(uniform, self.NITEMS, self.THETA)
        with pytest.raises(AssertionError, match="no samples"):
            check_zipf_shape([], self.NITEMS, self.THETA)


class TestYcsbWorkload:
    def test_mix_ratios_roughly_hold(self):
        workload = YcsbWorkload("B", key_space=100, seed=11)
        for _ in range(2000):
            workload.next_op()
        read_share = workload.issued_reads / 2000
        assert 0.92 < read_share < 0.98

    def test_pure_mixes(self):
        reads_only = YcsbWorkload("C", key_space=10)
        writes_only = YcsbWorkload("W", key_space=10)
        assert all(reads_only.next_op()[0] == "GET" for _ in range(100))
        assert all(writes_only.next_op()[0] == "PUT" for _ in range(100))

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            YcsbWorkload("Z")

    def test_keys_use_prefix_and_space(self):
        workload = YcsbWorkload("A", key_space=50, key_prefix="obj")
        for _ in range(100):
            _method, key, _value = workload.next_op()
            prefix, index = key.rsplit("-", 1)
            assert prefix == "obj"
            assert 0 <= int(index) < 50


class TestEndToEnd:
    @pytest.mark.parametrize("mix", ["A", "B"])
    def test_mixed_workload_over_the_network(self, mix):
        testbed = make_testbed(ServerConfig(engine="novelsm"))
        preload(testbed, entries=200, value_size=256)
        workload = YcsbWorkload(mix, key_space=200, value_size=256, seed=13)
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=4,
                        workload=workload,
                        duration_ns=800_000, warmup_ns=200_000)
        stats = wrk.run()
        assert stats.errors == 0
        assert stats.completed > 20
        # Every GET hit (the key space was preloaded).
        assert testbed.kv.stats["misses"] == 0
        assert testbed.kv.stats["gets"] == workload.issued_reads
        assert testbed.kv.stats["puts"] == workload.issued_writes

    def test_mixed_workload_on_pktstore(self):
        testbed = make_testbed(ServerConfig(engine="pktstore"))
        # Preload through the pool so values live in packet buffers.
        for i in range(100):
            buf = testbed.server.rx_pool.alloc()
            buf.write(0, bytes(256))
            testbed.engine.store.put(f"warm-{i}".encode(), [(buf, 0, 256)],
                                     256, 0, 0)
        workload = YcsbWorkload("A", key_space=100, value_size=256, seed=17)
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=2,
                        workload=workload,
                        duration_ns=800_000, warmup_ns=200_000)
        stats = wrk.run()
        assert stats.errors == 0
        assert testbed.kv.stats["misses"] == 0
