"""Tests for the Homa-like receiver-driven transport (§5.2)."""

import random

import pytest

from repro.bench.costmodel import CostModel
from repro.bench.testbed import make_testbed
from repro.bench.wrk import HomaWrkClient
from repro.net.fabric import Fabric, LinkFaults
from repro.net.homa import GRANT_WINDOW, RTT_BYTES
from repro.net.stack import Host
from repro.sim.engine import Simulator
from repro.storage.server import ServerConfig


def make_pair(faults=None):
    sim = Simulator()
    fabric = Fabric(sim, faults=faults)
    server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(), cores=1)
    client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel(), cores=2)
    server.enable_homa()
    client.enable_homa()
    return sim, server, client


def rpc_roundtrip(payload, reply_payload=b"pong", faults=None):
    sim, server, client = make_pair(faults=faults)
    got = {}

    def handler(rpc, segments, ctx):
        got["request"] = b"".join(seg.bytes() for seg in segments)
        rpc.reply(reply_payload, ctx)

    server.homa.listen(7000, handler)

    def fire(ctx):
        client.homa.send_request(
            "10.0.0.1", 7000, payload, ctx,
            on_reply=lambda segs, c: got.update(
                reply=b"".join(seg.bytes() for seg in segs)
            ),
        )

    client.process_on_core(client.cpus[0], fire)
    sim.run_until_idle(max_events=2_000_000)
    return got, server, client


class TestRpc:
    def test_small_rpc_roundtrip(self):
        got, _, _ = rpc_roundtrip(b"ping")
        assert got["request"] == b"ping"
        assert got["reply"] == b"pong"

    def test_multi_packet_message(self):
        payload = bytes(i % 256 for i in range(5000))  # 4 packets
        got, _, _ = rpc_roundtrip(payload)
        assert got["request"] == payload

    def test_message_larger_than_unscheduled_window_needs_grants(self):
        payload = bytes(i % 251 for i in range(RTT_BYTES + 3 * GRANT_WINDOW))
        got, server, _ = rpc_roundtrip(payload)
        assert got["request"] == payload
        assert server.homa.stats["grants"] > 0

    def test_small_message_needs_no_grants(self):
        _, server, _ = rpc_roundtrip(b"x" * 100)
        assert server.homa.stats["grants"] == 0

    def test_concurrent_rpcs_with_distinct_ids(self):
        sim, server, client = make_pair()
        replies = {}

        def handler(rpc, segments, ctx):
            rpc.reply(b"".join(s.bytes() for s in segments).upper(), ctx)

        server.homa.listen(7000, handler)

        def fire(ctx):
            for i in range(5):
                client.homa.send_request(
                    "10.0.0.1", 7000, f"msg-{i}".encode(), ctx,
                    on_reply=lambda segs, c, i=i: replies.update(
                        {i: b"".join(s.bytes() for s in segs)}
                    ),
                )

        client.process_on_core(client.cpus[0], fire)
        sim.run_until_idle()
        assert replies == {i: f"MSG-{i}".upper().encode() for i in range(5)}

    def test_sender_clones_released_after_ack(self):
        sim, server, client = make_pair()
        server.homa.listen(7000, lambda rpc, segs, ctx: rpc.reply(b"ok", ctx))
        baseline = client.tx_pool.in_use

        def fire(ctx):
            client.homa.send_request("10.0.0.1", 7000, b"x" * 4000, ctx,
                                     on_reply=lambda s, c: None)

        client.process_on_core(client.cpus[0], fire)
        sim.run_until_idle()
        # Message ACKed: every retained clone's buffer returned.
        assert client.tx_pool.in_use == baseline
        assert not client.homa._out


class TestFaultRecovery:
    def test_loss_recovered_by_resend(self):
        payload = bytes(i % 256 for i in range(40_000))  # ~28 data packets
        faults = LinkFaults(random.Random(3), loss=0.25)
        got, server, client = rpc_roundtrip(payload, faults=faults)
        assert got["request"] == payload
        assert faults.dropped > 0
        total_resends = (server.homa.stats["resends"] +
                         client.homa.stats["resends"])
        assert total_resends > 0

    def test_corruption_dropped_by_offloaded_checksum(self):
        payload = bytes(i % 256 for i in range(30_000))  # ~21 data packets
        faults = LinkFaults(random.Random(5), corrupt=0.3)
        got, server, client = rpc_roundtrip(payload, faults=faults)
        assert got["request"] == payload
        bad = (server.nic.stats["rx_bad_csum"] + client.nic.stats["rx_bad_csum"])
        assert bad > 0

    def test_duplicates_ignored(self):
        payload = bytes(i % 256 for i in range(6_000))
        faults = LinkFaults(random.Random(7), duplicate=0.3)
        got, _, _ = rpc_roundtrip(payload, faults=faults)
        assert got["request"] == payload


class TestHomaKV:
    @pytest.mark.parametrize("engine", ["novelsm", "pktstore"])
    def test_kv_workload_over_homa(self, engine):
        testbed = make_testbed(ServerConfig(engine=engine, transport="homa"))
        wrk = HomaWrkClient(testbed.client, "10.0.0.1", connections=2,
                            duration_ns=800_000, warmup_ns=200_000)
        stats = wrk.run()
        assert stats.errors == 0
        assert stats.completed > 10
        assert testbed.kv.stats["puts"] == stats.completed

    def test_homa_networking_faster_than_tcp(self):
        """§5.2's premise: the new transport shrinks networking RTT."""
        tcp = make_testbed(ServerConfig(engine="null"))
        from repro.bench.wrk import WrkClient

        tcp_rtt = WrkClient(tcp.client, "10.0.0.1", connections=1,
                            duration_ns=800_000, warmup_ns=200_000).run().avg_rtt_us
        homa = make_testbed(ServerConfig(engine="null", transport="homa"))
        homa_rtt = HomaWrkClient(homa.client, "10.0.0.1", connections=1,
                                 duration_ns=800_000, warmup_ns=200_000).run().avg_rtt_us
        assert homa_rtt < tcp_rtt

    def test_pktstore_over_homa_keeps_nic_metadata(self):
        """Zero-copy adoption works identically on Homa segments."""
        testbed = make_testbed(ServerConfig(engine="pktstore", transport="homa"))
        wrk = HomaWrkClient(testbed.client, "10.0.0.1", connections=1,
                            duration_ns=600_000, warmup_ns=100_000)
        wrk.run()
        store = testbed.engine.store
        assert store.count > 0
        for record in store.versions():
            assert record.hw_tstamp > 0       # NIC timestamp rode along
            assert record.wire_csum != 0      # Homa checksum stored
        # Contents are readable and intact.
        sample = next(store.versions())
        assert store.get(sample.key) is not None

    def test_pktstore_over_homa_survives_crash(self):
        from repro.core.pktstore import PacketStore
        from repro.net.pool import BufferPool
        from repro.pm.namespace import PMNamespace

        testbed = make_testbed(ServerConfig(engine="pktstore", transport="homa"))
        wrk = HomaWrkClient(testbed.client, "10.0.0.1", connections=1,
                            duration_ns=600_000, warmup_ns=100_000)
        wrk.run()
        before = dict(testbed.engine.store.scan())
        testbed.pm_device.crash()
        ns = PMNamespace.reopen(testbed.pm_device)
        pool = BufferPool(ns.open("paste-pktbufs"), 2048)
        store, _report = PacketStore.recover(ns.open("pktstore-meta"), pool)
        assert dict(store.scan()) == before
