"""Property-based crash testing: seeded-random workloads, stdlib only.

Each property drives a randomly generated put/delete/get interleaving
(deterministic per seed — no hypothesis dependency needed, and every
failure reproduces from the seed printed in the assertion) through the
exhaustive crash sweep.  The §5.1 contract must hold for *every* crash
point of *every* generated history.
"""

import pytest

from repro.testing import (
    NoveLSMWorld,
    PacketStoreWorld,
    mixed_ops,
)


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_random_interleavings_survive_every_crash_point(seed):
    world = PacketStoreWorld(seed=seed)
    model = mixed_ops(world, n=14, keyspace=5, value_size=28, seed=seed)
    # Pre-crash sanity: the store agrees with the volatile model.
    assert dict(world.store.scan()) == model, f"seed={seed}"
    report = world.sweep().run()
    assert report.ok, f"seed={seed}:\n{report.summary()}"
    assert report.recoveries == report.scenarios


@pytest.mark.parametrize("seed", [5, 6])
def test_random_interleavings_with_heavy_deletes(seed):
    world = PacketStoreWorld(seed=seed)
    mixed_ops(world, n=12, keyspace=3, value_size=20, seed=seed,
              delete_every=3)
    report = world.sweep().run()
    assert report.ok, f"seed={seed}:\n{report.summary()}"


@pytest.mark.parametrize("seed", [7, 8])
def test_random_interleavings_novelsm(seed):
    world = NoveLSMWorld(seed=seed)
    model = mixed_ops(world, n=12, keyspace=5, value_size=24, seed=seed,
                      check_gets=False)
    assert dict(world.store.scan()) == model, f"seed={seed}"
    report = world.sweep().run()
    assert report.ok, f"seed={seed}:\n{report.summary()}"


def test_generated_history_is_seed_deterministic():
    """The generator itself is a pure function of its seed — the
    foundation of reproducing any property failure."""
    def history(seed):
        world = PacketStoreWorld(seed=seed)
        mixed_ops(world, n=10, keyspace=4, seed=seed)
        return [(op.kind, op.key, op.value, op.begin_event, op.commit_event)
                for op in world.journal.ops]

    assert history(42) == history(42)
    assert history(42) != history(43)
