"""``repro-stats --watch``: periodic snapshots with delta/rate semantics.

The contract: every periodic snapshot is produced by the same
``registry.snapshot()`` call as the one-shot export — identical key
sets, identical metric names — counters are monotonic across
consecutive snapshots (sim time only moves forward, counters only
up), and the delta/rate columns the renderer prints are recomputable
from the raw snapshots.
"""

import json

import pytest

from repro.obs.cli import main, render_watch


@pytest.fixture(scope="module")
def watch_doc(tmp_path_factory):
    """One short watched run, exported as JSON."""
    path = tmp_path_factory.mktemp("watch") / "doc.json"
    exit_code = main([
        "--duration-us", "4000", "--warmup-us", "1000",
        "--watch", "1000", "--trace", "3", "--json", str(path),
    ])
    assert exit_code == 0
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


class TestWatchSchema:
    def test_watch_entries_schema_identical_to_one_shot(self, watch_doc):
        snapshot = watch_doc["snapshot"]
        watch = watch_doc["watch"]
        assert len(watch) >= 3
        for entry in watch:
            assert sorted(entry) == sorted(snapshot)
            assert sorted(entry["metrics"]) == sorted(snapshot["metrics"])
            for name, metric in entry["metrics"].items():
                assert metric["type"] == snapshot["metrics"][name]["type"]
                assert sorted(metric) == sorted(snapshot["metrics"][name])

    def test_final_watch_entry_matches_one_shot_totals(self, watch_doc):
        last = watch_doc["watch"][-1]
        snapshot = watch_doc["snapshot"]
        assert last["sim_now_ns"] == snapshot["sim_now_ns"]
        assert last["metrics"]["server.requests"]["value"] == \
            snapshot["metrics"]["server.requests"]["value"]

    def test_document_keys(self, watch_doc):
        assert sorted(watch_doc) == [
            "snapshot", "table1", "trace", "watch", "workload",
        ]


class TestWatchMonotonicity:
    def test_time_and_counters_monotonic(self, watch_doc):
        watch = watch_doc["watch"]
        counter_names = [
            name for name, metric in watch[0]["metrics"].items()
            if metric["type"] == "counter"
        ]
        assert "server.requests" in counter_names
        previous = None
        for entry in watch:
            if previous is not None:
                assert entry["sim_now_ns"] > previous["sim_now_ns"]
                for name in counter_names:
                    assert entry["metrics"][name]["value"] >= \
                        previous["metrics"][name]["value"], name
            previous = entry

    def test_histogram_counts_monotonic(self, watch_doc):
        watch = watch_doc["watch"]
        previous = None
        for entry in watch:
            count = entry["metrics"]["server.request_ns"]["count"]
            if previous is not None:
                assert count >= previous
            previous = count

    def test_progress_actually_happened(self, watch_doc):
        # The watch view is non-vacuous: requests advanced mid-run, not
        # only between the first and last snapshot.
        values = [entry["metrics"]["server.requests"]["value"]
                  for entry in watch_doc["watch"]]
        deltas = [b - a for a, b in zip(values, values[1:])]
        assert sum(1 for d in deltas if d > 0) >= 2


class TestWatchRendering:
    def test_delta_and_rate_columns_recompute(self, watch_doc):
        watch = watch_doc["watch"]
        table = render_watch(watch)
        lines = [line for line in table.splitlines() if line.strip()]
        # One data row per snapshot (after title + header + rules).
        data_rows = [line for line in lines if line.lstrip()[0].isdigit()]
        assert len(data_rows) == len(watch)
        prev_requests, prev_now = 0.0, None
        for row, entry in zip(data_rows, watch):
            columns = row.split()
            requests = entry["metrics"]["server.requests"]["value"]
            now = entry["sim_now_ns"]
            delta = requests - prev_requests
            window = now - prev_now if prev_now is not None else now
            rate_krps = delta / window * 1e6 if window > 0 else 0.0
            assert columns[1] == f"{requests:.0f}"
            assert columns[2] == f"+{delta:.0f}"
            assert columns[3] == f"{rate_krps:.1f}"
            prev_requests, prev_now = requests, now

    def test_quantile_columns_come_from_digest(self, watch_doc):
        entry = watch_doc["watch"][-1]
        quantiles = entry["metrics"]["server.request_ns"]["quantiles"]
        assert set(quantiles) == {"p50", "p90", "p99", "p99.9"}
        assert quantiles["p50"] <= quantiles["p99"] <= quantiles["p99.9"]


class TestWatchGuards:
    def test_watch_rejects_storm_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["--watch", "1000", "--storm"])

    def test_watch_rejects_nonpositive_interval(self, capsys):
        with pytest.raises(SystemExit):
            main(["--watch", "0"])
