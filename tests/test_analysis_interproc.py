"""Interprocedural PMLint: call graph, effect summaries, PM-I01/REF-I01.

The planted bugs here mirror the acceptance criteria: a two-hop
fence-domination chain (the flush in a grandchild, no fence anywhere up
the chain) and an exception-path refcount leak (a may-raise callee
between the alloc and the release).  The summary cache is pinned by a
hypothesis property: a warm-cache run must report exactly the findings
of a cold run.  The ``# pmlint: disable=`` marker is spelled split so
the linter never reads these tests as control comments.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import pmlint
from repro.analysis.interproc import Program, SummaryCache

SCOPED_PATH = "src/repro/net/_virtual.py"
DISABLE = "# pmlint" ": disable"


def program_findings(sources, select=None):
    """Lint a dict of {path: source} as one whole program."""
    modules = [pmlint.ModuleSource(path, text)
               for path, text in sorted(sources.items())]
    found, _program = pmlint.lint_program(modules, select=select)
    return [f for f in found if not f.suppressed]


TWO_HOP_BAD = (
    "class Store:\n"
    "    def _stage(self, ctx):\n"
    "        self.region.write(0, b'x', ctx)\n"
    "        self.region.flush(0, 1, ctx, 'persist')\n"
    "\n"
    "    def commit(self, ctx):\n"
    "        self._stage(ctx)\n"
    "\n"
    "    def handle(self, ctx):\n"
    "        self.commit(ctx)\n"
)


class TestFenceDomination:
    def test_two_hop_undrained_chain_flagged(self):
        findings = program_findings({SCOPED_PATH: TWO_HOP_BAD})
        assert [f.rule for f in findings] == ["PM-I01"]
        assert findings[0].line == 4  # the flush itself, not the callers
        assert "caller chain" in findings[0].message

    def test_witness_chain_names_the_callers(self):
        (finding,) = program_findings({SCOPED_PATH: TWO_HOP_BAD})
        assert "commit" in finding.message
        assert "handle" in finding.message

    def test_fence_at_top_of_chain_silences(self):
        fixed = TWO_HOP_BAD + "        self.region.fence(ctx)\n"
        assert not program_findings({SCOPED_PATH: fixed})

    def test_fence_in_middle_of_chain_silences(self):
        source = (
            "class Store:\n"
            "    def _stage(self, ctx):\n"
            "        self.region.write(0, b'x', ctx)\n"
            "        self.region.flush(0, 1, ctx, 'persist')\n"
            "\n"
            "    def commit(self, ctx):\n"
            "        self._stage(ctx)\n"
            "        self.region.fence(ctx)\n"
            "\n"
            "    def handle(self, ctx):\n"
            "        self.commit(ctx)\n"
        )
        assert not program_findings({SCOPED_PATH: source})

    def test_fence_false_default_reported_when_no_caller_fences(self):
        source = (
            "class Store:\n"
            "    def write_hint(self, ctx, fence=False):\n"
            "        self.region.flush(0, 8, ctx, 'persist')\n"
            "        if fence:\n"
            "            self.region.fence(ctx)\n"
            "\n"
            "    def touch(self, ctx):\n"
            "        self.write_hint(ctx)\n"
        )
        findings = program_findings({SCOPED_PATH: source})
        assert {f.rule for f in findings} == {"PM-I01"}

    def test_fence_false_default_clean_when_caller_drains(self):
        source = (
            "class Store:\n"
            "    def write_hint(self, ctx, fence=False):\n"
            "        self.region.flush(0, 8, ctx, 'persist')\n"
            "        if fence:\n"
            "            self.region.fence(ctx)\n"
            "\n"
            "    def touch(self, ctx):\n"
            "        self.write_hint(ctx)\n"
            "        self.region.fence(ctx)\n"
        )
        assert not program_findings({SCOPED_PATH: source})

    def test_cross_module_caller_drains(self):
        helper = (
            "def stage(region, blob, ctx):\n"
            "    region.write(0, blob)\n"
            "    region.flush(0, len(blob), ctx, 'persist')\n"
        )
        caller = (
            "from repro.net._helper import stage\n"
            "\n"
            "def commit(region, blob, ctx):\n"
            "    stage(region, blob, ctx)\n"
            "    region.fence(ctx)\n"
        )
        assert not program_findings({
            "src/repro/net/_helper.py": helper,
            "src/repro/net/_caller.py": caller,
        })

    def test_cross_module_nobody_drains(self):
        helper = (
            "def stage(region, blob, ctx):\n"
            "    region.write(0, blob)\n"
            "    region.flush(0, len(blob), ctx, 'persist')\n"
        )
        caller = (
            "from repro.net._helper import stage\n"
            "\n"
            "def commit(region, blob, ctx):\n"
            "    stage(region, blob, ctx)\n"
        )
        findings = program_findings({
            "src/repro/net/_helper.py": helper,
            "src/repro/net/_caller.py": caller,
        })
        assert [f.rule for f in findings] == ["PM-I01"]
        assert str(findings[0].path).endswith("_helper.py")


LEAK_BAD = (
    "class Proto:\n"
    "    def deliver(self, ctx):\n"
    "        pkt = PktBuf.alloc(self.tx_pool, 64, ctx)\n"
    "        self._stamp(pkt, ctx)\n"
    "        pkt.release()\n"
    "\n"
    "    def _stamp(self, pkt, ctx):\n"
    "        if pkt is None:\n"
    "            raise ValueError('no pkt')\n"
    "        pkt.meta = ctx\n"
)


class TestRefcountBalance:
    def test_exception_path_leak_flagged(self):
        findings = program_findings({SCOPED_PATH: LEAK_BAD})
        assert [f.rule for f in findings] == ["REF-I01"]
        assert findings[0].line == 3  # the acquisition site
        assert "exception path" in findings[0].message

    def test_try_finally_closes_the_gap(self):
        fixed = (
            "class Proto:\n"
            "    def deliver(self, ctx):\n"
            "        pkt = PktBuf.alloc(self.tx_pool, 64, ctx)\n"
            "        try:\n"
            "            self._stamp(pkt, ctx)\n"
            "        finally:\n"
            "            pkt.release()\n"
            "\n"
            "    def _stamp(self, pkt, ctx):\n"
            "        if pkt is None:\n"
            "            raise ValueError('no pkt')\n"
            "        pkt.meta = ctx\n"
        )
        assert not program_findings({SCOPED_PATH: fixed})

    def test_never_released_flagged(self):
        source = (
            "def take(pool, ctx):\n"
            "    pkt = pool.alloc(64, ctx)\n"
            "    pkt.touch()\n"
        )
        findings = program_findings({SCOPED_PATH: source})
        assert [f.rule for f in findings] == ["REF-I01"]

    def test_ownership_adoption_through_constructor(self):
        # The handle escapes into an owner that stores it: the engine
        # must see the constructor's parameter store, not demand a
        # release in the allocating function.
        source = (
            "class Entry:\n"
            "    def __init__(self, buf):\n"
            "        self.buf = buf\n"
            "\n"
            "def enqueue(pool, queue, ctx):\n"
            "    pkt = pool.alloc(64, ctx)\n"
            "    queue.append(Entry(pkt))\n"
        )
        assert not program_findings({SCOPED_PATH: source})

    def test_handing_to_releasing_callee_settles(self):
        source = (
            "class Stack:\n"
            "    def drop(self, pkt):\n"
            "        pkt.release()\n"
            "\n"
            "    def ingest(self, pool, ctx):\n"
            "        pkt = pool.alloc(64, ctx)\n"
            "        self.drop(pkt)\n"
        )
        assert not program_findings({SCOPED_PATH: source})

    def test_out_of_scope_path_not_checked(self):
        findings = program_findings({"src/repro/bench/_virtual.py": LEAK_BAD})
        assert not findings

    def test_setup_entry_points_exempt(self):
        source = (
            "class Store:\n"
            "    def recover(self, pool, ctx):\n"
            "        pkt = pool.alloc(64, ctx)\n"
            "        self.head = pkt.slot\n"
        )
        assert not program_findings({SCOPED_PATH: source})


class TestSupersession:
    FLUSH_NO_FENCE = (
        "def commit(region, blob, ctx):\n"
        "    region.write(0, blob)\n"
        "    region.flush(0, len(blob), ctx)\n"
    )

    def test_local_rules_skipped_in_interproc_mode(self):
        module = pmlint.ModuleSource(SCOPED_PATH, self.FLUSH_NO_FENCE)
        found = pmlint.lint_module(module, interprocedural=True)
        assert "PM-W01" not in {f.rule for f in found}

    def test_local_rules_run_without_interproc(self):
        module = pmlint.ModuleSource(SCOPED_PATH, self.FLUSH_NO_FENCE)
        found = pmlint.lint_module(module, interprocedural=False)
        assert "PM-W01" in {f.rule for f in found}

    def test_explicit_select_overrides_supersession(self):
        module = pmlint.ModuleSource(SCOPED_PATH, self.FLUSH_NO_FENCE)
        found = pmlint.lint_module(module, select={"PM-W01"},
                                   interprocedural=True)
        assert {f.rule for f in found} == {"PM-W01"}

    def test_interproc_rules_tagged(self):
        tagged = {rule.id for rule in pmlint.iter_rules()
                  if rule.interprocedural}
        assert tagged == {"PM-I01", "REF-I01"}
        assert tagged & pmlint.SUPERSEDED_BY_INTERPROC == set()


class TestSelfTest:
    def test_interproc_rules_pass_planted_examples(self):
        report = pmlint.self_test()
        assert report.ok, report.summary()

    def test_single_module_program_wrapper(self):
        # InterprocRule.check() must behave like a one-file program so
        # the generic self-test machinery exercises these rules too.
        module = pmlint.ModuleSource(SCOPED_PATH, TWO_HOP_BAD)
        program = Program([module])
        keys = [k for k in program.functions if "_stage" in k]
        assert keys, "call-graph did not index the planted module"


def _write_tree(parent, fence_top, leak):
    """Three small modules whose findings depend on the drawn booleans.

    They live under a literal ``net/`` directory so REF-I01's path
    scope covers them.
    """
    base = parent / "net"
    base.mkdir(exist_ok=True)
    helper = (
        "def stage(region, blob, ctx):\n"
        "    region.write(0, blob)\n"
        "    region.flush(0, len(blob), ctx, 'persist')\n"
    )
    caller = (
        "from repro.net._h import stage\n"
        "\n"
        "def commit(region, blob, ctx):\n"
        "    stage(region, blob, ctx)\n"
    )
    if fence_top:
        caller += "    region.fence(ctx)\n"
    extra = (
        "def take(pool, ctx):\n"
        "    pkt = pool.alloc(64, ctx)\n"
    )
    extra += "    pkt.touch()\n" if leak else "    pkt.release()\n"
    (base / "_h.py").write_text(helper)
    (base / "_c.py").write_text(caller)
    (base / "_t.py").write_text(extra)


def _finding_keys(report):
    return sorted((f.rule, str(f.path).rsplit("/", 1)[-1], f.line)
                  for f in report.findings)


class TestSummaryCache:
    @settings(max_examples=12, deadline=None)
    @given(fence_top=st.booleans(), leak=st.booleans())
    def test_warm_cache_findings_equal_cold_run(self, tmp_path_factory,
                                                fence_top, leak):
        base = tmp_path_factory.mktemp("net")
        _write_tree(base, fence_top, leak)
        cache = base / "cache.json"
        cold = pmlint.run_lint([str(base)], cache_path=str(cache))
        assert cache.exists()
        warm = pmlint.run_lint([str(base)], cache_path=str(cache))
        assert _finding_keys(cold) == _finding_keys(warm)

    def test_source_change_invalidates_entry(self, tmp_path):
        _write_tree(tmp_path, fence_top=False, leak=False)
        cache = tmp_path / "cache.json"
        first = pmlint.run_lint([str(tmp_path)], cache_path=str(cache))
        assert ("PM-I01", "_h.py", 3) in _finding_keys(first)
        # Fix the chain; the stale cached summary must not resurrect it.
        caller = (tmp_path / "net" / "_c.py").read_text()
        (tmp_path / "net" / "_c.py").write_text(
            caller + "    region.fence(ctx)\n")
        second = pmlint.run_lint([str(tmp_path)], cache_path=str(cache))
        assert "PM-I01" not in {rule for rule, _, _ in _finding_keys(second)}

    def test_corrupt_cache_is_a_miss_not_a_crash(self, tmp_path):
        _write_tree(tmp_path, fence_top=True, leak=True)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        report = pmlint.run_lint([str(tmp_path)], cache_path=str(cache))
        assert ("REF-I01", "_t.py", 2) in _finding_keys(report)


class TestTreeIsCleanInterprocedurally:
    """The acceptance criterion: the default (interprocedural) lint of
    the full tree is clean with at most five reasoned suppressions."""

    def test_full_tree_clean(self):
        report = pmlint.run_lint(["src/repro"], root=".")
        assert report.ok, report.summary()

    def test_suppression_budget(self):
        report = pmlint.run_lint(["src/repro"], root=".")
        assert len(report.suppressed) <= 5
        for finding in report.suppressed:
            assert finding.reason and len(finding.reason) > 10, finding.format()
