"""Unit + property tests for checksums."""

import struct

from hypothesis import given, settings, strategies as st

from repro.net.checksum import (
    checksum_finish,
    checksum_partial,
    crc32c,
    internet_checksum,
    verify_internet_checksum,
)


class TestCrc32c:
    def test_known_vectors(self):
        # Well-known CRC32C test vectors.
        assert crc32c(b"") == 0x00000000
        assert crc32c(b"123456789") == 0xE3069283
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_detects_single_bit_flip(self):
        data = bytearray(b"The quick brown fox jumps over the lazy dog")
        original = crc32c(bytes(data))
        data[7] ^= 0x20
        assert crc32c(bytes(data)) != original

    def test_seed_chains_incrementally(self):
        whole = crc32c(b"hello world")
        # Chaining is not plain concatenation of CRCs, but the same
        # seed-in/seed-out discipline must be deterministic.
        part = crc32c(b"world", seed=crc32c(b"hello"))
        assert isinstance(part, int)
        assert whole != crc32c(b"hello")


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # RFC 1071's worked example: 0001 f203 f4f5 f6f7 -> sum ddf2 -> csum 220d
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_verification_of_embedded_checksum(self):
        data = bytearray(b"\x45\x00\x00\x54" + bytes(16))
        csum = internet_checksum(bytes(data))
        struct.pack_into("!H", data, 10, csum)
        assert verify_internet_checksum(bytes(data))

    def test_odd_length_handled(self):
        # A trailing odd byte is padded as the high-order byte.
        assert internet_checksum(b"\xff") == (~0xFF00) & 0xFFFF

    def test_partial_then_finish_matches_one_shot(self):
        data = b"some arbitrary payload bytes!!"
        split = checksum_finish(checksum_partial(data[17:], checksum_partial(data[:17])))
        # One's-complement addition commutes only on 16-bit boundaries;
        # split at odd offsets shifts bytes, so compare an even split.
        even = checksum_finish(checksum_partial(data[16:], checksum_partial(data[:16])))
        assert even == internet_checksum(data)
        assert isinstance(split, int)


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=0, max_size=512))
def test_property_embedding_checksum_verifies(data):
    """Appending the checksum makes the whole verify (even length only)."""
    if len(data) % 2:
        data += b"\x00"
    csum = internet_checksum(data)
    whole = data + struct.pack("!H", csum)
    assert verify_internet_checksum(whole)


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=2, max_size=256), flip=st.integers(min_value=0))
def test_property_crc_catches_any_single_bit_flip(data, flip):
    corrupted = bytearray(data)
    bit = flip % (len(data) * 8)
    corrupted[bit // 8] ^= 1 << (bit % 8)
    assert crc32c(bytes(corrupted)) != crc32c(data)
