"""Property tests for the capture codec (repro.capture.format).

The format's three decoding guarantees, exercised the way the module
docstring promises:

- encode -> decode is the identity on records (timestamps bit-exact,
  addresses, frame bytes) and on meta;
- corruption is never silently decoded — any flipped byte inside a
  record or the header raises :class:`CaptureCorruptError`;
- a partial tail (interrupted write) decodes the complete prefix and
  sets ``truncated`` instead of raising.
"""

import json
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.capture.format import (
    Capture,
    CaptureCorruptError,
    CaptureError,
    FrameRecord,
    encode_record,
)

# Frames as the fabric carries them: non-empty, bounded (jumbo-ish).
frames = st.binary(min_size=1, max_size=512)
# Sim timestamps: finite doubles, non-negative (the simulator's clock).
times = st.floats(min_value=0.0, max_value=1e15, allow_nan=False,
                  allow_infinity=False)
ips = st.integers(min_value=0, max_value=0xFFFFFFFF)

records = st.builds(
    FrameRecord, t_ns=times, src_ip=ips, dst_ip=ips, frame=frames)

metas = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(min_value=-2**31, max_value=2**31),
              st.text(max_size=16), st.none(), st.booleans()),
    max_size=4,
)


def build_capture(meta, recs):
    capture = Capture(meta=meta)
    for rec in recs:
        capture.append(rec.t_ns, rec.src_ip, rec.dst_ip, rec.frame)
    return capture


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(meta=metas, recs=st.lists(records, max_size=12))
    def test_encode_decode_identity(self, meta, recs):
        capture = build_capture(meta, recs)
        decoded = Capture.from_bytes(capture.to_bytes())
        assert decoded.records == capture.records
        assert not decoded.truncated
        # meta round-trips through canonical JSON (plus the schema tag)
        assert decoded.meta == json.loads(
            json.dumps(capture.meta, sort_keys=True))

    @settings(max_examples=40, deadline=None)
    @given(meta=metas, recs=st.lists(records, max_size=12))
    def test_digest_is_serialisation_invariant(self, meta, recs):
        capture = build_capture(meta, recs)
        decoded = Capture.from_bytes(capture.to_bytes())
        assert decoded.digest() == capture.digest()
        # ...and meta does not participate in the digest
        relabeled = build_capture({"other": "meta"}, recs)
        assert relabeled.digest() == capture.digest()

    def test_save_load_round_trip(self, tmp_path):
        capture = build_capture({"run": 1}, [
            FrameRecord(10.0, 1, 2, b"\x00" * 64),
            FrameRecord(11.5, 2, 1, b"reply"),
        ])
        path = tmp_path / "run.rpcap"
        capture.save(path)
        loaded = Capture.load(path)
        assert loaded.records == capture.records
        assert loaded.digest() == capture.digest()


class TestCorruption:
    @settings(max_examples=60, deadline=None)
    @given(recs=st.lists(records, min_size=1, max_size=6),
           data=st.data())
    def test_any_flipped_record_byte_never_decodes_wrong_data(
            self, recs, data):
        capture = build_capture({}, recs)
        blob = bytearray(capture.to_bytes())
        header_len = len(blob) - sum(
            len(encode_record(r)) for r in capture.records)
        index = data.draw(st.integers(min_value=header_len,
                                      max_value=len(blob) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        blob[index] ^= flip
        try:
            decoded = Capture.from_bytes(bytes(blob))
        except CaptureError:
            return  # corruption detected — the usual outcome
        # A flip inside a frame_len field can present as a truncated
        # tail instead; the decoded part must then be a clean prefix of
        # the original, never silently-wrong records.
        assert decoded.truncated
        assert decoded.records == capture.records[:len(decoded.records)]

    def test_corrupt_record_crc_rejected(self):
        capture = build_capture({}, [FrameRecord(1.0, 1, 2, b"abcd")])
        blob = bytearray(capture.to_bytes())
        blob[-1] ^= 0xFF                      # the record's CRC bytes
        with pytest.raises(CaptureCorruptError, match="CRC"):
            Capture.from_bytes(bytes(blob))

    def test_corrupt_header_crc_rejected(self):
        blob = bytearray(build_capture({"a": 1}, []).to_bytes())
        blob[10] ^= 0x01                      # first byte of the meta JSON
        with pytest.raises(CaptureCorruptError, match="header"):
            Capture.from_bytes(bytes(blob))

    def test_bad_magic_rejected(self):
        with pytest.raises(CaptureError, match="magic"):
            Capture.from_bytes(b"NOTPC" + b"\x00" * 32)

    def test_unsupported_version_rejected(self):
        blob = bytearray(build_capture({}, []).to_bytes())
        blob[5] = 99                          # version byte
        with pytest.raises(CaptureError, match="version"):
            Capture.from_bytes(bytes(blob))


class TestPartialTail:
    @settings(max_examples=60, deadline=None)
    @given(recs=st.lists(records, min_size=1, max_size=6),
           data=st.data())
    def test_truncated_tail_decodes_prefix(self, recs, data):
        capture = build_capture({}, recs)
        blob = capture.to_bytes()
        last_len = len(encode_record(capture.records[-1]))
        # cut somewhere inside the last record (never at its boundary)
        cut = data.draw(st.integers(min_value=len(blob) - last_len + 1,
                                    max_value=len(blob) - 1))
        decoded = Capture.from_bytes(blob[:cut])
        assert decoded.truncated
        assert decoded.records == capture.records[:-1]

    def test_clean_capture_is_not_truncated(self):
        capture = build_capture({}, [FrameRecord(1.0, 1, 2, b"xy")])
        assert not Capture.from_bytes(capture.to_bytes()).truncated


class TestFilterAndSpan:
    def test_filter_by_address_and_time(self):
        capture = build_capture({}, [
            FrameRecord(10.0, 1, 2, b"a"),
            FrameRecord(20.0, 2, 1, b"b"),
            FrameRecord(30.0, 1, 2, b"c"),
        ])
        assert [r.frame for r in capture.filter(dst_ip=2).records] \
            == [b"a", b"c"]
        assert [r.frame for r in capture.filter(src_ip=2).records] == [b"b"]
        assert [r.frame for r in capture.filter(since_ns=20.0).records] \
            == [b"b", b"c"]
        assert capture.span_ns() == 20.0
        assert Capture().span_ns() == 0.0
