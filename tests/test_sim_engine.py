"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(5, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(100, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [100.0]
    assert sim.now == 100.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(50, fired.append, 1)
    sim.schedule(150, fired.append, 2)
    sim.run(until=100)
    assert fired == [1]
    assert sim.now == 100.0
    sim.run()
    assert fired == [1, 2]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    event.cancel()
    sim.schedule(20, fired.append, "y")
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert sim.events_fired == 0


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_events_can_schedule_more_events():
    sim = Simulator()
    hits = []

    def chain(n):
        hits.append(n)
        if n < 5:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert hits == [0, 1, 2, 3, 4, 5]
    assert sim.now == 50.0


def test_max_events_limits_runaway_loops():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    fired = sim.run(max_events=100)
    assert fired == 100


def test_run_until_idle_raises_on_event_storm():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(0, forever)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=50)


def test_step_runs_exactly_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(2, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    event = sim.schedule(2, lambda: None)
    event.cancel()
    assert sim.pending() == 1
