"""Statistics-conformance suite for the t-digest sketch.

Locks the quantile pipeline down against exact order statistics: every
estimate must sit inside the documented scale-function corridor
(``|q_hat - q| <= 2*2pi*sqrt(q(1-q))/compression + 1/n`` — two nominal
cluster widths, see the module docstring), merging
per-core digests must stay within (a small multiple of) the same
bound, the structure must be deterministic — a pure function of the
insertion sequence, PMLint DET-01 — and serialisation must round-trip
exactly.  The planted mis-merge bug must FAIL the same checks, proving
the bound has teeth (the CI negative check).
"""

import json
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.tdigest import (
    DEFAULT_COMPRESSION,
    TDigest,
    _MisMergedDigest,
    _self_test,
    check_conformance,
    merged,
)

QUANTILES = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999)

DISTRIBUTIONS = ("uniform", "lognormal", "bimodal", "constant",
                 "integers", "heavy_tail")


def draw_samples(rng, dist, n):
    """Deterministic sample draws across latency-shaped distributions."""
    if dist == "uniform":
        return [rng.uniform(0.0, 1e6) for _ in range(n)]
    if dist == "lognormal":
        return [rng.lognormvariate(3.0, 1.2) for _ in range(n)]
    if dist == "bimodal":
        return [rng.gauss(20_000.0, 500.0) if rng.random() < 0.9
                else rng.gauss(500_000.0, 40_000.0) for _ in range(n)]
    if dist == "constant":
        return [42.0] * n
    if dist == "integers":
        return [float(rng.randrange(0, 64)) for _ in range(n)]
    # heavy_tail: Pareto-ish, the shape that wrecks bucketed p99s.
    return [1000.0 * (rng.paretovariate(1.5)) for _ in range(n)]


def exact_quantile(ordered, q):
    """Linear-interpolation order statistic (numpy 'linear')."""
    rank = q * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if frac == 0.0 or low + 1 >= len(ordered):
        return ordered[low]
    return ordered[low] + (ordered[low + 1] - ordered[low]) * frac


def assert_in_corridor(digest, ordered, quantiles=QUANTILES, factor=2.0):
    """The digest's estimate must be bracketed by the exact sample
    quantiles at ``q ± factor*error_bound(q) + 1/n``.  The default
    factor 2 is the documented bound (two nominal cluster widths);
    merge tests allow one more width on top."""
    n = len(ordered)
    for q in quantiles:
        estimate = digest.quantile(q)
        eps = factor * digest.error_bound(q) + 1.0 / n
        lo = ordered[max(0, int(math.floor((q - eps) * (n - 1))))]
        hi = ordered[min(n - 1, int(math.ceil((q + eps) * (n - 1))))]
        assert lo <= estimate <= hi, (
            f"q={q}: estimate {estimate!r} outside [{lo!r}, {hi!r}] "
            f"(eps={eps:.5f}, n={n})"
        )


class TestQuantileBound:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           dist=st.sampled_from(DISTRIBUTIONS))
    def test_property_10k_samples_within_documented_bound(self, seed, dist):
        rng = random.Random(seed)
        samples = draw_samples(rng, dist, 10_000)
        assert check_conformance(TDigest, samples) == []

    @settings(max_examples=30, deadline=None)
    @given(samples=st.lists(
        st.floats(min_value=-1e9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=400,
    ))
    def test_property_arbitrary_floats_within_bound(self, samples):
        assert check_conformance(TDigest, samples) == []

    def test_sorted_and_reversed_streams(self):
        ascending = [float(i) for i in range(10_000)]
        for stream in (ascending, list(reversed(ascending))):
            digest = TDigest()
            for value in stream:
                digest.add(value)
            assert_in_corridor(digest, ascending)

    def test_centroid_count_stays_bounded(self):
        digest = TDigest()
        rng = random.Random(7)
        for checkpoint in range(5):
            for _ in range(10_000):
                digest.add(rng.lognormvariate(3.0, 1.0))
            assert digest.centroid_count <= DEFAULT_COMPRESSION + 1


class TestMerge:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), cores=st.integers(2, 8),
           dist=st.sampled_from(DISTRIBUTIONS))
    def test_property_per_core_merge_within_bound(self, seed, cores, dist):
        """Round-robin the stream over N per-core digests, merge, and
        the combined view must answer nearly as well as one digest fed
        everything (merging pre-clustered centroids costs at most one
        extra cluster width — factor 2 on the corridor)."""
        rng = random.Random(seed)
        samples = draw_samples(rng, dist, 10_000)
        digests = [TDigest() for _ in range(cores)]
        for index, value in enumerate(samples):
            digests[index % cores].add(value)
        combined = merged(digests)
        assert combined.count == pytest.approx(len(samples))
        assert_in_corridor(combined, sorted(samples), factor=3.0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_property_merge_grouping_equivalent(self, seed):
        """(a+b)+c and a+(b+c) agree within the corridor — merge order
        may shuffle centroids but never the statistics."""
        rng = random.Random(seed)
        parts = [draw_samples(rng, "lognormal", 2_000) for _ in range(3)]
        digests = []
        for part in parts:
            digest = TDigest()
            for value in part:
                digest.add(value)
            digests.append(digest)
        a, b, c = digests
        left = merged([a, b])
        left.merge(c)
        right = merged([b, c])
        right.merge(a)
        ordered = sorted(parts[0] + parts[1] + parts[2])
        assert_in_corridor(left, ordered, factor=3.0)
        assert_in_corridor(right, ordered, factor=3.0)
        assert left.count == pytest.approx(right.count)
        assert left.min == right.min and left.max == right.max

    def test_merge_leaves_source_unchanged(self):
        source = TDigest()
        for value in range(1000):
            source.add(float(value))
        before = source.to_dict()
        sink = TDigest()
        sink.merge(source)
        assert source.to_dict() == before
        assert sink.quantile(0.5) == pytest.approx(source.quantile(0.5),
                                                   rel=0.05)

    def test_merged_of_nothing_is_empty(self):
        digest = merged([])
        assert digest.count == 0.0
        assert digest.quantile(0.9) == 0.0


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           dist=st.sampled_from(DISTRIBUTIONS))
    def test_property_same_stream_same_digest(self, seed, dist):
        """DET-01: the digest is a pure function of the insertion
        sequence — two replays produce byte-identical serialised state
        (no RNG, no wall clock anywhere in the merge path)."""
        rng = random.Random(seed)
        samples = draw_samples(rng, dist, 1_500)
        first, second = TDigest(), TDigest()
        for value in samples:
            first.add(value)
        for value in samples:
            second.add(value)
        assert first.to_dict() == second.to_dict()
        assert first.quantile(0.99) == second.quantile(0.99)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_property_serialisation_round_trips_exactly(self, seed):
        rng = random.Random(seed)
        digest = TDigest()
        for value in draw_samples(rng, "bimodal", 3_000):
            digest.add(value)
        state = json.loads(json.dumps(digest.to_dict()))
        restored = TDigest.from_dict(state)
        assert restored.to_dict() == digest.to_dict()
        for q in QUANTILES:
            assert restored.quantile(q) == digest.quantile(q)


class TestEdgeCases:
    def test_empty_digest_answers_zero(self):
        assert TDigest().quantile(0.99) == 0.0

    def test_single_sample_answers_itself_everywhere(self):
        digest = TDigest()
        digest.add(123.456)
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert digest.quantile(q) == 123.456

    def test_extremes_are_exact(self):
        digest = TDigest()
        for value in (5.0, 1.0, 9.0, 3.0):
            digest.add(value)
        assert digest.quantile(0.0) == 1.0
        assert digest.quantile(1.0) == 9.0

    def test_weighted_points_count(self):
        # A pre-weighted point is mass, not spread: quantiles below its
        # mid-rank answer its mean exactly; between the two centroid
        # mid-ranks the digest interpolates (by design), so only the
        # extremes are pinned on the heavy side.
        digest = TDigest()
        digest.add(10.0, weight=99.0)
        digest.add(1000.0, weight=1.0)
        assert digest.count == 100.0
        assert digest.quantile(0.2) == pytest.approx(10.0)
        assert digest.quantile(0.0) == 10.0
        assert digest.quantile(1.0) == 1000.0

    def test_weighted_add_conforms_like_repeated_add(self):
        # Weighted ingestion must satisfy the same corridor as feeding
        # the equivalent unit-weight stream (the states themselves may
        # cluster differently — clustering is batch-shape sensitive).
        rng = random.Random(11)
        values = sorted(set(round(rng.lognormvariate(3.0, 1.0), 3)
                            for _ in range(2000)))
        expanded = []
        digest = TDigest()
        for index, value in enumerate(values):
            weight = 1.0 + (index % 4)
            digest.add(value, weight=weight)
            expanded.extend([value] * int(weight))
        assert_in_corridor(digest, sorted(expanded))

    def test_rejects_nan_and_bad_weight(self):
        digest = TDigest()
        with pytest.raises(ValueError):
            digest.add(float("nan"))
        with pytest.raises(ValueError):
            digest.add(1.0, weight=0.0)
        with pytest.raises(ValueError):
            digest.quantile(1.5)
        with pytest.raises(ValueError):
            TDigest(compression=5)

    def test_reset_empties(self):
        digest = TDigest()
        for value in range(100):
            digest.add(float(value))
        digest.reset()
        assert digest.count == 0.0
        assert digest.quantile(0.5) == 0.0


class TestNegativeConformance:
    """The planted bug must fail — the suite can't be vacuously green."""

    def test_mis_merged_digest_violates_bound(self):
        samples = [float(i % 97) for i in range(5000)] + \
                  [1000.0 + (i * i % 9973) for i in range(5000)]
        assert check_conformance(TDigest, samples) == []
        assert check_conformance(_MisMergedDigest, samples) != []

    def test_self_test_passes(self):
        # The module's own --self-test entry: honest passes, planted
        # mis-merge is caught.  CI runs this via the CLI as well.
        assert _self_test() == 0
