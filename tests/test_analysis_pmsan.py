"""PMSan: one unit test per violation class, plus the NoveLSM gate.

The integration contract mirrors the linter's planted-bug discipline
at runtime: the real persistent-memtable put path must come out
flush/fence-clean under a strict sanitizer, and a deliberately
mutated copy (node persist skipped — the link-before-persist bug) must
be flagged.  Tests that plant violations on purpose carry
``no_pmsan`` so the suite-wide ``--pmsan`` lane does not double-report
them.
"""

import gc
import struct

import pytest

from repro.analysis.pmsan import PMSan, main as pmsan_main
from repro.core.ppktbuf import KIND_HEAD, PMetaSlab, PPktRecord
from repro.net.checksum import crc32c
from repro.net.pktbuf import PktBuf
from repro.net.pool import BufferPool
from repro.pm.device import PMDevice
from repro.sim.context import NULL_CONTEXT
from repro.storage.skiplist import RegionSkipList


def rules_of(report):
    return {finding.rule for finding in report.findings}


class TestViolationClasses:
    def test_clean_persist_before_link_protocol(self):
        with PMSan(strict=True) as san:
            device = PMDevice(16 * 1024, name="t-clean")
            device.write(0, b"node")
            device.persist(0, 64, NULL_CONTEXT)
            device.write(128, b"link")
            device.persist(128, 64, NULL_CONTEXT)
            assert device.is_durable(0, 64)
        assert san.report.ok, san.report.summary()
        assert not san.report.diagnostics

    def test_unflushed_store_at_fence(self):
        with PMSan(strict=True) as san:
            device = PMDevice(16 * 1024, name="t-ordering")
            device.write(0, b"node")                  # never flushed
            device.write(128, b"link")
            device.flush(128, 64, NULL_CONTEXT)
            device.fence(NULL_CONTEXT)
        assert "PM-S04" in rules_of(san.report)
        assert "PM-S01" in rules_of(san.report)

    def test_flush_without_fence_at_durability_check(self):
        with PMSan(strict=True) as san:
            device = PMDevice(16 * 1024, name="t-unfenced")
            device.write(0, b"record")
            device.flush(0, 64, NULL_CONTEXT)
            device.is_durable(0, 64)                   # pending, no fence
        assert "PM-S02" in rules_of(san.report)

    def test_pending_lines_at_crash(self):
        with PMSan(strict=True) as san:
            device = PMDevice(16 * 1024, name="t-crash")
            device.write(0, b"record")
            device.flush(0, 64, NULL_CONTEXT)
            device.crash()
        assert "PM-S02" in rules_of(san.report)

    def test_redundant_flush_is_diagnostic_only(self):
        with PMSan(strict=True) as san:
            device = PMDevice(16 * 1024, name="t-redundant")
            device.write(0, b"x")
            device.flush(0, 64, NULL_CONTEXT)
            device.flush(0, 64, NULL_CONTEXT)          # zero lines
            device.fence(NULL_CONTEXT)
        assert san.report.ok
        assert {f.rule for f in san.report.diagnostics} == {"PM-S03"}

    @pytest.mark.no_pmsan
    def test_refcount_leak_detected(self):
        with PMSan() as san:
            device = PMDevice(64 * 1024, name="t-leak")
            pool = BufferPool(device.region(0, 64 * 1024), slot_size=2048,
                              name="t-leak-pool")
            pkt = PktBuf.alloc(pool)
            del pkt                                    # no release()
            gc.collect()
        findings = [f for f in san.report.findings if f.rule == "PM-S05"]
        assert len(findings) == 1
        # The leak is attributed to this test, not to pool internals.
        assert "test_analysis_pmsan" in (findings[0].path or "")

    def test_released_handle_is_clean(self):
        with PMSan() as san:
            device = PMDevice(64 * 1024, name="t-ok")
            pool = BufferPool(device.region(0, 64 * 1024), slot_size=2048,
                              name="t-ok-pool")
            pkt = PktBuf.alloc(pool)
            pkt.release()
            del pkt
            gc.collect()
        assert san.report.ok, san.report.summary()

    @pytest.mark.no_pmsan
    def test_crash_epoch_exempts_buffers_lost_to_power_cycle(self):
        with PMSan() as san:
            device = PMDevice(64 * 1024, name="t-epoch")
            pool = BufferPool(device.region(0, 64 * 1024), slot_size=2048,
                              name="t-epoch-pool")
            pkt = PktBuf.alloc(pool)
            device.crash()                             # power cycle
            del pkt                                    # not a leak: epoch moved
            gc.collect()
        assert san.report.ok, san.report.summary()

    def test_suite_mode_does_not_arm_fence_checks(self):
        with PMSan(strict=False) as san:
            device = PMDevice(16 * 1024, name="t-suite")
            device.write(0, b"node")
            device.write(128, b"link")
            device.flush(128, 64, NULL_CONTEXT)
            device.fence(NULL_CONTEXT)
        assert san.report.ok

    def test_attach_watches_preexisting_device(self):
        device = PMDevice(16 * 1024, name="t-preexisting")
        with PMSan(strict=True) as san:
            san.attach(device)
            device.write(0, b"node")
            device.write(128, b"link")
            device.flush(128, 64, NULL_CONTEXT)
            device.fence(NULL_CONTEXT)
        assert "PM-S04" in rules_of(san.report)

    def test_self_test_entry_point(self, capsys):
        assert pmsan_main(["--self-test"]) == 0
        capsys.readouterr()


class TestSlotLifecycle:
    """PM-S06: PPktRecord slots must follow free → armed (alloc) →
    written (write_record) → committed (linked/rooted) → reclaimed
    (free).  Tracking is scoped to slabs whose backing device the
    sanitizer observes, so codec-level fixtures stay out of scope."""

    @staticmethod
    def make_slab(name):
        device = PMDevice(64 * 1024, name=name)
        return PMetaSlab(device.region(0, 64 * 1024)), device

    def test_double_commit_flagged(self):
        with PMSan() as san:
            slab, _device = self.make_slab("t-double-commit")
            slot = slab.alloc()
            slab.write_record(slot, PPktRecord(kind=KIND_HEAD, height=1))
            slab.write_root(slot)
            slab.write_record(slot, PPktRecord(kind=KIND_HEAD, height=2))
        assert "PM-S06" in rules_of(san.report)
        (finding,) = [f for f in san.report.findings
                      if f.rule == "PM-S06"]
        assert "double commit" in finding.message

    def test_write_into_unallocated_slot_flagged(self):
        with PMSan() as san:
            slab, _device = self.make_slab("t-unallocated")
            slab.write_record(3, PPktRecord(height=1, key=b"x"))
        assert "PM-S06" in rules_of(san.report)

    def test_link_of_unwritten_slot_flagged(self):
        with PMSan() as san:
            slab, _device = self.make_slab("t-link-armed")
            head = slab.alloc()
            slab.write_record(head, PPktRecord(kind=KIND_HEAD, height=1))
            slab.write_root(head)
            node = slab.alloc()
            slab.write_next(head, 0, node + 1)   # record never written
        assert "PM-S06" in rules_of(san.report)

    def test_legal_lifecycle_clean(self):
        with PMSan() as san:
            slab, _device = self.make_slab("t-lifecycle")
            head = slab.alloc()
            slab.write_record(head, PPktRecord(kind=KIND_HEAD, height=1))
            slab.write_root(head)
            node = slab.alloc()
            slab.write_record(node, PPktRecord(height=1, key=b"a"))
            slab.write_next(head, 0, node + 1)   # persist-before-link
            slab.write_next(head, 0, 0)          # unlink (nil is legal)
            slab.free(node)
        assert san.report.ok, san.report.summary()

    def test_rewrite_before_commit_allowed(self):
        # An armed-or-written slot is private to its writer until it is
        # linked; rewriting it is the normal build-then-publish flow.
        with PMSan() as san:
            slab, _device = self.make_slab("t-rewrite")
            slot = slab.alloc()
            slab.write_record(slot, PPktRecord(height=1, key=b"a"))
            slab.write_record(slot, PPktRecord(height=1, key=b"b"))
            slab.free(slot)
        assert san.report.ok, san.report.summary()

    def test_adopt_reachable_marks_slots_committed(self):
        with PMSan() as san:
            slab, _device = self.make_slab("t-adopt")
            slot = slab.alloc()
            slab.write_record(slot, PPktRecord(kind=KIND_HEAD, height=1))
            slab.adopt_reachable({slot})
            # Reachable after recovery == committed: in-place rewrite
            # is the double-commit bug.
            slab.write_record(slot, PPktRecord(kind=KIND_HEAD, height=2))
        assert "PM-S06" in rules_of(san.report)

    @pytest.mark.no_pmsan
    def test_preexisting_slab_not_tracked(self):
        # A slab created before the sanitizer has unknown slot history;
        # charging it would be guesswork.  (no_pmsan: relative to the
        # suite-wide sanitizer the slab is *not* pre-existing, so that
        # lane would rightly flag the planted rewrite.)
        slab, _device = self.make_slab("t-preexisting-slab")
        slot = slab.alloc()
        with PMSan() as san:
            slab.write_record(slot, PPktRecord(kind=KIND_HEAD, height=1))
            slab.write_root(slot)
            slab.write_record(slot, PPktRecord(kind=KIND_HEAD, height=2))
        assert san.report.ok, san.report.summary()


def skipped_persist_write_node(slist, key, value, height, flags, seq,
                               nexts, ctx):
    """``_write_node`` with the persist dropped — the planted bug.

    Byte-for-byte the real encoding; only the ``region.persist`` call
    is missing, so the level-0 link in ``insert`` commits a node whose
    lines are still dirty.
    """
    size = slist._node_size(len(key), len(value), height)
    node_off = slist._alloc_node(size, ctx)
    header20 = struct.pack(
        "<HIBBQI", len(key), len(value), height, flags, seq, crc32c(value)
    )
    node_crc = slist._node_crc(header20, key)
    blob = (
        header20
        + struct.pack("<I", node_crc)
        + b"".join(struct.pack("<Q", nxt) for nxt in nexts)
        + key
        + value
    )
    slist.region.write(node_off, blob)
    return node_off


class TestNoveLSMPutPath:
    """Strict-mode gate over the real persistent memtable."""

    SIZE = 1 << 20

    def test_put_path_is_flush_fence_clean(self):
        with PMSan(strict=True) as san:
            device = PMDevice(self.SIZE, name="memtable")
            slist = RegionSkipList.create(
                device.region(0, self.SIZE, "mt"), seed=7
            )
            for index in range(64):
                slist.insert(f"key-{index:04d}".encode(),
                             f"value-{index}".encode() * 8)
            assert slist.get(b"key-0031") is not None
        failures = [f.format() for f in san.report.failures]
        assert not failures, "\n".join(failures)

    def test_mutated_put_path_is_flagged(self, monkeypatch):
        with PMSan(strict=True) as san:
            device = PMDevice(self.SIZE, name="memtable-marred")
            slist = RegionSkipList.create(
                device.region(0, self.SIZE, "mt"), seed=7
            )
            monkeypatch.setattr(
                RegionSkipList, "_write_node", skipped_persist_write_node
            )
            slist.insert(b"key", b"value")
        assert "PM-S04" in rules_of(san.report), san.report.summary()
