"""Idle-connection reaper: a lost RST cannot pin a connection forever.

TCP never retransmits a RST, so a client abort lost on the wire leaves
the server side half-open: ESTABLISHED, no timers armed, the partial
request's buffers pinned.  ``NetworkStack.enable_idle_reaper`` closes
that hole with a periodic scan that silently tears down connections
idle past a threshold.  These tests prove the reaper fires on the
half-open victim, leaves active connections alone, releases the pinned
state, and never keeps an otherwise-idle simulation alive.
"""

from repro.bench.costmodel import CostModel
from repro.net.fabric import Fabric
from repro.net.stack import Host
from repro.net.tcp import TcpState
from repro.sim.engine import Simulator

MILLIS = 1_000_000.0
PORT = 7000


def make_pair():
    sim = Simulator()
    fabric = Fabric(sim)
    server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(), cores=1)
    client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel(), cores=1)
    return sim, server, client


class ServerApp:
    """Accepts connections; tracks delivered bytes and reset callbacks."""

    def __init__(self):
        self.socks = []
        self.data = bytearray()
        self.resets = 0

    def on_accept(self, sock, ctx):
        self.socks.append(sock)
        sock.on_data = lambda s, segment, c: self.data.extend(segment.bytes())
        sock.on_reset = lambda s: self._reset()

    def _reset(self):
        self.resets += 1


def start_client(client, payload, state):
    """Connect and send ``payload`` once established."""

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", PORT, ctx)
        state["sock"] = sock
        sock.on_established = lambda s, c: s.send(payload, c)

    client.process_on_core(client.cpus[0], start)


def vanish(sock):
    """Make the client disappear without a trace — the lost-RST case.

    ``_teardown`` drops the connection silently (no RST on the wire),
    which is exactly what the server observes when the client's RST is
    lost to fabric faults.
    """
    sock.conn._teardown()


class TestIdleReaper:
    def test_half_open_connection_is_reaped(self):
        sim, server, client = make_pair()
        app = ServerApp()
        server.stack.listen(PORT, app.on_accept)
        server.stack.enable_idle_reaper(idle_ns=2 * MILLIS)

        state = {}
        start_client(client, b"PUT /k half-of-a-request", state)
        sim.schedule(1 * MILLIS, lambda: vanish(state["sock"]))
        sim.run_until_idle(max_events=1_000_000)

        assert app.resets == 1
        assert server.stack.stats["conns_reaped"] == 1
        assert app.socks[0].conn.state is TcpState.CLOSED
        assert not server.stack._connections
        # Everything the half-open connection held is released.
        assert server.rx_pool.in_use == 0
        assert server.tx_pool.in_use == 0

    def test_active_connection_survives(self):
        sim, server, client = make_pair()
        app = ServerApp()
        server.stack.listen(PORT, app.on_accept)
        server.stack.enable_idle_reaper(idle_ns=2 * MILLIS)

        state = {}
        start_client(client, b"first", state)

        # Keep traffic flowing at half the idle threshold — many scan
        # periods elapse, but activity keeps resetting the idle clock.
        # Once the chatter ends, stand the reaper down: a connection
        # that simply goes quiet *would* be reaped (that is the
        # documented policy trade-off), which is not under test here.
        snapshot = {}

        def chat(round_no):
            if round_no >= 8:
                snapshot["resets"] = app.resets
                snapshot["reaped"] = server.stack.stats["conns_reaped"]
                snapshot["state"] = app.socks[0].conn.state
                server.stack.disable_idle_reaper()
                return
            client.process_on_core(
                client.cpus[0],
                lambda ctx: state["sock"].send(b"more", ctx),
            )
            sim.schedule(1 * MILLIS, chat, round_no + 1)

        sim.schedule(1 * MILLIS, chat, 0)
        sim.run_until_idle(max_events=1_000_000)

        assert snapshot["resets"] == 0
        assert snapshot["reaped"] == 0
        assert snapshot["state"] is TcpState.ESTABLISHED
        assert bytes(app.data) == b"first" + b"more" * 8

    def test_reaper_does_not_block_idle_drain(self):
        """With no connections the scan timer stays unarmed."""
        sim, server, _ = make_pair()
        server.stack.enable_idle_reaper(idle_ns=2 * MILLIS)
        start = sim.now
        sim.run_until_idle(max_events=1_000)
        assert sim.now == start
        assert server.stack._reaper_timer is None

    def test_disable_cancels_pending_scan(self):
        sim, server, client = make_pair()
        app = ServerApp()
        server.stack.listen(PORT, app.on_accept)
        server.stack.enable_idle_reaper(idle_ns=2 * MILLIS)

        state = {}
        start_client(client, b"hello", state)
        sim.schedule(1 * MILLIS, lambda: vanish(state["sock"]))
        sim.schedule(1.5 * MILLIS, server.stack.disable_idle_reaper)
        sim.run_until_idle(max_events=1_000_000)

        # Reaper was switched off before the victim crossed the idle
        # threshold: the half-open connection stays pinned (the hazard
        # the reaper exists to bound).
        assert server.stack.stats["conns_reaped"] == 0
        assert app.socks[0].conn.state is TcpState.ESTABLISHED
