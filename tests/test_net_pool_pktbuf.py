"""Unit tests for buffer pools and sk_buff-style packet metadata."""

import pytest

from repro.net.pool import BufferPool, PoolExhausted
from repro.net.pktbuf import PktBuf
from repro.pm.device import DRAMDevice, PMDevice


def make_pool(slots=8, slot_size=2048, pm=False):
    size = slots * slot_size
    dev = PMDevice(size) if pm else DRAMDevice(size)
    return BufferPool(dev.region(0, size, "pool"), slot_size), dev


class TestBufferPool:
    def test_alloc_free_cycle(self):
        pool, _ = make_pool(slots=2)
        a = pool.alloc()
        b = pool.alloc()
        assert pool.in_use == 2
        with pytest.raises(PoolExhausted):
            pool.alloc()
        a.put()
        c = pool.alloc()
        assert c.slot == a.slot  # LIFO reuse
        b.put()
        c.put()
        assert pool.in_use == 0

    def test_slots_do_not_overlap(self):
        pool, _ = make_pool(slots=4, slot_size=256)
        bufs = [pool.alloc() for _ in range(4)]
        for i, buf in enumerate(bufs):
            buf.write(0, bytes([i]) * 256)
        for i, buf in enumerate(bufs):
            assert buf.read(0, 256) == bytes([i]) * 256

    def test_refcounting_keeps_slot_alive(self):
        pool, _ = make_pool(slots=1)
        buf = pool.alloc()
        buf.get()
        assert buf.put() == 1
        with pytest.raises(PoolExhausted):
            pool.alloc()  # still held
        buf.put()
        assert pool.alloc() is not None

    def test_double_put_detected(self):
        pool, _ = make_pool()
        buf = pool.alloc()
        buf.put()
        with pytest.raises(RuntimeError):
            buf.put()

    def test_use_after_free_detected(self):
        pool, _ = make_pool()
        buf = pool.alloc()
        buf.put()
        with pytest.raises(RuntimeError):
            buf.get()

    def test_bounds_checked(self):
        pool, _ = make_pool(slot_size=128)
        buf = pool.alloc()
        with pytest.raises(IndexError):
            buf.write(120, b"123456789")

    def test_buffer_at_slot_for_recovery(self):
        pool, _ = make_pool(slots=4)
        buf = pool.buffer_at_slot(2)
        assert buf.slot == 2
        assert pool.in_use == 1
        with pytest.raises(RuntimeError):
            pool.buffer_at_slot(2)

    def test_high_water_mark(self):
        pool, _ = make_pool(slots=4)
        bufs = [pool.alloc() for _ in range(3)]
        for buf in bufs:
            buf.put()
        assert pool.high_water == 3

    def test_pm_pool_is_persistent(self):
        pool, _ = make_pool(pm=True)
        assert pool.persistent
        pool2, _ = make_pool(pm=False)
        assert not pool2.persistent


class TestPktBuf:
    def test_append_and_linear_bytes(self):
        pool, _ = make_pool()
        pkt = PktBuf.alloc(pool, headroom=64)
        pkt.append(b"hello")
        pkt.append(b" world")
        assert pkt.linear_bytes() == b"hello world"
        assert pkt.data_len == 11

    def test_push_prepends_into_headroom(self):
        pool, _ = make_pool()
        pkt = PktBuf.alloc(pool, headroom=10)
        pkt.append(b"payload")
        pkt.push(b"HDR")
        assert pkt.linear_bytes() == b"HDRpayload"
        assert pkt.headroom == 7

    def test_push_beyond_headroom_rejected(self):
        pool, _ = make_pool()
        pkt = PktBuf.alloc(pool, headroom=2)
        with pytest.raises(IndexError):
            pkt.push(b"too-big")

    def test_pull_strips_headers(self):
        pool, _ = make_pool()
        pkt = PktBuf.alloc(pool, headroom=64)
        pkt.append(b"HDRdata")
        pkt.pull(3)
        assert pkt.linear_bytes() == b"data"

    def test_pull_past_end_rejected(self):
        pool, _ = make_pool()
        pkt = PktBuf.alloc(pool, headroom=64)
        pkt.append(b"xy")
        with pytest.raises(IndexError):
            pkt.pull(3)

    def test_trim_shrinks(self):
        pool, _ = make_pool()
        pkt = PktBuf.alloc(pool, headroom=64)
        pkt.append(b"abcdef")
        pkt.trim(3)
        assert pkt.linear_bytes() == b"abc"

    def test_release_returns_slot(self):
        pool, _ = make_pool(slots=1)
        pkt = PktBuf.alloc(pool)
        pkt.release()
        assert pool.in_use == 0
        with pytest.raises(RuntimeError):
            pkt.append(b"x")  # use-after-free

    def test_clone_shares_payload_bytes(self):
        pool, _ = make_pool(slots=2)
        pkt = PktBuf.alloc(pool)
        pkt.append(b"shared payload")
        clone = pkt.clone()
        assert clone.linear_bytes() == b"shared payload"
        assert clone.buf is pkt.buf
        assert pkt.buf.refcount == 2

    def test_clone_survives_original_release(self):
        """The retransmission guarantee: data outlives the original."""
        pool, _ = make_pool(slots=1)
        pkt = PktBuf.alloc(pool)
        pkt.append(b"keep me")
        clone = pkt.clone()
        pkt.release()
        assert clone.linear_bytes() == b"keep me"
        assert pool.in_use == 1
        clone.release()
        assert pool.in_use == 0

    def test_clone_pull_does_not_affect_original(self):
        pool, _ = make_pool()
        pkt = PktBuf.alloc(pool)
        pkt.append(b"HDRbody")
        clone = pkt.clone()
        clone.pull(3)
        assert clone.linear_bytes() == b"body"
        assert pkt.linear_bytes() == b"HDRbody"

    def test_metadata_refcount_retain_release(self):
        pool, _ = make_pool(slots=1)
        pkt = PktBuf.alloc(pool)
        pkt.retain()
        assert pkt.release() == 1
        assert pool.in_use == 1  # still alive
        pkt.release()
        assert pool.in_use == 0

    def test_frags_extend_payload(self):
        pool, _ = make_pool(slots=3)
        pkt = PktBuf.alloc(pool)
        pkt.append(b"head")
        page = pool.alloc()
        page.write(0, b"frag-data")
        pkt.add_frag(page, 0, 9)
        page.put()  # pkt holds its own reference now
        assert pkt.total_len == 13
        assert pkt.to_wire() == b"headfrag-data"
        pkt.release()
        assert pool.in_use == 0

    def test_steal_buffer_outlives_pktbuf(self):
        """PASTE extract: the app owns payload after the stack is done."""
        pool, _ = make_pool(slots=1, pm=True)
        pkt = PktBuf.alloc(pool)
        pkt.append(b"precious")
        buf, off, length = pkt.steal_buffer()
        pkt.release()
        assert buf.read(off, length) == b"precious"
        assert pool.in_use == 1
        buf.put()

    def test_persist_payload_on_pm_pool(self):
        pool, dev = make_pool(pm=True)
        pkt = PktBuf.alloc(pool)
        pkt.append(b"durable payload")
        pkt.persist_payload()
        base = pkt.buf.region_offset(pkt.data_off)
        assert dev.is_durable(base, pkt.data_len)
