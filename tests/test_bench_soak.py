"""Saturation-soak driver: oracles, knee, negative control, canned curve.

The committed ``BENCH_soak.json`` is the acceptance artifact: a canned
sweep demonstrating the knee — admitted p99 stays bounded while the
shed count rises past saturation.  These tests validate its schema and
shape, run a short live soak end to end (all oracles clean), and prove
the negative control (``--no-containment``) trips the bounded-tail
oracle so the acceptance can never be vacuous.
"""

import json
import os

import pytest

from repro.bench import soak
from repro.core.overload import QueuePressure


BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_soak.json")


def quick_args(**overrides):
    """Short-window soak parameters for in-test sweeps."""
    args = soak.default_args()
    args.update({"duration_us": 12_000.0, "warmup_us": 3_000.0})
    args.update(overrides)
    return args


class TestCannedSoak:
    """The committed curve is schema-valid and demonstrates the knee."""

    @pytest.fixture(scope="class")
    def doc(self):
        with open(BENCH_PATH, encoding="utf-8") as fh:
            return soak.check_schema(json.load(fh))

    def test_committed_soak_is_clean(self, doc):
        assert doc["ok"] is True
        assert doc["violations"] == []
        assert doc["config"]["containment"] is True

    def test_knee_is_demonstrated(self, doc):
        points = doc["points"]
        assert len(points) >= 3
        # Below the knee: goodput tracks offered load, nothing shed.
        first = points[0]
        assert first["shed"] == 0
        assert first["goodput_krps"] > 0.95 * first["offered_krps"]
        # Past it: shedding engages and rises monotonically with load...
        sheds = [p["shed"] for p in points]
        assert sheds[-1] > 0
        assert sheds == sorted(sheds)
        # ...while the admitted tail stays bounded at EVERY point.
        budget = doc["config"]["p99_budget_us"]
        for point in points:
            assert 0 < point["p99_us"] <= budget, point["rate_krps"]
            assert point["admitted"] >= soak.MIN_TAIL_SAMPLES
        # The knee estimate lands inside the swept range.
        assert points[0]["rate_krps"] <= doc["knee_krps"] \
            <= points[-1]["rate_krps"]

    def test_digest_and_exact_tails_agree(self, doc):
        for point in doc["points"]:
            exact, digest = point["p99_us"], point["digest_p99_us"]
            assert abs(digest - exact) <= soak.DIGEST_TOLERANCE * exact

    def test_no_leaks_or_exhaustion_in_committed_run(self, doc):
        for point in doc["points"]:
            assert point["rx_exhaustions"] == 0

    def test_schema_check_rejects_malformed(self, doc):
        broken = dict(doc)
        broken["points"] = [dict(doc["points"][0])]
        del broken["points"][0]["shed"]
        with pytest.raises(AssertionError):
            soak.check_schema(broken)
        with pytest.raises(AssertionError):
            soak.check_schema({"schema": "wrong"})


class TestLiveSoak:
    def test_short_sweep_runs_clean_past_the_knee(self):
        args = quick_args()
        report = soak.run_soak([30_000.0, 55_000.0], args, containment=True)
        assert report.ok, report.violations
        below, above = report.points
        assert below["shed"] == 0
        assert above["shed"] > 0
        assert above["p99_us"] <= args["p99_budget_us"]
        assert report.knee_krps is not None
        doc = soak.check_schema(report.as_dict())
        assert doc["config"]["containment"] is True
        # Render never throws and mentions the knee.
        assert "knee" in report.render()

    def test_negative_control_trips_bounded_tail(self):
        args = quick_args()
        report = soak.run_soak([55_000.0], args, containment=False)
        assert not report.ok
        kinds = {kind for kind, _ in report.violations}
        assert "bounded-tail" in kinds

    def test_sweep_that_never_saturates_is_flagged_vacuous(self):
        args = quick_args()
        report = soak.run_soak([20_000.0], args, containment=True)
        kinds = {kind for kind, _ in report.violations}
        assert "shed-engages" in kinds


class TestCli:
    def test_expect_violations_inverts_exit(self, tmp_path):
        out = tmp_path / "soak.json"
        code = soak.main([
            "--rates", "55", "--duration-us", "12000", "--warmup-us", "3000",
            "--no-containment", "--expect-violations", "--json", str(out),
        ])
        assert code == 0
        doc = soak.check_schema(json.loads(out.read_text()))
        assert doc["ok"] is False
        # A clean run under --expect-violations fails instead.
        code = soak.main([
            "--rates", "30,55", "--duration-us", "12000",
            "--warmup-us", "3000", "--expect-violations",
        ])
        assert code == 1

    def test_clean_run_exits_zero(self, capsys):
        code = soak.main([
            "--rates", "30,55", "--duration-us", "12000",
            "--warmup-us", "3000",
        ])
        assert code == 0
        assert "all oracles clean" in capsys.readouterr().out


class TestQueuePressure:
    def test_hysteresis_transitions(self):
        class FakeCore:
            def __init__(self):
                self.delay = 0.0

            def queue_delay(self, now):
                return self.delay

        class FakeHost:
            def __init__(self):
                self.cpus = type("C", (), {"cores": [FakeCore()]})()
                self.sim = type("S", (), {"now": 0.0})()

        host = FakeHost()
        core = host.cpus.cores[0]
        qp = QueuePressure(host, high_ns=100.0, low_ns=50.0)
        events = []
        qp.add_pressure_listener(lambda s, p: events.append(p))
        qp.update()
        assert not qp.under_pressure
        core.delay = 150.0
        qp.update()
        assert qp.under_pressure and events == [True]
        core.delay = 75.0   # inside the hysteresis band: still pressured
        qp.update()
        assert qp.under_pressure
        core.delay = 40.0
        qp.update()
        assert not qp.under_pressure and events == [True, False]
        assert qp.pressure_events == 1

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ValueError):
            QueuePressure(object(), high_ns=10.0, low_ns=20.0)
