"""Unit tests for execution contexts and the CPU core model."""

import pytest

from repro.sim import Core, CpuSet, ExecutionContext, NULL_CONTEXT


class TestExecutionContext:
    def test_charges_accumulate(self):
        ctx = ExecutionContext()
        ctx.charge(100, "a")
        ctx.charge(50, "b")
        ctx.charge(25, "a")
        assert ctx.elapsed == 175
        assert ctx.category("a") == 125
        assert ctx.category("b") == 50
        assert ctx.category("missing") == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            ExecutionContext().charge(-1)

    def test_merge_folds_categories(self):
        a = ExecutionContext()
        b = ExecutionContext()
        a.charge(10, "x")
        b.charge(20, "x")
        b.charge(5, "y")
        a.merge(b)
        assert a.elapsed == 35
        assert a.category("x") == 30
        assert a.category("y") == 5

    def test_trace_records_order(self):
        ctx = ExecutionContext(trace=True)
        ctx.charge(1, "a")
        ctx.charge(2, "b")
        assert ctx.trace == [("a", 1), ("b", 2)]

    def test_snapshot_is_a_copy(self):
        ctx = ExecutionContext()
        ctx.charge(1, "a")
        snap = ctx.snapshot()
        ctx.charge(1, "a")
        assert snap == {"a": 1}

    def test_null_context_discards_everything(self):
        NULL_CONTEXT.charge(1000, "x")
        assert NULL_CONTEXT.elapsed == 0.0
        assert NULL_CONTEXT.category("x") == 0.0
        assert NULL_CONTEXT.snapshot() == {}


class TestCore:
    def test_idle_core_starts_immediately(self):
        core = Core()
        assert core.execute(now=100, cost=50) == 150
        assert core.free_at == 150

    def test_busy_core_queues_work(self):
        core = Core()
        core.execute(now=0, cost=100)
        # Arrives at t=10 but the core is busy until 100.
        assert core.execute(now=10, cost=50) == 150

    def test_queue_delay(self):
        core = Core()
        core.execute(now=0, cost=100)
        assert core.queue_delay(now=40) == 60
        assert core.queue_delay(now=200) == 0.0

    def test_busy_time_counts_only_work(self):
        core = Core()
        core.execute(now=0, cost=100)
        core.execute(now=500, cost=100)
        assert core.busy_time == 200
        assert core.utilisation(elapsed=1000) == pytest.approx(0.2)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Core().execute(now=0, cost=-5)


class TestCpuSet:
    def test_round_robin_assignment(self):
        cpus = CpuSet(3)
        picks = [cpus.assign().index for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_requires_at_least_one_core(self):
        with pytest.raises(ValueError):
            CpuSet(0)

    def test_total_busy_sums_cores(self):
        cpus = CpuSet(2)
        cpus[0].execute(0, 10)
        cpus[1].execute(0, 20)
        assert cpus.total_busy() == 30
