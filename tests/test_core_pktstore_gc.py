"""Tests for packet-store garbage collection (space reclamation)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.pktstore import PacketStore
from repro.net.pool import BufferPool
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace


def make_store(pool_slots=256, meta_bytes=1 << 20):
    dev = PMDevice((pool_slots * 2048) + meta_bytes + (1 << 16))
    ns = PMNamespace(dev)
    pool = BufferPool(ns.create("pool", pool_slots * 2048), 2048)
    store = PacketStore.create(ns.create("meta", meta_bytes), pool)
    return store, pool, dev, ns


def adopt(pool, payload):
    buf = pool.alloc()
    buf.write(64, payload)
    return [(buf, 64, len(payload))]


class TestGC:
    def test_gc_reclaims_superseded_versions(self):
        store, pool, _, _ = make_store()
        for round_no in range(5):
            store.put(b"k", adopt(pool, f"v{round_no}".encode()), 2, 0, 0)
        assert store.count == 5
        reclaimed = store.gc()
        assert reclaimed == 4
        assert store.count == 1
        assert store.get(b"k") == b"v4"

    def test_gc_frees_packet_buffers(self):
        store, pool, _, _ = make_store()
        for i in range(10):
            store.put(b"k", adopt(pool, bytes([i]) * 100), 100, 0, 0)
        in_use_before = pool.in_use
        store.gc()
        assert pool.in_use == in_use_before - 9

    def test_gc_frees_metadata_slots(self):
        store, pool, _, _ = make_store()
        for i in range(8):
            store.put(b"k", adopt(pool, b"x"), 1, 0, 0)
        used_before = store.slab.used
        store.gc()
        assert store.slab.used == used_before - 7

    def test_gc_drops_newest_tombstones(self):
        store, pool, _, _ = make_store()
        store.put(b"dead", adopt(pool, b"v"), 1, 0, 0)
        store.delete(b"dead")
        store.put(b"live", adopt(pool, b"v"), 1, 0, 0)
        reclaimed = store.gc()
        assert reclaimed == 2  # old version + its tombstone
        assert list(store.scan()) == [(b"live", b"v")]
        assert store.get(b"dead") is None

    def test_gc_keeps_tombstones_when_asked(self):
        store, pool, _, _ = make_store()
        store.put(b"k", adopt(pool, b"v"), 1, 0, 0)
        store.delete(b"k")
        reclaimed = store.gc(drop_tombstones=False)
        assert reclaimed == 1  # only the superseded value
        assert store.get(b"k") is None  # tombstone still hides it

    def test_gc_on_clean_store_is_noop(self):
        store, pool, _, _ = make_store()
        for i in range(5):
            store.put(f"k{i}".encode(), adopt(pool, b"v"), 1, 0, 0)
        assert store.gc() == 0
        assert store.count == 5

    def test_store_fully_usable_after_gc(self):
        store, pool, _, _ = make_store()
        for i in range(4):
            store.put(b"a", adopt(pool, bytes([i])), 1, 0, 0)
            store.put(b"b", adopt(pool, bytes([i + 100])), 1, 0, 0)
        store.gc()
        store.put(b"c", adopt(pool, b"new"), 3, 0, 0)
        assert store.get(b"a") == bytes([3])
        assert store.get(b"b") == bytes([103])
        assert store.get(b"c") == b"new"
        assert [k for k, _ in store.scan()] == [b"a", b"b", b"c"]

    def test_gc_survives_crash(self):
        store, pool, dev, ns = make_store()
        for i in range(6):
            store.put(b"k", adopt(pool, bytes([i]) * 10), 10, 0, 0)
        store.put(b"other", adopt(pool, b"keep"), 4, 0, 0)
        store.gc()
        dev.crash()
        ns2 = PMNamespace.reopen(dev)
        pool2 = BufferPool(ns2.open("pool"), 2048)
        store2, report = PacketStore.recover(ns2.open("meta"), pool2)
        assert dict(store2.scan()) == {b"k": bytes([5]) * 10, b"other": b"keep"}
        assert report.recovered == 2

    def test_slots_reclaimed_by_gc_are_reusable(self):
        store, pool, _, _ = make_store(pool_slots=8)
        # Fill the pool with versions of one key, GC, then refill.
        for i in range(6):
            store.put(b"k", adopt(pool, bytes([i])), 1, 0, 0)
        store.gc()
        for i in range(5):
            store.put(f"fresh-{i}".encode(), adopt(pool, b"y"), 1, 0, 0)
        assert len(list(store.scan())) == 6


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "del", "gc"]),
            st.integers(0, 6),
            st.binary(min_size=1, max_size=64),
        ),
        max_size=40,
    )
)
def test_property_gc_never_changes_visible_contents(ops):
    """GC at any moment is invisible to readers (modulo tombstone drop)."""
    store, pool, _, _ = make_store(pool_slots=512)
    model = {}
    for op, key_id, value in ops:
        key = f"key-{key_id}".encode()
        if op == "put":
            store.put(key, adopt(pool, value), len(value), 0, 0)
            model[key] = value
        elif op == "del":
            store.delete(key)
            model.pop(key, None)
        else:
            store.gc()
        assert dict(store.scan()) == {k: v for k, v in sorted(model.items())}
    store.gc()
    assert dict(store.scan()) == model
