"""``repro-lint --fix``: the mechanical CTX-01/SUP-01 rewriter.

Pins the acceptance criterion (the CTX-01 fixture lints clean after
one fix pass and still compiles) plus the safety properties: ``--diff``
writes nothing, suppressed lines are never rewritten, and fixing is
idempotent.  The ``# pmlint: disable=`` marker is spelled split so the
linter never reads these tests as control comments.
"""

import pytest

from repro.analysis import autofix, pmlint
from repro.analysis.cli import main as lint_main

DISABLE = "# pmlint" ": disable"

# The fixture: three chargeable calls with an ExecutionContext in
# scope, one call in a context-free function (must be refused).
CTX_FIXTURE = (
    "class Slab:\n"
    "    def commit(self, ctx):\n"
    "        self.region.flush(0, 64)\n"
    "        self.region.fence()\n"
    "\n"
    "    def hint(self, ctx):\n"
    "        self.region.persist(0, 64, mode='lazy')\n"
    "\n"
    "    def orphan(self):\n"
    "        self.region.fence()\n"
)


def fix_source(source, path="src/repro/net/_virtual.py"):
    return autofix.fix_module(pmlint.ModuleSource(path, source))


class TestCtxFix:
    def test_positional_insert_when_slots_align(self):
        result = fix_source(CTX_FIXTURE)
        lines = result.fixed.splitlines()
        assert lines[2].endswith("self.region.flush(0, 64, ctx)")
        assert lines[3].endswith("self.region.fence(ctx)")

    def test_keyword_insert_when_call_has_keywords(self):
        result = fix_source(CTX_FIXTURE)
        assert "self.region.persist(0, 64, mode='lazy', ctx=ctx)" \
            in result.fixed

    def test_no_ctx_in_scope_refused(self):
        result = fix_source(CTX_FIXTURE)
        refused = [f for f in result.refused if f.rule == "CTX-01"]
        assert len(refused) == 1
        assert refused[0].line == 10
        assert "no ExecutionContext in scope" in refused[0].description

    def test_fixed_fixture_lints_clean_and_compiles(self):
        result = fix_source(CTX_FIXTURE)
        compile(result.fixed, "<fixture>", "exec")
        module = pmlint.ModuleSource("src/repro/net/_virtual.py",
                                     result.fixed)
        remaining = [f for f in pmlint.lint_module(module,
                                                   select={"CTX-01"})
                     if f.line != 10]  # the refused context-free call
        assert not remaining

    def test_suppressed_line_never_rewritten(self):
        source = (
            "class Slab:\n"
            "    def commit(self, ctx):\n"
            f"        self.region.fence()  {DISABLE}=CTX-01 — "
            "charged by the caller\n"
        )
        result = fix_source(source)
        assert not result.changed
        assert result.refused and "suppression" in \
            result.refused[0].description

    def test_idempotent(self):
        once = fix_source(CTX_FIXTURE)
        twice = fix_source(once.fixed)
        assert not twice.changed
        assert not [f for f in twice.applied if f.rule == "CTX-01"]

    def test_local_ctx_binding_counts_as_in_scope(self):
        source = (
            "class Slab:\n"
            "    def commit(self):\n"
            "        ctx = self.make_context()\n"
            "        self.region.fence()\n"
        )
        result = fix_source(source)
        assert "self.region.fence(ctx)" in result.fixed


class TestSuppressionFix:
    def test_wrong_separator_normalized(self):
        source = (f"X = 1  {DISABLE} = PM-W01 - reachability is the "
                  "commit point\n")
        result = fix_source(source)
        assert result.applied
        assert ("# pmlint: disable=PM-W01 — reachability is the commit "
                "point") in result.fixed

    def test_missing_reason_refused(self):
        source = f"X = 1  {DISABLE}=PM-W01\n"
        result = fix_source(source)
        assert not result.changed
        assert result.refused
        assert "reason" in result.refused[0].description

    def test_normalized_form_is_stable(self):
        source = (f"X = 1  {DISABLE} = PM-W01 - reachability is the "
                  "commit point\n")
        once = fix_source(source)
        twice = fix_source(once.fixed)
        assert not twice.changed


class TestFixPaths:
    def test_write_mode_rewrites_file(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(CTX_FIXTURE)
        results = autofix.fix_paths([str(target)])
        assert results[0].changed
        assert "self.region.flush(0, 64, ctx)" in target.read_text()

    def test_diff_mode_writes_nothing(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(CTX_FIXTURE)
        results = autofix.fix_paths([str(target)], write=False)
        assert results[0].changed
        assert target.read_text() == CTX_FIXTURE
        diff = results[0].unified_diff()
        assert diff.startswith("---")
        assert "+        self.region.flush(0, 64, ctx)" in diff


class TestCli:
    def test_fix_diff_previews_and_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(CTX_FIXTURE)
        assert lint_main(["--fix", "--diff", str(target)]) == 0
        out = capsys.readouterr().out
        assert "would fix" in out
        assert "previewed" in out
        assert target.read_text() == CTX_FIXTURE

    def test_fix_applies_then_tree_lints_clean(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            "class Slab:\n"
            "    def commit(self, ctx):\n"
            "        self.region.flush(0, 64)\n"
            "        self.region.fence(ctx)\n"
        )
        assert lint_main(["--fix", str(target)]) == 0
        capsys.readouterr()
        assert lint_main([str(target), "--no-cache"]) == 0
        capsys.readouterr()

    def test_diff_without_fix_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--diff", str(tmp_path)])
        assert excinfo.value.code == 2
