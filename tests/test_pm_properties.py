"""Property tests for persistent-memory semantics (flush tracking, crash)."""

import random

from hypothesis import given, settings, strategies as st

from repro.pm.cache import FlushTracker
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("store"), st.integers(0, 4000), st.integers(1, 300)),
            st.tuples(st.just("flush"), st.integers(0, 4000), st.integers(1, 300)),
            st.tuples(st.just("fence"), st.just(0), st.just(0)),
        ),
        max_size=60,
    ),
    data_seed=st.integers(0, 2**31),
)
def test_property_persisted_state_is_prefix_of_fenced_writes(ops, data_seed):
    """After a crash, every byte either holds its last *fenced* value or
    a value that was legitimately pending — never a torn mixture within
    a cache line's snapshot."""
    rng = random.Random(data_seed)
    dev = PMDevice(8192)
    shadow_fenced = bytearray(8192)  # what a fence-respecting model expects
    pending_model = {}

    for op, offset, length in ops:
        offset = min(offset, 8192 - length) if length <= 8192 else 0
        if op == "store":
            payload = bytes(rng.randrange(256) for _ in range(length))
            dev.write(offset, payload)
        elif op == "flush":
            dev.flush(offset, length)
        else:
            dev.fence()
            # Model: everything flushed-and-fenced so far == device view
            # at fence time for those lines; we just record the full
            # current data for comparison simplicity.
    dev.fence()
    snapshot = bytes(dev.data)
    dev.flush(0, 8192)
    dev.fence()
    dev.crash()
    # After flushing everything and fencing, crash must preserve all data.
    assert bytes(dev.data) == snapshot


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 2000), st.binary(min_size=1, max_size=200)),
        min_size=1,
        max_size=20,
    )
)
def test_property_fenced_writes_always_survive(writes):
    dev = PMDevice(4096)
    expected = bytearray(4096)
    for offset, payload in writes:
        offset = min(offset, 4096 - len(payload))
        dev.write(offset, payload)
        dev.persist(offset, len(payload))
        expected[offset:offset + len(payload)] = payload
    dev.crash()
    assert bytes(dev.data) == bytes(expected)


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 2000), st.binary(min_size=1, max_size=200)),
        min_size=1,
        max_size=20,
    ),
    crash_seed=st.integers(0, 10_000),
)
def test_property_unfenced_lines_resolve_whole(writes, crash_seed):
    """Pending lines drain whole or not at all: every post-crash 64-byte
    line equals either the pre-store or post-store image of that line."""
    dev = PMDevice(4096)
    before = bytes(4096)
    for offset, payload in writes:
        offset = min(offset, 4096 - len(payload))
        dev.write(offset, payload)
        dev.flush(offset, len(payload))  # clwb without fence
    after = bytes(dev.data)
    dev.crash(rng=random.Random(crash_seed))
    result = bytes(dev.data)
    for line_start in range(0, 4096, 64):
        line = result[line_start:line_start + 64]
        assert line in (before[line_start:line_start + 64],
                        after[line_start:line_start + 64])


class TestFlushTrackerUnit:
    def test_lines_for_ranges(self):
        tracker = FlushTracker()
        assert list(tracker.lines_for(0, 64)) == [0]
        assert list(tracker.lines_for(63, 2)) == [0, 1]
        assert list(tracker.lines_for(128, 64)) == [2]
        assert list(tracker.lines_for(0, 0)) == []

    def test_stats_counters(self):
        dev = PMDevice(4096)
        dev.write(0, b"x")
        dev.flush(0, 1)
        dev.fence()
        assert dev.tracker.stores == 1
        assert dev.tracker.flushes == 1
        assert dev.tracker.fences == 1

    def test_dirty_byte_estimate(self):
        dev = PMDevice(4096)
        dev.write(0, bytes(130))  # 3 lines
        assert dev.tracker.dirty_byte_estimate() == 3 * 64
        dev.flush(0, 130)
        assert dev.tracker.dirty_byte_estimate() == 3 * 64  # now pending
        dev.fence()
        assert dev.tracker.dirty_byte_estimate() == 0


@settings(max_examples=30, deadline=None)
@given(
    names=st.lists(
        st.text(alphabet="abcdefgh", min_size=1, max_size=8),
        min_size=1, max_size=10, unique=True,
    ),
    sizes=st.lists(st.integers(64, 4096), min_size=10, max_size=10),
)
def test_property_namespace_reopen_finds_all_regions(names, sizes):
    dev = PMDevice(1 << 20)
    ns = PMNamespace(dev)
    created = {}
    for name, size in zip(names, sizes):
        region = ns.create(name, size)
        stamp = name.encode() * 2
        region.write(0, stamp)
        region.persist(0, len(stamp))
        created[name] = stamp
    dev.crash()
    ns2 = PMNamespace.reopen(dev)
    assert sorted(ns2.names()) == sorted(created)
    for name, stamp in created.items():
        assert ns2.open(name).read(0, len(stamp)) == stamp
