"""Cluster reseed: rebuild a killed node from the fabric capture.

PR 7 left promoted shards unreplicated after failover; the capture
closes that gap.  A host-kill storm runs with the cluster-wide tap on,
then ``reseed_from_capture`` rebuilds the victim from packets alone —
its pre-kill history plus the survivors' post-kill traffic — verifies
it key-by-key against the promoted primaries, and re-attaches it to
the ring as the fresh backup.
"""

import pytest

from repro.capture.replay import reseed_from_capture, verify_reseed
from repro.cluster.topology import ClusterConfig, build_cluster
from repro.testing.chaos_cluster import HostKillStorm


def run_storm():
    config = ClusterConfig(hosts=3, ack_policy="sync", capture=True,
                           metrics=True)
    storm = HostKillStorm(config=config, loops=8, puts_per_loop=5, seed=1)
    report = storm.run()
    assert report.ok, report.violations
    assert storm.victim is not None
    return storm


class TestReseedFromCapture:
    @pytest.fixture(scope="class")
    def reseeded(self):
        storm = run_storm()
        result = reseed_from_capture(storm.cluster, storm.victim)
        return storm, result

    def test_reseed_verifies_and_attaches(self, reseeded):
        storm, result = reseeded
        assert result.ok, result.summary()
        assert result.attached
        assert result.violations == []
        assert result.checked > 0
        assert result.injected > 0
        # the post-kill delta really came from the survivors' traffic
        assert result.caught_up > 0

    def test_rebuilt_node_took_over_the_ring_slot(self, reseeded):
        storm, result = reseeded
        cluster = storm.cluster
        assert storm.victim in cluster.ring.alive
        assert cluster.nodes[storm.victim] is result.node
        assert storm.victim not in cluster.killed_at
        # its NIC now sits on the shared fabric, not the private one
        assert result.node.host.nic.fabric is cluster.fabric

    def test_cluster_serves_after_revival(self, reseeded):
        # The revived node must not wedge the cluster: the simulator
        # drains cleanly with the rebuilt host attached.
        storm, _result = reseeded
        storm.cluster.sim.run_until_idle(max_events=1_000_000)

    def test_capture_gauges_report_the_tap(self, reseeded):
        storm, _result = reseeded
        assert storm.metrics.value("cluster.capture.seen") > 0
        assert storm.metrics.value("cluster.capture.buffered") > 0
        assert storm.metrics.value("cluster.capture.evicted") == 0


class TestReseedPreconditions:
    def test_reseed_requires_capture(self):
        config = ClusterConfig(hosts=3, metrics=True)
        cluster = build_cluster(config)
        name = next(iter(cluster.nodes))
        cluster.kill(name)
        cluster.failover(name)
        with pytest.raises(ValueError, match="capture"):
            reseed_from_capture(cluster, name)

    def test_reseed_refuses_live_nodes(self):
        config = ClusterConfig(hosts=3, capture=True, metrics=True)
        cluster = build_cluster(config)
        name = next(iter(cluster.nodes))
        with pytest.raises(RuntimeError, match="alive"):
            reseed_from_capture(cluster, name)

    def test_verify_reseed_flags_missing_keys(self):
        # An empty standby cannot match the promoted primaries.
        storm = run_storm()
        cluster = storm.cluster

        class EmptyEngine:
            @staticmethod
            def scan():
                return iter(())

        violations, checked = verify_reseed(cluster, EmptyEngine(),
                                            storm.victim)
        assert checked > 0
        assert violations
