"""Live request tracing: spans, stage totals and the Table-1 view.

The acceptance bar for the observability layer (ISSUE.md): a live
(non-bench) server run must emit a three-class stage breakdown that
agrees with the offline cost-model accounting within 5%, and the
disabled-recorder fast path must add zero metric samples (and zero
behavioural perturbation).
"""

from repro.bench.table1 import run_live_crosscheck
from repro.bench.testbed import SERVER_IP, make_testbed
from repro.bench.wrk import WrkClient
from repro.obs.trace import Recorder, Span, TraceRing
from repro.sim.units import ns_to_us
from repro.storage import ServerConfig


def _run_put_workload(metrics, duration_ns=2_000_000.0):
    config = ServerConfig(engine="novelsm", metrics=metrics)
    testbed = make_testbed(config=config)
    wrk = WrkClient(
        testbed.client, SERVER_IP, connections=1, value_size=1024,
        duration_ns=duration_ns, warmup_ns=300_000.0,
    )
    stats = wrk.run()
    return testbed, stats


class TestLiveTable1:
    def test_stage_totals_sum_to_rtt_within_5pct(self):
        # A 1 KB NoveLSM PUT: span stages + wire time must reconstruct
        # the externally measured RTT.  The residue is client-side CPU
        # and is small by design.
        testbed, stats = _run_put_workload(metrics=True)
        live = testbed.recorder.table1()
        assert live is not None and live["requests"] > 10
        total_us = ns_to_us(live["total"])
        assert abs(total_us - stats.avg_rtt_us) / stats.avg_rtt_us < 0.05, (
            f"trace total {total_us:.2f} µs vs RTT {stats.avg_rtt_us:.2f} µs"
        )

    def test_live_breakdown_matches_offline_accounting(self):
        # Two independent paths to the same numbers: cumulative
        # cost-model accounting divided by puts (the bench method)
        # vs per-request span deltas (the live method).
        offline, live = run_live_crosscheck(duration_ns=2_000_000.0)
        for row in ("prep", "checksum", "copy", "alloc_insert",
                    "persistence", "total"):
            assert offline[row] > 0
            delta = abs(live[row] - offline[row]) / offline[row]
            assert delta < 0.05, (
                f"{row}: offline {offline[row]:.3f} µs vs "
                f"live {live[row]:.3f} µs ({delta:.1%})"
            )

    def test_spans_carry_paper_stage_classes(self):
        testbed, _stats = _run_put_workload(metrics=True)
        span = testbed.recorder.ring.spans(last=1)[0]
        assert span.kind == "PUT"
        assert span.status == 200
        assert span.stages["networking"] > 0
        assert span.stages["datamgmt"] > 0
        assert span.stages["persistence"] > 0


class TestDisabledRecorder:
    def test_metrics_off_attaches_nothing(self):
        testbed, _stats = _run_put_workload(metrics=False)
        assert testbed.recorder is None
        assert testbed.metrics is None
        assert testbed.server.recorder is None
        assert testbed.kv.recorder is None
        assert testbed.fabric.recorder is None

    def test_metrics_are_free_of_behavioural_perturbation(self):
        # Same seed-free deterministic workload with and without the
        # recorder: identical request counts and identical RTTs, so
        # observation never changes what is observed.
        _plain_bed, plain = _run_put_workload(metrics=False)
        _obs_bed, observed = _run_put_workload(metrics=True)
        assert plain.completed == observed.completed
        assert plain.avg_rtt_us == observed.avg_rtt_us


class TestTraceRing:
    def test_capacity_and_eviction(self):
        ring = TraceRing(capacity=3)
        for index in range(5):
            ring.append(Span(kind="PUT", status=200, core=0,
                             t_end=float(index), total_ns=1.0,
                             stages={"networking": 1.0}))
        assert len(ring) == 3
        assert ring.appended == 5
        assert ring.dropped == 2
        assert [span.t_end for span in ring.spans(last=3)] == [2.0, 3.0, 4.0]

    def test_dump_is_json_ready(self):
        ring = TraceRing(capacity=4)
        ring.append(Span(kind="GET", status=404, core=1, t_end=9.0,
                         total_ns=5.0, stages={"networking": 5.0}))
        (entry,) = ring.dump(last=1)
        assert entry == {
            "kind": "GET", "status": 404, "core": 1, "t_end_ns": 9.0,
            "total_ns": 5.0, "stages": {"networking": 5.0},
            "span_id": 0, "rpc_id": None, "attempt": 0, "retransmits": 0,
            "links": [],
        }

    def test_clear(self):
        ring = TraceRing(capacity=2)
        ring.append(Span(kind="PUT", status=200, core=0, t_end=0.0,
                         total_ns=1.0, stages={}))
        ring.clear()
        assert len(ring) == 0 and ring.appended == 0


class TestRecorderReset:
    def test_reset_zeroes_counters_and_ring(self):
        testbed, _stats = _run_put_workload(metrics=True)
        recorder = testbed.recorder
        assert recorder.registry.value("server.requests") > 0
        assert len(recorder.ring) > 0
        recorder.reset()
        assert recorder.registry.value("server.requests") == 0
        assert len(recorder.ring) == 0
        assert recorder.table1() is None
