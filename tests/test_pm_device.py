"""Unit tests for memory devices and flush/fence persistence semantics."""

import random

import pytest

from repro.pm import CACHE_LINE, DRAMDevice, PMDevice
from repro.sim import ExecutionContext


class TestBasicIO:
    def test_write_then_read_roundtrip(self):
        dev = PMDevice(4096)
        dev.write(100, b"hello pm")
        assert dev.read(100, 8) == b"hello pm"

    def test_out_of_bounds_access_rejected(self):
        dev = PMDevice(1024)
        with pytest.raises(IndexError):
            dev.read(1020, 8)
        with pytest.raises(IndexError):
            dev.write(1024, b"x")
        with pytest.raises(IndexError):
            dev.read(-1, 4)

    def test_zero_size_device_rejected(self):
        with pytest.raises(ValueError):
            PMDevice(0)


class TestPersistenceSemantics:
    def test_unflushed_write_lost_on_crash(self):
        dev = PMDevice(4096)
        dev.write(0, b"volatile!")
        dev.crash()
        assert dev.read(0, 9) == b"\x00" * 9

    def test_flushed_and_fenced_write_survives_crash(self):
        dev = PMDevice(4096)
        dev.write(0, b"durable!")
        dev.flush(0, 8)
        dev.fence()
        dev.crash()
        assert dev.read(0, 8) == b"durable!"

    def test_flush_without_fence_is_not_durable_by_default(self):
        dev = PMDevice(4096)
        dev.write(0, b"pending")
        dev.flush(0, 7)
        dev.crash()  # no rng: pending lines conservatively dropped
        assert dev.read(0, 7) == b"\x00" * 7

    def test_pending_lines_drain_probabilistically(self):
        outcomes = set()
        for seed in range(20):
            dev = PMDevice(4096)
            dev.write(0, b"x")
            dev.flush(0, 1)
            dev.crash(rng=random.Random(seed))
            outcomes.add(dev.read(0, 1))
        # Over 20 seeds both outcomes must appear.
        assert outcomes == {b"x", b"\x00"}

    def test_flush_snapshots_bytes_at_clwb_time(self):
        dev = PMDevice(4096)
        dev.write(0, b"AAAA")
        dev.flush(0, 4)
        dev.write(0, b"BBBB")  # after clwb, before sfence
        dev.fence()
        dev.crash()
        # The fence drains the snapshot taken at clwb time ("AAAA");
        # the later store was never written back.
        assert dev.read(0, 4) == b"AAAA"

    def test_persist_is_flush_plus_fence(self):
        dev = PMDevice(4096)
        dev.write(64, b"both")
        dev.persist(64, 4)
        dev.crash()
        assert dev.read(64, 4) == b"both"

    def test_is_durable_tracks_line_state(self):
        dev = PMDevice(4096)
        dev.write(0, b"z")
        assert not dev.is_durable(0, 1)
        dev.persist(0, 1)
        assert dev.is_durable(0, 1)

    def test_flush_charges_per_dirty_line(self):
        dev = PMDevice(8192)
        ctx = ExecutionContext()
        dev.write(0, bytes(1024))  # 16 lines
        lines = dev.flush(0, 1024, ctx)
        assert lines == 1024 // CACHE_LINE
        assert ctx.category("pm.flush") == pytest.approx(lines * dev.flush_line_ns)

    def test_flush_of_clean_lines_is_free(self):
        dev = PMDevice(4096)
        ctx = ExecutionContext()
        assert dev.flush(0, 1024, ctx) == 0
        assert ctx.elapsed == 0.0

    def test_crash_then_new_writes_work(self):
        dev = PMDevice(4096)
        dev.write(0, b"one")
        dev.persist(0, 3)
        dev.crash()
        dev.write(3, b"two")
        dev.persist(3, 3)
        dev.crash()
        assert dev.read(0, 6) == b"onetwo"

    def test_persisted_view_reads_durable_image(self):
        dev = PMDevice(4096)
        dev.write(0, b"live")
        assert dev.persisted_view(0, 4) == b"\x00" * 4
        dev.persist(0, 4)
        assert dev.persisted_view(0, 4) == b"live"


class TestDRAM:
    def test_dram_loses_everything_on_crash(self):
        dev = DRAMDevice(1024)
        dev.write(0, b"gone")
        dev.flush(0, 4)
        dev.fence()
        dev.crash()
        assert dev.read(0, 4) == b"\x00" * 4

    def test_dram_flush_charges_nothing(self):
        dev = DRAMDevice(1024)
        ctx = ExecutionContext()
        dev.write(0, b"data")
        dev.flush(0, 4, ctx)
        dev.fence(ctx)
        assert ctx.elapsed == 0.0

    def test_dram_is_faster_than_pm(self):
        dram, pm = DRAMDevice(64), PMDevice(64)
        c1, c2 = ExecutionContext(), ExecutionContext()
        dram.charge_access(c1)
        pm.charge_access(c2)
        assert c1.elapsed < c2.elapsed


class TestRegion:
    def test_region_addressing_is_relative(self):
        dev = PMDevice(4096)
        region = dev.region(1024, 512, "r")
        region.write(0, b"rel")
        assert dev.read(1024, 3) == b"rel"
        assert region.read(0, 3) == b"rel"

    def test_region_bounds_enforced(self):
        dev = PMDevice(4096)
        region = dev.region(0, 128, "r")
        with pytest.raises(IndexError):
            region.write(120, b"123456789")

    def test_region_persist_survives_crash(self):
        dev = PMDevice(4096)
        region = dev.region(2048, 256, "r")
        region.write(10, b"keep")
        region.persist(10, 4)
        dev.crash()
        assert region.read(10, 4) == b"keep"

    def test_subregion_nests(self):
        dev = PMDevice(4096)
        outer = dev.region(1000, 1000, "outer")
        inner = outer.subregion(500, 100, "inner")
        inner.write(0, b"deep")
        assert dev.read(1500, 4) == b"deep"

    def test_global_offset_translation(self):
        dev = PMDevice(4096)
        region = dev.region(100, 100, "r")
        assert region.global_offset(5) == 105
