"""Bidirectional and concurrent TCP stress tests."""

import random

from hypothesis import given, settings, strategies as st

from repro.bench.costmodel import CostModel
from repro.net.fabric import Fabric, LinkFaults
from repro.net.stack import Host
from repro.sim.engine import Simulator


def make_pair(faults=None, client_cores=4):
    sim = Simulator()
    fabric = Fabric(sim, faults=faults)
    server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(), cores=2)
    client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel(),
                  cores=client_cores)
    return sim, server, client


def test_simultaneous_bidirectional_streams():
    """Both sides stream concurrently on one connection."""
    sim, server, client = make_pair()
    to_server = bytes(i % 256 for i in range(20_000))
    to_client = bytes((i * 3) % 256 for i in range(15_000))
    got_at_server = bytearray()
    got_at_client = bytearray()

    def on_accept(sock, ctx):
        sock.on_data = lambda s, seg, c: got_at_server.extend(seg.bytes())
        sock.send(to_client, ctx)

    server.stack.listen(7000, on_accept)

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", 7000, ctx)
        sock.on_data = lambda s, seg, c: got_at_client.extend(seg.bytes())
        sock.on_established = lambda s, c: s.send(to_server, c)

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle(max_events=2_000_000)
    assert bytes(got_at_server) == to_server
    assert bytes(got_at_client) == to_client


def test_many_concurrent_connections_isolated():
    """Data on one connection never leaks into another."""
    sim, server, client = make_pair()
    per_conn_rx = {}

    def on_accept(sock, ctx):
        sock.on_data = lambda s, seg, c: per_conn_rx.setdefault(
            s.conn.remote_port, bytearray()
        ).extend(seg.bytes())

    server.stack.listen(7000, on_accept)
    expected = {}

    def start(ctx):
        for i in range(12):
            payload = f"conn-{i}:".encode() * (50 + i)
            sock = client.stack.connect("10.0.0.1", 7000, ctx)
            expected[sock.conn.local_port] = payload
            sock.on_established = (
                lambda s, c, data=payload: s.send(data, c)
            )

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle(max_events=2_000_000)
    assert len(per_conn_rx) == 12
    for port, payload in expected.items():
        assert bytes(per_conn_rx[port]) == payload


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 5000),
    nconns=st.integers(1, 6),
    loss=st.floats(0, 0.12),
    reorder=st.floats(0, 0.2),
    size=st.integers(1, 8000),
)
def test_property_concurrent_streams_under_faults(seed, nconns, loss, reorder, size):
    """Every concurrent stream survives fabric chaos bit-exactly."""
    faults = LinkFaults(random.Random(seed), loss=loss, reorder=reorder)
    sim, server, client = make_pair(faults=faults)
    received = {}

    def on_accept(sock, ctx):
        sock.on_data = lambda s, seg, c: received.setdefault(
            s.conn.remote_port, bytearray()
        ).extend(seg.bytes())

    server.stack.listen(7000, on_accept)
    expected = {}

    def start(ctx):
        for i in range(nconns):
            payload = bytes((j * (i + 1) + seed) % 256 for j in range(size))
            sock = client.stack.connect("10.0.0.1", 7000, ctx)
            expected[sock.conn.local_port] = payload
            sock.on_established = lambda s, c, data=payload: s.send(data, c)

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle(max_events=4_000_000)
    for port, payload in expected.items():
        assert bytes(received.get(port, b"")) == payload


def test_interrupt_mode_adds_latency_but_stays_correct():
    """Busy-polling (the paper's server config) vs interrupt wakeups."""

    def echo_rtt(busy_poll):
        sim = Simulator()
        fabric = Fabric(sim)
        server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(),
                      busy_poll=busy_poll, irq_latency_ns=2000.0)
        client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel())

        def on_accept(sock, ctx):
            sock.on_data = lambda s, seg, c: s.send(seg.bytes(), c)

        server.stack.listen(7000, on_accept)
        times = {}

        def start(ctx):
            sock = client.stack.connect("10.0.0.1", 7000, ctx)

            def on_data(s, seg, c):
                client.call_at_completion(
                    lambda t_end, cc: times.__setitem__("end", t_end)
                )

            sock.on_data = on_data

            def on_established(s, c):
                s.send(b"ping", c)
                client.call_at_completion(
                    lambda t_end, cc: times.__setitem__("start", t_end)
                )

            sock.on_established = on_established

        client.process_on_core(client.cpus[0], start)
        sim.run_until_idle()
        return times["end"] - times["start"]

    busy = echo_rtt(True)
    irq = echo_rtt(False)
    assert irq > busy  # interrupt wakeup costs latency
    assert irq - busy < 10_000  # but only the modeled irq delay or so
