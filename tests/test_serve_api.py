"""The unified server API: ServerConfig + serve() and the testbed shim."""

import pytest

from repro.bench.testbed import SERVER_IP, make_testbed
from repro.bench.wrk import HomaWrkClient, WrkClient
from repro.core.overload import OverloadController
from repro.storage import (
    ENGINES,
    TRANSPORTS,
    Server,
    ServerConfig,
    build_engine,
    serve,
)
from repro.storage.kvserver import HomaKVServer, KVServer


class TestServerConfig:
    def test_defaults_validate(self):
        config = ServerConfig()
        assert config.validate() is config
        assert config.transport == "tcp"
        assert config.engine == "novelsm"
        assert config.cores == 1

    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ServerConfig(transport="quic").validate()

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            ServerConfig(engine="rocksdb").validate()

    def test_bad_cores_rejected(self):
        with pytest.raises(ValueError, match="cores"):
            ServerConfig(cores=0).validate()

    def test_zero_copy_over_homa_rejected(self):
        with pytest.raises(ValueError, match="zero_copy"):
            ServerConfig(transport="homa", zero_copy_get=True).validate()

    def test_bad_reaper_threshold_rejected(self):
        with pytest.raises(ValueError, match="reaper"):
            ServerConfig(reaper_idle_ns=0).validate()

    def test_with_overrides_copies(self):
        base = ServerConfig(engine="pktstore")
        derived = base.with_overrides(cores=4, metrics=True)
        assert derived.engine == "pktstore"
        assert derived.cores == 4 and derived.metrics
        assert base.cores == 1 and not base.metrics

    def test_engine_and_transport_tables(self):
        assert "novelsm" in ENGINES and "pktstore" in ENGINES
        assert TRANSPORTS == ("tcp", "homa")


class TestServe:
    def test_tcp_serve_builds_kvserver(self):
        testbed = make_testbed(config=ServerConfig())
        assert isinstance(testbed.kv, KVServer)
        assert testbed.config.transport == "tcp"

    def test_homa_serve_builds_homa_front_end(self):
        testbed = make_testbed(config=ServerConfig(transport="homa"))
        assert isinstance(testbed.kv, HomaKVServer)

    def test_core_count_mismatch_rejected(self):
        testbed = make_testbed(config=ServerConfig())
        with pytest.raises(ValueError, match="core"):
            serve(testbed.server, ServerConfig(cores=4),
                  pm_ns=testbed.pm_ns)

    def test_overload_true_builds_controller(self):
        testbed = make_testbed(config=ServerConfig(overload=True))
        assert isinstance(testbed.overload, OverloadController)
        assert testbed.overload.sim is testbed.sim

    def test_overload_instance_used_as_is(self):
        controller = OverloadController()
        testbed = make_testbed(config=ServerConfig(overload=controller))
        assert testbed.overload is controller
        assert controller.sim is testbed.sim

    def test_reaper_config_arms_tcp_reaper(self):
        testbed = make_testbed(
            config=ServerConfig(reaper_idle_ns=5_000_000.0))
        assert testbed.server.stack.reaper_idle_ns == 5_000_000.0

    def test_metrics_attach_everything(self):
        testbed = make_testbed(config=ServerConfig(metrics=True))
        assert testbed.recorder is not None
        assert testbed.metrics is testbed.recorder.registry
        assert testbed.server.recorder is testbed.recorder
        assert testbed.client.recorder is testbed.recorder
        assert testbed.fabric.recorder is testbed.recorder
        assert testbed.kv.recorder is testbed.recorder

    def test_serve_overrides_kwargs(self):
        testbed = make_testbed(config=ServerConfig())
        server = serve(testbed.server, ServerConfig(engine="null"),
                       port=8080)
        assert isinstance(server, Server)
        assert server.config.port == 8080

    def test_engine_injection_skips_build(self):
        testbed = make_testbed(config=ServerConfig())
        prebuilt = build_engine("null", testbed.server)
        server = serve(testbed.server, ServerConfig(engine="null"),
                       engine=prebuilt, port=81)
        assert server.engine is prebuilt


class TestRetiredKwargs:
    """The pre-config keywords are gone: the error must say which
    ServerConfig field replaced each, so old call sites migrate from
    the traceback alone."""

    def test_config_positionally(self):
        testbed = make_testbed(ServerConfig(engine="null", cores=2))
        assert testbed.config.engine == "null"
        assert testbed.config.cores == 2
        assert len(testbed.server.cpus) == 2

    def test_no_config_builds_default(self):
        testbed = make_testbed()
        assert testbed.config.engine == "novelsm"
        assert testbed.config.cores == 1

    def test_retired_engine_kwarg_names_replacement(self):
        with pytest.raises(TypeError, match=r"ServerConfig\(engine=\.\.\.\)"):
            make_testbed(engine="null")

    def test_retired_server_cores_kwarg_names_replacement(self):
        with pytest.raises(TypeError, match=r"ServerConfig\(cores=\.\.\.\)"):
            make_testbed(server_cores=2)

    def test_retired_kv_kwargs_names_replacement(self):
        with pytest.raises(TypeError, match="zero_copy_get"):
            make_testbed(kv_kwargs={"zero_copy_get": True})

    def test_unknown_kwarg_still_plain_typeerror(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            make_testbed(bogus_flag=1)


class TestTransportsServeRequests:
    """End-to-end smoke: the same config surface drives both transports."""

    @pytest.mark.parametrize("transport,cores", [
        ("tcp", 1), ("tcp", 2), ("homa", 1), ("homa", 4),
    ])
    def test_put_roundtrip(self, transport, cores):
        config = ServerConfig(transport=transport, cores=cores, metrics=True)
        testbed = make_testbed(config=config)
        client_class = HomaWrkClient if transport == "homa" else WrkClient
        wrk = client_class(
            testbed.client, SERVER_IP, connections=2, value_size=512,
            duration_ns=600_000.0, warmup_ns=100_000.0,
        )
        stats = wrk.run()
        assert stats.completed > 0
        assert testbed.metrics.value("server.requests") > 0
        if cores > 1:
            # RSS must actually spread work across the cores.
            busy = [testbed.metrics.value(f"server.core{i}.busy_ns")
                    for i in range(cores)]
            assert sum(1 for b in busy if b > 0) > 1
