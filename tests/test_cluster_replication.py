"""Replication contract: bounded backoff, idempotent apply, clean PM.

Three layers, matching the design's three promises:

- the :class:`~repro.cluster.backoff.Backoff` schedule is a pure,
  capped, bounded function of the attempt number (property-tested —
  hypothesis explores the parameter space);
- the live replicator honours that schedule against a dead backup and
  never applies a put twice on the backup, however the retries and the
  original attempt interleave (idempotency by origin RPC id);
- the backup's apply path — forwarded packets adopted into PPktRecord
  slots — is flush/fence-clean under a strict PMSan.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pmsan import PMSan
from repro.cluster.backoff import Backoff
from repro.cluster.replication import (
    decode_repl_ack,
    decode_repl_header,
    encode_repl_ack,
    encode_repl_message,
)
from repro.cluster.topology import ClusterConfig, build_cluster
from repro.net.http import build_request
from repro.sim.units import MILLIS

VALID = dict(
    base_ns=st.floats(min_value=1.0, max_value=1e7),
    factor=st.floats(min_value=1.0, max_value=8.0),
    cap_mult=st.floats(min_value=1.0, max_value=100.0),
    max_retries=st.integers(min_value=0, max_value=12),
)


class TestBackoffProperties:
    @given(**VALID)
    @settings(max_examples=200, deadline=None)
    def test_schedule_is_bounded_monotone_and_capped(
            self, base_ns, factor, cap_mult, max_retries):
        cap_ns = base_ns * cap_mult
        backoff = Backoff(base_ns=base_ns, multiplier=factor,
                          cap_ns=cap_ns, max_retries=max_retries)
        schedule = backoff.schedule()
        # Bounded: exactly max_retries delays, never one more.
        assert len(schedule) == max_retries
        # Capped and monotone non-decreasing.
        previous = 0.0
        for delay in schedule:
            assert delay <= cap_ns
            assert delay >= previous
            previous = delay
        # The first wait is the base (unless the cap is below it).
        if max_retries:
            assert schedule[0] == min(cap_ns, base_ns)
        # exhausted() flips exactly at the limit.
        assert not backoff.exhausted(max_retries - 1) or max_retries == 0
        assert backoff.exhausted(max_retries)
        assert backoff.exhausted(max_retries + 1)

    @given(**VALID)
    @settings(max_examples=100, deadline=None)
    def test_delay_is_deterministic(self, base_ns, factor, cap_mult,
                                    max_retries):
        a = Backoff(base_ns, factor, base_ns * cap_mult, max_retries)
        b = Backoff(base_ns, factor, base_ns * cap_mult, max_retries)
        assert a.schedule() == b.schedule()

    def test_validation(self):
        with pytest.raises(ValueError):
            Backoff(base_ns=0)
        with pytest.raises(ValueError):
            Backoff(multiplier=0.5)
        with pytest.raises(ValueError):
            Backoff(base_ns=10.0, cap_ns=5.0)
        with pytest.raises(ValueError):
            Backoff(max_retries=-1)
        with pytest.raises(ValueError):
            Backoff().delay(-1)


class TestWireFormat:
    def test_message_roundtrip(self):
        payload = encode_repl_message(42, 123.5, 0xABCD, b"PUT ...")
        origin, tstamp, csum, flags = decode_repl_header(payload)
        assert (origin, tstamp, csum, flags) == (42, 123.5, 0xABCD, 0)
        assert payload.endswith(b"PUT ...")

    def test_none_provenance_roundtrip(self):
        payload = encode_repl_message(7, None, None, b"x")
        origin, tstamp, csum, _ = decode_repl_header(payload)
        assert (origin, tstamp, csum) == (7, None, None)

    def test_ack_roundtrip(self):
        assert decode_repl_ack(encode_repl_ack(9, 200)) == (9, 200)

    def test_truncation_and_bad_magic_raise(self):
        with pytest.raises(ValueError):
            decode_repl_header(b"RPL1")
        with pytest.raises(ValueError):
            decode_repl_header(b"X" * 64)
        with pytest.raises(ValueError):
            decode_repl_ack(b"RPLA")


def _drive_put(cluster, key, value):
    """One PUT through the client's Homa transport to the key's
    current primary; returns {"status": ..., "rpc_id": ...} after the
    sim drains."""
    from repro.net.http import HttpParser

    result = {"status": None, "rpc_id": None}
    ip = cluster.nodes[cluster.ring.primary(key)].ip
    parser = HttpParser(is_response=True)

    def on_reply(segments, ctx):
        for segment in segments:
            for message in parser.feed(segment):
                result["status"] = message.status
                message.release()

    def start(ctx):
        result["rpc_id"] = cluster.client.homa.send_request(
            ip, cluster.config.port,
            build_request("PUT", "/" + key.decode(), value),
            ctx, on_reply=on_reply)

    cluster.client.process_on_core(cluster.client.cpus[0], start)
    cluster.sim.run_until_idle(max_events=5_000_000)
    return result


class TestBoundedRetrySchedule:
    """The live replicator against a dead backup: retries land on the
    backoff schedule, stop at the limit, then the node degrades."""

    BACKOFF = Backoff(base_ns=1 * MILLIS, multiplier=2.0,
                      cap_ns=4 * MILLIS, max_retries=3)

    def test_retries_follow_schedule_then_cap(self):
        cluster = build_cluster(ClusterConfig(hosts=3, backoff=self.BACKOFF))
        key = b"retry-key"
        primary = cluster.ring.primary(key)
        backup = cluster.ring.backup(key)
        replicator = cluster.nodes[primary].replicator

        # Record the sim time of every forward attempt.
        sends = []
        original = replicator._send

        def recording_send(entry, ctx):
            sends.append(cluster.sim.now)
            original(entry, ctx)

        replicator._send = recording_send
        cluster.kill(backup)   # dead, but not failed over: retries burn
        result = _drive_put(cluster, key, b"V" * 64)

        # The client still got its 200 — degradation, not an error.
        assert result["status"] == 200
        stats = replicator.stats
        assert stats["retries"] == self.BACKOFF.max_retries
        assert stats["give_ups"] == 1
        assert stats["degraded_acks"] == 1
        assert replicator.pending == 0
        assert cluster.nodes[backup].ip in replicator.suspect

        # 1 original + max_retries forwards, spaced by the schedule.
        assert len(sends) == 1 + self.BACKOFF.max_retries
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        for gap, expected in zip(gaps, self.BACKOFF.schedule()):
            # The retry fires on a core slice, so it lands at the
            # scheduled delay plus sub-millisecond processing skew
            # (and float scheduling rounds within a nanosecond).
            assert expected - 1.0 <= gap <= expected + 0.5 * MILLIS

        # The value is durable on the primary regardless.
        assert cluster.read_value(key) == b"V" * 64

    def test_suspect_backup_fast_fails_without_sending(self):
        cluster = build_cluster(ClusterConfig(hosts=3, backoff=self.BACKOFF))
        key = b"fast-fail"
        primary = cluster.ring.primary(key)
        backup = cluster.ring.backup(key)
        replicator = cluster.nodes[primary].replicator
        cluster.kill(backup)
        _drive_put(cluster, key, b"a" * 32)          # burns the budget
        sent_before = replicator.stats["sent"]
        result = _drive_put(cluster, key, b"b" * 32)  # fast-fails
        assert result["status"] == 200
        assert replicator.stats["sent"] == sent_before
        assert replicator.stats["suspect_fast_fails"] == 1


class TestIdempotentApply:
    """Never duplicate-apply on the backup, by origin RPC id."""

    def test_overlapping_attempts_apply_once(self):
        # A backoff far below the replication RTT (~25 µs): the first
        # retry fires while the original attempt is still in flight,
        # so the backup sees the same origin id twice.
        eager = Backoff(base_ns=5_000.0, multiplier=2.0, cap_ns=20_000.0,
                        max_retries=4)
        cluster = build_cluster(ClusterConfig(hosts=2, backoff=eager))
        key = b"overlap"
        value = b"once" * 16
        backup = cluster.ring.backup(key)
        result = _drive_put(cluster, key, value)
        assert result["status"] == 200
        applier = cluster.nodes[backup].applier
        assert applier.stats["applied"] == 1
        assert applier.stats["dup_suppressed"] >= 1
        assert applier.stats["apply_errors"] == 0
        assert cluster.nodes[backup].engine.get(key) == value

    def test_explicit_duplicate_forward_is_suppressed(self):
        cluster = build_cluster(ClusterConfig(hosts=2))
        key = b"dup"
        value = b"exactly-once" * 8
        primary = cluster.ring.primary(key)
        backup = cluster.ring.backup(key)
        node = cluster.nodes[primary]
        raw = build_request("PUT", "/" + key.decode(), value)
        acks = []

        def forward(ctx):
            node.replicator.replicate(
                777, raw, None, None, cluster.nodes[backup].ip, ctx,
                lambda ok, c: acks.append(ok))

        node.host.process_on_core(node.host.cpus[0], forward)
        cluster.sim.run_until_idle(max_events=1_000_000)
        node.host.process_on_core(node.host.cpus[0], forward)
        cluster.sim.run_until_idle(max_events=1_000_000)

        applier = cluster.nodes[backup].applier
        assert acks == [True, True]
        assert applier.stats["applied"] == 1
        assert applier.stats["dup_suppressed"] == 1
        assert cluster.nodes[backup].engine.get(key) == value

    def test_dedup_memory_is_bounded(self):
        cluster = build_cluster(ClusterConfig(hosts=2))
        key = b"bound"
        applier = cluster.nodes[cluster.ring.backup(key)].applier
        applier.applied_memory = 16
        for origin in range(64):
            applier._remember(origin, 200)
        assert len(applier._applied) <= 16

    def test_bad_frame_is_rejected_not_crashed(self):
        cluster = build_cluster(ClusterConfig(hosts=2))
        key = b"bad"
        primary = cluster.ring.primary(key)
        backup = cluster.ring.backup(key)
        node = cluster.nodes[primary]
        # Truncated HTTP inside a well-formed replication frame.
        raw = build_request("PUT", "/" + key.decode(), b"x" * 100)[:40]
        acks = []
        node.host.process_on_core(
            node.host.cpus[0],
            lambda ctx: node.replicator.replicate(
                888, raw, None, None, cluster.nodes[backup].ip, ctx,
                lambda ok, c: acks.append(ok)))
        cluster.sim.run_until_idle(max_events=1_000_000)
        applier = cluster.nodes[backup].applier
        assert applier.stats["bad_frames"] == 1
        assert applier.stats["applied"] == 0
        # The primary degraded rather than retrying a poison frame.
        assert acks == [False]


class TestApplyPathPMSan:
    """Satellite: strict-sanitizer gate over PPktRecord slot lifecycles
    on the replication apply path.  Forwarded puts, overwrites and
    deletes adopt/supersede/free persistent packet records on the
    backup; every record write must be persisted before it is linked
    and every freed slot must come back flush-clean."""

    def test_backup_apply_path_is_flush_fence_clean(self):
        cluster = build_cluster(ClusterConfig(hosts=2))
        key = b"sanitized"
        backup = cluster.ring.backup(key)
        with PMSan(strict=True) as san:
            san.attach(cluster.nodes[backup].pm_device)
            for round_ in range(6):
                # Overwrites: earlier PPktRecord slots are superseded
                # and freed while later ones are written and linked.
                result = _drive_put(cluster, key,
                                    bytes([round_]) * (64 + round_ * 32))
                assert result["status"] == 200
        applier = cluster.nodes[backup].applier
        assert applier.stats["applied"] == 6
        failures = [f.format() for f in san.report.failures]
        assert not failures, "\n".join(failures)
