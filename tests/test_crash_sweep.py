"""The exhaustive crash-point sweep framework (repro.testing).

Covers the layers bottom-up — replay cursors must mirror the device's
FlushTracker exactly, the journal must classify ops correctly — and
then the headline guarantees: a correct PacketStore protocol survives
every crash point with zero violations, and a deliberately broken
protocol (commit fence removed) is caught by the very same sweep.
"""

import pytest

from repro.core.ppktbuf import PMetaSlab
from repro.pm.device import PMDevice
from repro.storage.skiplist import _XorShift
from repro.testing import (
    ABSENT,
    CrashSweep,
    KVDurabilityOracle,
    NoveLSMWorld,
    OpJournal,
    PacketStoreWorld,
    RecordingPMDevice,
    WalWorld,
    make_cursor,
    mixed_ops,
    sequential_puts,
)


# --------------------------------------------------------------- replay layer


def test_replay_cursor_mirrors_flushtracker():
    """Replaying the trace must land on the device's own persisted image
    and pending-line set at every step."""
    device = RecordingPMDevice(8192)
    cursor = make_cursor(device.trace)

    device.write(0, b"a" * 100)
    device.write(200, b"b" * 64)
    device.flush(0, 100)
    device.write(300, b"c" * 10)
    device.flush(200, 64)
    device.fence()
    device.write(64, b"d" * 64)
    device.flush(64, 64)
    # Deliberately no final fence: one line stays pending.

    for event in device.trace:
        cursor.apply(event)
    assert bytes(cursor.persisted) == bytes(device.persisted)
    assert cursor.pending_units() == sorted(device.tracker.pending)
    assert bytes(cursor.data) == bytes(device.data)

    # The full-drain image equals what a fence would persist.
    drained = cursor.crash_image(cursor.pending_units())
    device.fence()
    assert bytes(drained) == bytes(device.persisted)


def test_replay_cursor_torn_subset():
    device = RecordingPMDevice(4096)
    device.write(0, b"x" * 64)
    device.write(64, b"y" * 64)
    device.flush(0, 128)
    trace = device.trace
    cursor = make_cursor(trace)
    for event in trace:
        cursor.apply(event)
    assert cursor.pending_units() == [0, 1]
    image = cursor.crash_image([1])
    assert bytes(image[0:64]) == bytes(64)       # line 0 lost
    assert bytes(image[64:128]) == b"y" * 64     # line 1 drained


def test_materialize_builds_postcrash_device():
    device = RecordingPMDevice(4096)
    device.persist(0, 64)  # write nothing, but produce flush+fence events
    cursor = make_cursor(device.trace)
    for event in device.trace:
        cursor.apply(event)
    crashed = cursor.materialize(cursor.crash_image())
    assert isinstance(crashed, PMDevice)
    assert crashed.persistent
    assert crashed.crashes == 1
    assert bytes(crashed.persisted_view(0, 64)) == bytes(64)


def test_drop_fences_injection_keeps_lines_pending():
    device = RecordingPMDevice(4096)
    device.write(0, b"z" * 64)
    device.flush(0, 64)
    device.fence()
    cursor = make_cursor(device.trace, drop_fences=True)
    for event in device.trace:
        cursor.apply(event)
    assert cursor.pending_units() == [0]
    assert bytes(cursor.persisted[0:64]) == bytes(64)


def test_drop_flushes_injection_keeps_lines_dirty():
    device = RecordingPMDevice(4096)
    device.write(0, b"z" * 64)
    device.flush(0, 64)
    device.fence()
    cursor = make_cursor(device.trace, drop_flushes=True)
    for event in device.trace:
        cursor.apply(event)
    assert cursor.pending_units() == []
    assert bytes(cursor.persisted[0:64]) == bytes(64 * b"\x00")


# -------------------------------------------------------------- journal layer


def test_journal_expectations_classify_ops():
    counter = {"n": 0}
    journal = OpJournal(lambda: counter["n"])

    op1 = journal.begin("put", b"k1", b"v1")
    counter["n"] = 5
    journal.commit(op1)
    op2 = journal.begin("put", b"k2", b"v2")
    counter["n"] = 9
    journal.commit(op2)
    op3 = journal.begin("delete", b"k1")
    counter["n"] = 14
    journal.commit(op3)

    # Before anything committed: both keys must be absent or whole.
    expect = journal.expectations(2)
    assert expect[b"k1"] == {ABSENT, b"v1"}
    assert expect[b"k2"] == {ABSENT}

    # After op1's commit, k1 is definite; op2 not yet begun at k=5.
    expect = journal.expectations(5)
    assert expect[b"k1"] == {b"v1"}
    assert expect[b"k2"] == {ABSENT}

    # Mid-delete: k1 may be the put's value or deleted.
    expect = journal.expectations(12)
    assert expect[b"k1"] == {b"v1", ABSENT}
    assert expect[b"k2"] == {b"v2"}

    # Everything acked.
    expect = journal.expectations(14)
    assert expect[b"k1"] == {ABSENT}
    assert expect[b"k2"] == {b"v2"}


def test_journal_rejects_double_commit():
    journal = OpJournal(lambda: 0)
    op = journal.begin("put", b"k")
    journal.commit(op)
    with pytest.raises(RuntimeError):
        journal.commit(op)


# ------------------------------------------------------------ the full sweep


def test_pktstore_sweep_zero_violations():
    """The §5.1 contract holds at *every* persistence-event boundary."""
    world = PacketStoreWorld(seed=3)
    sequential_puts(world, n=8, value_size=48)
    report = world.sweep().run()
    assert report.ok, report.summary()
    assert report.crash_points == len(world.device.trace) - \
        world.device.trace.setup_events + 1
    assert report.recoveries == report.scenarios
    assert report.per_mode["clean"] == report.crash_points
    assert report.per_mode["torn"] > 0


def test_pktstore_sweep_with_deletes_and_overwrites():
    world = PacketStoreWorld(seed=5)
    world.put(b"alpha", b"1" * 40)
    world.put(b"beta", b"2" * 40)
    world.put(b"alpha", b"3" * 40)   # overwrite
    world.delete(b"beta")
    report = world.sweep().run()
    assert report.ok, report.summary()


def test_sweep_detects_removed_commit_fence(monkeypatch):
    """Regression: break the protocol (no fence on the level-0 commit
    link) and the sweep must go red — this is the framework's own
    detection guarantee from the issue's acceptance criteria."""
    original = PMetaSlab.write_next

    def unfenced_write_next(self, slot, level, target, ctx=None, fence=True):
        return original(self, slot, level, target, ctx, fence=False)

    monkeypatch.setattr(PMetaSlab, "write_next", unfenced_write_next)
    world = PacketStoreWorld(seed=7)
    sequential_puts(world, n=6, value_size=32)
    report = world.sweep().run()
    assert not report.ok
    assert any(v.oracle == "kv-durability" for v in report.violations), \
        report.summary()


def test_sweep_detects_replay_level_fence_removal():
    world = PacketStoreWorld(seed=2)
    sequential_puts(world, n=5, value_size=32)
    report = world.sweep(drop_fences=True).run()
    assert not report.ok


def test_sweep_detects_replay_level_flush_removal():
    world = PacketStoreWorld(seed=2)
    sequential_puts(world, n=5, value_size=32)
    report = world.sweep(drop_flushes=True).run()
    assert not report.ok


def test_sweep_max_events_bounds_work():
    world = PacketStoreWorld(seed=4)
    sequential_puts(world, n=6, value_size=32)
    setup = world.device.trace.setup_events
    report = world.sweep(max_events=setup + 10).run()
    assert report.ok, report.summary()
    assert report.crash_points == 11


def test_sweep_include_setup_tolerates_clean_failures():
    world = PacketStoreWorld(seed=4)
    sequential_puts(world, n=3, value_size=32)
    report = world.sweep(include_setup=True).run()
    assert report.ok, report.summary()
    assert report.tolerated_failures > 0


def test_sweep_reorder_mode_sampled_subsets():
    world = PacketStoreWorld(seed=6)
    sequential_puts(world, n=4, value_size=32)
    report = world.sweep(modes=("clean", "drain", "torn", "reorder"),
                         reorder_samples=4).run()
    assert report.ok, report.summary()
    assert report.per_mode.get("reorder", 0) > 0


def test_sweep_rejects_unknown_mode():
    world = PacketStoreWorld()
    with pytest.raises(ValueError):
        world.sweep(modes=("clean", "bogus"))


def test_sweep_is_deterministic():
    def run_once():
        world = PacketStoreWorld(seed=9)
        sequential_puts(world, n=4, value_size=32)
        report = world.sweep(modes=("clean", "drain", "torn", "reorder"),
                             seed=9).run()
        return (report.scenarios, report.recoveries,
                sorted(report.per_mode.items()))

    assert run_once() == run_once()


# ------------------------------------------------------- the other two worlds


def test_novelsm_sweep_zero_violations():
    world = NoveLSMWorld(seed=3)
    world.put(b"a", b"1" * 30)
    world.put(b"b", b"2" * 30)
    world.put(b"a", b"3" * 30)
    world.delete(b"b")
    world.put(b"c", b"4" * 30)
    report = world.sweep().run()
    assert report.ok, report.summary()


def test_novelsm_sweep_detects_replay_fence_removal():
    world = NoveLSMWorld(seed=3)
    for i in range(4):
        world.put(f"k{i}".encode(), bytes([i]) * 24)
    report = world.sweep(drop_fences=True).run()
    assert not report.ok


def test_wal_sweep_zero_violations():
    world = WalWorld(seed=2)
    for i in range(6):
        world.append(f"record-{i}".encode() * 10)
    world.append(b"tail-unsynced" * 5, sync=False)
    report = world.sweep().run()
    assert report.ok, report.summary()
    # The unsynced tail really was exercised: some crash points had
    # pending blocks, so drain-mode scenarios exist.
    assert report.per_mode.get("drain", 0) > 0


def test_wal_sweep_detects_dropped_syncs():
    world = WalWorld(seed=2)
    for i in range(5):
        world.append(f"record-{i}".encode() * 20)
    report = world.sweep(drop_fences=True).run()  # block cursor: drop syncs
    assert not report.ok


# ------------------------------------------------------------- mixed workload


def test_mixed_ops_model_matches_store_and_sweep_passes():
    world = PacketStoreWorld(seed=11)
    model = mixed_ops(world, n=20, keyspace=6, value_size=24, seed=11)
    assert {k: v for k, v in world.store.scan()} == model
    report = world.sweep().run()
    assert report.ok, report.summary()
