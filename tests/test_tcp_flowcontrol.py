"""Tests for receive-window flow control and delayed ACKs."""

from repro.bench.costmodel import CostModel
from repro.net.fabric import Fabric
from repro.net.stack import Host
from repro.sim.engine import Simulator
from repro.sim.units import MICROS


def make_pair(server_rcv_wnd=None, server_delack=None):
    sim = Simulator()
    fabric = Fabric(sim)
    server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(), cores=1)
    client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel(), cores=2)
    if server_rcv_wnd is not None:
        server.stack.default_rcv_wnd = server_rcv_wnd
    if server_delack is not None:
        server.stack.delack_ns = server_delack
    return sim, server, client


def stream(sim, server, client, payload):
    received = bytearray()
    windows_seen = []

    def on_accept(sock, ctx):
        sock.on_data = lambda s, seg, c: received.extend(seg.bytes())

    server.stack.listen(7000, on_accept)

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", 7000, ctx)

        def on_established(s, c):
            windows_seen.append(s.conn.snd_wnd)
            s.send(payload, c)

        sock.on_established = on_established

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle(max_events=3_000_000)
    return received, windows_seen


class TestReceiveWindow:
    def test_tiny_window_still_delivers_everything(self):
        sim, server, client = make_pair(server_rcv_wnd=3000)
        payload = bytes(i % 256 for i in range(50_000))
        received, _ = stream(sim, server, client, payload)
        assert bytes(received) == payload

    def test_sender_learns_advertised_window(self):
        sim, server, client = make_pair(server_rcv_wnd=4000)
        payload = bytes(2000)
        _received, windows = stream(sim, server, client, payload)
        # The SYN-ACK advertised the server's 4000-byte ceiling.
        assert windows == [4000]

    def test_sender_never_exceeds_window_in_flight(self):
        sim, server, client = make_pair(server_rcv_wnd=3000)
        max_flight = {"value": 0}
        original = Host.process_on_core

        def spy(self, core, fn, start=None):
            result = original(self, core, fn, start)
            for conn in client.stack._connections.values():
                max_flight["value"] = max(
                    max_flight["value"], conn.snd_nxt - conn.snd_una
                )
            return result

        Host.process_on_core = spy
        try:
            payload = bytes(20_000)
            received, _ = stream(sim, server, client, payload)
            assert len(received) == 20_000
        finally:
            Host.process_on_core = original
        # Flight never exceeded the advertised 3000 bytes (+1 for FIN/SYN).
        assert max_flight["value"] <= 3001


class TestDelayedAck:
    def test_one_way_stream_acks_coalesce(self):
        """With delayed ACKs, a one-way stream generates far fewer pure
        ACKs than segments (coalescing), yet delivers everything."""
        quick_sim, quick_srv, quick_cli = make_pair()
        payload = bytes(i % 256 for i in range(40_000))
        stream(quick_sim, quick_srv, quick_cli, payload)
        quick_acks = quick_srv.stack.stats["tx_packets"]

        del_sim, del_srv, del_cli = make_pair(server_delack=400 * MICROS)
        received, _ = stream(del_sim, del_srv, del_cli, payload)
        delayed_acks = del_srv.stack.stats["tx_packets"]

        assert bytes(received) == payload
        assert delayed_acks < quick_acks

    def test_delayed_ack_eventually_fires(self):
        """A lone segment with nothing to piggyback still gets ACKed."""
        sim, server, client = make_pair(server_delack=400 * MICROS)
        payload = b"just one segment"
        received, _ = stream(sim, server, client, payload)
        assert bytes(received) == payload
        # The sender's retransmission queue drained (its data was ACKed
        # by the delayed timer, not by an RTO retransmission).
        conn = next(iter(client.stack._connections.values()))
        assert not conn.rtx_queue
        assert conn.stats["retransmits"] == 0
