"""Unit tests for the fabric (links, switch, faults) and NIC model."""

import random

import pytest

from repro.bench.costmodel import CostModel
from repro.net.fabric import Fabric, Link, LinkFaults
from repro.net.headers import IPv4Header, TCPHeader, ETH_HEADER_LEN, IPV4_HEADER_LEN
from repro.net.nic import Nic, NicFeatures, _l4_checksum_of_frame, _l4_csum_field
from repro.net.stack import Host
from repro.sim.engine import Simulator


class TestLink:
    def test_serialization_time_scales_with_size(self):
        link = Link(bandwidth_gbps=25.0, propagation_ns=200.0)
        small = link.serialization_ns(100)
        large = link.serialization_ns(1500)
        assert large == pytest.approx(15 * small)
        # 1500B at 25 Gbps = 480 ns.
        assert large == pytest.approx(480.0)

    def test_back_to_back_frames_queue_on_the_link(self):
        link = Link(bandwidth_gbps=25.0, propagation_ns=0.0)
        first = link.transmit(now=0.0, nbytes=1500)
        second = link.transmit(now=0.0, nbytes=1500)
        assert second == pytest.approx(2 * first)

    def test_idle_link_starts_immediately(self):
        link = Link(bandwidth_gbps=25.0, propagation_ns=100.0)
        link.transmit(now=0.0, nbytes=1500)
        later = link.transmit(now=10_000.0, nbytes=1500)
        assert later == pytest.approx(10_000.0 + 480.0 + 100.0)


class TestFabric:
    def make(self, faults=None):
        sim = Simulator()
        fabric = Fabric(sim, faults=faults)
        server = Host(sim, "a", "10.0.0.1", fabric, CostModel.paste())
        client = Host(sim, "b", "10.0.0.2", fabric, CostModel.kernel())
        return sim, fabric, server, client

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim)
        Host(sim, "a", "10.0.0.1", fabric, CostModel.paste())
        with pytest.raises(ValueError):
            Host(sim, "dup", "10.0.0.1", fabric, CostModel.paste())

    def test_frames_to_unknown_hosts_blackholed(self):
        sim, fabric, server, _client = self.make()
        fabric.transmit(server.nic, 0x0A0000FF, b"x" * 100)
        sim.run_until_idle()  # nothing delivered, nothing crashes
        assert fabric.frames == 1

    def test_one_way_latency_model(self):
        sim, fabric, _, _ = self.make()
        latency = fabric.one_way_latency_ns(1500)
        # two serialisations + two propagations + switch
        assert latency == pytest.approx(2 * 480.0 + 2 * 200.0 + 300.0)

    def test_fault_free_fabric_preserves_order(self):
        sim, fabric, server, client = self.make()
        arrivals = []
        client.nic.on_wire = lambda frame: arrivals.append(frame)
        for i in range(10):
            fabric.transmit(server.nic, client.ip, bytes([i]) * 60)
        sim.run_until_idle()
        assert [a[0] for a in arrivals] == list(range(10))


class TestLinkFaults:
    def test_loss_rate_statistical(self):
        faults = LinkFaults(random.Random(1), loss=0.5)
        outcomes = [faults.plan(b"frame") for _ in range(400)]
        dropped = sum(1 for plan in outcomes if not plan)
        assert 120 < dropped < 280

    def test_corruption_flips_exactly_one_bit(self):
        faults = LinkFaults(random.Random(2), corrupt=1.0)
        frame = bytes(64)
        ((_, corrupted),) = faults.plan(frame)
        diff = [i for i in range(64) if corrupted[i] != frame[i]]
        assert len(diff) == 1
        xor = corrupted[diff[0]] ^ frame[diff[0]]
        assert bin(xor).count("1") == 1

    def test_duplicate_doubles_delivery(self):
        faults = LinkFaults(random.Random(3), duplicate=1.0)
        plan = faults.plan(b"frame")
        assert len(plan) == 2
        assert plan[0][1] == plan[1][1]

    def test_reorder_adds_delay(self):
        faults = LinkFaults(random.Random(4), reorder=1.0, reorder_delay_ns=1000.0)
        ((delay, _),) = faults.plan(b"frame")
        assert 0 <= delay <= 1000.0


def _tcp_frame(payload=b"data", src="10.0.0.2", dst="10.0.0.1"):
    ip = IPv4Header(src, dst, total_len=IPV4_HEADER_LEN + 20 + len(payload))
    tcp = TCPHeader(4000, 80, seq=1, ack=0, flags=0x18)
    tcp.compute_checksum(ip, payload)
    eth = b"\x02\x00\x0a\x00\x00\x01" + b"\x02\x00\x0a\x00\x00\x02" + b"\x08\x00"
    return eth + ip.pack() + tcp.pack() + payload


class TestNic:
    def make_host(self, features=None):
        sim = Simulator()
        fabric = Fabric(sim)
        host = Host(sim, "h", "10.0.0.1", fabric, CostModel.paste(),
                    nic_features=features)
        return sim, host

    def test_rx_dma_and_hw_timestamp(self):
        sim, host = self.make_host()
        frame = _tcp_frame()
        sim.schedule(1000, host.nic.on_wire, frame)
        received = []
        host.on_nic_rx = lambda nic, pkt: received.append(pkt)
        sim.run_until_idle()
        (pkt,) = received
        assert pkt.linear_bytes() == frame
        assert pkt.hw_tstamp == pytest.approx(1000.0)
        assert pkt.csum_verified

    def test_rx_csum_offload_flags_corruption(self):
        sim, host = self.make_host()
        frame = bytearray(_tcp_frame())
        frame[-1] ^= 0xFF  # corrupt payload
        received = []
        host.on_nic_rx = lambda nic, pkt: received.append(pkt)
        sim.schedule(0, host.nic.on_wire, bytes(frame))
        sim.run_until_idle()
        assert not received[0].csum_verified
        assert host.nic.stats["rx_bad_csum"] == 1

    def test_no_hw_timestamp_without_feature(self):
        sim, host = self.make_host(NicFeatures(hw_timestamps=False))
        received = []
        host.on_nic_rx = lambda nic, pkt: received.append(pkt)
        sim.schedule(0, host.nic.on_wire, _tcp_frame())
        sim.run_until_idle()
        assert received[0].hw_tstamp is None

    def test_rx_pool_exhaustion_drops(self):
        sim, host = self.make_host()
        # Exhaust the pool.
        while host.rx_pool.available:
            host.rx_pool.alloc()
        host.nic.on_wire(_tcp_frame())
        assert host.nic.stats["rx_dropped_nobuf"] == 1

    def test_l4_checksum_helpers_handle_unknown_proto(self):
        ip = IPv4Header("1.2.3.4", "5.6.7.8", proto=17,  # UDP: not offloaded
                        total_len=IPV4_HEADER_LEN + 8)
        frame = bytes(14) + ip.pack() + bytes(8)
        assert _l4_checksum_of_frame(frame) is None
        assert _l4_csum_field(frame) is None
