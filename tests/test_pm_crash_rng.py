"""The seeded-rng crash contract (repro.pm.cache.FlushTracker.crash).

Every crash in the suite must be reproducible from seeds alone:
``rng=None`` never falls back to global randomness, the ``random``
module itself is rejected (hidden global state), drain decisions are
made in sorted line order so they are independent of store/flush
history, and the drain probability is validated.
"""

import random

import pytest

from repro.pm.device import DRAMDevice, PMDevice


def _dirty_pending_device(lines=(0, 2, 5, 9), size=4096):
    """A device with the given cache lines sitting in the pending queue."""
    dev = PMDevice(size)
    for line in lines:
        dev.write(line * 64, bytes([line + 1]) * 64)
        dev.flush(line * 64, 64)
    return dev


def test_crash_rejects_random_module():
    dev = _dirty_pending_device()
    with pytest.raises(TypeError, match="seeded RNG instance"):
        dev.crash(rng=random)


def test_crash_rejects_object_without_random_method():
    dev = _dirty_pending_device()
    with pytest.raises(TypeError):
        dev.crash(rng=object())


def test_crash_validates_drain_probability():
    for bad in (-0.1, 1.5):
        dev = _dirty_pending_device()
        with pytest.raises(ValueError):
            dev.crash(rng=random.Random(1), pending_persist_prob=bad)


def test_crash_without_rng_is_conservative_and_deterministic():
    images = []
    for _ in range(2):
        dev = _dirty_pending_device()
        dev.crash()  # no rng: every pending line dropped, bit-for-bit
        images.append(bytes(dev.persisted))
    assert images[0] == images[1]
    assert images[0] == bytes(4096)


def test_same_seed_same_drain_outcome():
    outcomes = []
    for _ in range(2):
        dev = _dirty_pending_device()
        dev.crash(rng=random.Random(77), pending_persist_prob=0.5)
        outcomes.append(bytes(dev.persisted))
    assert outcomes[0] == outcomes[1]


def test_drain_order_is_canonical_not_historical():
    """Two devices with identical pending content but different
    store/flush *order* must make identical drain decisions for the
    same seed — the tracker visits pending lines sorted, not in
    insertion order."""
    lines = (0, 2, 5, 9)
    forward = _dirty_pending_device(lines)
    backward = _dirty_pending_device(tuple(reversed(lines)))
    forward.crash(rng=random.Random(123), pending_persist_prob=0.4)
    backward.crash(rng=random.Random(123), pending_persist_prob=0.4)
    assert bytes(forward.persisted) == bytes(backward.persisted)


def test_probability_extremes():
    dev = _dirty_pending_device((0, 1, 2))
    dev.crash(rng=random.Random(1), pending_persist_prob=1.0)
    assert bytes(dev.persisted[0:192]) != bytes(192)  # all drained
    dev2 = _dirty_pending_device((0, 1, 2))
    dev2.crash(rng=random.Random(1), pending_persist_prob=0.0)
    assert bytes(dev2.persisted[0:192]) == bytes(192)  # none drained


def test_dram_crash_accepts_uniform_signature():
    """Crash-injection code power-cycles any device kind through one
    signature; DRAM ignores the knobs but must accept them."""
    dev = DRAMDevice(1024)
    dev.write(0, b"gone")
    dev.crash(rng=random.Random(1), pending_persist_prob=0.3)
    assert bytes(dev.read(0, 4)) == bytes(4)
