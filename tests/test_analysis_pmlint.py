"""PMLint: rule engine, suppressions, and the planted-bug negative checks.

The linter's own self-test (every rule must flag its planted BAD
snippet and stay silent on its GOOD twin) is re-run here so the test
suite — not just the CI lint job — proves detection power.  The
``# pmlint: disable=`` marker is spelled split in this file so the
linter never mistakes these tests for control comments.
"""

import pytest

from repro.analysis import pmlint
from repro.analysis.cli import main as lint_main

# A path inside the linter's persistence scope (rules that scope by
# path see virtual modules under this name as lintable).
SCOPED_PATH = "src/repro/net/_virtual.py"

DISABLE = "# pmlint" ": disable"


def lint_source(source, select=None, path=SCOPED_PATH):
    module = pmlint.ModuleSource(path, source)
    return pmlint.lint_module(module, select=select)


def active(findings, rule=None):
    return [f for f in findings
            if not f.suppressed and (rule is None or f.rule == rule)]


class TestSelfTest:
    def test_every_rule_detects_its_planted_bug(self):
        report = pmlint.self_test()
        assert report.ok, report.summary()

    def test_rules_all_carry_examples(self):
        for rule in pmlint.iter_rules():
            assert rule.BAD is not None, rule.id
            assert rule.GOOD is not None, rule.id
            assert rule.hint, rule.id


class TestFlushFenceRules:
    MISSING_FENCE = (
        "def commit(region, blob, ctx):\n"
        "    region.write(0, blob)\n"
        "    region.flush(0, len(blob), ctx)\n"
    )

    def test_flush_without_fence_flagged(self):
        findings = active(lint_source(self.MISSING_FENCE), rule="PM-W01")
        assert len(findings) == 1
        assert findings[0].line == 3
        assert findings[0].severity == "warn"

    def test_fence_after_flush_clean(self):
        source = self.MISSING_FENCE + "    region.fence(ctx)\n"
        assert not active(lint_source(source), rule="PM-W01")

    def test_block_device_sync_counts_as_fence(self):
        source = (
            "def append(device, blob, ctx):\n"
            "    device.write(0, blob)\n"
            "    device.sync(ctx)\n"
        )
        assert not active(lint_source(source), rule="PM-W02")

    def test_fence_parameter_defers_to_caller(self):
        source = (
            "def write_next(region, addr, blob, ctx, fence=True):\n"
            "    region.write(addr, blob)\n"
            "    region.flush(addr, 8, ctx)\n"
            "    if fence:\n"
            "        region.fence(ctx)\n"
        )
        assert not active(lint_source(source), rule="PM-W01")


class TestSuppressions:
    def test_inline_suppression_with_reason_honored(self):
        source = (
            "def commit(region, blob, ctx):\n"
            "    region.write(0, blob)\n"
            f"    {DISABLE}=PM-W01 — caller fences after the batch\n"
            "    region.flush(0, len(blob), ctx)\n"
        )
        findings = lint_source(source)
        suppressed = [f for f in findings if f.suppressed]
        assert len(suppressed) == 1
        assert suppressed[0].rule == "PM-W01"
        assert "caller fences" in suppressed[0].reason
        assert not active(findings, rule="PM-W01")

    def test_suppression_without_reason_is_sup01_error(self):
        source = (
            "def commit(region, blob, ctx):\n"
            "    region.write(0, blob)\n"
            f"    region.flush(0, len(blob), ctx)  {DISABLE}=PM-W01\n"
        )
        findings = active(lint_source(source), rule="SUP-01")
        assert len(findings) == 1
        assert findings[0].severity == "error"

    def test_unparseable_control_comment_is_sup01(self):
        source = f"X = 1  {DISABLE} PM-W01 oops\n"
        assert active(lint_source(source), rule="SUP-01")

    def test_suppression_does_not_leak_to_other_rules(self):
        source = (
            "def commit(region, blob, ctx):\n"
            f"    {DISABLE}=DET-01 — wrong rule named\n"
            "    region.flush(0, 64, ctx)\n"
        )
        assert active(lint_source(source), rule="PM-W01")


class TestDeterminismRule:
    def test_bare_random_flagged(self):
        source = (
            "import random\n"
            "def jitter():\n"
            "    return random.random()\n"
        )
        findings = active(lint_source(source), rule="DET-01")
        assert len(findings) == 1
        assert findings[0].severity == "error"

    def test_seeded_rng_clean(self):
        source = (
            "import random\n"
            "def make_rng(seed):\n"
            "    return random.Random(seed)\n"
        )
        assert not active(lint_source(source), rule="DET-01")

    def test_wallclock_flagged(self):
        source = (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        assert active(lint_source(source), rule="DET-01")


class TestTreeIsClean:
    """The acceptance criterion: ``repro-lint src/`` exits clean."""

    def test_src_tree_has_no_active_findings(self):
        report = pmlint.run_lint(["src/repro"], root=".")
        assert report.ok, report.summary()

    def test_every_suppression_in_tree_is_documented(self):
        report = pmlint.run_lint(["src/repro"], root=".")
        assert report.suppressed, "expected the documented suppressions"
        for finding in report.suppressed:
            assert finding.reason and len(finding.reason) > 10, finding.format()


class TestCli:
    def test_self_test_flag(self, capsys):
        assert lint_main(["--self-test"]) == 0
        assert "selftest" in capsys.readouterr().out

    def test_lint_clean_tree_exit_zero(self, capsys):
        assert lint_main(["src/repro"]) == 0
        capsys.readouterr()

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "def jitter():\n"
            "    return random.random()\n"
        )
        assert lint_main([str(bad)]) == 1
        assert "DET-01" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("PM-W01", "PM-W02", "REF-01", "DET-01",
                        "CTX-01", "SUP-01"):
            assert rule_id in out

    def test_usage_error_exit_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            lint_main([str(tmp_path / "nope.txt")])
        assert excinfo.value.code == 2
