"""Span links across Homa retransmissions: one logical request, one chain.

Unit level: the Recorder's chain mechanics — originals leave no span,
each retransmit appends a zero-cost linked span, the server handler
span joins the chain carrying the retransmit count, the client span
closes it, give-ups terminate it, and a double handler dispatch is
surfaced rather than silently double-counted.

Integration level: a Homa chaos storm under a fault squall — every
retransmitted RPC must resolve into a linked chain (delivered or given
up, no orphans), no RPC may be double-counted in the Table-1 totals,
and the check must be non-vacuous (the squall really forced
retransmissions).
"""

import pytest

from repro.obs.trace import Recorder
from repro.sim.engine import Simulator
from repro.testing.chaos import OverloadStorm


class _Ctx:
    """Minimal execution-context stand-in for request_end."""

    def __init__(self, elapsed=1000.0, by_category=None):
        self.elapsed = elapsed
        self.by_category = by_category or {"datamgmt.copy": elapsed}


def make_recorder():
    return Recorder(sim=Simulator())


class TestChainMechanics:
    def test_original_send_leaves_no_span(self):
        recorder = make_recorder()
        recorder.homa_send(7, "request", retransmit=False)
        assert len(recorder.ring) == 0
        chain = recorder.chain(7)
        assert chain["request"]["attempts"] == 1
        assert chain["request"]["retransmits"] == 0

    def test_retransmits_chain_linked_spans(self):
        recorder = make_recorder()
        recorder.homa_send(7, "request", retransmit=False)
        recorder.homa_send(7, "request", retransmit=True)
        recorder.homa_send(7, "request", retransmit=True)
        spans = recorder.ring.spans()
        assert [s.kind for s in spans] == ["homa.rtx.request"] * 2
        first, second = spans
        assert first.links == ()            # chain head
        assert second.links == (first.span_id,)
        assert first.total_ns == 0.0 and second.total_ns == 0.0
        assert second.retransmits == 2
        assert recorder.registry.value("homa.rtx.request") == 2.0

    def test_handler_span_joins_chain_with_retransmit_count(self):
        recorder = make_recorder()
        recorder.homa_send(7, "request", retransmit=False)
        recorder.homa_send(7, "request", retransmit=True)
        recorder.homa_delivered(7, "request")
        recorder.request_end("PUT", 200, core=0, ctx=_Ctx(), rpc_id=7)
        rtx_span, handler = recorder.ring.spans()
        assert handler.kind == "PUT"
        assert handler.rpc_id == 7
        assert handler.retransmits == 1
        assert handler.links == (rtx_span.span_id,)
        assert recorder.registry.value("server.rpc.double_dispatch") == 0.0

    def test_client_span_closes_chain(self):
        recorder = make_recorder()
        recorder.homa_send(7, "request", retransmit=False)
        recorder.homa_send(7, "request", retransmit=True)
        recorder.homa_delivered(7, "request")
        recorder.request_end("PUT", 200, core=0, ctx=_Ctx(), rpc_id=7)
        recorder.homa_send(7, "reply", retransmit=False)
        recorder.homa_send(7, "reply", retransmit=True)
        recorder.homa_delivered(7, "reply")
        recorder.client_request("homa", "ok", rtt_ns=40_000.0, rpc_id=7)
        client = recorder.ring.spans()[-1]
        assert client.kind == "client.homa"
        # Both directions' retries attributed on the closing span.
        assert client.retransmits == 2
        handler = recorder.ring.spans()[1]
        assert client.links and client.links[0] != handler.span_id
        chain = recorder.chain(7)
        assert chain["client_spans"] == 1
        assert chain["delivered"] == {"request", "reply"}
        # One RTT sample, measured from the first attempt — never one
        # per attempt.
        assert recorder.registry.value("client.requests") == 1.0
        assert recorder.registry.get("client.rtt_ns").count == 1

    def test_give_up_terminates_chain(self):
        recorder = make_recorder()
        recorder.homa_send(9, "request", retransmit=False)
        recorder.homa_send(9, "request", retransmit=True)
        recorder.homa_give_up(9, "request")
        terminal = recorder.ring.spans()[-1]
        assert terminal.kind == "homa.giveup.request"
        assert terminal.status == "giveup"
        assert terminal.links == (recorder.ring.spans()[0].span_id,)
        assert recorder.chain(9)["gave_up"] == {"request"}
        assert recorder.registry.value("homa.giveup.request") == 1.0

    def test_double_dispatch_is_surfaced(self):
        recorder = make_recorder()
        recorder.homa_send(7, "request", retransmit=False)
        recorder.request_end("PUT", 200, core=0, ctx=_Ctx(), rpc_id=7)
        recorder.request_end("PUT", 200, core=1, ctx=_Ctx(), rpc_id=7)
        assert recorder.registry.value("server.rpc.double_dispatch") == 1.0

    def test_plain_spans_stay_unlinked(self):
        recorder = make_recorder()
        recorder.request_end("PUT", 200, core=0, ctx=_Ctx())
        (span,) = recorder.ring.spans()
        assert span.rpc_id is None
        assert span.links == ()
        assert span.retransmits == 0
        assert recorder.chains() == {}

    def test_reset_clears_chains_and_digests(self):
        recorder = make_recorder()
        recorder.homa_send(7, "request", retransmit=True)
        recorder.request_end("PUT", 200, core=0, ctx=_Ctx(), rpc_id=7)
        assert recorder.request_quantile(0.5) > 0.0
        recorder.reset()
        assert recorder.chains() == {}
        assert recorder.request_quantile(0.5) == 0.0

    def test_per_core_digests_merge_into_request_quantile(self):
        recorder = make_recorder()
        for core in range(4):
            for index in range(250):
                elapsed = 1000.0 * (core * 250 + index + 1)
                recorder.request_end("PUT", 200, core=core,
                                     ctx=_Ctx(elapsed=elapsed))
        # 1000 spans of 1ms..1000ms: the merged server-wide view must
        # agree with the single histogram's digest.
        merged_p99 = recorder.request_quantile(0.99)
        hist_p99 = recorder.registry.get("server.request_ns").quantile(0.99)
        assert merged_p99 == pytest.approx(hist_p99, rel=0.02)


@pytest.fixture(scope="module")
def homa_storm():
    """One fault-squall Homa storm shared by the integration tests."""
    storm = OverloadStorm(transport="homa", connections=60, puts_per_conn=6,
                          pool_slots=128, seed=5)
    report = storm.run()
    return storm, report


class TestHomaChaosSpanLinks:
    def test_storm_yields_linked_chains_no_orphans(self, homa_storm):
        """The satellite acceptance check: every retransmitted RPC in
        the storm yields one resolved chain, no orphan spans, and no
        double-counted request — non-vacuously."""
        _storm, report = homa_storm
        assert report.crashed is None
        assert report.ok, report.summary()
        # Non-vacuity: the squall really forced retransmissions, so the
        # orphan/double-dispatch oracles checked something.
        assert report.retransmitted_rpcs > 0

    def test_storm_chains_all_resolved(self, homa_storm):
        storm, _report = homa_storm
        recorder = storm.testbed.recorder
        for rpc_id, chain in recorder.chains().items():
            for direction in ("request", "reply"):
                if chain[direction]["retransmits"] == 0:
                    continue
                resolved = (direction in chain["delivered"]
                            or direction in chain["gave_up"])
                assert resolved, f"rpc {rpc_id} {direction} orphaned"

    def test_storm_retransmit_spans_are_well_formed(self, homa_storm):
        storm, _report = homa_storm
        recorder = storm.testbed.recorder
        rtx_spans = [span for span in recorder.ring
                     if span.kind.startswith("homa.rtx.")]
        assert rtx_spans, "squall produced no retransmit spans in ring"
        seen_ids = set()
        for span in recorder.ring:
            for link in span.links:
                # Links always point backwards to an already-recorded
                # span (the ring may have evicted it, but ids are
                # monotonic, so backwards == smaller).
                assert link < span.span_id
            seen_ids.add(span.span_id)
        for span in rtx_spans:
            assert span.rpc_id is not None
            assert span.total_ns == 0.0     # zero-cost: no stage charge
            assert span.stages == {}

    def test_storm_no_double_counted_requests(self, homa_storm):
        storm, _report = homa_storm
        metrics = storm.testbed.metrics
        assert metrics.value("server.rpc.double_dispatch") == 0.0
        # Table-1 totals divide by server.requests: one handler span
        # per dispatched RPC means the denominator and numerators agree.
        chains = storm.testbed.recorder.chains()
        multi = [rpc for rpc, chain in chains.items()
                 if chain["server_spans"] > 1]
        assert multi == []
