"""Tests for the zero-copy GET path (§4.2's send-side reuse)."""

import pytest

from repro.bench.costmodel import CostModel
from repro.bench.testbed import make_testbed
from repro.core.pktstore import PacketStoreEngine
from repro.net.http import HttpParser, build_request
from repro.net.fabric import Fabric
from repro.net.stack import Host
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim.engine import Simulator
from repro.storage.kvserver import KVServer
from repro.storage.server import ServerConfig


def make_zero_copy_world():
    sim = Simulator()
    fabric = Fabric(sim)
    pm = PMDevice(64 << 20)
    ns = PMNamespace(pm)
    server = Host(sim, "srv", "10.0.0.1", fabric, CostModel.paste(),
                  rx_pool_region=ns.create("paste-pktbufs", 8 << 20))
    client = Host(sim, "cli", "10.0.0.2", fabric, CostModel.kernel())
    engine = PacketStoreEngine.build(server, ns)
    kv = KVServer(server, engine, port=80, zero_copy_get=True)
    return sim, server, client, engine, kv


def run_requests(sim, client, requests):
    responses = []
    parser = HttpParser(is_response=True)
    done = {"count": 0}

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", 80, ctx)

        def on_data(s, seg, c):
            for message in parser.feed(seg):
                responses.append((message.status, message.body))
                message.release()
                done["count"] += 1
                if done["count"] < len(requests):
                    s.send(requests[done["count"]], c)

        sock.on_data = on_data
        sock.on_established = lambda s, c: s.send(requests[0], c)

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle(max_events=2_000_000)
    return responses


def test_get_served_from_pm_extents():
    sim, server, client, engine, kv = make_zero_copy_world()
    value = bytes(i % 256 for i in range(1024))
    responses = run_requests(sim, client, [
        build_request("PUT", "/obj", value),
        build_request("GET", "/obj"),
    ])
    assert responses[0][0] == 200
    assert responses[1] == (200, value)
    assert kv.stats["zero_copy_gets"] == 1


def test_multi_segment_value_served_zero_copy():
    sim, server, client, engine, kv = make_zero_copy_world()
    value = bytes((i * 7) % 256 for i in range(4000))  # 3 rx frames
    responses = run_requests(sim, client, [
        build_request("PUT", "/big", value),
        build_request("GET", "/big"),
    ])
    assert responses[1] == (200, value)


def test_missing_key_zero_copy_404():
    sim, server, client, engine, kv = make_zero_copy_world()
    responses = run_requests(sim, client, [build_request("GET", "/ghost")])
    assert responses[0][0] == 404
    assert kv.stats["zero_copy_gets"] == 0


def test_zero_copy_get_does_not_copy_value_bytes():
    """The server's per-request copy charge stays header-sized."""
    sim, server, client, engine, kv = make_zero_copy_world()
    value = bytes(1024)
    run_requests(sim, client, [
        build_request("PUT", "/obj", value),
    ])
    before = server.accounting.category("net.copy")
    run_requests(sim, client, [build_request("GET", "/obj")])
    copied = server.accounting.category("net.copy") - before
    # Only the ~40-byte response head was copied, never the 1 KB value.
    assert copied < 100 * 0.25 + 1


def test_buffers_stay_alive_through_retransmission_window():
    """The value buffer is shared: store ref + TCP clone refs; serving
    it does not free or corrupt the stored copy."""
    sim, server, client, engine, kv = make_zero_copy_world()
    value = b"shared-between-store-and-wire" * 30
    run_requests(sim, client, [
        build_request("PUT", "/obj", value),
        build_request("GET", "/obj"),
        build_request("GET", "/obj"),  # serve twice
    ])
    assert engine.get(b"obj") == value  # still intact in the store


def test_testbed_flag_plumbs_through():
    testbed = make_testbed(ServerConfig(engine="pktstore"))
    # Default KVServer has the flag off.
    assert not testbed.kv.zero_copy_get
