"""Unit + property tests for persistent packet metadata records."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ppktbuf import (
    INLINE_FRAGS,
    KIND_INODE,
    KIND_NODE,
    MAX_KEY,
    PMetaSlab,
    PPktRecord,
    RECORD_SIZE,
    SlabExhausted,
)
from repro.pm.device import PMDevice
from repro.sim import ExecutionContext


class TestRecordCodec:
    def test_roundtrip_all_fields(self):
        record = PPktRecord(
            kind=KIND_NODE, height=3, key=b"user:42", seq=777,
            hw_tstamp=123456789, wire_csum=0xBEEF, value_len=2048,
            cont=5, frags=[(10, 0, 1024), (11, 64, 1024)],
            nexts=[1, 2, 3, 0, 0, 0, 0, 0],
        )
        again = PPktRecord.decode(record.encode())
        assert again.kind == KIND_NODE
        assert again.height == 3
        assert again.key == b"user:42"
        assert again.seq == 777
        assert again.hw_tstamp == 123456789
        assert again.wire_csum == 0xBEEF
        assert again.value_len == 2048
        assert again.cont == 5
        assert again.frags == [(10, 0, 1024), (11, 64, 1024)]
        assert again.nexts == [1, 2, 3, 0, 0, 0, 0, 0]

    def test_encoded_size_is_four_cache_lines(self):
        assert len(PPktRecord(key=b"k").encode()) == RECORD_SIZE == 256

    def test_key_capacity_enforced(self):
        PPktRecord(key=b"x" * MAX_KEY)
        with pytest.raises(ValueError):
            PPktRecord(key=b"x" * (MAX_KEY + 1))

    def test_too_many_inline_frags_rejected(self):
        frags = [(1, 0, 10)] * (INLINE_FRAGS + 1)
        with pytest.raises(ValueError):
            PPktRecord(frags=frags)

    def test_crc_covers_key_and_fields_not_links(self):
        record = PPktRecord(key=b"abc", seq=1)
        blob = bytearray(record.encode())
        # Mutating a next pointer keeps the record valid (links are
        # updated in place after the record is persisted).
        blob[80] ^= 0xFF
        assert PPktRecord.validate(bytes(blob))
        # Mutating the key is caught.
        blob2 = bytearray(record.encode())
        blob2[144] ^= 0x01
        assert not PPktRecord.validate(bytes(blob2))
        # Mutating the sequence number is caught.
        blob3 = bytearray(record.encode())
        blob3[16] ^= 0x01
        assert not PPktRecord.validate(bytes(blob3))

    def test_garbage_is_invalid(self):
        assert not PPktRecord.validate(bytes(RECORD_SIZE))
        assert not PPktRecord.validate(b"\xff" * RECORD_SIZE)

    def test_tombstone_flag(self):
        from repro.core.ppktbuf import FLAG_TOMBSTONE, FLAG_VALID

        record = PPktRecord(flags=FLAG_VALID | FLAG_TOMBSTONE, key=b"k")
        assert PPktRecord.decode(record.encode()).tombstone


@settings(max_examples=60, deadline=None)
@given(
    key=st.binary(min_size=0, max_size=MAX_KEY),
    seq=st.integers(0, 2**62),
    tstamp=st.integers(0, 2**62),
    csum=st.integers(0, 0xFFFF),
    value_len=st.integers(0, 2**31 - 1),
    frags=st.lists(
        st.tuples(st.integers(0, 2**31 - 1), st.integers(0, 2047), st.integers(0, 2048)),
        max_size=INLINE_FRAGS,
    ),
)
def test_property_codec_roundtrip(key, seq, tstamp, csum, value_len, frags):
    record = PPktRecord(
        key=key, seq=seq, hw_tstamp=tstamp, wire_csum=csum,
        value_len=value_len, frags=frags,
    )
    again = PPktRecord.decode(record.encode())
    assert (again.key, again.seq, again.hw_tstamp) == (key, seq, tstamp)
    assert again.wire_csum == csum
    assert again.value_len == value_len
    assert again.frags == [tuple(f) for f in frags]


@settings(max_examples=60, deadline=None)
@given(bit=st.integers(0, 8 * 40 - 1))
def test_property_single_bit_flip_in_protected_area_detected(bit):
    record = PPktRecord(key=b"some-key", seq=42, frags=[(1, 2, 3)])
    blob = bytearray(record.encode())
    # Flip within the CRC-protected fixed fields [8, 48) — always caught.
    # (Next pointers [80, 144) are mutable and deliberately unprotected;
    # the reserved field [14, 16) and unused frag-slot padding are
    # semantically don't-care.)
    position = 8 * 8 + bit
    if position // 8 in (14, 15):
        position += 16
    blob[position // 8] ^= 1 << (position % 8)
    assert not PPktRecord.validate(bytes(blob))


class TestSlab:
    def make(self, size=1 << 16):
        dev = PMDevice(size)
        return PMetaSlab(dev.region(0, size, "slab")), dev

    def test_alloc_write_read(self):
        slab, _ = self.make()
        slot = slab.alloc()
        slab.write_record(slot, PPktRecord(key=b"hello", seq=9))
        record = slab.read_record(slot, check=True)
        assert record.key == b"hello"

    def test_exhaustion(self):
        slab, _ = self.make(size=1 << 10)  # tiny: few slots
        with pytest.raises(SlabExhausted):
            for _ in range(100):
                slab.alloc()

    def test_free_invalidates_magic(self):
        slab, _ = self.make()
        slot = slab.alloc()
        slab.write_record(slot, PPktRecord(key=b"x"))
        slab.free(slot)
        assert slab.valid_record(slot) is None

    def test_double_free_rejected(self):
        slab, _ = self.make()
        slot = slab.alloc()
        slab.free(slot)
        with pytest.raises(RuntimeError):
            slab.free(slot)

    def test_next_pointer_read_write(self):
        slab, _ = self.make()
        slot = slab.alloc()
        slab.write_record(slot, PPktRecord(key=b"n"))
        slab.write_next(slot, 2, 77)
        assert slab.read_next(slot, 2) == 77
        # Record still CRC-valid (links excluded from the CRC).
        assert slab.valid_record(slot) is not None

    def test_root_roundtrip_survives_crash(self):
        slab, dev = self.make()
        slab.write_root(5)
        dev.crash()
        slab2 = PMetaSlab(dev.region(0, 1 << 16, "slab"))
        assert slab2.read_root() == 5

    def test_adopt_reachable_resets_free_list(self):
        slab, _ = self.make()
        slots = [slab.alloc() for _ in range(5)]
        slab.adopt_reachable({slots[0], slots[2]})
        assert slab.used == 2
        fresh = slab.alloc()
        assert fresh not in (slots[0], slots[2])

    def test_alloc_charges_slab_cost(self):
        slab, _ = self.make()
        ctx = ExecutionContext()
        slab.alloc(ctx)
        assert 0 < ctx.category("datamgmt.insert") < 500  # cheaper than PM malloc
