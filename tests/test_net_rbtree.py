"""Unit + property tests for the red-black tree (TCP's OOO index)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.rbtree import RBTree


class TestBasics:
    def test_insert_and_get(self):
        tree = RBTree()
        tree.insert(5, "five")
        tree.insert(3, "three")
        tree.insert(8, "eight")
        assert tree.get(5) == "five"
        assert tree.get(3) == "three"
        assert tree.get(9) is None
        assert tree.get(9, "dflt") == "dflt"
        assert len(tree) == 3
        assert 5 in tree and 9 not in tree

    def test_duplicate_insert_rejected(self):
        tree = RBTree()
        tree.insert(1, "a")
        with pytest.raises(KeyError):
            tree.insert(1, "b")

    def test_replace_overwrites(self):
        tree = RBTree()
        tree.replace(1, "a")
        tree.replace(1, "b")
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_items_sorted(self):
        tree = RBTree()
        for key in [5, 1, 9, 3, 7, 2, 8]:
            tree.insert(key, key * 10)
        assert list(tree.keys()) == [1, 2, 3, 5, 7, 8, 9]

    def test_min_max(self):
        tree = RBTree()
        assert tree.min() is None and tree.max() is None
        for key in [4, 2, 9]:
            tree.insert(key, None)
        assert tree.min() == (2, None)
        assert tree.max() == (9, None)

    def test_floor_ceiling(self):
        tree = RBTree()
        for key in [10, 20, 30]:
            tree.insert(key, str(key))
        assert tree.floor(25) == (20, "20")
        assert tree.floor(20) == (20, "20")
        assert tree.floor(5) is None
        assert tree.ceiling(25) == (30, "30")
        assert tree.ceiling(30) == (30, "30")
        assert tree.ceiling(35) is None

    def test_delete_returns_value(self):
        tree = RBTree()
        tree.insert(1, "one")
        assert tree.delete(1) == "one"
        assert len(tree) == 0
        with pytest.raises(KeyError):
            tree.delete(1)

    def test_pop_min_drains_in_order(self):
        tree = RBTree()
        for key in [3, 1, 2]:
            tree.insert(key, None)
        assert [tree.pop_min()[0] for _ in range(3)] == [1, 2, 3]
        assert tree.pop_min() is None

    def test_empty_tree_is_falsy(self):
        tree = RBTree()
        assert not tree
        tree.insert(1, None)
        assert tree


class TestInvariantsDirected:
    def test_ascending_insertions(self):
        tree = RBTree()
        for key in range(200):
            tree.insert(key, key)
            tree.check_invariants()
        assert list(tree.keys()) == list(range(200))

    def test_descending_insertions(self):
        tree = RBTree()
        for key in reversed(range(200)):
            tree.insert(key, key)
        tree.check_invariants()

    def test_delete_all_in_random_order(self):
        import random

        rng = random.Random(7)
        keys = list(range(100))
        tree = RBTree()
        for key in keys:
            tree.insert(key, key)
        rng.shuffle(keys)
        for key in keys:
            tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 50)),
        max_size=120,
    )
)
def test_property_model_equivalence(ops):
    """The tree behaves exactly like a sorted dict under random ops."""
    tree = RBTree()
    model = {}
    for op, key in ops:
        if op == "insert":
            if key in model:
                with pytest.raises(KeyError):
                    tree.insert(key, key)
            else:
                tree.insert(key, key)
                model[key] = key
        else:
            if key in model:
                assert tree.delete(key) == key
                del model[key]
            else:
                with pytest.raises(KeyError):
                    tree.delete(key)
    assert list(tree.items()) == sorted(model.items())
    tree.check_invariants()


@settings(max_examples=30, deadline=None)
@given(keys=st.sets(st.integers(0, 10_000), max_size=300))
def test_property_black_height_is_logarithmic(keys):
    tree = RBTree()
    for key in keys:
        tree.insert(key, None)
    black_height = tree.check_invariants()
    if keys:
        import math

        # Red-black bound: height <= 2*log2(n+1); black height <= height.
        assert black_height <= 2 * math.log2(len(keys) + 1) + 1
