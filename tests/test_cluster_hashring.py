"""Consistent-hash ring: determinism, promotion-by-death, stability.

The failover design leans entirely on one ring property: the backup
for a key is the next distinct alive node clockwise from its primary,
so removing the primary from the alive set *is* the promotion.  These
tests pin that property, plus the determinism the simulation's DET-01
rule demands.
"""

import pytest

from repro.cluster.hashring import HashRing

NODES = ["s0", "s1", "s2", "s3"]
KEYS = [f"key-{i}".encode() for i in range(300)]


def test_placement_is_deterministic_across_instances():
    a = HashRing(NODES, vnodes=32)
    b = HashRing(NODES, vnodes=32)
    for key in KEYS:
        assert a.route(key) == b.route(key)


def test_route_returns_distinct_alive_nodes():
    ring = HashRing(NODES, vnodes=32, replicas=3)
    for key in KEYS:
        route = ring.route(key)
        assert len(route) == 3
        assert len(set(route)) == 3
        assert all(n in NODES for n in route)


def test_primary_and_backup_agree_with_route():
    ring = HashRing(NODES, vnodes=32)
    for key in KEYS[:50]:
        route = ring.route(key)
        assert ring.primary(key) == route[0]
        assert ring.backup(key) == route[1]


def test_death_promotes_the_backup_and_moves_nothing_else():
    """The load-bearing property: killing a node's primary re-routes
    exactly its keys, each to its old backup."""
    ring = HashRing(NODES, vnodes=64)
    before = {key: ring.route(key) for key in KEYS}
    ring.mark_dead("s1")
    for key, (old_primary, old_backup) in before.items():
        new_primary = ring.primary(key)
        if old_primary == "s1":
            assert new_primary == old_backup
        else:
            assert new_primary == old_primary
        assert "s1" not in ring.route(key)


def test_resurrection_restores_original_placement():
    ring = HashRing(NODES, vnodes=32)
    before = {key: ring.route(key) for key in KEYS}
    ring.mark_dead("s2")
    ring.mark_alive("s2")
    assert {key: ring.route(key) for key in KEYS} == before


def test_every_node_owns_some_keys():
    ring = HashRing(NODES, vnodes=64)
    owners = {ring.primary(key) for key in KEYS}
    assert owners == set(NODES)


def test_single_alive_node_runs_unreplicated():
    ring = HashRing(["s0", "s1"], vnodes=16)
    ring.mark_dead("s1")
    for key in KEYS[:20]:
        assert ring.route(key) == ["s0"]
        assert ring.backup(key) is None


def test_killing_the_last_node_raises():
    ring = HashRing(["s0", "s1"], vnodes=16)
    ring.mark_dead("s0")
    with pytest.raises(RuntimeError):
        ring.mark_dead("s1")


def test_unknown_node_raises():
    ring = HashRing(NODES, vnodes=16)
    with pytest.raises(KeyError):
        ring.mark_dead("nope")
    with pytest.raises(KeyError):
        ring.mark_alive("nope")


def test_validation():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(NODES, vnodes=0)
    with pytest.raises(ValueError):
        HashRing(NODES, replicas=0)


def test_str_and_bytes_keys_route_identically():
    ring = HashRing(NODES)
    assert ring.route("abc") == ring.route(b"abc")
