"""TrafficSource protocol conformance across every implementation.

One contract (repro.bench.workloads.TrafficSource) drives wrk, the
chaos storms' burst phases, and capture replay: ``next_op(loop_id)``
yields ``(method, key_string, value_bytes_or_None)`` or ``None``, and
equal construction arguments yield byte-identical streams.
"""

import pytest

from repro.bench.openloop import OpenLoopSource
from repro.bench.testbed import make_testbed
from repro.bench.workloads import (
    StormBurstSource,
    TrafficSource,
    UniformSource,
    YcsbWorkload,
)
from repro.bench.wrk import WrkClient
from repro.capture.replay import CaptureSource
from repro.storage.server import ServerConfig

METHODS = {"GET", "PUT", "DELETE"}


def drain(source, loop_id=0, limit=50):
    ops = []
    for _ in range(limit):
        op = source.next_op(loop_id)
        if op is None:
            break
        ops.append(op)
    return ops


_CAPTURE = []


def recorded_capture():
    if not _CAPTURE:
        testbed = make_testbed(config=ServerConfig(capture=True))
        wrk = WrkClient(testbed.client, testbed.server.ip, connections=2,
                        value_size=256, duration_ns=400_000.0,
                        warmup_ns=100_000.0)
        stats = wrk.run()
        assert stats.completed > 0
        _CAPTURE.append(testbed.capture.capture())
    return _CAPTURE[0]


SOURCES = {
    "UniformSource": lambda: UniformSource(key_space=10, value_size=64),
    "StormBurstSource": lambda: StormBurstSource(
        loops=2, puts_per_loop=5, keys_per_loop=2, value_size=64),
    "YcsbWorkload": lambda: YcsbWorkload(
        mix="A", key_space=10, value_size=64, seed=7),
    "CaptureSource": lambda: CaptureSource(recorded_capture()),
    "OpenLoopSource": lambda: OpenLoopSource(
        10_000.0, key_space=10, value_size=64, read_fraction=0.5, seed=7),
}


class TestProtocolConformance:
    @pytest.mark.parametrize("factory", SOURCES.values(), ids=SOURCES)
    def test_ops_have_protocol_shape(self, factory):
        source = factory()
        assert isinstance(source, TrafficSource)
        ops = drain(source)
        assert ops, type(source).__name__
        for method, key, value in ops:
            assert method in METHODS
            assert isinstance(key, str) and key
            if method == "GET":
                assert value is None
            else:
                assert isinstance(value, bytes)

    @pytest.mark.parametrize("factory", SOURCES.values(), ids=SOURCES)
    def test_describe_is_json_shaped(self, factory):
        import json

        description = factory().describe()
        assert "source" in description
        json.dumps(description)

    def test_base_protocol_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TrafficSource().next_op()
        assert TrafficSource().describe() == {"source": "TrafficSource"}


class TestDeterminism:
    def test_uniform_streams_are_identical(self):
        first = UniformSource(key_space=10, value_size=64)
        second = UniformSource(key_space=10, value_size=64)
        assert drain(first) == drain(second)

    def test_ycsb_streams_are_seeded(self):
        assert drain(YcsbWorkload(seed=3)) == drain(YcsbWorkload(seed=3))
        assert drain(YcsbWorkload(seed=3)) != drain(YcsbWorkload(seed=4))

    def test_openloop_op_stream_is_seeded(self):
        make = lambda s: OpenLoopSource(  # noqa: E731
            10_000.0, key_space=10, read_fraction=0.5, seed=s)
        assert drain(make(3)) == drain(make(3))
        assert drain(make(3)) != drain(make(4))

    def test_storm_burst_values_attribute_their_writer(self):
        source = StormBurstSource(loops=2, puts_per_loop=4, keys_per_loop=2,
                                  value_size=64, stamp_prefix="c")
        _method, key, value = source.next_op(1)
        assert value.startswith(f"c1:{key}:0:".encode())


class TestFiniteSources:
    def test_storm_burst_exhausts_then_extends(self):
        source = StormBurstSource(loops=1, puts_per_loop=3, keys_per_loop=2,
                                  value_size=32)
        assert len(drain(source)) == 3
        assert source.next_op(0) is None
        source.extend(0, 2)
        assert len(drain(source)) == 2

    def test_uniform_is_open_ended(self):
        source = UniformSource(key_space=3)
        assert len(drain(source, limit=50)) == 50

    def test_capture_source_exhausts_per_loop(self):
        source = CaptureSource(recorded_capture())
        total = sum(len(drain(source, loop_id=i, limit=10_000))
                    for i in range(source.loops))
        assert total == source.total_ops
        for loop_id in range(source.loops):
            assert source.next_op(loop_id) is None


class TestYcsbMixes:
    def test_mix_w_is_all_writes_and_c_all_reads(self):
        writes = drain(YcsbWorkload(mix="W", key_space=10), limit=40)
        assert all(method == "PUT" for method, _k, _v in writes)
        reads = drain(YcsbWorkload(mix="C", key_space=10), limit=40)
        assert all(method == "GET" for method, _k, _v in reads)

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown mix"):
            YcsbWorkload(mix="Z")
