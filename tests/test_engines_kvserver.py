"""Engine behaviour + networked KV-server integration tests."""

import pytest

from repro.bench.costmodel import CostModel
from repro.bench.testbed import make_testbed, preload
from repro.bench.wrk import WrkClient
from repro.net.http import HttpParser, build_request, build_response
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim import ExecutionContext
from repro.storage.engines import NoveLSMEngine, NullEngine, RawPMEngine
from repro.storage.lsm import novelsm_store
from repro.storage.server import ServerConfig


class FakeMessage:
    def __init__(self, body):
        self._body = body
        self.body_slices = []
        self.hw_tstamp = None
        self.wire_csum = None

    @property
    def body(self):
        return self._body

    @property
    def content_length(self):
        return len(self._body)

    def release(self):
        pass


def make_novelsm_engine(**kwargs):
    dev = PMDevice(64 << 20)
    ns = PMNamespace(dev)
    store = novelsm_store(ns, arena_size=16 << 20)
    return NoveLSMEngine(store, CostModel.paste(), **kwargs), dev


class TestEngines:
    def test_null_engine_discards(self):
        engine = NullEngine()
        engine.put(b"k", FakeMessage(b"v"), ExecutionContext())
        assert engine.get(b"k", ExecutionContext()) is None

    def test_rawpm_persists_without_datamgmt_charges(self):
        dev = PMDevice(8 << 20)
        engine = RawPMEngine(dev.region(0, 8 << 20, "ring"), CostModel.paste())
        ctx = ExecutionContext()
        engine.put(b"k", FakeMessage(b"v" * 1024), ctx)
        assert ctx.category("persist") > 0
        assert ctx.category("datamgmt.copy") > 0
        assert ctx.category("datamgmt.checksum") == 0
        assert ctx.category("datamgmt.insert") == 0

    def test_rawpm_ring_wraps(self):
        dev = PMDevice(1 << 20)
        engine = RawPMEngine(dev.region(0, 64 << 10, "ring"), CostModel.paste())
        for _ in range(100):
            engine.put(b"k", FakeMessage(b"x" * 1024), ExecutionContext())
        assert engine.wrapped >= 1

    def test_novelsm_put_charges_every_table1_row(self):
        engine, _ = make_novelsm_engine()
        ctx = ExecutionContext()
        engine.put(b"key", FakeMessage(b"v" * 1024), ctx)
        for category in ("datamgmt.prep", "datamgmt.checksum",
                         "datamgmt.copy", "datamgmt.insert", "persist"):
            assert ctx.category(category) > 0, category

    def test_novelsm_checksum_disabled_charges_nothing(self):
        engine, _ = make_novelsm_engine(charge_checksum=False)
        ctx = ExecutionContext()
        engine.put(b"key", FakeMessage(b"v" * 1024), ctx)
        assert ctx.category("datamgmt.checksum") == 0

    def test_novelsm_persistence_disabled_still_functions(self):
        """The paper's modified build: flushes happen, cost nothing."""
        engine, dev = make_novelsm_engine(persistence=False)
        ctx = ExecutionContext()
        engine.put(b"key", FakeMessage(b"value"), ctx)
        assert ctx.category("persist") == 0
        assert engine.get(b"key", ExecutionContext()) == b"value"
        # Functionally still durable: the store flushed (free of charge).
        dev.crash()
        engine.store.recover()
        assert engine.store.get(b"key") == b"value"

    def test_novelsm_read_verification(self):
        engine, _ = make_novelsm_engine(verify_on_read=True)
        engine.put(b"k", FakeMessage(b"good"), ExecutionContext())
        assert engine.get(b"k", ExecutionContext()) == b"good"

    def test_novelsm_delete(self):
        engine, _ = make_novelsm_engine()
        engine.put(b"k", FakeMessage(b"v"), ExecutionContext())
        engine.delete(b"k", ExecutionContext())
        assert engine.get(b"k", ExecutionContext()) is None


class TestKVServerIntegration:
    def run_requests(self, engine, requests):
        """Drive raw HTTP requests through the full simulated stack."""
        tb = make_testbed(ServerConfig(engine=engine))
        responses = []
        parser = HttpParser(is_response=True)
        done = {"count": 0}

        def start(ctx):
            sock = tb.client.stack.connect("10.0.0.1", 80, ctx)

            def on_data(s, seg, c):
                for message in parser.feed(seg):
                    responses.append((message.status, message.body))
                    message.release()
                    done["count"] += 1
                    if done["count"] < len(requests):
                        s.send(requests[done["count"]], c)

            sock.on_data = on_data
            sock.on_established = lambda s, c: s.send(requests[0], c)

        tb.client.process_on_core(tb.client.cpus[0], start)
        tb.sim.run_until_idle(max_events=2_000_000)
        return responses, tb

    @pytest.mark.parametrize("engine", ["novelsm", "pktstore"])
    def test_put_get_delete_lifecycle(self, engine):
        requests = [
            build_request("PUT", "/user:1", b"alice"),
            build_request("GET", "/user:1"),
            build_request("DELETE", "/user:1"),
            build_request("GET", "/user:1"),
        ]
        responses, _ = self.run_requests(engine, requests)
        assert [status for status, _ in responses] == [200, 200, 200, 404]
        assert responses[1][1] == b"alice"

    @pytest.mark.parametrize("engine", ["novelsm", "pktstore"])
    def test_get_missing_is_404(self, engine):
        responses, _ = self.run_requests(engine, [build_request("GET", "/ghost")])
        assert responses[0][0] == 404

    def test_large_value_spanning_segments(self):
        value = bytes(i % 256 for i in range(5000))
        requests = [
            build_request("PUT", "/big", value),
            build_request("GET", "/big"),
        ]
        responses, _ = self.run_requests("pktstore", requests)
        assert responses[0][0] == 200
        assert responses[1] == (200, value)

    def test_bad_path_rejected(self):
        responses, _ = self.run_requests("novelsm", [build_request("PUT", "/", b"x")])
        assert responses[0][0] == 404

    def test_multiple_connections_isolated_by_engine_sharing(self):
        tb = make_testbed(ServerConfig(engine="novelsm"))
        wrk = WrkClient(tb.client, "10.0.0.1", connections=4,
                        duration_ns=500_000, warmup_ns=100_000)
        stats = wrk.run()
        assert stats.errors == 0
        assert tb.kv.stats["connections"] == 4
        assert tb.kv.stats["puts"] == stats.completed

    def test_preload_populates_engine(self):
        tb = make_testbed(ServerConfig(engine="novelsm"))
        preload(tb, entries=50, value_size=128)
        assert tb.engine.get(b"warm-0") == bytes(128)
        assert tb.engine.get(b"warm-49") == bytes(128)


class TestAccountingSeparation:
    """The Table 1 decomposition depends on clean category separation."""

    def test_null_run_has_no_storage_categories(self):
        tb = make_testbed(ServerConfig(engine="null"))
        wrk = WrkClient(tb.client, "10.0.0.1", connections=1,
                        duration_ns=500_000, warmup_ns=100_000)
        wrk.run()
        acct = tb.server.accounting
        assert acct.category("datamgmt.prep") == 0
        assert acct.category("datamgmt.checksum") == 0
        assert acct.category("persist") == 0
        assert acct.category("net.tcp") > 0

    def test_rawpm_run_has_persist_but_no_insert(self):
        tb = make_testbed(ServerConfig(engine="rawpm"))
        wrk = WrkClient(tb.client, "10.0.0.1", connections=1,
                        duration_ns=500_000, warmup_ns=100_000)
        wrk.run()
        acct = tb.server.accounting
        assert acct.category("persist") > 0
        assert acct.category("datamgmt.insert") == 0
        assert acct.category("datamgmt.checksum") == 0

    def test_pktstore_run_has_no_checksum_or_copy(self):
        tb = make_testbed(ServerConfig(engine="pktstore"))
        wrk = WrkClient(tb.client, "10.0.0.1", connections=1,
                        duration_ns=500_000, warmup_ns=100_000)
        wrk.run()
        acct = tb.server.accounting
        assert acct.category("datamgmt.checksum") == 0
        assert acct.category("datamgmt.copy") == 0
        assert acct.category("datamgmt.insert") > 0
        assert acct.category("persist") > 0
