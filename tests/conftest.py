"""Suite-wide fixtures: the ``--pmsan`` sanitized lane.

``pytest --pmsan`` wraps every test in a suite-mode
:class:`repro.analysis.pmsan.PMSan`: packet-buffer handles dropped
with a positive refcount fail the test that leaked them, and
zero-line (redundant) flushes are reported as perf diagnostics in the
test output without failing anything.  Strict mode (fence/ordering
checks) is *not* armed here — it needs a dedicated device exercising
one protocol, which is what the targeted tests in
``test_analysis_pmsan.py`` do.

Opt a test out with ``@pytest.mark.no_pmsan`` (e.g. tests that leak
deliberately to prove leak *detection*).
"""

import gc

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--pmsan",
        action="store_true",
        default=False,
        help="run every test under the PMSan runtime sanitizer "
             "(refcount-leak checks; redundant-flush diagnostics)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_pmsan: disable the PMSan fixture for this test "
        "(tests that plant violations on purpose)",
    )


@pytest.fixture(autouse=True)
def _pmsan_guard(request):
    if not request.config.getoption("--pmsan"):
        yield
        return
    if request.node.get_closest_marker("no_pmsan") is not None:
        yield
        return
    from repro.analysis.pmsan import PMSan

    sanitizer = PMSan(strict=False)
    sanitizer.enable()
    try:
        yield sanitizer
    finally:
        # Collect cycles so handles the test dropped (but that are
        # pinned in a cycle) finalize while the sanitizer is live;
        # whatever is still reachable at disable() is legitimately
        # held and is not a leak.
        gc.collect()
        report = sanitizer.disable()
    leaks = [finding for finding in report.failures if not finding.suppressed]
    if leaks:
        pytest.fail(
            "PMSan: "
            + "; ".join(finding.format() for finding in leaks),
            pytrace=False,
        )
    for finding in report.diagnostics:
        print(finding.format())
