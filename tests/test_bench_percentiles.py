"""Percentile paths are exact: WrkStats interpolation, Figure 2, digests.

The regression this locks down: ``WrkStats.percentile_us`` used
truncated-index selection (``int(p/100*n)``), which returned the wrong
order statistic (off by up to one rank, degenerate at p0/p100) and fed
``Figure2Point.p99_rtt_us`` and the ``repro-stats`` workload summary.
Now it interpolates between order statistics, and on a canned 5k-sample
run both consumers must land within 1% of the exact percentile.
"""

import random

import pytest

from repro.bench.figure2 import Figure2Point
from repro.bench.wrk import WrkStats
from repro.obs.registry import Histogram
from repro.sim.units import ns_to_us


def exact_percentile(ordered, p):
    """The reference definition: linear interpolation between the two
    nearest order statistics at rank p/100 * (n-1)."""
    rank = p / 100.0 * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if frac == 0.0 or low + 1 >= len(ordered):
        return ordered[low]
    return ordered[low] + (ordered[low + 1] - ordered[low]) * frac


def canned_run(n=5000, seed=1234):
    """A deterministic 5k-sample RTT population: lognormal body with a
    10x congested tail — the shape Figure 2's p99 claims live on."""
    rng = random.Random(seed)
    rtts = []
    for _ in range(n):
        rtt = rng.lognormvariate(10.2, 0.35)        # ~27 µs body
        if rng.random() < 0.03:
            rtt *= 10.0                             # queued outliers
        rtts.append(rtt)
    stats = WrkStats()
    stats.rtts_ns = list(rtts)
    stats.completed = n
    stats.measure_start, stats.measure_end = 0.0, 1e9
    return stats, sorted(rtts)


class TestPercentileEdgeCases:
    def test_empty_returns_zero(self):
        assert WrkStats().percentile_us(99) == 0.0

    def test_single_sample_answers_every_percentile(self):
        stats = WrkStats()
        stats.rtts_ns = [5000.0]
        for p in (0, 1, 50, 99, 100):
            assert stats.percentile_us(p) == 5.0

    def test_p0_is_min_p100_is_max(self):
        stats = WrkStats()
        stats.rtts_ns = [3000.0, 1000.0, 2000.0]
        assert stats.percentile_us(0) == 1.0
        assert stats.percentile_us(100) == 3.0

    def test_two_samples_interpolate(self):
        stats = WrkStats()
        stats.rtts_ns = [1000.0, 3000.0]
        assert stats.percentile_us(50) == 2.0
        assert stats.percentile_us(25) == 1.5

    def test_interpolation_not_truncation(self):
        # The old int(p/100*n) picked index 50 (value 51) for p50 over
        # 100 samples; the exact answer is the midpoint 50.5.
        stats = WrkStats()
        stats.rtts_ns = [float(i) * 1000 for i in range(1, 101)]
        assert stats.percentile_us(50) == pytest.approx(50.5)
        assert stats.percentile_us(99) == pytest.approx(99.01)


class TestCannedRunRegression:
    def test_wrkstats_p99_matches_exact_within_1pct(self):
        stats, ordered = canned_run()
        for p in (50, 90, 99, 99.9):
            exact = ns_to_us(exact_percentile(ordered, p))
            assert stats.percentile_us(p) == pytest.approx(exact, rel=0.01)
        # In fact the sample path is exact, not just within 1%.
        assert stats.percentile_us(99) == pytest.approx(
            ns_to_us(exact_percentile(ordered, 99)), rel=1e-12)

    def test_figure2_point_p99_matches_exact_within_1pct(self):
        stats, ordered = canned_run()
        point = Figure2Point("novelsm", 25, stats)
        exact_p99 = ns_to_us(exact_percentile(ordered, 99))
        exact_p50 = ns_to_us(exact_percentile(ordered, 50))
        assert point.p99_rtt_us == pytest.approx(exact_p99, rel=0.01)
        assert point.p50_rtt_us == pytest.approx(exact_p50, rel=0.01)
        assert point.samples == len(ordered)

    def test_histogram_digest_p99_within_1pct_of_exact(self):
        # The registry histogram's t-digest path over the same canned
        # run: percentile-exact within 1%, where the bucketed answer is
        # pinned to a power-of-two edge (up to 2x off).
        stats, ordered = canned_run()
        hist = Histogram("rtt_ns")
        for rtt in stats.rtts_ns:
            hist.observe(rtt)
        exact_p99 = exact_percentile(ordered, 99)
        assert hist.quantile(0.99) == pytest.approx(exact_p99, rel=0.01)
        # And the old bucketed answer is genuinely coarser here — the
        # digest is not re-deriving bucket edges.
        bucketed = hist.bucket_quantile(0.99)
        assert bucketed != pytest.approx(exact_p99, rel=0.01)
        assert bucketed in hist.bounds or bucketed == hist.max

    def test_digest_median_within_1pct_of_exact(self):
        stats, ordered = canned_run()
        hist = Histogram("rtt_ns")
        for rtt in stats.rtts_ns:
            hist.observe(rtt)
        exact_p50 = exact_percentile(ordered, 50)
        assert hist.quantile(0.5) == pytest.approx(exact_p50, rel=0.01)
