"""Percentile paths are exact: WrkStats interpolation, Figure 2, digests.

The regression this locks down: ``WrkStats.percentile_us`` used
truncated-index selection (``int(p/100*n)``), which returned the wrong
order statistic (off by up to one rank, degenerate at p0/p100) and fed
``Figure2Point.p99_rtt_us`` and the ``repro-stats`` workload summary.
Now it interpolates between order statistics, and on a canned 5k-sample
run both consumers must land within 1% of the exact percentile.
"""

import json
import math
import os
import random

import pytest

from repro.bench.figure2 import Figure2Point
from repro.bench.wrk import WrkStats
from repro.obs.registry import Histogram
from repro.obs.tdigest import DEFAULT_COMPRESSION
from repro.sim.units import ns_to_us


def exact_percentile(ordered, p):
    """The reference definition: linear interpolation between the two
    nearest order statistics at rank p/100 * (n-1)."""
    rank = p / 100.0 * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if frac == 0.0 or low + 1 >= len(ordered):
        return ordered[low]
    return ordered[low] + (ordered[low + 1] - ordered[low]) * frac


def canned_run(n=5000, seed=1234):
    """A deterministic 5k-sample RTT population: lognormal body with a
    10x congested tail — the shape Figure 2's p99 claims live on."""
    rng = random.Random(seed)
    rtts = []
    for _ in range(n):
        rtt = rng.lognormvariate(10.2, 0.35)        # ~27 µs body
        if rng.random() < 0.03:
            rtt *= 10.0                             # queued outliers
        rtts.append(rtt)
    stats = WrkStats()
    stats.rtts_ns = list(rtts)
    stats.completed = n
    stats.measure_start, stats.measure_end = 0.0, 1e9
    return stats, sorted(rtts)


class TestPercentileEdgeCases:
    def test_empty_returns_zero(self):
        assert WrkStats().percentile_us(99) == 0.0

    def test_single_sample_answers_every_percentile(self):
        stats = WrkStats()
        stats.rtts_ns = [5000.0]
        for p in (0, 1, 50, 99, 100):
            assert stats.percentile_us(p) == 5.0

    def test_p0_is_min_p100_is_max(self):
        stats = WrkStats()
        stats.rtts_ns = [3000.0, 1000.0, 2000.0]
        assert stats.percentile_us(0) == 1.0
        assert stats.percentile_us(100) == 3.0

    def test_two_samples_interpolate(self):
        stats = WrkStats()
        stats.rtts_ns = [1000.0, 3000.0]
        assert stats.percentile_us(50) == 2.0
        assert stats.percentile_us(25) == 1.5

    def test_interpolation_not_truncation(self):
        # The old int(p/100*n) picked index 50 (value 51) for p50 over
        # 100 samples; the exact answer is the midpoint 50.5.
        stats = WrkStats()
        stats.rtts_ns = [float(i) * 1000 for i in range(1, 101)]
        assert stats.percentile_us(50) == pytest.approx(50.5)
        assert stats.percentile_us(99) == pytest.approx(99.01)


class TestCannedRunRegression:
    def test_wrkstats_p99_matches_exact_within_1pct(self):
        stats, ordered = canned_run()
        for p in (50, 90, 99, 99.9):
            exact = ns_to_us(exact_percentile(ordered, p))
            assert stats.percentile_us(p) == pytest.approx(exact, rel=0.01)
        # In fact the sample path is exact, not just within 1%.
        assert stats.percentile_us(99) == pytest.approx(
            ns_to_us(exact_percentile(ordered, 99)), rel=1e-12)

    def test_figure2_point_p99_matches_exact_within_1pct(self):
        stats, ordered = canned_run()
        point = Figure2Point("novelsm", 25, stats)
        exact_p99 = ns_to_us(exact_percentile(ordered, 99))
        exact_p50 = ns_to_us(exact_percentile(ordered, 50))
        assert point.p99_rtt_us == pytest.approx(exact_p99, rel=0.01)
        assert point.p50_rtt_us == pytest.approx(exact_p50, rel=0.01)
        assert point.samples == len(ordered)

    def test_histogram_digest_p99_within_1pct_of_exact(self):
        # The registry histogram's t-digest path over the same canned
        # run: percentile-exact within 1%, where the bucketed answer is
        # pinned to a power-of-two edge (up to 2x off).
        stats, ordered = canned_run()
        hist = Histogram("rtt_ns")
        for rtt in stats.rtts_ns:
            hist.observe(rtt)
        exact_p99 = exact_percentile(ordered, 99)
        assert hist.quantile(0.99) == pytest.approx(exact_p99, rel=0.01)
        # And the old bucketed answer is genuinely coarser here — the
        # digest is not re-deriving bucket edges.
        bucketed = hist.bucket_quantile(0.99)
        assert bucketed != pytest.approx(exact_p99, rel=0.01)
        assert bucketed in hist.bounds or bucketed == hist.max

    def test_digest_median_within_1pct_of_exact(self):
        stats, ordered = canned_run()
        hist = Histogram("rtt_ns")
        for rtt in stats.rtts_ns:
            hist.observe(rtt)
        exact_p50 = exact_percentile(ordered, 50)
        assert hist.quantile(0.5) == pytest.approx(exact_p50, rel=0.01)


# --------------------------------------------------------------------------
# bucket_quantile vs digest quantile on the wall-clock speed scenarios.
#
# The raw-speed overhaul (repro.bench.speed and its hot-path rewrites)
# must not perturb the percentile machinery: the t-digest answer has to
# stay inside the divergence bound the fixed buckets imply, both on the
# committed golden snapshots (pre-optimization captures, so any drift in
# observe()/digest code shows up against frozen data) and on a live
# scenario run through the optimized stack.

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")

# t-digest quantile-space error: 2*pi*sqrt(q(1-q))/compression.  The
# bound is asymptotic, so allow 2x slack, and never less than one rank.
def digest_rank_slack(q, count):
    delta = 2.0 * (2.0 * math.pi * math.sqrt(q * (1.0 - q))
                   / DEFAULT_COMPRESSION)
    return max(delta * count, 1.0)


def bucket_window(bounds, counts, total, minimum, maximum, q, slack):
    """[lo, hi] the bucket CDF allows for quantile ``q`` given ``slack``
    ranks of estimator error: lower edge of the bucket holding rank
    q*n - slack through upper edge of the bucket holding q*n + slack."""
    lo_rank = max(q * total - slack, 0.0)
    hi_rank = min(q * total + slack, float(total))
    lo = minimum
    hi = maximum
    seen = 0
    lo_found = False
    for index, count in enumerate(counts):
        next_seen = seen + count
        if not lo_found and next_seen >= lo_rank and count:
            lo = bounds[index - 1] if index > 0 else minimum
            lo_found = True
        if next_seen >= hi_rank and count:
            hi = bounds[index] if index < len(bounds) else maximum
            break
        seen = next_seen
    return min(lo, minimum if q == 0 else lo), hi


def snapshot_histograms(fixture_name):
    path = os.path.join(FIXTURE_DIR, f"speed_golden_{fixture_name}.json")
    with open(path) as handle:
        doc = json.load(handle)
    metrics = doc["metrics"]["metrics"]
    return {
        name: entry for name, entry in metrics.items()
        if entry.get("type") == "histogram" and entry["count"] > 0
    }


class TestWallClockSnapshotDivergence:
    """Golden-snapshot form: the digest quantiles recorded in the
    pre-optimization captures lie within the window their own ``le``
    buckets admit."""

    @pytest.mark.parametrize("scenario", ["wrk-tcp", "homa-storm"])
    def test_fixture_has_histograms(self, scenario):
        hists = snapshot_histograms(scenario)
        assert hists, f"{scenario} snapshot carries no histograms"
        assert any(name.endswith("rtt_ns") for name in hists)

    @pytest.mark.parametrize("scenario", ["wrk-tcp", "homa-storm"])
    def test_snapshot_quantiles_within_bucket_window(self, scenario):
        for name, entry in snapshot_histograms(scenario).items():
            bounds = [b["le"] for b in entry["buckets"][:-1]]
            counts = [b["count"] for b in entry["buckets"]]
            total = entry["count"]
            assert sum(counts) == total, f"{name}: bucket counts != count"
            for label, value in entry["quantiles"].items():
                q = float(label[1:]) / 100.0
                lo, hi = bucket_window(
                    bounds, counts, total, entry["min"], entry["max"],
                    q, digest_rank_slack(q, total),
                )
                assert lo <= value <= hi, (
                    f"{scenario}:{name} {label}={value} escapes the "
                    f"bucket-implied window [{lo}, {hi}]"
                )

    @pytest.mark.parametrize("scenario", ["wrk-tcp", "homa-storm"])
    def test_snapshot_quantiles_are_monotone(self, scenario):
        for name, entry in snapshot_histograms(scenario).items():
            ordered = [entry["quantiles"][f"p{q * 100:g}"]
                       for q in (0.5, 0.9, 0.99, 0.999)]
            assert ordered == sorted(ordered), f"{name}: quantile inversion"
            assert entry["min"] <= ordered[0]
            assert ordered[-1] <= entry["max"]


class TestLiveScenarioDivergence:
    """Live form: run the wrk-tcp scenario (scaled down) through the
    optimized stack and bound bucket_quantile() against quantile() on
    the actual Histogram objects, not just their snapshots."""

    @pytest.fixture(scope="class")
    def rtt_histogram(self):
        from repro.bench.testbed import SERVER_IP, make_testbed, preload
        from repro.bench.workloads import YcsbWorkload
        from repro.bench.wrk import WrkClient
        from repro.storage.server import ServerConfig

        config = ServerConfig(engine="novelsm", metrics=True)
        testbed = make_testbed(config=config)
        preload(testbed, entries=200, value_size=1024)
        workload = YcsbWorkload(mix="A", key_space=200, value_size=1024,
                                seed=7)
        client = WrkClient(
            testbed.client, SERVER_IP, connections=8, value_size=1024,
            duration_ns=6_000_000.0, warmup_ns=2_000_000.0,
            workload=workload,
        )
        client.run()
        hist = testbed.metrics.get("client.rtt_ns")
        assert hist is not None and hist.count > 0
        return hist

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_digest_within_bucket_window(self, rtt_histogram, q):
        hist = rtt_histogram
        lo, hi = bucket_window(
            list(hist.bounds), list(hist.counts), hist.count,
            hist.min, hist.max, q, digest_rank_slack(q, hist.count),
        )
        assert lo <= hist.quantile(q) <= hi

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_bucket_quantile_is_edge_pinned(self, rtt_histogram, q):
        # The legacy answer must still be an exact bucket upper edge
        # (or the observed max for the overflow bucket).
        value = rtt_histogram.bucket_quantile(q)
        assert value in rtt_histogram.bounds or value == rtt_histogram.max

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_divergence_bounded_by_window_width(self, rtt_histogram, q):
        # bucket_quantile and the digest may disagree, but only within
        # the window one bucket (plus digest slack) admits.
        hist = rtt_histogram
        lo, hi = bucket_window(
            list(hist.bounds), list(hist.counts), hist.count,
            hist.min, hist.max, q, digest_rank_slack(q, hist.count),
        )
        divergence = abs(hist.bucket_quantile(q) - hist.quantile(q))
        assert divergence <= (hi - lo) + 1e-9

    def test_digest_beats_buckets_on_median(self, rtt_histogram):
        # The digest median interpolates inside a bucket; the bucketed
        # median pins to an edge.  Over hundreds of distinct RTTs the
        # digest must sit strictly inside the bucket, not on its edge —
        # the property that made the t-digest worth carrying.
        hist = rtt_histogram
        assert hist.quantile(0.5) not in hist.bounds
