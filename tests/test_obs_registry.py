"""Unit tests for the metrics registry (repro.obs.registry)."""

import pytest

from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.stages import (
    STAGE_DATAMGMT,
    STAGE_NETWORKING,
    STAGE_OTHER,
    STAGE_PERSISTENCE,
    classify,
    fold,
)
from repro.sim.engine import Simulator


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("x")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("x").inc(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0.0

    def test_describe(self):
        counter = Counter("x")
        counter.inc(4)
        assert counter.describe() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge("g")
        gauge.set(12.5)
        assert gauge.value == 12.5

    def test_callback_backed_reads_live_state(self):
        state = {"depth": 3}
        gauge = Gauge("g", fn=lambda: state["depth"])
        assert gauge.value == 3
        state["depth"] = 9
        assert gauge.value == 9

    def test_set_on_callback_gauge_rejected(self):
        gauge = Gauge("g", fn=lambda: 1)
        with pytest.raises(ValueError, match="callback-backed"):
            gauge.set(5)

    def test_reset_leaves_callback_gauges_alone(self):
        gauge = Gauge("g", fn=lambda: 42)
        gauge.reset()
        assert gauge.value == 42


class TestHistogram:
    def test_bucketing_boundaries_inclusive(self):
        # Bucket i counts observations <= bounds[i].  counts is a view
        # derived from the digest; exact while every sample is its own
        # centroid, as here.
        hist = Histogram("h", bounds=(10, 100, 1000))
        for value in (5, 10, 11, 100, 999, 1000, 1001):
            hist.observe(value)
        assert hist.counts == [2, 2, 2, 1]  # <=10, <=100, <=1000, overflow
        assert hist.count == 7
        assert hist.min == 5
        assert hist.max == 1001

    def test_mean(self):
        hist = Histogram("h", bounds=(10,))
        hist.observe(4)
        hist.observe(8)
        assert hist.mean == 6.0
        assert Histogram("empty", bounds=(10,)).mean == 0.0

    def test_bucket_quantile_reports_bucket_upper_bound(self):
        hist = Histogram("h", bounds=(10, 100, 1000))
        for _ in range(90):
            hist.observe(5)       # bucket <=10
        for _ in range(10):
            hist.observe(50)      # bucket <=100
        assert hist.bucket_quantile(0.5) == 10
        assert hist.bucket_quantile(0.99) == 100

    def test_quantile_is_digest_backed(self):
        # quantile() now answers from the t-digest: the median of 90
        # fives and 10 fifties is 5, not the bucket edge 10.
        hist = Histogram("h", bounds=(10, 100, 1000))
        for _ in range(90):
            hist.observe(5)
        for _ in range(10):
            hist.observe(50)
        assert hist.quantile(0.5) == 5
        assert hist.quantile(0.0) == 5
        assert hist.quantile(1.0) == 50

    def test_quantile_overflow_reports_max(self):
        hist = Histogram("h", bounds=(10,))
        hist.observe(123456)
        assert hist.quantile(0.99) == 123456
        assert hist.bucket_quantile(0.99) == 123456

    def test_quantile_range_checked(self):
        hist = Histogram("h", bounds=(10,))
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", bounds=(10, 10, 20))
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", bounds=(20, 10))
        with pytest.raises(ValueError, match="no buckets"):
            Histogram("h", bounds=())

    def test_default_bounds_cover_one_us_to_16ms(self):
        assert DEFAULT_TIME_BUCKETS_NS[0] == 1_000.0
        assert DEFAULT_TIME_BUCKETS_NS[-1] == 16_384_000.0

    def test_describe_lists_sparse_buckets_with_overflow(self):
        # v2 snapshots elide zero-count buckets (the empty <=100 bucket
        # here) but always keep the terminal overflow entry.
        hist = Histogram("h", bounds=(10, 100))
        hist.observe(5)
        hist.observe(500)
        described = hist.describe()
        assert described["type"] == "histogram"
        assert described["count"] == 2
        assert described["buckets"] == [
            {"le": 10.0, "count": 1},
            {"le": None, "count": 1},
        ]
        assert set(described["quantiles"]) == {"p50", "p90", "p99", "p99.9"}
        assert described["quantiles"]["p99.9"] == 500

    def test_describe_bucket_counts_sum_to_count(self):
        # The invariant CI's schema check relies on, across compaction:
        # derived bucket weights always total the observation count.
        hist = Histogram("h", bounds=(10, 100, 1000, 10000))
        for i in range(5000):
            hist.observe(float((i * 37) % 20000))
        described = hist.describe()
        assert sum(b["count"] for b in described["buckets"]) == 5000
        assert described["buckets"][-1]["le"] is None
        assert all(b["count"] for b in described["buckets"][:-1])

    def test_empty_histogram_describes_lone_overflow(self):
        described = Histogram("h", bounds=(10, 100)).describe()
        assert described["buckets"] == [{"le": None, "count": 0}]

    def test_reset(self):
        hist = Histogram("h", bounds=(10,))
        hist.observe(5)
        hist.reset()
        assert hist.count == 0
        assert hist.counts == [0, 0]
        assert hist.min is None and hist.max is None


class TestMetricsRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("a")

    def test_value_helper(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        hist = registry.histogram("h", bounds=(100,))
        hist.observe(10)
        hist.observe(20)
        assert registry.value("c") == 3
        assert registry.value("g") == 7
        assert registry.value("h") == 15.0       # histograms report the mean
        assert registry.value("missing", default=-1) == -1

    def test_snapshot_uses_sim_clock(self):
        sim = Simulator()
        registry = MetricsRegistry(sim)
        registry.counter("c").inc()
        sim.run(until=5_000.0)
        snap = registry.snapshot()
        assert snap["schema"] == "repro-metrics/v2"
        assert snap["sim_now_ns"] == 5_000.0
        assert snap["window_ns"] == 5_000.0
        assert snap["metrics"]["c"] == {"type": "counter", "value": 1.0}

    def test_reset_zeroes_but_keeps_handles(self):
        sim = Simulator()
        registry = MetricsRegistry(sim)
        counter = registry.counter("c")
        counter.inc(9)
        sim.run(until=1_000.0)
        registry.reset()
        assert counter.value == 0.0             # cached handle still live
        assert registry.counter("c") is counter
        assert registry.window_ns == 0.0
        sim.run(until=1_500.0)
        assert registry.window_ns == 500.0

    def test_gauge_upgrade_to_callback(self):
        registry = MetricsRegistry()
        plain = registry.gauge("g")
        registry.gauge("g", fn=lambda: 11)
        assert plain.value == 11


class TestStageClassifier:
    def test_paper_stage_mapping(self):
        assert classify("net.rx") == STAGE_NETWORKING
        assert classify("app") == STAGE_NETWORKING
        assert classify("datamgmt.checksum") == STAGE_DATAMGMT
        assert classify("pm.alloc") == STAGE_DATAMGMT
        assert classify("mem.access") == STAGE_DATAMGMT
        assert classify("persist") == STAGE_PERSISTENCE
        assert classify("pm.flush") == STAGE_PERSISTENCE
        assert classify("blockdev.write") == STAGE_PERSISTENCE
        assert classify("something.else") == STAGE_OTHER

    def test_fold_sums_by_stage(self):
        folded = fold({"net.rx": 10.0, "net.tx": 5.0,
                       "datamgmt.copy": 3.0, "persist": 2.0})
        assert folded[STAGE_NETWORKING] == 15.0
        assert folded[STAGE_DATAMGMT] == 3.0
        assert folded[STAGE_PERSISTENCE] == 2.0

    def test_fold_into_accumulates(self):
        acc = fold({"net.rx": 1.0})
        fold({"net.rx": 2.0, "persist": 4.0}, into=acc)
        assert acc[STAGE_NETWORKING] == 3.0
        assert acc[STAGE_PERSISTENCE] == 4.0
