"""Capture -> standby rebuild and capture -> workload replay.

The tentpole guarantees, end to end:

- a warm standby rebuilt *from the capture alone* is equivalent to the
  live store (durability oracle clean, identical recovery digests) on
  both transports;
- replay is deterministic — the standby's delivered-frame echo matches
  the recorded inbound stream byte for byte, and two rebuilds agree;
- the oracle is a real check: a planted frame drop makes it fail;
- a capture replayed as a *workload* (CaptureSource through wrk)
  reproduces the original operation stream and final store.
"""

import pytest

from repro.bench.testbed import make_testbed
from repro.bench.wrk import HomaWrkClient, WrkClient
from repro.capture.replay import (
    CaptureSource,
    config_from_meta,
    extract_ops,
    plant_drop,
    rebuild_standby,
    store_digest,
    verify_rebuild,
)
from repro.storage.server import ServerConfig


def record_session(config, value_size=512, connections=3,
                   duration_ns=600_000.0):
    """Run a short wrk session on a capture-enabled testbed."""
    testbed = make_testbed(config=config)
    client_cls = (HomaWrkClient if config.transport == "homa" else WrkClient)
    wrk = client_cls(
        testbed.client, testbed.server.ip, connections=connections,
        value_size=value_size, duration_ns=duration_ns,
        warmup_ns=duration_ns / 4,
    )
    wrk.start()
    testbed.sim.run_until_idle()
    assert wrk.stats.completed > 0
    return testbed, testbed.capture.capture()


class TestRebuildEquivalence:
    def test_tcp_novelsm_rebuild_matches_live(self):
        testbed, capture = record_session(
            ServerConfig(engine="novelsm", capture=True))
        standby = rebuild_standby(capture)
        report = verify_rebuild(testbed.engine, standby.engine)
        assert report.ok, report.summary()
        assert standby.digest() == store_digest(testbed.engine)

    def test_homa_pktstore_rebuild_matches_live(self):
        testbed, capture = record_session(
            ServerConfig(transport="homa", engine="pktstore", cores=2,
                         capture=True),
            value_size=2048)
        standby = rebuild_standby(capture)
        report = verify_rebuild(testbed.engine, standby.engine)
        assert report.ok, report.summary()

    def test_rebuild_needs_no_live_state(self, tmp_path):
        # Everything the standby needs rides in the file: config, world
        # sizing, addresses, frames.
        _testbed, capture = record_session(
            ServerConfig(engine="pktstore", capture=True))
        path = tmp_path / "session.rpcap"
        capture.save(path)
        from repro.capture.format import Capture
        standby = rebuild_standby(Capture.load(path))
        assert standby.injected == len(capture.filter(
            dst_ip=standby.host.ip).records)
        assert dict(standby.engine.scan())


class TestReplayDeterminism:
    def test_echo_matches_recorded_inbound_stream(self):
        # The determinism pin: what the standby's NIC delivered is
        # byte-for-byte (frames, order, timestamps) what was recorded.
        _testbed, capture = record_session(
            ServerConfig(engine="novelsm", capture=True))
        standby = rebuild_standby(capture)
        inbound = capture.filter(dst_ip=standby.host.ip)
        assert standby.echo.digest() == inbound.digest()

    def test_two_rebuilds_agree(self):
        _testbed, capture = record_session(
            ServerConfig(engine="pktstore", capture=True))
        first = rebuild_standby(capture)
        second = rebuild_standby(capture)
        assert first.digest() == second.digest()
        assert first.echo.digest() == second.echo.digest()

    def test_config_from_meta_requires_recorded_config(self):
        with pytest.raises(ValueError, match="server_config"):
            config_from_meta({})


class TestPlantDrop:
    def test_oracle_catches_planted_frame_drop(self):
        # Negative control: remove the frame carrying a surviving
        # value and the rebuild MUST diverge, visibly.
        testbed, capture = record_session(
            ServerConfig(engine="novelsm", capture=True))
        damaged, key = plant_drop(capture, testbed.engine)
        assert len(damaged.records) < len(capture.records)
        standby = rebuild_standby(damaged)
        report = verify_rebuild(testbed.engine, standby.engine)
        assert not report.ok
        assert report.violations
        assert report.live_digest != report.rebuilt_digest
        # the damaged key itself must be among the flagged ones
        assert any(repr(key) in str(v) or str(key) in str(v)
                   for v in report.violations), (key, report.violations)


class TestCaptureAsWorkload:
    def test_replay_reproduces_ops_and_store(self):
        # Replay the capture as a live workload against a fresh server
        # (the "repeatable workload" half of the tentpole).  Re-capture
        # the replay and compare operation multisets; per-flow ordering
        # makes the final stores byte-identical too.
        testbed, capture = record_session(
            ServerConfig(engine="pktstore", capture=True))
        source = CaptureSource(capture)
        assert source.total_ops > 0

        config = config_from_meta(capture.meta).with_overrides(capture=True)
        replay_bed = make_testbed(config=config)
        wrk = WrkClient(replay_bed.client, replay_bed.server.ip,
                        connections=source.loops, duration_ns=1e15,
                        workload=source)
        wrk.start()
        replay_bed.sim.run_until_idle()
        assert wrk.stats.completed == source.total_ops

        original_ops = sorted(
            op[1:] for op in extract_ops(capture))
        replayed_ops = sorted(
            op[1:] for op in extract_ops(replay_bed.capture.capture()))
        assert replayed_ops == original_ops
        assert store_digest(replay_bed.engine) == store_digest(testbed.engine)

    def test_merged_replay_preserves_capture_order(self):
        _testbed, capture = record_session(
            ServerConfig(engine="novelsm", capture=True))
        per_flow = CaptureSource(capture)
        merged = CaptureSource(capture, per_flow=False)
        assert merged.loops == 1
        drained = []
        while (op := merged.next_op(0)) is not None:
            drained.append(op)
        assert len(drained) == per_flow.total_ops
        assert drained == [op[1:] for op in extract_ops(capture)]
