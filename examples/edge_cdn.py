#!/usr/bin/env python3
"""Edge-cloud scenario (§1): one busy server core, many client connections.

The paper motivates its work with edge clouds and CDNs: storage servers
close to clients, pushing millions of requests per second, with "little
CPU cycle or time budget to process a single request".  This example
puts that under the microscope: a single-core PM storage server
receives continual 1 KB writes over an increasing number of persistent
connections, comparing three server stacks:

- ``rawpm``    — copy + persist only (no data management; not a usable
  store, the paper's lower bound),
- ``novelsm``  — a full PM-optimized LSM store (the status quo),
- ``pktstore`` — the paper's proposal: packets as persistent data
  structures.

Run:  python examples/edge_cdn.py
"""

from repro.bench.figure2 import measure_point

CONNECTIONS = (1, 25, 50)
ENGINES = ("rawpm", "novelsm", "pktstore")


def main():
    print("Edge store under concurrent load (1 KB PUTs, single server core)")
    print()
    header = f"{'conns':>6} | " + " | ".join(f"{e:>22}" for e in ENGINES)
    print(header)
    print("-" * len(header))
    results = {}
    for connections in CONNECTIONS:
        cells = []
        for engine in ENGINES:
            point = measure_point(
                engine, connections,
                base_duration_ns=4_000_000, base_warmup_ns=1_200_000,
            )
            results[(engine, connections)] = point
            cells.append(
                f"{point.avg_rtt_us:8.1f}µs {point.throughput_krps:6.1f}krps"
            )
        print(f"{connections:>6} | " + " | ".join(f"{c:>22}" for c in cells))

    print()
    last = CONNECTIONS[-1]
    raw = results[("rawpm", last)]
    nov = results[("novelsm", last)]
    pkt = results[("pktstore", last)]
    nov_penalty = (1 - nov.throughput_krps / raw.throughput_krps) * 100
    pkt_penalty = (1 - pkt.throughput_krps / raw.throughput_krps) * 100
    print(f"At {last} connections, data management costs NoveLSM "
          f"{nov_penalty:.0f}% of the raw throughput;")
    print(f"the packet-native store gives up only {pkt_penalty:.0f}% — the "
          f"checksum, copy and allocator work now rides on the NIC and stack.")


if __name__ == "__main__":
    main()
