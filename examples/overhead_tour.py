#!/usr/bin/env python3
"""A narrated tour of the three overheads (§3) and what networking can reclaim.

Walks one 1 KB PUT through every server configuration the paper
discusses, printing the per-category CPU accounting after each — the
interactive version of Table 1 and Figure 3's metadata story.

Run:  python examples/overhead_tour.py
"""

from repro.bench.testbed import make_testbed
from repro.bench.wrk import WrkClient
from repro.sim.units import ns_to_us

CATEGORIES = [
    ("net.driver", "NIC driver rx/tx"),
    ("net.ip", "Ethernet + IPv4"),
    ("net.tcp", "TCP"),
    ("net.sock", "socket layer"),
    ("net.http", "HTTP parse/build"),
    ("net.copy", "socket copies"),
    ("net.alloc", "skb allocation"),
    ("app", "application logic"),
    ("datamgmt.prep", "request preparation"),
    ("datamgmt.checksum", "value checksum (CRC32C)"),
    ("datamgmt.copy", "copy into store buffer"),
    ("datamgmt.insert", "allocation + index insert"),
    ("persist", "cache flushes to PM"),
]

STORIES = {
    "null": "Networking only: the server parses and discards.  This is the\n"
            "26.71 µs floor every storage stack builds on.",
    "rawpm": "Copy + persist: the value is copied into PM and flushed.  Still\n"
             "no integrity, no index, no recovery — not a store.",
    "novelsm": "Full NoveLSM: checksum, copy, PM allocation, persistent skip\n"
               "list insert, flushes.  Data management (6.39 µs in the paper)\n"
               "now rivals everything else the server does per request.",
    "pktstore": "The proposal: the packet IS the stored object.  The TCP\n"
                "checksum (NIC-verified) is the integrity checksum, the NIC\n"
                "timestamp is the timestamp, the rx buffer is the value buffer,\n"
                "and the index nodes are persistent packet metadata.",
}


def tour(engine):
    testbed = make_testbed(engine=engine)
    wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                    value_size=1024, duration_ns=1_500_000, warmup_ns=300_000)
    stats = wrk.run()
    puts = max(1, testbed.kv.stats["puts"])
    acct = testbed.server.accounting

    print("=" * 68)
    print(f"server = {engine}")
    print(STORIES[engine])
    print()
    print(f"  average RTT: {stats.avg_rtt_us:6.2f} µs   "
          f"throughput: {stats.throughput_krps:5.1f} krps")
    print(f"  server-side CPU per request:")
    total = 0.0
    for category, label in CATEGORIES:
        per_request = ns_to_us(acct.category(category) / puts)
        total += per_request
        if per_request > 0.005:
            print(f"    {label:28s} {per_request:6.2f} µs")
    print(f"    {'TOTAL server CPU':28s} {total:6.2f} µs")
    print()
    return stats.avg_rtt_us


def main():
    print(__doc__)
    rtts = {engine: tour(engine) for engine in ("null", "rawpm", "novelsm", "pktstore")}
    print("=" * 68)
    print("Summary (end-to-end RTT):")
    for engine, rtt in rtts.items():
        bar = "#" * int(rtt)
        print(f"  {engine:10s} {rtt:6.2f} µs  {bar}")
    saved = rtts["novelsm"] - rtts["pktstore"]
    print(f"\nRepurposing networking features reclaims {saved:.2f} µs per write —")
    print("roughly the checksum + copy + preparation rows of Table 1.")


if __name__ == "__main__":
    main()
