#!/usr/bin/env python3
"""Quickstart: boot the paper's testbed and issue your first requests.

Builds the two-host simulated testbed (one-core PASTE server with
Optane-like PM, a 12-core wrk client, 25 GbE fabric), runs a NoveLSM
KV server on it, performs a few PUT/GET round trips, and prints the
per-request latency breakdown that motivates the whole paper.

Run:  python examples/quickstart.py
"""

from repro.bench.table1 import PAPER, render, run_table1
from repro.bench.testbed import make_testbed
from repro.bench.wrk import WrkClient
from repro.net.http import HttpParser, build_request


def manual_requests():
    """Drive a handful of explicit requests through the full stack."""
    testbed = make_testbed(engine="novelsm")
    requests = [
        build_request("PUT", "/greeting", b"hello persistent memory"),
        build_request("GET", "/greeting"),
        build_request("PUT", "/greeting", b"hello again"),
        build_request("GET", "/greeting"),
        build_request("GET", "/missing"),
    ]
    parser = HttpParser(is_response=True)
    log = []
    state = {"sent": 0}

    def start(ctx):
        sock = testbed.client.stack.connect("10.0.0.1", 80, ctx)

        def on_data(_sock, segment, c):
            for message in parser.feed(segment):
                log.append((message.status, message.body))
                message.release()
                if state["sent"] < len(requests):
                    sock.send(requests[state["sent"]], c)
                    state["sent"] += 1

        sock.on_data = on_data

        def on_established(s, c):
            s.send(requests[0], c)
            state["sent"] = 1

        sock.on_established = on_established

    testbed.client.process_on_core(testbed.client.cpus[0], start)
    testbed.sim.run_until_idle()

    print("Manual request log (status, body):")
    for status, body in log:
        print(f"  {status}  {body!r}")
    print()


def closed_loop():
    """A short wrk run: the paper's continual-1KB-write workload."""
    testbed = make_testbed(engine="novelsm")
    wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                    value_size=1024, duration_ns=2_000_000, warmup_ns=400_000)
    stats = wrk.run()
    print("Closed-loop 1 KB writes over one persistent connection:")
    print(f"  requests completed : {stats.completed}")
    print(f"  average RTT        : {stats.avg_rtt_us:.2f} µs"
          f"   (paper Table 1: {PAPER['total']} µs)")
    print(f"  p99 RTT            : {stats.percentile_us(99):.2f} µs")
    print(f"  throughput         : {stats.throughput_krps:.1f} krps")
    print()


def breakdown():
    """Regenerate Table 1: where does the time go?"""
    print(render(run_table1(duration_ns=1_500_000, warmup_ns=300_000)))
    print()
    print("The 6.39 µs of data management on top of 1.94 µs of persistence")
    print("is what the paper proposes to reclaim from the network stack.")


def main():
    manual_requests()
    closed_loop()
    breakdown()


if __name__ == "__main__":
    main()
