#!/usr/bin/env python3
"""PktFS: files whose inodes are packet metadata (§4.2).

A CDN-flavoured demo: a client uploads objects over HTTP; the server
*ingests the packets themselves* as file extents (no copy — the
payload stays where the NIC DMA'd it, in persistent memory).  The NIC
hardware timestamp becomes the mtime.  After a crash + remount, the
same files are served back zero-copy from their extents.

Run:  python examples/pktfs_demo.py
"""

from repro.bench.costmodel import CostModel
from repro.core.pktfs import PktFS
from repro.net.fabric import Fabric
from repro.net.http import HttpParser, build_request, build_response
from repro.net.pool import BufferPool
from repro.net.stack import Host
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim.engine import Simulator


def build_world():
    sim = Simulator()
    fabric = Fabric(sim)
    pm = PMDevice(64 << 20, name="optane")
    ns = PMNamespace(pm)
    server = Host(sim, "edge", "10.0.0.1", fabric, CostModel.paste(),
                  rx_pool_region=ns.create("rx-pool", 8 << 20))
    client = Host(sim, "origin", "10.0.0.2", fabric, CostModel.kernel())
    fs = PktFS.create(ns.create("pktfs-meta", 2 << 20), server.rx_pool)
    return sim, server, client, fs, pm, ns


def file_server(fs):
    """PUT /name uploads (ingest); GET /name serves zero-copy."""

    def on_accept(sock, ctx):
        parser = HttpParser()

        def on_data(_sock, segment, c):
            for message in parser.feed(segment, c, sock._stack.costs):
                name = (message.path or "/").lstrip("/")
                if message.method == "PUT":
                    fs.ingest(name, message)
                    sock.send(build_response(201), c)
                elif message.method == "GET" and fs.exists(name):
                    stat = fs.stat(name)
                    sock.send(build_response(
                        200, b"", {"Content-Length-Actual": str(stat.size)}
                    ), c)
                    fs.send_file(name, sock, c)  # extents -> TCP frags
                else:
                    sock.send(build_response(404), c)
                message.release()

        sock.on_data = on_data

    return on_accept


def upload(sim, client, objects):
    done = {"n": 0}
    parser = HttpParser(is_response=True)

    def start(ctx):
        sock = client.stack.connect("10.0.0.1", 80, ctx)
        names = list(objects)

        def send_next(c):
            if done["n"] < len(names):
                name = names[done["n"]]
                sock.send(build_request("PUT", f"/{name}", objects[name]), c)

        def on_data(_s, seg, c):
            for message in parser.feed(seg):
                message.release()
                done["n"] += 1
                send_next(c)

        sock.on_data = on_data
        sock.on_established = lambda s, c: send_next(c)

    client.process_on_core(client.cpus[0], start)
    sim.run_until_idle()


def main():
    sim, server, client, fs, pm, ns = build_world()
    server.stack.listen(80, file_server(fs))

    objects = {
        "index.html": b"<html><body>edge copy</body></html>" * 20,
        "logo.png": bytes(range(256)) * 16,          # 4 KB, multi-segment
        "app.js": b"function main(){}\n" * 300,      # ~5.4 KB
    }
    print("Uploading", len(objects), "objects over HTTP/TCP ...")
    upload(sim, client, objects)

    print("\nPktFS contents (inodes = packet metadata):")
    for name in fs.list():
        stat = fs.stat(name)
        print(f"  {name:12s} {stat.size:6d} B  extents={stat.nextents}  "
              f"mtime(NIC)={stat.mtime / 1000:.2f}µs  crc=0x{stat.checksum:08x}")
        assert fs.read(name, verify=True) == objects[name]

    print("\nCrash!  Losing all volatile state ...")
    pm.crash()
    ns2 = PMNamespace.reopen(pm)
    pool2 = BufferPool(ns2.open("rx-pool"), 2048)
    fs2, report = PktFS.recover(ns2.open("pktfs-meta"), pool2)
    print(f"Remounted: {report.recovered} inodes, "
          f"{report.adopted_buffers} data pages re-adopted.")

    for name, content in objects.items():
        assert fs2.read(name, verify=True) == content
    print("All files intact and checksum-verified after remount.")

    served = fs2.read("logo.png")
    print(f"\nServing logo.png zero-copy: {len(served)} bytes from "
          f"{fs2.stat('logo.png').nextents} PM extents — no copies made.")


if __name__ == "__main__":
    main()
