#!/usr/bin/env python3
"""Future transports (§5.2): the same storage stacks over Homa.

The paper closes by arguing that repurposing networking features is
not TCP-specific: Homa's Linux implementation reuses regular packet
metadata, so the whole proposal carries over — and because Homa
shrinks networking latency, the storage stack's share of each request
grows, making the reclaimed data management *more* valuable.

This example runs the null / NoveLSM / packet-native servers over both
transports and prints the §5.2 arithmetic.

Run:  python examples/homa_transport.py
"""

from repro.bench.testbed import make_testbed
from repro.bench.wrk import HomaWrkClient, WrkClient

ENGINES = ("null", "novelsm", "pktstore")


def measure(transport, engine):
    testbed = make_testbed(engine=engine, transport=transport)
    client_cls = HomaWrkClient if transport == "homa" else WrkClient
    wrk = client_cls(testbed.client, "10.0.0.1", connections=1,
                     value_size=1024, duration_ns=2_000_000, warmup_ns=400_000)
    stats = wrk.run()
    return stats.avg_rtt_us


def main():
    print("1 KB writes, one connection/loop, per transport and server:\n")
    rtts = {}
    print(f"{'server':12s} {'TCP (µs)':>10} {'Homa (µs)':>10}")
    for engine in ENGINES:
        tcp_rtt = measure("tcp", engine)
        homa_rtt = measure("homa", engine)
        rtts[engine] = (tcp_rtt, homa_rtt)
        print(f"{engine:12s} {tcp_rtt:>10.2f} {homa_rtt:>10.2f}")

    print()
    for transport, idx in (("TCP", 0), ("Homa", 1)):
        net = rtts["null"][idx]
        full = rtts["novelsm"][idx]
        saved = rtts["novelsm"][idx] - rtts["pktstore"][idx]
        share = (full - net) / full * 100
        print(f"{transport:5s}: networking {net:5.2f}µs, storage stack "
              f"{full - net:5.2f}µs ({share:.0f}% of the RTT); "
              f"packet-native reclaims {saved:.2f}µs")

    tcp_gain = (rtts["novelsm"][0] - rtts["pktstore"][0]) / rtts["novelsm"][0]
    homa_gain = (rtts["novelsm"][1] - rtts["pktstore"][1]) / rtts["novelsm"][1]
    print(f"\nRelative gain of the proposal: {tcp_gain * 100:.1f}% over TCP, "
          f"{homa_gain * 100:.1f}% over Homa — faster networks raise the")
    print("value of every microsecond the storage stack gives back (§5.2).")


if __name__ == "__main__":
    main()
