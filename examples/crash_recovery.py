#!/usr/bin/env python3
"""Crash a PM storage server mid-run and recover it from packet metadata.

The storage contract: every acknowledged write survives; in-flight
writes vanish whole, never torn.  This example runs the packet-native
store under load, cuts power at an arbitrary instant (losing every
cache line that was not flushed), then recovers the store by walking
the persistent packet metadata — and audits the result against what
the client actually saw acknowledged.

Run:  python examples/crash_recovery.py
"""

from repro.bench.testbed import make_testbed
from repro.core.pktstore import PacketStore
from repro.net.http import HttpParser, build_request
from repro.net.pool import BufferPool
from repro.pm.namespace import PMNamespace

CRASH_AT_US = 2_345.0


class AuditedClient:
    """Sequential PUTs, remembering exactly what was acknowledged."""

    def __init__(self, testbed, total=500):
        self.testbed = testbed
        self.total = total
        self.attempted = {}
        self.acked = set()
        self.parser = HttpParser(is_response=True)
        self._inflight = None
        self.sock = None

    def start(self):
        def begin(ctx):
            self.sock = self.testbed.client.stack.connect("10.0.0.1", 80, ctx)
            self.sock.on_data = self._on_data
            self.sock.on_established = lambda s, c: self._next(c)

        self.testbed.client.process_on_core(self.testbed.client.cpus[0], begin)

    def _next(self, ctx):
        index = len(self.attempted)
        if index >= self.total:
            return
        key = f"object-{index:05d}".encode()
        value = bytes((index * 31 + j) % 256 for j in range(256))
        self.attempted[key] = value
        self._inflight = key
        self.sock.send(build_request("PUT", f"/{key.decode()}", value), ctx)

    def _on_data(self, sock, segment, ctx):
        for message in self.parser.feed(segment):
            if message.status == 200:
                self.acked.add(self._inflight)
            message.release()
            self._next(ctx)


def main():
    testbed = make_testbed(engine="pktstore")
    client = AuditedClient(testbed)
    client.start()

    print(f"Running packet-native KV store; pulling the plug at "
          f"t={CRASH_AT_US:.0f} µs ...")
    testbed.sim.run(until=CRASH_AT_US * 1000.0)

    attempted = len(client.attempted)
    acked = len(client.acked)
    unflushed = testbed.pm_device.tracker.dirty_byte_estimate()
    print(f"  client attempted {attempted} puts, saw {acked} acknowledged")
    print(f"  ~{unflushed} bytes sat unflushed in CPU caches — now lost")

    testbed.pm_device.crash()
    print("\nPower restored.  Recovering from persistent packet metadata ...")
    ns = PMNamespace.reopen(testbed.pm_device)
    pool = BufferPool(ns.open("paste-pktbufs"), 2048)
    store, report = PacketStore.recover(ns.open("pktstore-meta"), pool)
    print(f"  {report.recovered} records recovered, "
          f"{report.discarded_records} in-flight records discarded, "
          f"{report.adopted_buffers} packet buffers re-adopted")

    recovered = dict(store.scan())
    lost_acked = [k for k in client.acked if recovered.get(k) != client.attempted[k]]
    invented = [k for k in recovered if k not in client.attempted]
    torn = [k for k, v in recovered.items() if client.attempted.get(k) != v]
    print("\nAudit:")
    print(f"  acknowledged writes recovered intact : {acked - len(lost_acked)}/{acked}")
    print(f"  lost acknowledged writes             : {len(lost_acked)}  (must be 0)")
    print(f"  invented or torn entries             : {len(invented) + len(torn)}  (must be 0)")
    assert not lost_acked and not invented and not torn
    print("\nacked ⊆ recovered ⊆ attempted — the store honoured its contract.")

    # And it keeps serving — with integrity verifiable from the stored
    # frames' own TCP checksums (no separate CRC was ever computed).
    from repro.sim.context import NULL_CONTEXT

    sample = sorted(client.acked)[0]
    print(f"\nSpot check: {sample.decode()} -> {len(store.get(sample))} bytes, "
          f"wire checksum re-verifies: ", end="")
    slot = store._first_version_slot(sample, NULL_CONTEXT)
    store.verify_slot(slot)
    print("yes")


if __name__ == "__main__":
    main()
