"""Benchmark: does throwing cores at the server fix data management?

§3: "One might think the use of additional CPU cores, but in reality
the server receives far more concurrent connections, resulting in a
queue at each of the cores."  This ablation lifts the one-core
restriction and shows that while throughput scales with cores, the
*relative* data-management penalty — the thing the paper proposes to
eliminate — persists at every core count.
"""

import pytest

from repro.bench.testbed import make_testbed
from repro.bench.wrk import WrkClient
from repro.storage.server import ServerConfig

CORES = (1, 2, 4)
CONNECTIONS = 64

_CACHE = {}


def measure(engine, cores):
    key = (engine, cores)
    if key not in _CACHE:
        testbed = make_testbed(ServerConfig(engine=engine, cores=cores))
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=CONNECTIONS,
                        duration_ns=6_000_000, warmup_ns=2_000_000)
        stats = wrk.run()
        _CACHE[key] = (stats.avg_rtt_us, stats.throughput_krps)
    return _CACHE[key]


@pytest.mark.parametrize("cores", CORES)
@pytest.mark.parametrize("engine", ["rawpm", "novelsm"])
def test_point(benchmark, engine, cores):
    rtt, tput = benchmark.pedantic(measure, args=(engine, cores), rounds=1, iterations=1)
    benchmark.extra_info["avg_rtt_us"] = round(rtt, 1)
    benchmark.extra_info["throughput_krps"] = round(tput, 1)


def test_throughput_scales_but_penalty_persists(benchmark):
    def collect():
        rows = []
        for cores in CORES:
            raw_rtt, raw_tput = measure("rawpm", cores)
            nov_rtt, nov_tput = measure("novelsm", cores)
            penalty = (1 - nov_tput / raw_tput) * 100
            rows.append((cores, raw_tput, nov_tput, penalty))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    for cores, raw_tput, nov_tput, penalty in rows:
        print(f"  cores={cores}  raw {raw_tput:6.1f}krps  novelsm {nov_tput:6.1f}krps  "
              f"penalty -{penalty:.1f}%")
        benchmark.extra_info[f"penalty_pct_{cores}c"] = round(penalty, 1)
        # The data-management penalty survives every core count —
        # cores shift the queues, they don't remove the per-request tax.
        assert penalty > 15.0
    # Meanwhile throughput scales near-linearly for both.
    assert rows[-1][1] > 3.0 * rows[0][1]
    assert rows[-1][2] > 3.0 * rows[0][2]
    # And the penalty band is roughly core-count-independent.
    penalties = [row[3] for row in rows]
    assert max(penalties) - min(penalties) < 12.0
