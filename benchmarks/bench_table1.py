"""Benchmark: Table 1 — latency breakdown of a 1 KB write RTT.

Regenerates every row of the paper's Table 1 and asserts the match.
Simulated microsecond values appear in ``extra_info``.
"""

import pytest

from repro.bench.table1 import PAPER, render, run_table1

_RESULT = {}


def _result():
    if "r" not in _RESULT:
        _RESULT["r"] = run_table1(duration_ns=2_500_000, warmup_ns=500_000)
    return _RESULT["r"]


def test_table1_breakdown(benchmark):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    for label, key, measured in result.rows():
        benchmark.extra_info[f"{key}_us"] = round(measured, 3)
        benchmark.extra_info[f"{key}_paper_us"] = PAPER[key]
    print()
    print(render(result))
    # Headline assertions (per-row tolerances live in the test suite).
    assert result.networking == pytest.approx(PAPER["networking"], rel=0.10)
    assert result.total == pytest.approx(PAPER["total"], rel=0.10)
    assert result.datamgmt == pytest.approx(PAPER["datamgmt"], rel=0.25)


@pytest.mark.parametrize("row", ["prep", "checksum", "copy", "alloc_insert"])
def test_table1_datamgmt_rows(benchmark, row):
    result = _result()

    def measure():
        return getattr(result, row)

    value = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["measured_us"] = round(value, 3)
    benchmark.extra_info["paper_us"] = PAPER[row]
    assert value == pytest.approx(PAPER[row], rel=0.40)
