"""Benchmark Ext-F (§5.1): post-crash recovery of persistent packet metadata.

Recovery walks the level-0 metadata chain, CRC-validates every record
and re-adopts payload buffers.  We measure how it scales with the
number of committed entries and assert completeness at every size.
"""

import pytest

from repro.core.pktstore import PacketStore
from repro.net.pool import BufferPool
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.storage.server import ServerConfig

SIZES = (100, 1000, 5000)


def build_crashed_store(entries):
    pool_slots = entries + 64
    dev = PMDevice(pool_slots * 2048 + (entries + 64) * 256 + (1 << 20))
    ns = PMNamespace(dev)
    pool = BufferPool(ns.create("pool", pool_slots * 2048), 2048)
    store = PacketStore.create(
        ns.create("meta", (entries + 64) * 256 + 4096), pool
    )
    for i in range(entries):
        buf = pool.alloc()
        buf.write(0, bytes([i % 256]) * 64)
        store.put(f"key-{i:06d}".encode(), [(buf, 0, 64)], 64, i, i)
    dev.crash()
    return dev


@pytest.mark.parametrize("entries", SIZES)
def test_recovery_scales_with_entries(benchmark, entries):
    dev = build_crashed_store(entries)

    def recover():
        ns = PMNamespace.reopen(dev)
        pool = BufferPool(ns.open("pool"), 2048)
        return PacketStore.recover(ns.open("meta"), pool)

    store, report = benchmark.pedantic(recover, rounds=1, iterations=1)
    benchmark.extra_info["entries"] = entries
    benchmark.extra_info["recovered"] = report.recovered
    benchmark.extra_info["adopted_buffers"] = report.adopted_buffers
    assert report.recovered == entries
    assert report.adopted_buffers == entries
    assert store.get(b"key-000000") is not None


def test_recovery_completeness_after_partial_run(benchmark):
    """Recovery after a crash mid-run over the real network stack."""
    from repro.bench.testbed import make_testbed
    from repro.bench.wrk import WrkClient

    def run_and_recover():
        testbed = make_testbed(ServerConfig(engine="pktstore"))
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=4,
                        duration_ns=1_500_000, warmup_ns=200_000)
        wrk.run()
        puts = testbed.engine.store.count
        testbed.pm_device.crash()
        ns = PMNamespace.reopen(testbed.pm_device)
        pool = BufferPool(ns.open("paste-pktbufs"), 2048)
        _store, report = PacketStore.recover(ns.open("pktstore-meta"), pool)
        return puts, report

    puts, report = benchmark.pedantic(run_and_recover, rounds=1, iterations=1)
    benchmark.extra_info["puts_before_crash"] = puts
    benchmark.extra_info["recovered"] = report.recovered
    assert report.recovered == puts
