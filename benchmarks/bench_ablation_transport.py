"""Benchmark Ext-D (§5.2): lower-latency transports raise the stakes.

The paper predicts that as networking latency falls (better fabrics,
Homa-like transports), the data-management share of the RTT grows —
strengthening the case for reclaiming it.  We sweep fabric latency
from a campus network down to a Homa-like datacenter profile and
measure the networking RTT and the datamgmt share.
"""

import pytest

from repro.bench.testbed import make_testbed
from repro.bench.wrk import WrkClient
from repro.storage.server import ServerConfig

PROFILES = {
    # name: (propagation_ns, switch_ns)
    "campus": (5000.0, 2000.0),
    "paper-25gbe": (200.0, 300.0),
    "homa-like": (50.0, 80.0),
}

_CACHE = {}


def measure(profile, engine):
    key = (profile, engine)
    if key not in _CACHE:
        propagation, switch = PROFILES[profile]
        testbed = make_testbed(ServerConfig(engine=engine), fabric_kwargs={"propagation_ns": propagation, "switch_ns": switch})
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                        duration_ns=2_000_000, warmup_ns=400_000)
        _CACHE[key] = wrk.run().avg_rtt_us
    return _CACHE[key]


@pytest.mark.parametrize("profile", list(PROFILES))
def test_networking_rtt_per_fabric(benchmark, profile):
    rtt = benchmark.pedantic(measure, args=(profile, "null"), rounds=1, iterations=1)
    benchmark.extra_info["networking_rtt_us"] = round(rtt, 2)


def test_datamgmt_share_grows_as_networks_shrink(benchmark):
    def collect():
        rows = []
        for profile in ("campus", "paper-25gbe", "homa-like"):
            null_rtt = measure(profile, "null")
            full_rtt = measure(profile, "novelsm")
            overhead = full_rtt - null_rtt
            share = overhead / full_rtt * 100
            rows.append((profile, null_rtt, overhead, share))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    shares = []
    for profile, null_rtt, overhead, share in rows:
        print(f"  {profile:14s} net {null_rtt:6.2f}µs  storage {overhead:5.2f}µs  share {share:4.1f}%")
        benchmark.extra_info[f"storage_share_pct_{profile}"] = round(share, 1)
        shares.append(share)
    # Networking RTT falls monotonically across the profiles...
    assert rows[0][1] > rows[1][1] > rows[2][1]
    # ...while the storage-stack share of end-to-end latency grows.
    assert shares == sorted(shares)
    # The storage overhead itself is fabric-independent (same server work).
    overheads = [row[2] for row in rows]
    assert max(overheads) - min(overheads) < 1.0
