"""Benchmark: Figure 2 — latency & throughput over parallel connections.

One benchmark per (series, connection-count) cell of the paper's
Figure 2 sweep {1, 25, 50, 75, 100} × {net.+persist., net.+data
mgmt.+persist.}, plus the penalty-band assertions the paper reports
(throughput −9..28 %, latency +11..41 %, growing with concurrency).
"""

import pytest

from repro.bench.figure2 import CONNECTIONS

ENGINES = ("rawpm", "novelsm")


@pytest.mark.parametrize("connections", CONNECTIONS)
@pytest.mark.parametrize("engine", ENGINES)
def test_figure2_point(benchmark, sim_point, engine, connections):
    point = benchmark.pedantic(
        sim_point, args=(engine, connections), rounds=1, iterations=1
    )
    benchmark.extra_info["avg_rtt_us"] = round(point.avg_rtt_us, 2)
    benchmark.extra_info["p99_rtt_us"] = round(point.p99_rtt_us, 2)
    benchmark.extra_info["throughput_krps"] = round(point.throughput_krps, 2)
    benchmark.extra_info["samples"] = point.samples
    assert point.samples > 20


def test_figure2_penalty_bands(benchmark, sim_point):
    """The paper's headline: the datamgmt penalty and its growth."""

    def collect():
        rows = []
        for connections in CONNECTIONS:
            raw = sim_point("rawpm", connections)
            nov = sim_point("novelsm", connections)
            latency = (nov.avg_rtt_us / raw.avg_rtt_us - 1) * 100
            throughput = (1 - nov.throughput_krps / raw.throughput_krps) * 100
            rows.append((connections, latency, throughput))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    for connections, latency, throughput in rows:
        print(f"  n={connections:<4d} latency +{latency:5.1f}%  throughput -{throughput:5.1f}%")
        benchmark.extra_info[f"latency_penalty_n{connections}"] = round(latency, 1)
        benchmark.extra_info[f"tput_penalty_n{connections}"] = round(throughput, 1)
        # Paper bands with fitting slack.
        assert 10.0 <= latency <= 52.0
        assert 8.0 <= throughput <= 36.0
    # The penalty grows with concurrency (queueing amplification).
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] > rows[0][2]


def test_figure2_throughput_saturates(benchmark, sim_point):
    """A single core saturates: throughput flattens past ~25 connections."""

    def collect():
        return [sim_point("rawpm", n).throughput_krps for n in (25, 100)]

    at_25, at_100 = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info["tput_at_25"] = round(at_25, 1)
    benchmark.extra_info["tput_at_100"] = round(at_100, 1)
    assert at_100 == pytest.approx(at_25, rel=0.15)
