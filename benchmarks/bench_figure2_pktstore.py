"""Benchmark Ext-B: Figure 2 with the proposed store as a third series.

What Figure 2 would look like had the paper built its proposal: the
packet-native store tracks the rawpm baseline far more closely than
NoveLSM, because most of the data-management gap is gone.
"""

import pytest

SWEEP = (1, 50, 100)


@pytest.mark.parametrize("connections", SWEEP)
def test_pktstore_series_point(benchmark, sim_point, connections):
    point = benchmark.pedantic(
        sim_point, args=("pktstore", connections), rounds=1, iterations=1
    )
    benchmark.extra_info["avg_rtt_us"] = round(point.avg_rtt_us, 2)
    benchmark.extra_info["throughput_krps"] = round(point.throughput_krps, 2)


def test_pktstore_between_baseline_and_novelsm(benchmark, sim_point):
    def collect():
        rows = []
        for connections in SWEEP:
            raw = sim_point("rawpm", connections)
            pkt = sim_point("pktstore", connections)
            nov = sim_point("novelsm", connections)
            rows.append((connections, raw, pkt, nov))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    for connections, raw, pkt, nov in rows:
        print(
            f"  n={connections:<4d} rtt: raw {raw.avg_rtt_us:7.1f}  "
            f"pkt {pkt.avg_rtt_us:7.1f}  nov {nov.avg_rtt_us:7.1f}  |  "
            f"tput: raw {raw.throughput_krps:5.1f}  pkt {pkt.throughput_krps:5.1f}  "
            f"nov {nov.throughput_krps:5.1f}"
        )
        benchmark.extra_info[f"rtt_pkt_n{connections}"] = round(pkt.avg_rtt_us, 1)
        # The proposal beats NoveLSM everywhere...
        assert pkt.avg_rtt_us < nov.avg_rtt_us
        assert pkt.throughput_krps > nov.throughput_krps
        # ...while still paying index+persistence over the raw baseline.
        assert pkt.avg_rtt_us >= raw.avg_rtt_us * 0.98

    # And it recovers most of the penalty: at full concurrency the
    # pktstore throughput penalty vs raw is under half of NoveLSM's.
    _n, raw, pkt, nov = rows[-1]
    pkt_penalty = 1 - pkt.throughput_krps / raw.throughput_krps
    nov_penalty = 1 - nov.throughput_krps / raw.throughput_krps
    benchmark.extra_info["pkt_penalty_pct"] = round(pkt_penalty * 100, 1)
    benchmark.extra_info["nov_penalty_pct"] = round(nov_penalty * 100, 1)
    assert pkt_penalty < nov_penalty / 2
