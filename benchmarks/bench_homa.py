"""Benchmark Ext-D′ (§5.2): the KV workload over the Homa-like transport.

Where `bench_ablation_transport.py` sweeps fabric latency, this bench
actually swaps the transport protocol: same engines, same workload,
messages instead of a byte stream.  The paper's prediction: a leaner
transport shrinks the networking share, making the storage stack's
data management relatively *more* expensive — and the packet-native
store's savings relatively more valuable.
"""

import pytest

from repro.bench.testbed import make_testbed
from repro.bench.wrk import HomaWrkClient, WrkClient
from repro.storage.server import ServerConfig

_CACHE = {}


def measure(transport, engine):
    key = (transport, engine)
    if key not in _CACHE:
        testbed = make_testbed(ServerConfig(engine=engine, transport=transport))
        client_cls = HomaWrkClient if transport == "homa" else WrkClient
        wrk = client_cls(testbed.client, "10.0.0.1", connections=1,
                         duration_ns=2_000_000, warmup_ns=400_000)
        stats = wrk.run()
        _CACHE[key] = stats.avg_rtt_us
    return _CACHE[key]


@pytest.mark.parametrize("engine", ["null", "novelsm", "pktstore"])
@pytest.mark.parametrize("transport", ["tcp", "homa"])
def test_rtt_by_transport(benchmark, transport, engine):
    rtt = benchmark.pedantic(measure, args=(transport, engine), rounds=1, iterations=1)
    benchmark.extra_info["avg_rtt_us"] = round(rtt, 2)


def test_homa_shrinks_networking_not_storage(benchmark):
    def collect():
        rows = {}
        for transport in ("tcp", "homa"):
            net = measure(transport, "null")
            full = measure(transport, "novelsm")
            rows[transport] = (net, full - net, (full - net) / full * 100)
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    for transport, (net, storage, share) in rows.items():
        print(f"  {transport:5s} networking {net:6.2f}µs  storage {storage:5.2f}µs  "
              f"share {share:4.1f}%")
        benchmark.extra_info[f"{transport}_net_us"] = round(net, 2)
        benchmark.extra_info[f"{transport}_storage_share_pct"] = round(share, 1)
    # Homa cuts the networking RTT...
    assert rows["homa"][0] < rows["tcp"][0] - 2.0
    # ...leaves the storage-stack cost essentially unchanged...
    assert rows["homa"][1] == pytest.approx(rows["tcp"][1], rel=0.15)
    # ...so the storage share of end-to-end latency grows (§5.2).
    assert rows["homa"][2] > rows["tcp"][2]


def test_proposal_gain_larger_over_homa(benchmark):
    """Relative benefit of the packet-native store rises on fast transports."""

    def collect():
        gains = {}
        for transport in ("tcp", "homa"):
            nov = measure(transport, "novelsm")
            pkt = measure(transport, "pktstore")
            gains[transport] = (nov - pkt) / nov * 100
        return gains

    gains = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info["tcp_gain_pct"] = round(gains["tcp"], 1)
    benchmark.extra_info["homa_gain_pct"] = round(gains["homa"], 1)
    assert gains["homa"] > gains["tcp"]
