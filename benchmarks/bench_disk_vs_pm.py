"""Benchmark: the disk-era baseline — why PM changes the storage stack.

§2.1's framing quantified: LevelDB with its WAL on an SSD pays device
latency on every put; NoveLSM's PM memtable replaces the log with
cache-line flushes; the packet-native store then attacks what remains.
This is the motivation ladder for the whole paper in one table.
"""

import pytest

from repro.bench.testbed import make_testbed
from repro.bench.wrk import WrkClient
from repro.sim.units import ns_to_us
from repro.storage.server import ServerConfig

ENGINES = ("leveldb-ssd", "novelsm", "pktstore")

_CACHE = {}


def measure(engine):
    if engine not in _CACHE:
        testbed = make_testbed(ServerConfig(engine=engine))
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                        duration_ns=2_500_000, warmup_ns=500_000)
        stats = wrk.run()
        puts = max(1, testbed.kv.stats["puts"])
        acct = testbed.server.accounting
        persistence = ns_to_us(
            (acct.category("persist")
             + acct.category("wal.sync") + acct.category("wal.write")) / puts
        )
        _CACHE[engine] = (stats.avg_rtt_us, stats.throughput_krps, persistence)
    return _CACHE[engine]


@pytest.mark.parametrize("engine", ENGINES)
def test_write_rtt(benchmark, engine):
    rtt, tput, persistence = benchmark.pedantic(
        measure, args=(engine,), rounds=1, iterations=1
    )
    benchmark.extra_info["avg_rtt_us"] = round(rtt, 2)
    benchmark.extra_info["throughput_krps"] = round(tput, 1)
    benchmark.extra_info["persistence_us_per_put"] = round(persistence, 2)


def test_motivation_ladder(benchmark):
    def collect():
        return {engine: measure(engine) for engine in ENGINES}

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    for engine, (rtt, tput, persistence) in rows.items():
        print(f"  {engine:12s} RTT {rtt:6.2f}µs  tput {tput:5.1f}krps  "
              f"persistence {persistence:5.2f}µs/put")

    ssd_rtt, _, ssd_persist = rows["leveldb-ssd"]
    pm_rtt, _, pm_persist = rows["novelsm"]
    pkt_rtt, _, _ = rows["pktstore"]
    # The SSD log dominates the disk-era design (tens of µs per put)...
    assert ssd_persist > 10 * pm_persist
    assert ssd_rtt > 1.8 * pm_rtt
    # ...PM removes it, leaving data management as the problem...
    assert pm_persist < 3.0
    # ...which the packet-native store then removes.
    assert pkt_rtt < pm_rtt
