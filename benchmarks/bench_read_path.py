"""Benchmark: the read path — serving values back out of the store.

§4.2's send-side claim: "If NoveLSM organized its data into the packet
data structures, it could reduce the costs of sending data to the
network".  GET workload over three servers: NoveLSM (store read + copy
into the response), packet store (classic response build), and packet
store with zero-copy GET (value leaves PM as TCP frag pages).
"""

import pytest

from repro.bench.costmodel import CostModel
from repro.bench.testbed import make_testbed, preload
from repro.bench.wrk import WrkClient
from repro.core.pktstore import PacketStoreEngine
from repro.net.fabric import Fabric
from repro.net.stack import Host
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim.engine import Simulator
from repro.storage.kvserver import KVServer
from repro.storage.server import ServerConfig

ENTRIES = 200
VALUE = 1024

_CACHE = {}


def _pktstore_testbed(zero_copy):
    sim = Simulator()
    fabric = Fabric(sim)
    pm = PMDevice(192 << 20)
    ns = PMNamespace(pm)
    server = Host(sim, "server", "10.0.0.1", fabric, CostModel.paste(),
                  rx_pool_region=ns.create("paste-pktbufs", 16 << 20))
    client = Host(sim, "client", "10.0.0.2", fabric, CostModel.kernel(), cores=12)
    engine = PacketStoreEngine.build(server, ns)
    KVServer(server, engine, port=80, zero_copy_get=zero_copy)
    # Populate through the pool (values must live in packet buffers).
    for i in range(ENTRIES):
        buf = server.rx_pool.alloc()
        buf.write(0, bytes(VALUE))
        engine.store.put(f"key-0-{i}".encode(), [(buf, 0, VALUE)], VALUE, 0, 0)
    return sim, client


def measure(config):
    if config in _CACHE:
        return _CACHE[config]
    if config == "novelsm":
        testbed = make_testbed(ServerConfig(engine="novelsm"))
        preload(testbed, ENTRIES, VALUE, key_prefix="key-0")
        sim, client = testbed.sim, testbed.client
    else:
        sim, client = _pktstore_testbed(zero_copy=(config == "pktstore-zc"))
    wrk = WrkClient(client, "10.0.0.1", connections=1, method="GET",
                    key_space=ENTRIES, duration_ns=2_000_000, warmup_ns=400_000)
    stats = wrk.run()
    assert stats.errors == 0
    _CACHE[config] = stats.avg_rtt_us
    return _CACHE[config]


@pytest.mark.parametrize("config", ["novelsm", "pktstore", "pktstore-zc"])
def test_get_rtt(benchmark, config):
    rtt = benchmark.pedantic(measure, args=(config,), rounds=1, iterations=1)
    benchmark.extra_info["avg_get_rtt_us"] = round(rtt, 2)


def test_zero_copy_send_is_cheapest(benchmark):
    def collect():
        return {c: measure(c) for c in ("novelsm", "pktstore", "pktstore-zc")}

    rtts = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    for config, rtt in rtts.items():
        print(f"  GET via {config:12s} {rtt:6.2f}µs")
        benchmark.extra_info[config.replace("-", "_")] = round(rtt, 2)
    # Zero-copy send beats the copying response path on the same store.
    assert rtts["pktstore-zc"] < rtts["pktstore"]
    # And the packet store's read path beats NoveLSM's (no read verify,
    # cheaper index) even before zero-copy.
    assert rtts["pktstore-zc"] < rtts["novelsm"]
