"""Shared helpers for the benchmark suite.

Simulation-backed benches use ``benchmark.pedantic(rounds=1)`` — the
interesting output is *simulated* time (RTT, throughput), which lands
in ``benchmark.extra_info`` so it shows up in the benchmark report
next to the (less meaningful) wall-clock column.  Pure-Python
primitives (checksums, structures) are timed normally.

Points are cached per session: several benches and their shape
assertions share the same measurements rather than re-simulating.
"""

import pytest

from repro.bench.figure2 import measure_point

_POINT_CACHE = {}


def figure2_point(engine, connections):
    """Session-cached Figure 2 measurement."""
    key = (engine, connections)
    if key not in _POINT_CACHE:
        _POINT_CACHE[key] = measure_point(engine, connections)
    return _POINT_CACHE[key]


@pytest.fixture
def sim_point():
    """Fixture handing benches the cached point getter."""
    return figure2_point
