"""Benchmark Ext-A: the §4.2 projection — packet-native store vs NoveLSM.

The paper argues (Table 1 + §4.2) that reusing networking features
reclaims the checksum (1.77 µs), copy (1.14 µs) and most of the
preparation/allocation cost.  This bench runs the Table 1 workload
against both stores and reports the reclaimed time per row.
"""

import pytest

from repro.bench.testbed import make_testbed
from repro.bench.wrk import WrkClient
from repro.sim.units import ns_to_us
from repro.storage.server import ServerConfig

_CACHE = {}


def run_engine(engine):
    if engine not in _CACHE:
        testbed = make_testbed(ServerConfig(engine=engine))
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                        duration_ns=2_500_000, warmup_ns=500_000)
        stats = wrk.run()
        puts = max(1, testbed.kv.stats["puts"])
        acct = testbed.server.accounting
        _CACHE[engine] = {
            "rtt_us": stats.avg_rtt_us,
            "tput_krps": stats.throughput_krps,
            "prep": ns_to_us(acct.category("datamgmt.prep") / puts),
            "checksum": ns_to_us(acct.category("datamgmt.checksum") / puts),
            "copy": ns_to_us(acct.category("datamgmt.copy") / puts),
            "insert": ns_to_us(acct.category("datamgmt.insert") / puts),
            "persist": ns_to_us(acct.category("persist") / puts),
        }
    return _CACHE[engine]


@pytest.mark.parametrize("engine", ["novelsm", "pktstore"])
def test_store_rtt(benchmark, engine):
    result = benchmark.pedantic(run_engine, args=(engine,), rounds=1, iterations=1)
    for key, value in result.items():
        benchmark.extra_info[key] = round(value, 3)


def test_projection_row_by_row(benchmark):
    def collect():
        return run_engine("novelsm"), run_engine("pktstore")

    novelsm, pktstore = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    for row in ("prep", "checksum", "copy", "insert", "persist"):
        saved = novelsm[row] - pktstore[row]
        print(f"  {row:10s} novelsm {novelsm[row]:5.2f}µs  pktstore {pktstore[row]:5.2f}µs  saved {saved:+5.2f}µs")
        benchmark.extra_info[f"saved_{row}_us"] = round(saved, 3)

    # §4.2's named savings, by construction:
    assert pktstore["checksum"] == 0.0          # TCP checksum reused
    assert pktstore["copy"] == 0.0              # value stays in PM buffers
    assert pktstore["prep"] < novelsm["prep"] / 2
    assert pktstore["insert"] < novelsm["insert"]  # slab pop vs PM malloc
    # Persistence remains (flushing the 1 KB value is physics, not data
    # management) and dominates both stores' flush cost equally; the
    # proposal reclaims data management, not the flush.
    assert 0 < pktstore["persist"] <= novelsm["persist"] * 1.1

    total_saved = novelsm["rtt_us"] - pktstore["rtt_us"]
    benchmark.extra_info["total_saved_us"] = round(total_saved, 2)
    assert total_saved >= 1.77 + 1.14  # at least checksum + copy


def test_projection_throughput_gain(benchmark):
    def collect():
        return run_engine("novelsm")["tput_krps"], run_engine("pktstore")["tput_krps"]

    novelsm, pktstore = benchmark.pedantic(collect, rounds=1, iterations=1)
    gain = (pktstore / novelsm - 1) * 100
    benchmark.extra_info["throughput_gain_pct"] = round(gain, 1)
    assert gain > 5.0
