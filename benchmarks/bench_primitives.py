"""Micro-benchmarks of the pure-Python primitives (real wall time).

Unlike the simulation benches, these time actual Python execution of
the data-plane primitives: checksums, the metadata codec, skip-list
and red-black-tree operations, Bloom filters.  Useful for tracking the
repository's own performance.
"""

import random

import pytest

from repro.core.ppktbuf import PPktRecord
from repro.net.checksum import crc32c, internet_checksum
from repro.net.headers import IPv4Header, TCPHeader
from repro.net.rbtree import RBTree
from repro.pm.device import DRAMDevice
from repro.storage.bloom import BloomFilter
from repro.storage.skiplist import RegionSkipList

KB = bytes(range(256)) * 4


def test_crc32c_1kb(benchmark):
    result = benchmark(crc32c, KB)
    assert result == crc32c(KB)


def test_internet_checksum_1kb(benchmark):
    result = benchmark(internet_checksum, KB)
    assert 0 <= result <= 0xFFFF


def test_tcp_checksum_compute(benchmark):
    ip = IPv4Header("10.0.0.1", "10.0.0.2", total_len=20 + 20 + len(KB))
    header = TCPHeader(40000, 80, seq=1, ack=2)
    benchmark(header.compute_checksum, ip, KB)


def test_ppkt_record_encode(benchmark):
    record = PPktRecord(key=b"user:12345", seq=7, hw_tstamp=123,
                        wire_csum=0xABCD, value_len=1024,
                        frags=[(3, 64, 1024)])
    blob = benchmark(record.encode)
    assert len(blob) == 256


def test_ppkt_record_decode(benchmark):
    blob = PPktRecord(key=b"user:12345", seq=7, frags=[(3, 64, 1024)]).encode()
    record = benchmark(PPktRecord.decode, blob)
    assert record.key == b"user:12345"


def test_skiplist_insert(benchmark):
    dev = DRAMDevice(64 << 20)
    slist = RegionSkipList.create(dev.region(0, 64 << 20, "mt"))
    counter = iter(range(10_000_000))

    def insert():
        slist.insert(f"key-{next(counter):08d}".encode(), KB)

    benchmark(insert)


def test_skiplist_get(benchmark):
    dev = DRAMDevice(8 << 20)
    slist = RegionSkipList.create(dev.region(0, 8 << 20, "mt"))
    for i in range(2000):
        slist.insert(f"key-{i:06d}".encode(), b"v")
    rng = random.Random(1)

    def get():
        return slist.get(f"key-{rng.randrange(2000):06d}".encode())

    found, _value = benchmark(get)
    assert found


def test_rbtree_insert_delete(benchmark):
    tree = RBTree()
    for i in range(0, 10_000, 2):
        tree.insert(i, i)
    rng = random.Random(2)

    def churn():
        key = rng.randrange(1, 10_000, 2)
        if key in tree:
            tree.delete(key)
        else:
            tree.insert(key, key)

    benchmark(churn)


def test_bloom_query(benchmark):
    bloom = BloomFilter.for_entries(10_000)
    for i in range(10_000):
        bloom.add(f"key-{i}".encode())

    def query():
        return bloom.might_contain(b"key-5000")

    assert benchmark(query)
