"""Benchmark Ext-C (§5.1): metadata cost sensitivity to PM latency.

The paper notes PM access is ~5× slower than DRAM (346 vs 70 ns) and
asks for compact, cache-friendly persistent packet metadata.  Two
sweeps: (a) index insertion cost vs device latency — the pointer-chase
penalty; (b) persistent packet metadata (256 B, 4 lines) vs a
kernel-sk_buff-sized record — the compactness argument.
"""

import pytest

from repro.core.ppktbuf import PMetaSlab, PPktRecord
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim import ExecutionContext
from repro.sim.units import ns_to_us
from repro.storage.lsm import novelsm_store

LATENCIES = (70.0, 150.0, 346.0, 600.0)


def insert_cost_at_latency(access_ns, inserts=400):
    device = PMDevice(32 << 20, access_ns=access_ns)
    ns = PMNamespace(device)
    store = novelsm_store(ns, arena_size=24 << 20)
    total = 0.0
    for i in range(inserts):
        ctx = ExecutionContext()
        store.put(f"key-{i:05d}".encode(), bytes(1024), ctx)
        if i >= inserts // 2:
            total += ctx.category("datamgmt.insert")
    return ns_to_us(total / (inserts - inserts // 2))


@pytest.mark.parametrize("access_ns", LATENCIES)
def test_insert_cost_vs_device_latency(benchmark, access_ns):
    cost = benchmark.pedantic(
        insert_cost_at_latency, args=(access_ns,), rounds=1, iterations=1
    )
    benchmark.extra_info["device_ns"] = access_ns
    benchmark.extra_info["insert_us"] = round(cost, 3)


def test_insert_cost_monotonic_in_latency(benchmark):
    def collect():
        return [insert_cost_at_latency(lat, inserts=200) for lat in LATENCIES]

    costs = benchmark.pedantic(collect, rounds=1, iterations=1)
    for latency, cost in zip(LATENCIES, costs):
        benchmark.extra_info[f"insert_us_at_{int(latency)}ns"] = round(cost, 3)
    assert costs == sorted(costs)
    # DRAM-latency PM would make insertion ~3x cheaper than Optane.
    assert costs[0] < costs[2] / 2


def flush_cost_for_record_bytes(nbytes):
    """Persist cost of one metadata record of the given size."""
    device = PMDevice(1 << 20)
    ctx = ExecutionContext()
    device.write(0, bytes(nbytes))
    device.persist(0, nbytes, ctx)
    return ctx.category("pm.flush")


def test_compact_metadata_flushes_cheaper(benchmark):
    """256 B persistent record vs a kernel sk_buff-scale one (~1 KB
    with shared-info): the compact layout flushes 4 lines, not 16."""

    def collect():
        return (
            flush_cost_for_record_bytes(256),
            flush_cost_for_record_bytes(1024),
        )

    compact, kernel_sized = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info["compact_256B_ns"] = compact
    benchmark.extra_info["kernel_1KB_ns"] = kernel_sized
    assert compact < kernel_sized / 2


def test_slab_alloc_cheaper_than_pm_malloc(benchmark):
    """§4.2: the network-style slab beats the user-space PM allocator."""
    from repro.pm.alloc import PMAllocator

    device = PMDevice(4 << 20)
    slab = PMetaSlab(device.region(0, 1 << 20, "slab"))
    malloc = PMAllocator(device.region(1 << 20, 1 << 20, "heap"))

    def collect():
        slab_ctx, malloc_ctx = ExecutionContext(), ExecutionContext()
        for _ in range(100):
            slab.alloc(slab_ctx)
            malloc.alloc(256, malloc_ctx)
        return slab_ctx.elapsed, malloc_ctx.elapsed

    slab_cost, malloc_cost = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info["slab_ns_per_alloc"] = slab_cost / 100
    benchmark.extra_info["pm_malloc_ns_per_alloc"] = malloc_cost / 100
    assert slab_cost < malloc_cost / 3
