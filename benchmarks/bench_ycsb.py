"""Benchmark: YCSB-style mixes over the stores.

The paper measures pure writes; adopters run mixed workloads.  YCSB A
(50/50), B (95/5 reads) and C (read-only) over a Zipf-skewed preloaded
key space, NoveLSM vs the packet-native store.  The proposal's savings
are write-side (checksum/copy/alloc), so its advantage shrinks as the
read share grows — an honest boundary of the idea, quantified.
"""

import pytest

from repro.bench.testbed import make_testbed, preload
from repro.bench.workloads import YcsbWorkload
from repro.bench.wrk import WrkClient
from repro.storage.server import ServerConfig

KEYS = 300
VALUE = 1024

_CACHE = {}


def measure(engine, mix):
    if (engine, mix) in _CACHE:
        return _CACHE[(engine, mix)]
    testbed = make_testbed(ServerConfig(engine=engine))
    if engine == "pktstore":
        for i in range(KEYS):
            buf = testbed.server.rx_pool.alloc()
            buf.write(0, bytes(VALUE))
            testbed.engine.store.put(f"warm-{i}".encode(), [(buf, 0, VALUE)],
                                     VALUE, 0, 0)
    else:
        preload(testbed, KEYS, VALUE)
    workload = YcsbWorkload(mix, key_space=KEYS, value_size=VALUE, seed=23)
    wrk = WrkClient(testbed.client, "10.0.0.1", connections=8,
                    workload=workload,
                    duration_ns=3_000_000, warmup_ns=800_000)
    stats = wrk.run()
    assert stats.errors == 0
    assert testbed.kv.stats["misses"] == 0
    _CACHE[(engine, mix)] = (stats.avg_rtt_us, stats.throughput_krps)
    return _CACHE[(engine, mix)]


@pytest.mark.parametrize("mix", ["A", "B", "C"])
@pytest.mark.parametrize("engine", ["novelsm", "pktstore"])
def test_ycsb_point(benchmark, engine, mix):
    rtt, tput = benchmark.pedantic(measure, args=(engine, mix), rounds=1, iterations=1)
    benchmark.extra_info["avg_rtt_us"] = round(rtt, 2)
    benchmark.extra_info["throughput_krps"] = round(tput, 1)


def test_write_side_savings_shrink_with_read_share(benchmark):
    def collect():
        gains = {}
        for mix in ("A", "B", "C"):
            nov = measure("novelsm", mix)[1]
            pkt = measure("pktstore", mix)[1]
            gains[mix] = (pkt / nov - 1) * 100
        return gains

    gains = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    for mix, gain in gains.items():
        print(f"  YCSB-{mix}: pktstore throughput {gain:+.1f}% vs novelsm")
        benchmark.extra_info[f"gain_pct_{mix}"] = round(gain, 1)
    # Write-heavy A benefits most; read-only C the least.
    assert gains["A"] > gains["C"]
    assert gains["A"] > 3.0
    # Read-only must not regress meaningfully (index reads are comparable).
    assert gains["C"] > -5.0
