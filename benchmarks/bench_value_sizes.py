"""Benchmark: value-size sweep — where the proposal's savings come from.

The checksum and copy rows of Table 1 scale with the value size, so
the packet-native store's advantage grows with larger values (which
also exercise multi-segment reassembly and frag-chained metadata).
"""

import pytest

from repro.bench.testbed import make_testbed
from repro.bench.wrk import WrkClient
from repro.storage.server import ServerConfig

SIZES = (64, 256, 1024, 4096)

_CACHE = {}


def measure(engine, value_size):
    key = (engine, value_size)
    if key not in _CACHE:
        testbed = make_testbed(ServerConfig(engine=engine))
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                        value_size=value_size,
                        duration_ns=2_000_000, warmup_ns=400_000)
        stats = wrk.run()
        _CACHE[key] = stats.avg_rtt_us
    return _CACHE[key]


@pytest.mark.parametrize("value_size", SIZES)
@pytest.mark.parametrize("engine", ["novelsm", "pktstore"])
def test_put_rtt_by_value_size(benchmark, engine, value_size):
    rtt = benchmark.pedantic(measure, args=(engine, value_size), rounds=1, iterations=1)
    benchmark.extra_info["avg_rtt_us"] = round(rtt, 2)


def test_savings_grow_with_value_size(benchmark):
    def collect():
        return [
            (size, measure("novelsm", size) - measure("pktstore", size))
            for size in SIZES
        ]

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    for size, saved in rows:
        print(f"  value {size:5d}B  pktstore saves {saved:5.2f}µs")
        benchmark.extra_info[f"saved_us_{size}B"] = round(saved, 2)
    # Per-byte rows (checksum ~1.71 ns/B + copy ~1.08 ns/B) make the
    # saving grow with size: 4 KB saves much more than 64 B.
    assert rows[-1][1] > rows[0][1] + 2.0
    # And savings are positive across the board.
    assert all(saved > 0 for _size, saved in rows)


def test_multi_segment_values_work_in_both_engines(benchmark):
    """4 KB values span 3 TCP segments; both stores must reassemble."""

    def collect():
        results = {}
        for engine in ("novelsm", "pktstore"):
            testbed = make_testbed(ServerConfig(engine=engine))
            wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                            value_size=4096,
                            duration_ns=600_000, warmup_ns=100_000)
            stats = wrk.run()
            key = f"key-0-{wrk.workload._counter % wrk.workload.key_space}".encode()
            value = testbed.engine.get(key)
            results[engine] = (stats.errors, value is not None and len(value) == 4096)
        return results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    for engine, (errors, intact) in results.items():
        assert errors == 0, engine
        assert intact, engine
