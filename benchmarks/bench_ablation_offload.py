"""Benchmark Ext-E (§5.2): NIC offloads and what they buy.

Both of the paper's machines enable checksum offload; the proposal
leans on it (the NIC-verified checksum becomes the storage checksum).
This ablation turns the offloads off and measures what the software
checksum path costs — and confirms hardware timestamps ride along for
free.
"""

import pytest

from repro.bench.testbed import make_testbed
from repro.bench.wrk import WrkClient
from repro.net.nic import NicFeatures
from repro.storage.server import ServerConfig

_CACHE = {}


def measure(offload):
    if offload not in _CACHE:
        features = NicFeatures(
            tx_csum_offload=offload, rx_csum_offload=offload,
            hw_timestamps=offload,
        )
        testbed = make_testbed(ServerConfig(engine="null"), server_features=features, client_features=NicFeatures(
                tx_csum_offload=offload, rx_csum_offload=offload,
                hw_timestamps=offload,
            ))
        wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                        duration_ns=2_000_000, warmup_ns=400_000)
        stats = wrk.run()
        _CACHE[offload] = (stats.avg_rtt_us, testbed)
    return _CACHE[offload]


@pytest.mark.parametrize("offload", [True, False])
def test_networking_rtt_with_offload(benchmark, offload):
    rtt, testbed = benchmark.pedantic(measure, args=(offload,), rounds=1, iterations=1)
    benchmark.extra_info["offload"] = offload
    benchmark.extra_info["networking_rtt_us"] = round(rtt, 2)
    csum_cpu = testbed.server.accounting.category("net.csum")
    benchmark.extra_info["server_sw_csum_total_ns"] = round(csum_cpu)
    if offload:
        assert csum_cpu == 0.0
    else:
        assert csum_cpu > 0.0


def test_offload_saves_checksum_cpu(benchmark):
    def collect():
        return measure(True)[0], measure(False)[0]

    with_offload, without = benchmark.pedantic(collect, rounds=1, iterations=1)
    saved = without - with_offload
    benchmark.extra_info["rtt_with_offload_us"] = round(with_offload, 2)
    benchmark.extra_info["rtt_without_us"] = round(without, 2)
    benchmark.extra_info["saved_us"] = round(saved, 2)
    # Two software checksums per direction per request (~1KB each way
    # on the request side): several microseconds end to end.
    assert saved > 2.0


def test_hw_timestamps_present_only_with_offload(benchmark):
    def collect():
        results = {}
        for offload in (True, False):
            features = NicFeatures(hw_timestamps=offload)
            testbed = make_testbed(ServerConfig(engine="pktstore" if offload else "null"), server_features=features)
            wrk = WrkClient(testbed.client, "10.0.0.1", connections=1,
                            duration_ns=400_000, warmup_ns=100_000)
            wrk.run()
            results[offload] = testbed
        return results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    store = results[True].engine.store
    # Every stored record carries a NIC timestamp.
    stamped = [record.hw_tstamp for record in store.versions()]
    assert stamped and all(ts > 0 for ts in stamped)
    benchmark.extra_info["records_with_hw_tstamp"] = len(stamped)
