"""Benchmark: index-structure geometry on persistent memory (§4.2/§5.1).

The paper argues packet metadata can form storage indexes (skip lists,
RB-trees).  On PM, the index's *geometry* decides the data-management
cost: every cache-cold pointer chase pays 346 ns.  This ablation sweeps
the skip list's branching factor and cache-resident-level assumption,
and compares the storage skip list against the packet-metadata skip
list for the same workload.
"""

import pytest

from repro.core.pktstore import PacketStore
from repro.net.pool import BufferPool
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim import ExecutionContext
from repro.sim.units import ns_to_us
from repro.storage.skiplist import RegionSkipList

INSERTS = 600


def skiplist_insert_cost(branching, cold_levels):
    dev = PMDevice(32 << 20)
    slist = RegionSkipList.create(dev.region(0, 32 << 20, "mt"),
                                  branching=branching, cold_levels=cold_levels)
    total = 0.0
    for i in range(INSERTS):
        ctx = ExecutionContext()
        slist.insert(f"key-{i * 37 % 1000:04d}-{i}".encode(), bytes(256), ctx)
        if i >= INSERTS // 2:
            total += ctx.category("datamgmt.insert")
    return ns_to_us(total / (INSERTS - INSERTS // 2))


@pytest.mark.parametrize("branching", [2, 4, 8])
def test_branching_factor(benchmark, branching):
    cost = benchmark.pedantic(
        skiplist_insert_cost, args=(branching, 2), rounds=1, iterations=1
    )
    benchmark.extra_info["branching"] = branching
    benchmark.extra_info["insert_us"] = round(cost, 3)


def test_branching_tradeoff(benchmark):
    """Higher branching = flatter structure = more horizontal (cold)
    moves per level; lower branching = taller = more (hot) levels."""

    def collect():
        return {b: skiplist_insert_cost(b, 2) for b in (2, 4, 8)}

    costs = benchmark.pedantic(collect, rounds=1, iterations=1)
    for branching, cost in costs.items():
        benchmark.extra_info[f"insert_us_b{branching}"] = round(cost, 3)
    # Branching 8 walks ~2x the cold nodes of branching 2 at the bottom.
    assert costs[8] > costs[2]


def test_cache_residency_assumption(benchmark):
    """§5.1: metadata cache behaviour dominates — if fewer levels stay
    cached (larger metadata, colder caches), inserts get expensive fast."""

    def collect():
        return {cl: skiplist_insert_cost(4, cl) for cl in (1, 2, 4)}

    costs = benchmark.pedantic(collect, rounds=1, iterations=1)
    for cold_levels, cost in costs.items():
        benchmark.extra_info[f"insert_us_cold{cold_levels}"] = round(cost, 3)
    assert costs[1] < costs[2] < costs[4]
    assert costs[4] > 1.5 * costs[1]


def test_packet_metadata_index_vs_storage_index(benchmark):
    """The §4.2 unification: the packet-metadata skip list performs the
    same traversal as the storage skip list; what differs is allocation
    (slab vs PM malloc) and what the node *is* (a 256 B packet record
    with payload references vs an inline-value node)."""

    def collect():
        # Storage skip list (NoveLSM memtable).
        storage_cost = skiplist_insert_cost(4, 2)
        # Packet-metadata skip list (the proposal's index).
        dev = PMDevice(64 << 20)
        ns = PMNamespace(dev)
        pool = BufferPool(ns.create("pool", 16 << 20), 2048)
        store = PacketStore.create(ns.create("meta", 8 << 20), pool)
        total = 0.0
        for i in range(INSERTS):
            buf = pool.alloc()
            buf.write(0, bytes(256))
            ctx = ExecutionContext()
            store.put(f"key-{i * 37 % 1000:04d}-{i}".encode(),
                      [(buf, 0, 256)], 256, 0, 0, ctx)
            if i >= INSERTS // 2:
                total += ctx.category("datamgmt.insert")
        pkt_cost = ns_to_us(total / (INSERTS - INSERTS // 2))
        return storage_cost, pkt_cost

    storage_cost, pkt_cost = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info["storage_index_us"] = round(storage_cost, 3)
    benchmark.extra_info["packet_index_us"] = round(pkt_cost, 3)
    # Same traversal shape; the packet index saves the allocator delta.
    assert pkt_cost < storage_cost
    assert pkt_cost > storage_cost * 0.4
