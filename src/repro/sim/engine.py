"""Time-ordered event queue.

:class:`Simulator` is the single source of truth for simulated time.
Components schedule callbacks with :meth:`Simulator.schedule` (relative
delay) or :meth:`Simulator.at` (absolute time); :meth:`Simulator.run`
drains the queue in timestamp order.

Events fire in (time, insertion-order) order, so two events scheduled
for the same instant run in the order they were scheduled.  Cancelled
events stay in the heap but are skipped when popped; this keeps
cancellation O(1), which matters for TCP retransmission timers that are
rearmed on every ACK.

Dispatch internals (this is the wall-clock hot loop of every
benchmark, see docs/PERFORMANCE.md):

- The heap holds ``(time, seq, event)`` tuples, so heap sifting
  compares tuples at C speed instead of calling ``Event.__lt__``.
- :meth:`run` drains *runs* of same-timestamp events in one batch:
  the contiguous run at the head of the heap is popped once, then
  fired in seq order without re-consulting the heap.  Events a batch
  member schedules at the same instant get higher seqs than the whole
  drained run, so firing them after the batch preserves the
  (time, seq) order exactly.  Cancellation is honoured at fire time,
  and an early exit (``stop()``/``max_events``) pushes unfired batch
  members back, so an interrupted run leaves the queue as if events
  had been popped one at a time.
- Watcher notification is skipped entirely while no watchers are
  registered (the common case for benchmarks).
"""

import heapq
import itertools


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.  Returned by ``schedule``/``at`` so callers can cancel it."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.0f} fn={getattr(self.fn, '__name__', self.fn)}{state}>"


class Simulator:
    """Discrete-event loop with a nanosecond clock."""

    def __init__(self):
        self._queue = []
        self._seq = itertools.count()
        self.now = 0.0
        self._events_fired = 0
        self._running = False
        self._watchers = []
        self._stop_requested = False

    # -- instrumentation ------------------------------------------------------

    def add_watcher(self, fn):
        """Register ``fn(event)`` to run after every fired event.

        Watchers are how fault-injection harnesses observe a run without
        perturbing it: a watcher can inspect cross-cutting state (e.g. a
        recording device's persistence-event counter) and call
        :meth:`stop` to halt the loop at a deterministic boundary.
        Returns ``fn`` so it can be passed to :meth:`remove_watcher`.
        """
        self._watchers.append(fn)
        return fn

    def remove_watcher(self, fn):
        """Unregister a watcher added with :meth:`add_watcher`."""
        self._watchers.remove(fn)

    def stop(self):
        """Ask the current :meth:`run` to return after the current event.

        Safe to call from an event handler or a watcher.  The queue is
        left intact, so a later ``run()`` resumes exactly where this one
        stopped — which is what makes crash points repeatable: stop at
        event N, power-cycle the device, and every run with the same
        seeds stops at the same instant.
        """
        self._stop_requested = True

    def _notify(self, event):
        for watcher in self._watchers:
            watcher(event)

    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        # Inlined at(): delay >= 0 makes the not-in-the-past check
        # redundant, and schedule() is the hot entry point.
        time = self.now + delay
        seq = next(self._seq)
        event = Event(time, seq, fn, args)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        seq = next(self._seq)
        event = Event(time, seq, fn, args)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def pending(self):
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for entry in self._queue if not entry[2].cancelled)

    @property
    def events_fired(self):
        """Total number of events that have executed."""
        return self._events_fired

    def step(self):
        """Run the single next event.  Returns False when the queue is empty."""
        while self._queue:
            time, _seq, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = time
            self._events_fired += 1
            event.fn(*event.args)
            if self._watchers:
                self._notify(event)
            return True
        return False

    def run(self, until=None, max_events=None):
        """Drain the event queue.

        Args:
            until: stop once simulated time would exceed this (the clock
                is advanced to ``until`` even if the queue empties first).
            max_events: safety valve against runaway event storms.

        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stop_requested = False
        stopped = False
        fired = 0
        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        watchers = self._watchers  # aliased list: add/remove mutate in place
        try:
            while queue:
                if max_events is not None and fired >= max_events:
                    break
                head = queue[0]
                if head[2].cancelled:
                    heappop(queue)
                    continue
                now = head[0]
                if until is not None and now > until:
                    break
                # Drain the whole same-timestamp run at the heap head in
                # one go; see the module docstring for why this is safe.
                batch = [heappop(queue)]
                while queue and queue[0][0] == now:
                    batch.append(heappop(queue))
                self.now = now
                for index, entry in enumerate(batch):
                    event = entry[2]
                    if event.cancelled:
                        continue
                    if max_events is not None and fired >= max_events:
                        for leftover in batch[index:]:
                            heappush(queue, leftover)
                        break
                    self._events_fired += 1
                    event.fn(*event.args)
                    fired += 1
                    if watchers:
                        for watcher in watchers:
                            watcher(event)
                    if self._stop_requested:
                        stopped = True
                        for leftover in batch[index + 1:]:
                            heappush(queue, leftover)
                        break
                if stopped:
                    break
        finally:
            self._running = False
            self._stop_requested = False
        if until is not None and self.now < until and not stopped:
            self.now = until
        return fired

    def run_until_idle(self, max_events=10_000_000):
        """Run until no events remain.  Guards against infinite event loops."""
        fired = self.run(max_events=max_events)
        if self._queue and fired >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return fired
