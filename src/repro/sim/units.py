"""Time-unit helpers.

The simulated clock counts nanoseconds as floats.  These constants and
converters keep call sites readable (``3 * MICROS`` instead of a bare
``3000.0``) and centralise the convention so it cannot drift between
modules.
"""

#: One microsecond, in simulator time units (nanoseconds).
MICROS = 1_000.0

#: One millisecond, in simulator time units.
MILLIS = 1_000_000.0

#: One second, in simulator time units.
SECONDS = 1_000_000_000.0


def us(value):
    """Convert microseconds to simulator time units (nanoseconds)."""
    return value * MICROS


def ns_to_us(value):
    """Convert simulator time units (nanoseconds) to microseconds."""
    return value / MICROS
