"""Discrete-event simulation engine.

Everything in this reproduction runs on a simulated clock measured in
*nanoseconds*.  The engine is deliberately small: a time-ordered event
queue (:class:`Simulator`), a CPU core abstraction that serialises work
(:class:`~repro.sim.cpu.Core`), and an execution context that
accumulates charged CPU cost during run-to-completion processing
(:class:`~repro.sim.context.ExecutionContext`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.context import ExecutionContext, NULL_CONTEXT, NullContext
from repro.sim.cpu import Core, CpuSet
from repro.sim.units import MICROS, MILLIS, SECONDS, ns_to_us, us

__all__ = [
    "Event",
    "Simulator",
    "ExecutionContext",
    "NullContext",
    "NULL_CONTEXT",
    "Core",
    "CpuSet",
    "MICROS",
    "MILLIS",
    "SECONDS",
    "ns_to_us",
    "us",
]
