"""CPU core model.

A :class:`Core` serialises work: it remembers when it becomes free, and
every work item placed on it starts no earlier than that.  This is the
entire mechanism behind Figure 2's concurrency penalty — the paper's
server uses one core, so an increased per-request service time delays
every queued request behind it.

:class:`CpuSet` is a host's collection of cores with a trivial
round-robin placement policy (the paper's client "uses all the cores
when multiple TCP connections are used").
"""


class Core:
    """A single CPU core with run-to-completion semantics."""

    __slots__ = ("index", "free_at", "busy_time", "work_items")

    def __init__(self, index=0):
        self.index = index
        #: Simulated time at which the core finishes its last accepted work.
        self.free_at = 0.0
        #: Total busy nanoseconds, for utilisation reporting.
        self.busy_time = 0.0
        #: Number of work items executed.
        self.work_items = 0

    def execute(self, now, cost):
        """Place ``cost`` ns of work on this core at time ``now``.

        Returns the completion time.  Work queues behind whatever the
        core already accepted: it starts at ``max(now, free_at)``.
        """
        if cost < 0:
            raise ValueError(f"negative cost: {cost}")
        start = now if now > self.free_at else self.free_at
        end = start + cost
        self.free_at = end
        self.busy_time += cost
        self.work_items += 1
        return end

    def queue_delay(self, now):
        """How long new work arriving at ``now`` would wait before starting."""
        return max(0.0, self.free_at - now)

    def utilisation(self, elapsed):
        """Fraction of ``elapsed`` ns this core spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self):
        return f"<Core {self.index} free_at={self.free_at:.0f} busy={self.busy_time:.0f}>"


class CpuSet:
    """A host's cores, with round-robin assignment for new connections."""

    def __init__(self, count):
        if count < 1:
            raise ValueError("a host needs at least one core")
        self.cores = [Core(i) for i in range(count)]
        self._next = 0

    def __len__(self):
        return len(self.cores)

    def __getitem__(self, index):
        return self.cores[index]

    def assign(self):
        """Round-robin pick, as the kernel would spread connections over cores."""
        core = self.cores[self._next % len(self.cores)]
        self._next += 1
        return core

    def total_busy(self):
        return sum(core.busy_time for core in self.cores)

    def __repr__(self):
        return f"<CpuSet {len(self.cores)} cores>"
