"""Execution contexts: where CPU cost charges accumulate.

The reproduction separates *function* from *cost*.  Data structures do
real work on real bytes; alongside, every operation charges its modeled
CPU/device time to an :class:`ExecutionContext`.  A run-to-completion
handler (e.g. the server's busy-poll loop processing one request)
creates a context, lets the whole stack charge into it, and then
advances the owning core's clock by the accumulated total.

For purely functional use — unit tests, examples that don't care about
timing — :data:`NULL_CONTEXT` swallows charges for free.
"""


class ExecutionContext:
    """Accumulates charged nanoseconds during one run-to-completion slice.

    Charges can be tagged with a category (e.g. ``"checksum"``,
    ``"net.rx"``), which is how the Table 1 breakdown is produced: the
    harness reads ``ctx.by_category`` after processing a request.
    """

    __slots__ = ("elapsed", "by_category", "trace")

    def __init__(self, trace=False):
        self.elapsed = 0.0
        self.by_category = {}
        self.trace = [] if trace else None

    def charge(self, ns, category="uncategorized"):
        """Add ``ns`` nanoseconds of work under ``category``."""
        if ns < 0:
            raise ValueError(f"negative charge: {ns}")
        self.elapsed += ns
        by_category = self.by_category
        if category in by_category:
            by_category[category] += ns
        else:
            by_category[category] = 0.0 + ns
        if self.trace is not None:
            self.trace.append((category, ns))
        return ns

    def category(self, name):
        """Total nanoseconds charged under ``name`` (0.0 if never charged)."""
        return self.by_category.get(name, 0.0)

    def merge(self, other):
        """Fold another context's charges into this one."""
        self.elapsed += other.elapsed
        by_category = self.by_category
        for key, value in other.by_category.items():
            if key in by_category:
                by_category[key] += value
            else:
                by_category[key] = 0.0 + value
        if self.trace is not None and other.trace is not None:
            self.trace.extend(other.trace)

    def snapshot(self):
        """A copy of the per-category totals (microsecond-free, raw ns)."""
        return dict(self.by_category)

    def __repr__(self):
        return f"<ExecutionContext elapsed={self.elapsed:.0f}ns categories={len(self.by_category)}>"


class NullContext:
    """A context that discards all charges.  Use when timing is irrelevant."""

    __slots__ = ()

    elapsed = 0.0

    @property
    def by_category(self):
        # A fresh dict per access: the shared NULL_CONTEXT must never
        # expose mutable state that one caller's merge could leak into
        # another's accounting.
        return {}

    def charge(self, ns, category="uncategorized"):
        return 0.0

    def category(self, name):
        return 0.0

    def merge(self, other):
        pass

    def snapshot(self):
        return {}

    def __repr__(self):
        return "<NullContext>"


class FilterContext:
    """Forwards charges to an inner context, dropping some categories.

    This reproduces the paper's methodology of "disabling the
    persistence operations by modifying the source code": wrap the
    request context with ``FilterContext(ctx, drop={"persist"})`` and
    the flush/fence work happens functionally but costs nothing.
    """

    __slots__ = ("inner", "drop")

    def __init__(self, inner, drop):
        self.inner = inner
        self.drop = frozenset(drop)

    @property
    def elapsed(self):
        return self.inner.elapsed

    @property
    def by_category(self):
        return self.inner.by_category

    def charge(self, ns, category="uncategorized"):
        if category in self.drop:
            return 0.0
        return self.inner.charge(ns, category)

    def category(self, name):
        return self.inner.category(name)

    def merge(self, other):
        self.inner.merge(other)

    def snapshot(self):
        return self.inner.snapshot()

    def __repr__(self):
        return f"<FilterContext drop={sorted(self.drop)}>"


#: Shared do-nothing context.  Stateless, so one instance serves everyone.
NULL_CONTEXT = NullContext()
