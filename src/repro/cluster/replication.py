"""Primary → backup replication: the stream *is* the request packets.

The paper's claim is that packets are already a persistent data
structure; replication therefore needs no serialization layer — the
primary forwards the original NIC-verified request bytes to the backup
with their provenance (hardware timestamp, wire checksum verdict)
carried alongside, and the backup's packet-native store adopts the
forwarded frames exactly as it would adopt a client's.  Concretely:

- :class:`Replicator` (primary side): ack-tracked store-and-forward.
  Every forwarded put is pending until the backup's application-level
  ack; retries follow a deterministic bounded
  :class:`~repro.cluster.backoff.Backoff` schedule and every retry
  carries the *same* origin RPC id, so the backup can deduplicate.
  When the budget is exhausted the backup is marked suspect, in-flight
  transport state to it is torn down (:meth:`HomaTransport.abort_peer`)
  and the node degrades to primary-only acks — graceful degradation,
  counted, never silent.
- :class:`ReplicationApplier` (backup side): listens on the
  replication port, deduplicates by origin RPC id (bounded memory,
  like Homa's completed-RPC memory), restores the original packet
  provenance onto the parsed message, and applies it through the very
  same dispatch path a client request takes — same containment, same
  status contract, same metrics.

Wire format (all big-endian)::

    REPL message:  "RPL1" | origin_rpc_id u64 | hw_tstamp f64 |
                   wire_csum u32 | flags u16 | pad u16 | request bytes
    REPL ack:      "RPLA" | origin_rpc_id u64 | status u16

A ``hw_tstamp`` of -1.0 / ``wire_csum`` of 0xFFFFFFFF encode None.
"""

import struct

from repro.net.tcp import RxSegment

REPL_MAGIC = b"RPL1"
REPL_ACK_MAGIC = b"RPLA"
_REPL_HEADER = struct.Struct("!4sQdIHH")
_REPL_ACK = struct.Struct("!4sQH")
REPL_HEADER_LEN = _REPL_HEADER.size
REPL_ACK_LEN = _REPL_ACK.size

#: No csum / no tstamp sentinels (a DRAM-stack client, or synthetic load).
_NO_CSUM = 0xFFFFFFFF
_NO_TSTAMP = -1.0

#: Bounded dedup memory on the backup, same idea (and default size) as
#: the transport's completed-RPC memory.
APPLIED_MEMORY = 4096


def encode_repl_message(origin_rpc_id, hw_tstamp, wire_csum, request_bytes,
                        flags=0):
    """Frame the forwarded request bytes with their packet provenance."""
    header = _REPL_HEADER.pack(
        REPL_MAGIC, origin_rpc_id,
        _NO_TSTAMP if hw_tstamp is None else float(hw_tstamp),
        _NO_CSUM if wire_csum is None else (wire_csum & 0xFFFFFFFF),
        flags, 0,
    )
    return header + bytes(request_bytes)


def decode_repl_header(raw):
    """``(origin_rpc_id, hw_tstamp, wire_csum, flags)`` or ValueError."""
    if len(raw) < REPL_HEADER_LEN:
        raise ValueError(f"replication header truncated: {len(raw)} bytes")
    magic, origin, tstamp, csum, flags, _pad = _REPL_HEADER.unpack_from(raw, 0)
    if magic != REPL_MAGIC:
        raise ValueError(f"bad replication magic {magic!r}")
    return (origin,
            None if tstamp == _NO_TSTAMP else tstamp,
            None if csum == _NO_CSUM else csum,
            flags)


def encode_repl_ack(origin_rpc_id, status):
    return _REPL_ACK.pack(REPL_ACK_MAGIC, origin_rpc_id, status & 0xFFFF)


def decode_repl_ack(raw):
    """``(origin_rpc_id, status)`` or ValueError."""
    if len(raw) < REPL_ACK_LEN:
        raise ValueError(f"replication ack truncated: {len(raw)} bytes")
    magic, origin, status = _REPL_ACK.unpack_from(raw, 0)
    if magic != REPL_ACK_MAGIC:
        raise ValueError(f"bad replication ack magic {magic!r}")
    return origin, status


class _PendingRepl:
    """One ack-tracked forwarded put, retried until acked or exhausted."""

    __slots__ = ("origin_rpc_id", "payload", "backup_ip", "retries",
                 "timer", "on_ack", "first_send_ns", "done", "repl_rpcs")

    def __init__(self, origin_rpc_id, payload, backup_ip, on_ack,
                 first_send_ns):
        self.origin_rpc_id = origin_rpc_id
        self.payload = payload
        self.backup_ip = backup_ip
        self.on_ack = on_ack
        self.first_send_ns = first_send_ns
        self.retries = 0
        self.timer = None
        self.done = False
        self.repl_rpcs = []


class Replicator:
    """Ack-tracked store-and-forward from a primary to its backups.

    One instance per server host.  ``replicate()`` is called by the
    cluster server after a local put succeeds; ``on_ack(ok, ctx)``
    fires exactly once per call — ``ok=True`` when the backup
    acknowledged the apply, ``ok=False`` when the node degraded to a
    primary-only ack (backup suspect, retry budget exhausted, or
    apply rejected).  ``ctx`` is None on the timer-driven failure path.
    """

    def __init__(self, host, repl_port, backoff=None, recorder=None):
        self.host = host
        self.sim = host.sim
        self.transport = host.enable_homa()
        self.repl_port = repl_port
        self.backoff = backoff if backoff is not None else _default_backoff()
        #: Optional shared cluster Recorder: links each forwarded RPC
        #: into the origin request's span chain.
        self.recorder = recorder
        self._pending = {}
        #: Backup IPs that exhausted their retry budget; subsequent
        #: puts degrade immediately instead of queueing for a corpse.
        self.suspect = set()
        self.stats = {
            "sent": 0, "acked": 0, "retries": 0, "give_ups": 0,
            "degraded_acks": 0, "backup_apply_errors": 0,
            "suspect_fast_fails": 0, "lag_ns_last": 0.0, "lag_ns_max": 0.0,
        }

    @property
    def pending(self):
        return len(self._pending)

    def replicate(self, origin_rpc_id, request_bytes, hw_tstamp, wire_csum,
                  backup_ip, ctx, on_ack):
        """Forward one applied put to ``backup_ip``; ack-tracked."""
        if backup_ip in self.suspect:
            self.stats["suspect_fast_fails"] += 1
            self.stats["degraded_acks"] += 1
            on_ack(False, ctx)
            return
        payload = encode_repl_message(origin_rpc_id, hw_tstamp, wire_csum,
                                      request_bytes)
        entry = _PendingRepl(origin_rpc_id, payload, backup_ip, on_ack,
                             self.sim.now)
        self._pending[origin_rpc_id] = entry
        self.stats["sent"] += 1
        self._send(entry, ctx)
        self._arm(entry)

    def reset_suspicion(self):
        """Routing changed (failover): stale suspicion no longer applies."""
        self.suspect.clear()

    # -- internals ------------------------------------------------------------

    def _send(self, entry, ctx):
        rpc_id = self.transport.send_request(
            entry.backup_ip, self.repl_port, entry.payload, ctx,
            on_reply=lambda segments, c, e=entry: self._on_reply(e, segments, c),
            on_giveup=lambda _rpc, e=entry: self._on_transport_giveup(e),
        )
        entry.repl_rpcs.append(rpc_id)
        if self.recorder is not None:
            # Cross-host stitching: the forwarded RPC is a child span of
            # the origin request's chain.
            self.recorder.link_rpc(entry.origin_rpc_id, rpc_id)

    def _arm(self, entry):
        if entry.timer is not None:
            entry.timer.cancel()
        entry.timer = self.sim.schedule(
            self.backoff.delay(entry.retries), self._on_timeout,
            entry.origin_rpc_id,
        )

    def _on_timeout(self, origin_rpc_id):
        entry = self._pending.get(origin_rpc_id)
        if entry is None or entry.done:
            return
        entry.timer = None
        if self.backoff.exhausted(entry.retries):
            self._fail(entry)
            return
        entry.retries += 1
        self.stats["retries"] += 1
        # Re-forward on the origin RPC's core: the retry carries the
        # same origin id, so the backup's dedup absorbs any overlap
        # with a still-in-flight earlier attempt.
        self.host.process_on_core(
            self.transport.core_for_rpc(entry.origin_rpc_id),
            lambda ctx: self._send(entry, ctx),
        )
        self._arm(entry)

    def _on_transport_giveup(self, entry):
        """Homa gave up on one forwarded RPC (peer presumed dead):
        skip the remaining backoff wait for that attempt."""
        if entry.done or entry.origin_rpc_id not in self._pending:
            return
        self._on_timeout(entry.origin_rpc_id)

    def _on_reply(self, entry, segments, ctx):
        if entry.done or self._pending.get(entry.origin_rpc_id) is not entry:
            return  # stale reply from a superseded attempt
        try:
            origin, status = decode_repl_ack(
                b"".join(s.bytes() for s in segments))
        except ValueError:
            return
        if origin != entry.origin_rpc_id:
            return
        entry.done = True
        del self._pending[entry.origin_rpc_id]
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        lag = self.sim.now - entry.first_send_ns
        self.stats["lag_ns_last"] = lag
        if lag > self.stats["lag_ns_max"]:
            self.stats["lag_ns_max"] = lag
        if status == 200:
            self.stats["acked"] += 1
            entry.on_ack(True, ctx)
        else:
            # The backup refused the apply (e.g. its slab is full).
            # Retrying would refuse again; degrade, loudly.
            self.stats["backup_apply_errors"] += 1
            self.stats["degraded_acks"] += 1
            entry.on_ack(False, ctx)

    def _fail(self, entry):
        if entry.done:
            return
        entry.done = True
        self._pending.pop(entry.origin_rpc_id, None)
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        self.stats["give_ups"] += 1
        self.stats["degraded_acks"] += 1
        if entry.backup_ip not in self.suspect:
            self.suspect.add(entry.backup_ip)
            # Tear down every queued retransmission aimed at the
            # corpse; other pending entries to it fail through their
            # own give-up callbacks.
            self.transport.abort_peer(entry.backup_ip)
        entry.on_ack(False, None)

    def __repr__(self):
        return (f"<Replicator :{self.repl_port} pending={self.pending} "
                f"suspect={len(self.suspect)}>")


def _default_backoff():
    from repro.cluster.backoff import Backoff

    return Backoff()


class ReplicationApplier:
    """Backup-side apply: adopt forwarded request packets, idempotently.

    Dedup is by origin RPC id with bounded memory: a replication retry
    whose earlier attempt already applied re-acks without re-running
    the put — the store never sees the same client put twice.
    """

    def __init__(self, kv, repl_port, applied_memory=APPLIED_MEMORY):
        self.kv = kv
        self.host = kv.host
        self.repl_port = repl_port
        self.applied_memory = applied_memory
        self._applied = {}   # origin_rpc_id -> ack status
        self.stats = {"applied": 0, "dup_suppressed": 0, "apply_errors": 0,
                      "bad_frames": 0}
        self.host.enable_homa().listen(repl_port, self._on_repl)

    def _on_repl(self, rpc, segments, ctx):
        from repro.net.http import HttpError, HttpParser
        from repro.storage.kvserver import _status_of

        first = segments[0].bytes() if segments else b""
        try:
            origin, hw_tstamp, wire_csum, _flags = decode_repl_header(first)
        except ValueError:
            self.stats["bad_frames"] += 1
            rpc.reply(encode_repl_ack(0, 400), ctx)
            return
        remembered = self._applied.get(origin)
        if remembered is not None:
            # Idempotency: this origin already applied (the ack got
            # lost, or a retry overtook it).  Never re-run the put.
            self.stats["dup_suppressed"] += 1
            rpc.reply(encode_repl_ack(origin, remembered), ctx)
            return

        # Parse the forwarded request straight out of the delivered
        # frames: a header-skipping view of the first segment, the rest
        # untouched.  The parser takes its own buffer references, so
        # the adopted value bytes are the DMA'd replication packets —
        # the same zero-copy adoption a client put gets.
        parser = HttpParser(is_response=False)
        head = segments[0]
        view = RxSegment(head.pktbuf, head.offset + REPL_HEADER_LEN,
                         head.length - REPL_HEADER_LEN)
        messages = []
        try:
            messages.extend(parser.feed(view, ctx, self.kv.costs))
            for segment in segments[1:]:
                messages.extend(parser.feed(segment, ctx, self.kv.costs))
            if parser.pending:
                raise HttpError("truncated replicated request")
        except HttpError:
            parser.reset()
            for message in messages:
                message.release()
            self.stats["bad_frames"] += 1
            rpc.reply(encode_repl_ack(origin, 400), ctx)
            return

        recorder = self.kv.recorder
        core = self.host.homa.core_for_rpc(rpc.rpc_id).index
        status = 0
        for message in messages:
            # Restore the original packet's provenance: the store
            # indexes the client's NIC-verified checksum and hardware
            # timestamp, not the replication hop's.
            message.hw_tstamp = hw_tstamp
            message.wire_csum = wire_csum
            if recorder is not None:
                recorder.request_begin(ctx)
            try:
                try:
                    response = self.kv._dispatch(message, ctx)
                finally:
                    message.release()
                status = _status_of(response)
            finally:
                if recorder is not None:
                    recorder.request_end("REPL", status, core, ctx,
                                         rpc_id=rpc.rpc_id)
        if status == 200:
            self.stats["applied"] += 1
        else:
            self.stats["apply_errors"] += 1
        self._remember(origin, status)
        rpc.reply(encode_repl_ack(origin, status), ctx)

    def _remember(self, origin, status):
        self._applied[origin] = status
        if len(self._applied) > self.applied_memory:
            for old in list(self._applied)[:self.applied_memory // 4]:
                del self._applied[old]

    def __repr__(self):
        return f"<ReplicationApplier :{self.repl_port} {self.stats['applied']} applied>"
