"""Sharded + replicated PacketStore across simulated hosts.

The paper's thesis — packets *are* the persistent data structure —
means a replica can be kept consistent by simply forwarding the
original NIC-verified request packets: no serialization layer, no
replication log format.  This package builds that claim out to a
multi-host topology:

- :mod:`repro.cluster.hashring` — consistent-hash key → (primary,
  backup) placement that survives host death by walking to the next
  alive node.
- :mod:`repro.cluster.backoff` — deterministic bounded exponential
  backoff schedules (no wall clock, no unseeded randomness).
- :mod:`repro.cluster.replication` — ack-tracked store-and-forward of
  the original request bytes primary → backup over Homa, idempotent on
  the backup by origin RPC id.
- :mod:`repro.cluster.topology` — ``Cluster``: N server hosts, one
  shared fabric, a client-side consistent-hash router, whole-host kill
  + failover promotion.

See docs/RESILIENCE.md §"Sharding, replication and whole-host
failover" for semantics, and ``repro-chaoscheck --cluster`` for the
host-kill storm that proves them.
"""

from repro.cluster.backoff import Backoff
from repro.cluster.hashring import HashRing
from repro.cluster.replication import (
    ReplicationApplier,
    Replicator,
    decode_repl_ack,
    decode_repl_header,
    encode_repl_ack,
    encode_repl_message,
)
from repro.cluster.topology import (
    Cluster,
    ClusterConfig,
    ClusterNode,
    Router,
    build_cluster,
)

__all__ = [
    "Backoff",
    "HashRing",
    "Replicator",
    "ReplicationApplier",
    "encode_repl_message",
    "decode_repl_header",
    "encode_repl_ack",
    "decode_repl_ack",
    "Cluster",
    "ClusterConfig",
    "ClusterNode",
    "Router",
    "build_cluster",
]
