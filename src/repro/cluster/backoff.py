"""Deterministic bounded retry backoff for replication.

The replication path retries over sim-time, so the schedule must be a
pure function of the attempt number: no wall clock, no unseeded jitter
(DET-01).  ``Backoff`` is exactly that — a capped exponential
schedule with a hard retry limit, shared by the replicator's ack
tracking and the property tests that pin its contract.
"""


class Backoff:
    """Capped exponential backoff: ``delay(n) = min(cap, base·mult^n)``.

    ``max_retries`` bounds how many retries are allowed *after* the
    first attempt; ``schedule()`` therefore yields exactly
    ``max_retries`` delays.  All times are simulated nanoseconds.
    """

    __slots__ = ("base_ns", "multiplier", "cap_ns", "max_retries")

    def __init__(self, base_ns=2_000_000.0, multiplier=2.0,
                 cap_ns=20_000_000.0, max_retries=4):
        if base_ns <= 0:
            raise ValueError(f"base_ns must be > 0, got {base_ns}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if cap_ns < base_ns:
            raise ValueError(f"cap_ns {cap_ns} < base_ns {base_ns}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.base_ns = float(base_ns)
        self.multiplier = float(multiplier)
        self.cap_ns = float(cap_ns)
        self.max_retries = int(max_retries)

    def delay(self, attempt):
        """Delay before retry ``attempt`` (0-based).  Monotone, capped."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.cap_ns, self.base_ns * self.multiplier ** attempt)

    def schedule(self):
        """The full retry schedule: ``max_retries`` delays, in order."""
        return [self.delay(n) for n in range(self.max_retries)]

    def exhausted(self, attempt):
        """True once ``attempt`` retries have been spent."""
        return attempt >= self.max_retries

    def __repr__(self):
        return (f"<Backoff base={self.base_ns:.0f}ns x{self.multiplier} "
                f"cap={self.cap_ns:.0f}ns retries={self.max_retries}>")
