"""Multi-host cluster topology: shards, replicas, failover.

``build_cluster(ClusterConfig(hosts=3))`` stands up N PASTE server
hosts — each with its own persistent-memory device, packet-native
store and Homa KV server — plus a kernel-stack client host, all on one
simulated fabric.  Keys shard across the servers by consistent hash
(:class:`~repro.cluster.hashring.HashRing`); each key's primary
forwards applied puts to its backup over Homa
(:class:`~repro.cluster.replication.Replicator`), and under
``ack_policy="sync"`` the client's 200 is *deferred* until the backup
acknowledged — a client ack means the put is durable on two hosts.

Whole-host failure is first-class: ``cluster.kill(name)`` pulls the
plug (DRAM state gone, PM survives), and ``cluster.failover(name)``
is the control-plane reaction — the dead node leaves the ring's alive
set, which *is* promotion: the route function now returns the old
backup as the key's primary.  In-flight transport state aimed at the
corpse is torn down immediately via
:meth:`~repro.net.homa.HomaTransport.abort_peer`.

The control plane itself (failure detection gossip, epoch numbers,
membership consensus) is abstracted to a shared in-process view, as a
simulation of the data plane should.  Re-replicating a promoted shard
onto a fresh backup is capture-driven: with ``capture=True`` the
fabric-wide tap records every node's delivered history, and
:func:`repro.capture.replay.reseed_from_capture` rebuilds a killed
node from packets alone and re-attaches it to the ring
(docs/CAPTURE.md).
"""

from dataclasses import dataclass, field

from repro.bench.costmodel import CostModel
from repro.cluster.backoff import Backoff
from repro.cluster.hashring import HashRing
from repro.cluster.replication import ReplicationApplier, Replicator
from repro.net.fabric import Fabric
from repro.net.http import HttpError, HttpParser
from repro.net.nic import NicFeatures
from repro.net.stack import Host
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim.context import NULL_CONTEXT
from repro.sim.engine import Simulator
from repro.storage.kvserver import HomaKVServer, _status_of
from repro.storage.server import ServerConfig, serve

CLIENT_IP = "10.0.0.2"
CLIENT_CORES = 12

ACK_POLICIES = ("sync", "primary-only")


@dataclass
class ClusterConfig:
    """Shape of one cluster: hosts, shards, replication policy.

    ``ack_policy="sync"`` defers the client's 200 until the backup
    acknowledged the forwarded put (ack ⇒ durable on two hosts);
    ``"primary-only"`` acks after the local apply and replicates
    asynchronously.  Either way a stalled/dead backup degrades the
    node to primary-only acks after the bounded retry budget — counted
    in ``<node>.repl.degraded_acks``, never silent.
    """

    hosts: int = 3
    vnodes: int = 32
    cores: int = 1
    engine: str = "pktstore"
    ack_policy: str = "sync"
    port: int = 80
    repl_port: int = 81
    backoff: object = None          # Backoff instance; None = defaults
    metrics: bool = True
    overload: object = None
    contain_errors: bool = True
    pm_bytes: int = 96 << 20
    paste_pool_bytes: int = 8 << 20
    pool_slots: int = 2048
    client_cores: int = CLIENT_CORES
    fabric_kwargs: dict = field(default_factory=dict)
    engine_kwargs: dict = field(default_factory=dict)
    #: Record the whole fabric's delivered frame stream (repro.capture).
    #: The capture is fabric-wide — every node's rx history — so a dead
    #: node can be rebuilt from it (replay.reseed_from_capture).
    capture: bool = False
    capture_max_frames: int = None
    capture_max_bytes: int = None

    def validate(self):
        if self.hosts < 1:
            raise ValueError(f"hosts must be >= 1, got {self.hosts}")
        for bound in ("capture_max_frames", "capture_max_bytes"):
            value = getattr(self, bound)
            if value is not None and value <= 0:
                raise ValueError(f"{bound} must be positive (or None)")
        if (self.capture_max_frames is not None or
                self.capture_max_bytes is not None) and not self.capture:
            raise ValueError(
                "capture_max_frames/capture_max_bytes need capture=True")
        if self.ack_policy not in ACK_POLICIES:
            raise ValueError(
                f"ack_policy {self.ack_policy!r} not in {ACK_POLICIES}")
        if self.repl_port == self.port:
            raise ValueError("repl_port must differ from the service port")
        if self.backoff is not None and not isinstance(self.backoff, Backoff):
            raise TypeError("backoff must be a repro.cluster.Backoff or None")
        return self


class ClusterContext:
    """What :func:`repro.storage.server.serve` needs to build a
    cluster-mode front-end: this node's identity and replication glue."""

    __slots__ = ("node_name", "replicator", "route", "peer_ips", "ack_policy")

    def __init__(self, node_name, replicator, route, peer_ips, ack_policy):
        self.node_name = node_name
        self.replicator = replicator
        self.route = route
        self.peer_ips = peer_ips
        self.ack_policy = ack_policy


class ClusterKVServer(HomaKVServer):
    """The Homa KV front-end of one cluster node.

    Differences from the standalone server, all on the put path:

    - after a successful local apply of a PUT/DELETE for which this
      node is the key's primary, the *original request bytes* are
      forwarded to the key's backup (the replication stream is the
      packets — no serialization layer);
    - under ``ack_policy="sync"`` the reply to the client is deferred
      until the backup's ack (or the bounded retry budget degrades the
      node to a primary-only ack, counted);
    - requests for keys this node no longer owns are still served
      (the router may race a failover) but counted as ``misrouted``.
    """

    REPLICATED_METHODS = ("PUT", "DELETE")

    def __init__(self, host, engine, port=80, overload=None,
                 contain_errors=True, cluster_ctx=None):
        super().__init__(host, engine, port=port, overload=overload,
                         contain_errors=contain_errors)
        if cluster_ctx is None:
            raise ValueError("ClusterKVServer needs a cluster_ctx")
        self.node_name = cluster_ctx.node_name
        self.replicator = cluster_ctx.replicator
        self.route = cluster_ctx.route
        self.peer_ips = cluster_ctx.peer_ips
        self.ack_policy = cluster_ctx.ack_policy
        self.stats.update({
            "replicated_puts": 0, "repl_acked": 0, "repl_degraded": 0,
            "misrouted": 0, "deferred_replies": 0,
        })

    def _on_request(self, rpc, segments, ctx):
        self.stats["connections"] += 1
        parser = HttpParser(is_response=False)
        messages = []
        # The delivered frames' bytes, kept verbatim: if this turns out
        # to be a primary-owned put, these exact bytes are forwarded to
        # the backup — the request packets are the replication stream.
        raw = b"".join(s.bytes() for s in segments)
        try:
            for segment in segments:
                messages.extend(parser.feed(segment, ctx, self.costs))
        except HttpError as exc:
            if not self.contain_errors:
                raise
            parser.reset()
            for message in messages:
                message.release()
            self.stats["parse_errors"] += 1
            self.stats["bad_requests"] += 1
            from repro.net.http import build_response

            rpc.reply(build_response(400, str(exc).encode("utf-8", "replace")),
                      ctx)
            return
        core = self.transport.core_for_rpc(rpc.rpc_id).index
        # Replication forwards the whole RPC payload; a pipelined RPC
        # carrying several requests has no per-message frame boundary,
        # so only single-request RPCs replicate (the cluster client
        # always sends one request per RPC).
        single = len(messages) == 1
        for message in messages:
            self._serve_one(rpc, message, raw if single else None, core, ctx)

    def _serve_one(self, rpc, message, raw, core, ctx):
        recorder = self.recorder
        kind = message.method or "?"
        key = (message.path or "/").split("?", 1)[0].lstrip("/").encode("utf-8")
        hw_tstamp, wire_csum = message.hw_tstamp, message.wire_csum
        backup = self._backup_for(key, kind, raw)
        if recorder is not None:
            recorder.request_begin(ctx)
        status = 0
        try:
            try:
                response = self._dispatch(message, ctx)
            finally:
                message.release()
            self.costs.charge_http_build(ctx)
            status = _status_of(response)
            if status == 200 and backup is not None:
                self.stats["replicated_puts"] += 1
                sync = self.ack_policy == "sync"
                if sync:
                    self.stats["deferred_replies"] += 1
                else:
                    rpc.reply(response, ctx)
                self.replicator.replicate(
                    rpc.rpc_id, raw, hw_tstamp, wire_csum,
                    self.peer_ips[backup], ctx,
                    self._make_on_ack(rpc, response, core, sync),
                )
            else:
                rpc.reply(response, ctx)
        finally:
            if recorder is not None:
                recorder.request_end(kind, status, core, ctx,
                                     rpc_id=rpc.rpc_id)

    def _backup_for(self, key, kind, raw):
        """The backup node name when this request must replicate."""
        if self.replicator is None or raw is None or not key or \
                kind not in self.REPLICATED_METHODS:
            return None
        route = self.route(key)
        if not route or route[0] != self.node_name:
            if route and self.node_name not in route:
                self.stats["misrouted"] += 1
            # A backup (or a misrouted node) applies locally without
            # re-forwarding; the router owns convergence.
            return None
        return route[1] if len(route) > 1 else None

    def _make_on_ack(self, rpc, response, core, sync):
        def on_ack(ok, ack_ctx):
            if ok:
                self.stats["repl_acked"] += 1
            else:
                self.stats["repl_degraded"] += 1
            if not sync:
                return
            if ack_ctx is not None:
                # The backup's ack arrived in a live rx slice; answer
                # the client from it.
                rpc.reply(response, ack_ctx)
            else:
                # Timer-driven degradation: answering needs a slice.
                self.host.process_on_core(
                    self.host.cpus[core],
                    lambda c: rpc.reply(response, c),
                )
        return on_ack


class ClusterNode:
    """One server host and everything running on it."""

    __slots__ = ("name", "ip", "host", "server", "replicator", "applier",
                 "pm_device", "pm_ns")

    def __init__(self, name, ip, host, server, replicator, applier,
                 pm_device, pm_ns):
        self.name = name
        self.ip = ip
        self.host = host
        self.server = server
        self.replicator = replicator
        self.applier = applier
        self.pm_device = pm_device
        self.pm_ns = pm_ns

    @property
    def alive(self):
        return self.host.alive

    @property
    def engine(self):
        return self.server.engine

    @property
    def kv(self):
        return self.server.kv

    def __repr__(self):
        state = "alive" if self.alive else "DEAD"
        return f"<ClusterNode {self.name} {self.ip} {state}>"


class Router:
    """Client-side routing + failure detection over the shared ring.

    ``report_failure(name)`` counts consecutive unanswered RPCs per
    node; at ``fail_threshold`` the router declares the node dead and
    triggers the cluster failover (promote backups, abort in-flight
    state).  Any success resets the count — transient loss never
    evicts a live node.
    """

    def __init__(self, cluster, fail_threshold=2):
        self.cluster = cluster
        self.fail_threshold = fail_threshold
        self._fails = {}
        self.stats = {"failures_reported": 0, "failovers_triggered": 0}

    def primary(self, key):
        return self.cluster.ring.primary(key)

    def ip_of(self, name):
        return self.cluster.nodes[name].ip

    def report_success(self, name):
        self._fails.pop(name, None)

    def report_failure(self, name):
        """Returns True when this report triggered a failover."""
        self.stats["failures_reported"] += 1
        if name not in self.cluster.ring.alive:
            return False
        count = self._fails.get(name, 0) + 1
        self._fails[name] = count
        if count < self.fail_threshold:
            return False
        self.stats["failovers_triggered"] += 1
        self.cluster.failover(name)
        return True


class Cluster:
    """Handles to the whole topology; see :func:`build_cluster`."""

    def __init__(self, config, sim, fabric, ring, nodes, client, recorder,
                 capture_tap=None):
        self.config = config
        self.sim = sim
        self.fabric = fabric
        self.ring = ring
        self.nodes = nodes          # name -> ClusterNode, ring order
        self.client = client
        self.recorder = recorder
        #: repro.capture CaptureTap over the whole fabric (None unless
        #: config.capture); feeds reseed_from_capture.
        self.capture_tap = capture_tap
        #: name -> sim time of the kill; reseed injects the dead node's
        #: pre-kill history and catches up from the survivors' after it.
        self.killed_at = {}
        self.router = Router(self)
        self.stats = {"kills": 0, "failovers": 0}
        if recorder is not None:
            for key in self.stats:
                recorder.registry.gauge(
                    f"cluster.{key}",
                    fn=lambda stats=self.stats, k=key: float(stats.get(k, 0)),
                )

    @property
    def metrics(self):
        return self.recorder.registry if self.recorder is not None else None

    def alive_nodes(self):
        return [n for n in self.nodes.values() if n.name in self.ring.alive]

    def primary_node(self, key):
        return self.nodes[self.ring.primary(key)]

    # -- failure injection + control plane ------------------------------------

    def kill(self, name):
        """Pull the plug on a host.  Detection/failover is *not*
        implied — that's the router's (or the test's) job, exactly the
        window where durability claims are earned."""
        node = self.nodes[name]
        if not node.host.alive:
            raise RuntimeError(f"{name} is already dead")
        node.host.kill()
        self.killed_at[name] = self.sim.now
        self.stats["kills"] += 1
        return node

    def failover(self, dead_name):
        """Control-plane reaction to a dead host: promote + abort.

        Removing the node from the ring's alive set *is* the
        promotion — the backup is the next alive node clockwise, so
        every shard the corpse owned now routes to its replica.  All
        survivors (and the client) immediately tear down transport
        state aimed at the corpse instead of burning the full Homa
        retry budget, and replication suspicion resets because the
        routing that produced it no longer exists.
        """
        dead = self.nodes[dead_name]
        self.ring.mark_dead(dead_name)
        self.stats["failovers"] += 1
        for node in self.alive_nodes():
            node.replicator.reset_suspicion()
            if node.host.homa is not None:
                node.host.homa.abort_peer(dead.ip)
        if self.client.homa is not None:
            self.client.homa.abort_peer(dead.ip)
        return self.nodes[dead_name]

    # -- direct store access (oracles, tests) ----------------------------------

    def read_value(self, key, ctx=NULL_CONTEXT):
        """Read ``key`` from its *current* primary's engine, no network."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        return self.primary_node(key).engine.get(key, ctx)

    def __repr__(self):
        alive = len(self.ring.alive)
        return f"<Cluster {alive}/{len(self.nodes)} alive>"


def build_cluster(config=None, **overrides):
    """Build the whole topology from a :class:`ClusterConfig`."""
    if config is None:
        config = ClusterConfig(**overrides)
    elif overrides:
        raise TypeError("pass either config= or field overrides, not both")
    config.validate()

    sim = Simulator()
    fabric = Fabric(sim, **dict(config.fabric_kwargs))
    names = [f"s{i}" for i in range(config.hosts)]
    ips = {name: f"10.0.1.{i + 1}" for i, name in enumerate(names)}
    ring = HashRing(names, vnodes=config.vnodes)

    recorder = None
    if config.metrics:
        from repro.obs.trace import Recorder

        recorder = Recorder(sim=sim)

    client = Host(
        sim, "client", CLIENT_IP, fabric, CostModel.kernel(),
        cores=config.client_cores, busy_poll=False, irq_latency_ns=0.0,
        nic_features=NicFeatures(),
    )
    client.enable_homa()

    server_config = ServerConfig(
        transport="homa", engine=config.engine, port=config.port,
        cores=config.cores, contain_errors=config.contain_errors,
        overload=config.overload, ack_policy=config.ack_policy,
        engine_kwargs=dict(config.engine_kwargs),
    )

    nodes = {}
    for name in names:
        pm_device = PMDevice(config.pm_bytes, name=f"{name}-pm")
        pm_ns = PMNamespace(pm_device)
        rx_region = pm_ns.create("paste-pktbufs", config.paste_pool_bytes)
        host = Host(
            sim, name, ips[name], fabric, CostModel.paste(),
            cores=config.cores, rx_pool_region=rx_region,
            pool_slots=config.pool_slots, busy_poll=True,
            nic_features=NicFeatures(),
        )
        replicator = Replicator(
            host, config.repl_port,
            backoff=config.backoff if config.backoff is not None else Backoff(),
            recorder=recorder,
        )
        cluster_ctx = ClusterContext(
            node_name=name, replicator=replicator, route=ring.route,
            peer_ips=ips, ack_policy=config.ack_policy,
        )
        handle = serve(host, server_config, pm_ns=pm_ns, cluster=cluster_ctx)
        applier = ReplicationApplier(handle.kv, config.repl_port)
        if recorder is not None:
            recorder.attach_host(host, name)
            recorder.attach_server(handle.kv, role=name)
            recorder.attach_engine(handle.engine, role=f"{name}.engine")
            recorder.attach_replicator(replicator, role=f"{name}.repl")
            recorder.attach_applier(applier, role=f"{name}.repl.apply")
            if handle.overload is not None:
                recorder.attach_overload(handle.overload, role=f"{name}.overload")
        nodes[name] = ClusterNode(name, ips[name], host, handle, replicator,
                                  applier, pm_device, pm_ns)

    if recorder is not None:
        recorder.attach_host(client, "client")
        recorder.attach_fabric(fabric)

    capture_tap = None
    if config.capture:
        from repro.capture.tap import CaptureTap
        from repro.net.headers import ip_to_int

        capture_tap = CaptureTap(
            fabric, max_frames=config.capture_max_frames,
            max_bytes=config.capture_max_bytes,
            meta={
                "cluster": {
                    "hosts": config.hosts, "vnodes": config.vnodes,
                    "cores": config.cores, "engine": config.engine,
                    "ack_policy": config.ack_policy, "port": config.port,
                    "repl_port": config.repl_port,
                    "pm_bytes": config.pm_bytes,
                    "paste_pool_bytes": config.paste_pool_bytes,
                    "pool_slots": config.pool_slots,
                    "engine_kwargs": dict(config.engine_kwargs),
                },
                "node_ips": {name: ip_to_int(ip)
                             for name, ip in ips.items()},
            },
        )
        if recorder is not None:
            registry = recorder.registry
            registry.gauge("cluster.capture.buffered",
                           fn=lambda t=capture_tap: float(len(t)))
            registry.gauge("cluster.capture.seen",
                           fn=lambda t=capture_tap: float(t.seen_frames))
            registry.gauge("cluster.capture.evicted",
                           fn=lambda t=capture_tap: float(t.dropped_frames))

    return Cluster(config, sim, fabric, ring, nodes, client, recorder,
                   capture_tap=capture_tap)


def preload_cluster(cluster, entries, value_size=512, key_prefix="warm"):
    """Direct-engine preload honouring placement: primary + backup."""
    from repro.storage.engines import direct_put

    value = bytes(value_size)
    for index in range(entries):
        key = f"{key_prefix}-{index}".encode("utf-8")
        for name in cluster.ring.route(key):
            direct_put(cluster.nodes[name].engine, key, value, NULL_CONTEXT)
    return entries
