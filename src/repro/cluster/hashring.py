"""Consistent-hash placement of keys onto cluster nodes.

Classic Karger-style ring: every node projects ``vnodes`` virtual
points onto a 64-bit circle, a key lives at the first point clockwise
from its own hash, and replicas are the next *distinct* nodes further
clockwise.  Two properties matter here:

- **Stability under death.**  Killing a node only moves the keys it
  owned (to the next alive node clockwise) — which is exactly the
  failover rule: the backup for a key is the next distinct alive node
  after its primary, so when the primary dies the route function
  *automatically* promotes the backup.  No epoch bump, no rebalance
  protocol; the alive-set is the routing table.
- **Determinism.**  Hashing is seeded SHA-1 over the node name /
  key bytes: the same topology gives byte-identical placement in every
  run on every platform (DET-01 — no ``hash()`` randomisation).
"""

import bisect
import hashlib


def _hash64(data):
    """Stable 64-bit hash of ``bytes`` (first 8 bytes of SHA-1)."""
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over named nodes.

    ``nodes`` is an iterable of node names (strings).  ``route(key)``
    returns the first ``replicas`` distinct *alive* nodes clockwise
    from the key's point — index 0 is the primary, index 1 the backup.
    """

    def __init__(self, nodes, vnodes=64, replicas=2):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.nodes = list(dict.fromkeys(nodes))  # order-preserving dedup
        if not self.nodes:
            raise ValueError("HashRing needs at least one node")
        self.vnodes = vnodes
        self.replicas = replicas
        self._alive = set(self.nodes)
        points = []
        for name in self.nodes:
            for v in range(vnodes):
                points.append((_hash64(f"{name}#{v}".encode("utf-8")), name))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    # -- liveness -------------------------------------------------------------

    @property
    def alive(self):
        return frozenset(self._alive)

    def mark_dead(self, name):
        """Remove ``name`` from routing; keys re-route to successors."""
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        self._alive.discard(name)
        if not self._alive:
            raise RuntimeError("every node is dead; nothing left to route to")

    def mark_alive(self, name):
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        self._alive.add(name)

    # -- placement ------------------------------------------------------------

    def route(self, key, replicas=None):
        """Distinct alive nodes for ``key``: ``[primary, backup, ...]``.

        Fewer than ``replicas`` entries come back when fewer distinct
        alive nodes exist (a 1-alive-node cluster runs unreplicated).
        """
        if isinstance(key, str):
            key = key.encode("utf-8")
        want = self.replicas if replicas is None else replicas
        start = bisect.bisect_left(self._points, _hash64(key))
        chosen = []
        npoints = len(self._points)
        for step in range(npoints):
            owner = self._owners[(start + step) % npoints]
            if owner in self._alive and owner not in chosen:
                chosen.append(owner)
                if len(chosen) >= want:
                    break
        return chosen

    def primary(self, key):
        return self.route(key, replicas=1)[0]

    def backup(self, key):
        """The key's backup node, or None in a 1-alive-node ring."""
        route = self.route(key, replicas=2)
        return route[1] if len(route) > 1 else None

    def __repr__(self):
        return (f"<HashRing {len(self.nodes)} nodes "
                f"({len(self._alive)} alive) x{self.vnodes}v>")
