"""Byte-addressable memory devices.

:class:`MemoryDevice` is the common surface: a flat byte array with
``read``/``write`` plus explicit access-cost charging.  Two concrete
kinds exist:

- :class:`DRAMDevice` — volatile.  Contents vanish on crash.  Flush and
  fence are no-ops (there is nothing to persist into).
- :class:`PMDevice` — persistent.  Keeps a second byte image (what has
  actually reached the persistence domain) and a
  :class:`~repro.pm.cache.FlushTracker`; ``crash()`` reverts the
  CPU-visible view to the persistent image.

Cost-charging convention: ``read``/``write`` do **not** implicitly
charge time, because bulk data movement (copies, checksums) is priced
by the cost model of the actor doing it and would otherwise be charged
twice.  Pointer-chasing structure code (skip lists, tree walks) calls
:meth:`MemoryDevice.charge_access` per node visit instead — that is
where the PM-vs-DRAM 346/70 ns gap enters the results.
"""

import mmap

from repro.pm.cache import FlushTracker
from repro.pm.constants import (
    CACHE_LINE,
    DRAM_ACCESS_NS,
    FENCE_NS,
    FLUSH_LINE_NS,
    PM_ACCESS_NS,
)
from repro.sim.context import NULL_CONTEXT


def _zero_buffer(size):
    """A writable all-zero buffer of ``size`` bytes.

    Anonymous mmap gives demand-zero pages: allocation is O(1) and
    untouched pages cost no RSS, which matters because devices are
    sized for headroom (hundreds of MB) while most runs touch a few MB.
    Behaves like a bytearray for everything the devices do (slice
    read/write, memoryview, len); falls back to bytearray where mmap
    is unavailable.
    """
    try:
        return mmap.mmap(-1, size)
    except (ValueError, OSError):
        return bytearray(size)

#: When set, every newly constructed :class:`PMDevice` calls
#: ``_observer_factory(device)`` and keeps the result as its observer.
#: PMSan (:mod:`repro.analysis.pmsan`) installs itself here so devices
#: created *after* the sanitizer is enabled are watched automatically;
#: it attaches to pre-existing devices explicitly.  The hooks are
#: pure notifications — they never change device behaviour.
_observer_factory = None


def set_observer_factory(factory):
    """Install (or clear, with None) the PMDevice observer factory.

    Returns the previous factory so callers can restore it.
    """
    global _observer_factory
    previous = _observer_factory
    _observer_factory = factory
    return previous


class MemoryDevice:
    """Flat byte-addressable memory with a modeled access latency."""

    persistent = False

    def __init__(self, size, access_ns, name="mem"):
        if size <= 0:
            raise ValueError("device size must be positive")
        self.size = size
        self.access_ns = access_ns
        self.name = name
        self.data = _zero_buffer(size)
        self.crashes = 0

    def _check(self, offset, length):
        if offset < 0 or length < 0 or offset + length > self.size:
            raise IndexError(
                f"{self.name}: access [{offset}, {offset + length}) outside device of {self.size} bytes"
            )

    def read(self, offset, length):
        """Return ``length`` bytes at ``offset`` (CPU-visible view)."""
        if offset < 0 or length < 0 or offset + length > self.size:
            self._check(offset, length)
        return bytes(self.data[offset:offset + length])

    def write(self, offset, payload):
        """Store ``payload`` at ``offset`` in the CPU-visible view."""
        length = len(payload)
        if offset < 0 or offset + length > self.size:
            self._check(offset, length)
        self.data[offset:offset + length] = payload
        return length

    def charge_access(self, ctx, count=1, category="mem.access"):
        """Charge ``count`` dependent (cache-missing) accesses to this device."""
        return ctx.charge(count * self.access_ns, category)

    # Persistence interface: no-ops on volatile devices so callers can be
    # written once and run against either kind.
    def flush(self, offset, length, ctx=NULL_CONTEXT, category="pm.flush"):
        return 0

    def fence(self, ctx=NULL_CONTEXT, category="pm.flush"):
        return 0

    def persist(self, offset, length, ctx=NULL_CONTEXT, category="pm.flush"):
        """flush + fence in one call."""
        lines = self.flush(offset, length, ctx, category)
        self.fence(ctx, category)
        return lines

    def crash(self, rng=None, pending_persist_prob=0.5):
        """Power loss.  Volatile contents are zeroed.

        ``rng``/``pending_persist_prob`` are accepted (and ignored) so
        crash-injection code can power-cycle any device kind through one
        signature.
        """
        self.crashes += 1
        self.data = _zero_buffer(self.size)

    def region(self, base, size, name=None):
        """Carve a window [base, base+size) as a :class:`Region`."""
        self._check(base, size)
        return Region(self, base, size, name or f"{self.name}+{base}")

    def __repr__(self):
        kind = "PM" if self.persistent else "DRAM"
        return f"<{kind} {self.name} {self.size}B>"


class DRAMDevice(MemoryDevice):
    """Volatile memory: fast, forgets everything on crash."""

    def __init__(self, size, access_ns=DRAM_ACCESS_NS, name="dram"):
        super().__init__(size, access_ns, name)


class PMDevice(MemoryDevice):
    """Persistent memory with explicit write-back/fence durability."""

    persistent = True

    def __init__(
        self,
        size,
        access_ns=PM_ACCESS_NS,
        flush_line_ns=FLUSH_LINE_NS,
        fence_ns=FENCE_NS,
        name="pmem",
    ):
        super().__init__(size, access_ns, name)
        self.flush_line_ns = flush_line_ns
        self.fence_ns = fence_ns
        #: Bytes that have actually reached the persistence domain.
        self.persisted = _zero_buffer(size)
        self.tracker = FlushTracker()
        #: Sanitizer hook (see :func:`set_observer_factory`); purely
        #: observational.
        self.observer = (
            _observer_factory(self) if _observer_factory is not None else None
        )

    def write(self, offset, payload):
        written = super().write(offset, payload)
        self.tracker.mark_store(offset, written)
        if self.observer is not None:
            self.observer.on_store(self, offset, written)
        return written

    def flush(self, offset, length, ctx=NULL_CONTEXT, category="pm.flush"):
        """clwb the covered lines; charges per dirty line written back."""
        self._check(offset, length)
        lines = self.tracker.writeback(offset, length, self.data)
        if self.observer is not None:
            self.observer.on_flush(self, offset, length, lines)
        if lines:
            ctx.charge(lines * self.flush_line_ns, category)
        return lines

    def fence(self, ctx=NULL_CONTEXT, category="pm.flush"):
        """sfence: drain pending write-backs into the persistent image."""
        if self.observer is not None:
            # Pre-drain, so the observer sees what this fence is about
            # to persist next to what is still volatile.
            self.observer.on_fence(self)
        drained = self.tracker.fence(self.persisted)
        ctx.charge(self.fence_ns, category)
        return drained

    def crash(self, rng=None, pending_persist_prob=0.5):
        """Power loss: CPU-visible view reverts to what was persisted.

        Pending (written-back, unfenced) lines drain probabilistically
        when a **seeded** ``rng`` instance is supplied; with ``rng=None``
        they are conservatively dropped and the crash is fully
        deterministic — it never falls back to global randomness.  See
        :meth:`repro.pm.cache.FlushTracker.crash` for the contract.
        """
        self.crashes += 1
        if self.observer is not None:
            self.observer.on_crash(self)
        self.tracker.crash(self.persisted, rng, pending_persist_prob)
        self.data = bytearray(self.persisted)

    def persisted_view(self, offset, length):
        """Read from the persistent image (what recovery would see)."""
        self._check(offset, length)
        if self.observer is not None:
            self.observer.on_crash_visible_read(self, offset, length)
        return bytes(self.persisted[offset:offset + length])

    def is_durable(self, offset, length):
        """True if every byte in the range matches its persisted image."""
        self._check(offset, length)
        if self.observer is not None:
            self.observer.on_crash_visible_read(self, offset, length)
        return self.data[offset:offset + length] == self.persisted[offset:offset + length]


class Region:
    """A named window into a device, with device-relative addressing.

    Regions are how the rest of the system holds memory: a PM-backed
    "file" is a region, a packet-buffer pool is a region, an allocator
    arena is a region.  All offsets passed to a region are local.
    """

    __slots__ = ("device", "base", "size", "name")

    def __init__(self, device, base, size, name):
        self.device = device
        self.base = base
        self.size = size
        self.name = name

    @property
    def persistent(self):
        return self.device.persistent

    def _check(self, offset, length):
        if offset < 0 or length < 0 or offset + length > self.size:
            raise IndexError(
                f"region {self.name}: access [{offset}, {offset + length}) outside {self.size} bytes"
            )

    def read(self, offset, length):
        if offset < 0 or length < 0 or offset + length > self.size:
            self._check(offset, length)
        # The region was bounds-checked against the device when carved,
        # so a region-legal read is device-legal; no device subclass
        # hooks reads (writes keep going through ``device.write`` for
        # the flush tracker / observers), so read the store directly.
        start = self.base + offset
        return bytes(self.device.data[start:start + length])

    def read_u64(self, offset):
        """Little-endian u64 at ``offset`` — hot path for stored pointers."""
        if offset < 0 or offset + 8 > self.size:
            self._check(offset, 8)
        start = self.base + offset
        return int.from_bytes(self.device.data[start:start + 8], "little")

    def unpack(self, struct_obj, offset):
        """``struct_obj.unpack_from`` at region ``offset``, zero-copy.

        Reads straight from the device's backing buffer (no intermediate
        ``bytes``), which is what makes per-node header parsing cheap
        when a structure is chased pointer by pointer.
        """
        size = struct_obj.size
        if offset < 0 or offset + size > self.size:
            self._check(offset, size)
        return struct_obj.unpack_from(self.device.data, self.base + offset)

    def write(self, offset, payload):
        length = len(payload)
        if offset < 0 or offset + length > self.size:
            self._check(offset, length)
        return self.device.write(self.base + offset, payload)

    def flush(self, offset, length, ctx=NULL_CONTEXT, category="pm.flush"):
        self._check(offset, length)
        return self.device.flush(self.base + offset, length, ctx, category)

    def fence(self, ctx=NULL_CONTEXT, category="pm.flush"):
        return self.device.fence(ctx, category)

    def persist(self, offset, length, ctx=NULL_CONTEXT, category="pm.flush"):
        lines = self.flush(offset, length, ctx, category)
        self.fence(ctx, category)
        return lines

    def charge_access(self, ctx, count=1, category="mem.access"):
        return self.device.charge_access(ctx, count, category)

    def subregion(self, offset, size, name=None):
        self._check(offset, size)
        return Region(self.device, self.base + offset, size, name or f"{self.name}+{offset}")

    def global_offset(self, offset):
        """Translate a region-local offset to a device offset."""
        self._check(offset, 0)
        return self.base + offset

    def __repr__(self):
        kind = "PM" if self.persistent else "DRAM"
        return f"<Region {self.name} [{self.base}, {self.base + self.size}) {kind}>"
