"""Cache-line flush bookkeeping for persistent memory.

On real hardware, a store to PM lands in the CPU cache; it becomes
durable only once its cache line is written back (``clwb`` /
``clflushopt`` / ``clflush``) *and* a store fence orders the write-back
into the persistence domain.  A crash loses every dirty line, and lines
that were written back but not yet fenced are in limbo: the write-back
may or may not have drained.

:class:`FlushTracker` models exactly that, at cache-line granularity:

- ``dirty``   — stored to, not written back.  Lost on crash.
- ``pending`` — written back (snapshot taken at clwb time), not fenced.
  On crash each pending line persists independently with a caller-
  supplied probability (hardware write-pending-queue drain is not
  ordered), which is what makes torn updates reproducible in tests.
- fenced      — copied into the device's persistent image.
"""

import types

from repro.pm.constants import CACHE_LINE


class FlushTracker:
    """Tracks dirty and pending (written-back, unfenced) cache lines."""

    def __init__(self, line_size=CACHE_LINE):
        self.line_size = line_size
        #: Line indices stored to since their last write-back.
        self.dirty = set()
        #: line index -> bytes snapshot taken when the line was written back.
        self.pending = {}
        # Statistics, used by benchmarks and tests.
        self.stores = 0
        self.flushes = 0
        self.fences = 0

    def lines_for(self, offset, length):
        """Range of line indices covering [offset, offset+length)."""
        if length <= 0:
            return range(0)
        first = offset // self.line_size
        last = (offset + length - 1) // self.line_size
        return range(first, last + 1)

    def mark_store(self, offset, length):
        """Record a store: its lines become dirty.

        A new store to a line that was pending re-dirties it: the
        earlier write-back snapshot still stands, but the newest bytes
        need another clwb.
        """
        self.stores += 1
        if length <= 0:
            return 0
        line_size = self.line_size
        first = offset // line_size
        last = (offset + length - 1) // line_size
        self.dirty.update(range(first, last + 1))
        return last - first + 1

    def writeback(self, offset, length, data):
        """clwb: snapshot the current bytes of each covered dirty line.

        Lines that are not dirty are skipped (clwb of a clean line is a
        no-op for durability).  Returns the number of lines written back,
        which the device uses to charge flush cost.
        """
        self.flushes += 1
        if not self.dirty or length <= 0:
            return 0
        written = 0
        line_size = self.line_size
        dirty = self.dirty
        pending = self.pending
        first = offset // line_size
        last = (offset + length - 1) // line_size
        span = last - first + 1
        if len(dirty) < span:
            # Sparse dirty set: walk it instead of the line range.
            hits = [line for line in dirty if first <= line <= last]
        else:
            hits = [line for line in range(first, last + 1) if line in dirty]
        mv = memoryview(data)
        for line in hits:
            start = line * line_size
            pending[line] = bytes(mv[start:start + line_size])
            dirty.discard(line)
            written += 1
        return written

    def fence(self, persistent_image):
        """sfence: drain every pending line into the persistent image."""
        self.fences += 1
        drained = len(self.pending)
        for line, snapshot in self.pending.items():
            start = line * self.line_size
            persistent_image[start:start + len(snapshot)] = snapshot
        self.pending.clear()
        return drained

    def crash(self, persistent_image, rng=None, pending_persist_prob=0.5):
        """Power loss: dirty lines are gone; pending lines may drain.

        With ``rng=None``, pending lines are dropped — the conservative
        outcome a correct recovery procedure must tolerate anyway.  This
        is a hard contract: ``rng=None`` must **never** fall back to
        global (module-level) randomness, so that every crash test in
        the suite is reproducible bit-for-bit from its seeds alone.
        Callers who want probabilistic drain pass a *seeded* RNG
        instance (``random.Random(seed)`` or any object with a
        ``random()`` method); passing the ``random`` module itself is
        rejected because its hidden global state defeats determinism.

        Pending lines are visited in sorted line order, so a given
        seeded RNG always produces the same drain decisions regardless
        of the store/flush history that built the pending map.
        """
        if rng is not None:
            if isinstance(rng, types.ModuleType) or not callable(getattr(rng, "random", None)):
                raise TypeError(
                    "crash() needs a seeded RNG instance with a random() "
                    "method (e.g. random.Random(seed)), not "
                    f"{rng!r} — global randomness would make crashes "
                    "unreproducible"
                )
            if not 0.0 <= pending_persist_prob <= 1.0:
                raise ValueError(
                    f"pending_persist_prob must be in [0, 1], got {pending_persist_prob}"
                )
            for line in sorted(self.pending):
                if rng.random() < pending_persist_prob:
                    snapshot = self.pending[line]
                    start = line * self.line_size
                    persistent_image[start:start + len(snapshot)] = snapshot
        self.dirty.clear()
        self.pending.clear()

    def dirty_byte_estimate(self):
        """Upper bound on unflushed bytes (line-granular)."""
        return (len(self.dirty) + len(self.pending)) * self.line_size
