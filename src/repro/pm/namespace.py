"""DAX-style namespace: named persistent regions.

The paper's stacks map PM-backed files into their address space via the
DAX subsystem (Figure 1) — a name is how persisted data is found again
after a reboot.  :class:`PMNamespace` provides that: named regions
carved out of a :class:`~repro.pm.device.PMDevice`, with the directory
itself persisted at the front of the device so that
:meth:`PMNamespace.reopen` can enumerate regions after a crash.

The directory is **checksummed and atomically switched**: the first
``DIR_SIZE`` bytes hold two slots, and every update writes the *other*
slot with a monotonically increasing sequence number and a CRC over
its contents.  Reopen picks the valid slot with the highest sequence
number, so a crash that tears a directory write is *detected* (the
torn slot fails its CRC) and falls back to the previous directory
instead of parsing garbage.

Slot layout (slot k at device offset ``k * DIR_SLOT_SIZE``)::

    [magic(4)][seq(8)][entry_count(4)][next_base(8)][payload_len(4)][crc(4)]
    payload := entry...
    entry   := [name_len(2)][name(utf-8)][base(8)][size(8)]

The CRC covers the header (with the crc field zeroed) plus the payload.
"""

import struct
import zlib

from repro.pm.constants import CACHE_LINE
from repro.sim.context import NULL_CONTEXT

DIR_MAGIC = 0xDA0F11E5
DIR_HEADER = struct.Struct("<IQIQII")  # magic, seq, count, next_base, payload_len, crc
DIR_SIZE = 4096
DIR_SLOT_SIZE = DIR_SIZE // 2


class NamespaceError(RuntimeError):
    """Raised on namespace misuse (duplicate/unknown names, exhaustion)."""


def _round_up(value, align=CACHE_LINE):
    return (value + align - 1) // align * align


def _slot_crc(seq, count, next_base, payload):
    header = DIR_HEADER.pack(DIR_MAGIC, seq, count, next_base, len(payload), 0)
    return zlib.crc32(payload, zlib.crc32(header)) & 0xFFFFFFFF


class PMNamespace:
    """Named, persistent, crash-recoverable region directory."""

    def __init__(self, device):
        if not device.persistent:
            raise NamespaceError("PMNamespace requires a persistent device")
        if device.size <= DIR_SIZE:
            raise NamespaceError("device too small for a namespace directory")
        self.device = device
        self._entries = {}
        self._next_base = DIR_SIZE
        self._dir_seq = 0
        self._write_directory(NULL_CONTEXT)

    @classmethod
    def reopen(cls, device):
        """Rebuild a namespace from the device's persisted directory.

        Use after ``device.crash()`` — this reads the persistent image,
        not the (now reset) CPU-visible view.  Of the two directory
        slots, the CRC-valid one with the highest sequence number wins;
        a torn directory write therefore surfaces as a clean rollback
        to the previous directory, never as garbage entries.
        """
        ns = cls.__new__(cls)
        ns.device = device
        ns._entries = {}
        best = None
        for slot in range(2):
            raw = device.persisted_view(slot * DIR_SLOT_SIZE, DIR_SLOT_SIZE)
            parsed = cls._parse_slot(raw)
            if parsed is not None and (best is None or parsed[0] > best[0]):
                best = parsed
        if best is None:
            raise NamespaceError(
                "no valid namespace directory found (both slots missing "
                "or failed their checksum)"
            )
        seq, next_base, entries = best
        ns._dir_seq = seq
        ns._next_base = next_base
        ns._entries = entries
        return ns

    @staticmethod
    def _parse_slot(raw):
        """(seq, next_base, entries) for a valid slot, else None."""
        try:
            magic, seq, count, next_base, payload_len, crc = \
                DIR_HEADER.unpack_from(raw, 0)
        except struct.error:
            return None
        if magic != DIR_MAGIC:
            return None
        if payload_len > DIR_SLOT_SIZE - DIR_HEADER.size:
            return None
        payload = raw[DIR_HEADER.size:DIR_HEADER.size + payload_len]
        if _slot_crc(seq, count, next_base, payload) != crc:
            return None
        entries = {}
        cursor = 0
        try:
            for _ in range(count):
                (name_len,) = struct.unpack_from("<H", payload, cursor)
                cursor += 2
                name = payload[cursor:cursor + name_len].decode("utf-8")
                cursor += name_len
                base, size = struct.unpack_from("<QQ", payload, cursor)
                cursor += 16
                entries[name] = (base, size)
        except (struct.error, UnicodeDecodeError):
            # The CRC matched but the payload doesn't parse — treat as
            # invalid rather than half-adopt it.
            return None
        return seq, next_base, entries

    def _write_directory(self, ctx):
        parts = []
        for name, (base, size) in self._entries.items():
            encoded = name.encode("utf-8")
            parts.append(struct.pack("<H", len(encoded)))
            parts.append(encoded)
            parts.append(struct.pack("<QQ", base, size))
        payload = b"".join(parts)
        if DIR_HEADER.size + len(payload) > DIR_SLOT_SIZE:
            raise NamespaceError("namespace directory full")
        seq = self._dir_seq + 1
        crc = _slot_crc(seq, len(self._entries), self._next_base, payload)
        blob = DIR_HEADER.pack(
            DIR_MAGIC, seq, len(self._entries), self._next_base,
            len(payload), crc,
        ) + payload
        # Atomic switch: the new directory lands in the slot the current
        # one does NOT occupy; only a fully-persisted, CRC-valid write
        # can ever outrank the incumbent at reopen.
        offset = (seq % 2) * DIR_SLOT_SIZE
        self.device.write(offset, blob)
        self.device.persist(offset, len(blob), ctx)
        self._dir_seq = seq

    def create(self, name, size, ctx=NULL_CONTEXT):
        """Create a named region of ``size`` bytes; returns the Region."""
        if name in self._entries:
            raise NamespaceError(f"region {name!r} already exists")
        size = _round_up(size)
        base = _round_up(self._next_base)
        if base + size > self.device.size:
            raise NamespaceError(
                f"device exhausted: need {size} bytes at {base}, "
                f"device holds {self.device.size}"
            )
        self._entries[name] = (base, size)
        self._next_base = base + size
        self._write_directory(ctx)
        return self.device.region(base, size, name)

    def open(self, name):
        """Open an existing named region."""
        if name not in self._entries:
            raise NamespaceError(f"no region named {name!r}")
        base, size = self._entries[name]
        return self.device.region(base, size, name)

    def open_or_create(self, name, size, ctx=NULL_CONTEXT):
        if name in self._entries:
            return self.open(name)
        return self.create(name, size, ctx)

    def exists(self, name):
        return name in self._entries

    def names(self):
        return sorted(self._entries)

    def remove(self, name, ctx=NULL_CONTEXT):
        """Drop a region from the directory.  Space is not reclaimed
        (regions are append-allocated, like DAX file extents)."""
        if name not in self._entries:
            raise NamespaceError(f"no region named {name!r}")
        del self._entries[name]
        self._write_directory(ctx)

    def __repr__(self):
        return f"<PMNamespace {len(self._entries)} regions on {self.device.name}>"
