"""DAX-style namespace: named persistent regions.

The paper's stacks map PM-backed files into their address space via the
DAX subsystem (Figure 1) — a name is how persisted data is found again
after a reboot.  :class:`PMNamespace` provides that: named regions
carved out of a :class:`~repro.pm.device.PMDevice`, with the directory
itself persisted at the front of the device so that
:meth:`PMNamespace.reopen` can enumerate regions after a crash.

Directory layout (at device offset 0)::

    [magic(4)][entry_count(4)][next_base(8)]
    entry := [name_len(2)][name(utf-8)][base(8)][size(8)]
"""

import struct

from repro.pm.constants import CACHE_LINE
from repro.sim.context import NULL_CONTEXT

DIR_MAGIC = 0xDA0F11E5
DIR_HEADER = struct.Struct("<IIQ")
DIR_SIZE = 4096


class NamespaceError(RuntimeError):
    """Raised on namespace misuse (duplicate/unknown names, exhaustion)."""


def _round_up(value, align=CACHE_LINE):
    return (value + align - 1) // align * align


class PMNamespace:
    """Named, persistent, crash-recoverable region directory."""

    def __init__(self, device):
        if not device.persistent:
            raise NamespaceError("PMNamespace requires a persistent device")
        if device.size <= DIR_SIZE:
            raise NamespaceError("device too small for a namespace directory")
        self.device = device
        self._entries = {}
        self._next_base = DIR_SIZE
        self._write_directory(NULL_CONTEXT)

    @classmethod
    def reopen(cls, device):
        """Rebuild a namespace from the device's persisted directory.

        Use after ``device.crash()`` — this reads the persistent image,
        not the (now reset) CPU-visible view.
        """
        ns = cls.__new__(cls)
        ns.device = device
        ns._entries = {}
        raw = device.persisted_view(0, DIR_SIZE)
        magic, count, next_base = DIR_HEADER.unpack_from(raw, 0)
        if magic != DIR_MAGIC:
            raise NamespaceError("no persisted namespace directory found")
        ns._next_base = next_base
        cursor = DIR_HEADER.size
        for _ in range(count):
            (name_len,) = struct.unpack_from("<H", raw, cursor)
            cursor += 2
            name = raw[cursor:cursor + name_len].decode("utf-8")
            cursor += name_len
            base, size = struct.unpack_from("<QQ", raw, cursor)
            cursor += 16
            ns._entries[name] = (base, size)
        return ns

    def _write_directory(self, ctx):
        parts = [DIR_HEADER.pack(DIR_MAGIC, len(self._entries), self._next_base)]
        for name, (base, size) in self._entries.items():
            encoded = name.encode("utf-8")
            parts.append(struct.pack("<H", len(encoded)))
            parts.append(encoded)
            parts.append(struct.pack("<QQ", base, size))
        blob = b"".join(parts)
        if len(blob) > DIR_SIZE:
            raise NamespaceError("namespace directory full")
        self.device.write(0, blob)
        self.device.persist(0, len(blob), ctx)

    def create(self, name, size, ctx=NULL_CONTEXT):
        """Create a named region of ``size`` bytes; returns the Region."""
        if name in self._entries:
            raise NamespaceError(f"region {name!r} already exists")
        size = _round_up(size)
        base = _round_up(self._next_base)
        if base + size > self.device.size:
            raise NamespaceError(
                f"device exhausted: need {size} bytes at {base}, "
                f"device holds {self.device.size}"
            )
        self._entries[name] = (base, size)
        self._next_base = base + size
        self._write_directory(ctx)
        return self.device.region(base, size, name)

    def open(self, name):
        """Open an existing named region."""
        if name not in self._entries:
            raise NamespaceError(f"no region named {name!r}")
        base, size = self._entries[name]
        return self.device.region(base, size, name)

    def open_or_create(self, name, size, ctx=NULL_CONTEXT):
        if name in self._entries:
            return self.open(name)
        return self.create(name, size, ctx)

    def exists(self, name):
        return name in self._entries

    def names(self):
        return sorted(self._entries)

    def remove(self, name, ctx=NULL_CONTEXT):
        """Drop a region from the directory.  Space is not reclaimed
        (regions are append-allocated, like DAX file extents)."""
        if name not in self._entries:
            raise NamespaceError(f"no region named {name!r}")
        del self._entries[name]
        self._write_directory(ctx)

    def __repr__(self):
        return f"<PMNamespace {len(self._entries)} regions on {self.device.name}>"
