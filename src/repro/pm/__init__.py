"""Persistent-memory substrate.

Models byte-addressable persistent memory the way the paper's testbed
uses Intel Optane DCPMM in App-Direct mode:

- :class:`~repro.pm.device.PMDevice` — a byte-addressable region with
  separate *CPU-visible* and *persistent* states.  Stores land in the
  CPU-visible view (think: CPU caches) and only reach the persistent
  view via explicit cache-line write-back (``clwb``) followed by a store
  fence (``sfence``), exactly the discipline PM software must follow.
- :class:`~repro.pm.cache.FlushTracker` — the dirty/pending line
  bookkeeping behind those semantics, including what survives a crash.
- :class:`~repro.pm.alloc.PMAllocator` — a user-space persistent-memory
  allocator of the kind NoveLSM carries (and the paper proposes to
  obviate by reusing the network stack's buffer pools).
- :class:`~repro.pm.namespace.PMNamespace` — DAX-style named regions
  ("PM-backed files") that can be re-opened after a reboot.

Latency defaults follow the paper (§5.1): 346 ns PM access vs 70 ns
DRAM (Izraelevitz et al.).
"""

from repro.pm.device import (
    CACHE_LINE,
    DRAMDevice,
    MemoryDevice,
    PMDevice,
    Region,
)
from repro.pm.cache import FlushTracker
from repro.pm.alloc import AllocationError, PMAllocator
from repro.pm.namespace import PMNamespace

__all__ = [
    "CACHE_LINE",
    "MemoryDevice",
    "PMDevice",
    "DRAMDevice",
    "Region",
    "FlushTracker",
    "PMAllocator",
    "AllocationError",
    "PMNamespace",
]
