"""User-space persistent-memory allocator.

NoveLSM (and every PM storage stack) carries its own PM allocator; the
paper measures its share of the 2.78 µs buffer-allocation-and-insert
row in Table 1 and proposes obviating it by reusing the network stack's
buffer pools (§4.2).  This module is that allocator: a first-fit
free-list heap over a :class:`~repro.pm.device.Region`, with
per-allocation headers persisted in PM so the heap can be walked and
rebuilt after a crash.

Layout::

    [8 B heap_end][block][block]...
    block := [16 B header][payload, 16-byte aligned]
    header := magic(4) | payload_size(4) | flags(4) | reserved(4)

Allocation is atomic with respect to crashes: the header is written and
persisted *before* heap_end advances past the block, and a block only
counts as live once its LIVE flag is persisted.  Recovery walks blocks
up to the persisted heap_end and frees anything not marked LIVE.
"""

import struct

from repro.sim.context import NULL_CONTEXT

HEADER = struct.Struct("<IIII")
HEADER_SIZE = HEADER.size
MAGIC = 0xA110CA7E
FLAG_LIVE = 1
FLAG_FREE = 2
ALIGN = 16
HEAP_BASE = 8  # first 8 bytes hold heap_end

#: Modeled CPU cost of one malloc/free in the user-space PM allocator.
#: Together with skip-list insertion this reproduces Table 1's 2.78 µs
#: "buffer allocation and insertion" row.
ALLOC_NS = 500.0
FREE_NS = 200.0


class AllocationError(MemoryError):
    """Raised when the arena cannot satisfy a request."""


def _align(n):
    return (n + ALIGN - 1) // ALIGN * ALIGN


class PMAllocator:
    """First-fit free-list allocator with crash-recoverable metadata.

    Like the packet pools, the arena is a *pressure signal*: crossing
    ``high_watermark`` of usable bytes sets :attr:`under_pressure` and
    fires registered listeners; falling below ``low_watermark`` clears
    it.  The serving layer uses this to trigger emergency reclamation
    before an :class:`AllocationError` lands on a request's critical
    path.
    """

    HIGH_WATERMARK = 0.9
    LOW_WATERMARK = 0.7

    def __init__(self, region, alloc_ns=ALLOC_NS, free_ns=FREE_NS,
                 charge_category="pm.alloc", persist_category="persist"):
        self.region = region
        self.alloc_ns = alloc_ns
        self.free_ns = free_ns
        self.charge_category = charge_category
        self.persist_category = persist_category
        #: Sorted list of (offset, size) holes.  Volatile; rebuilt on recovery.
        self._holes = []
        #: offset -> payload size for live allocations.  Volatile cache.
        self._live = {}
        #: Running total of allocated block bytes (headers + aligned
        #: payloads) — kept incrementally so occupancy() is O(1).
        self._used_bytes = 0
        self._heap_end = HEAP_BASE
        self._init_pressure()
        self._write_heap_end(NULL_CONTEXT)

    @classmethod
    def attach(cls, region, alloc_ns=ALLOC_NS, free_ns=FREE_NS,
               charge_category="pm.alloc", persist_category="persist"):
        """Bind to an existing heap without reformatting it.

        Call :meth:`recover` on the result to rebuild the free list
        from the persisted block headers.
        """
        alloc = cls.__new__(cls)
        alloc.region = region
        alloc.alloc_ns = alloc_ns
        alloc.free_ns = free_ns
        alloc.charge_category = charge_category
        alloc.persist_category = persist_category
        alloc._holes = []
        alloc._live = {}
        alloc._used_bytes = 0
        alloc._heap_end = HEAP_BASE
        alloc._init_pressure()
        return alloc

    # -- pressure signals ----------------------------------------------------

    def _init_pressure(self):
        self.high_watermark = self.HIGH_WATERMARK
        self.low_watermark = self.LOW_WATERMARK
        self.under_pressure = False
        self.pressure_events = 0
        self.allocation_failures = 0
        self._pressure_listeners = []

    def occupancy(self):
        """Fraction of usable arena bytes currently allocated (0.0 — 1.0)."""
        usable = self.region.size - HEAP_BASE
        if usable <= 0:
            return 1.0
        return min(1.0, self.used_bytes() / usable)

    def add_pressure_listener(self, callback):
        """``callback(allocator, under_pressure)`` fires on watermark crossings."""
        self._pressure_listeners.append(callback)
        return callback

    def remove_pressure_listener(self, callback):
        self._pressure_listeners.remove(callback)

    def _update_pressure(self):
        occ = self.occupancy()
        if not self.under_pressure and occ >= self.high_watermark:
            self.under_pressure = True
            self.pressure_events += 1
            for listener in self._pressure_listeners:
                listener(self, True)
        elif self.under_pressure and occ < self.low_watermark:
            self.under_pressure = False
            for listener in self._pressure_listeners:
                listener(self, False)

    # -- persistence helpers -------------------------------------------------

    def _write_heap_end(self, ctx):
        self.region.write(0, struct.pack("<Q", self._heap_end))
        self.region.persist(0, 8, ctx, self.persist_category)

    def _write_header(self, block_off, payload_size, flags, ctx):
        self.region.write(
            block_off, HEADER.pack(MAGIC, payload_size, flags, 0)
        )
        self.region.persist(block_off, HEADER_SIZE, ctx, self.persist_category)

    def _read_header(self, block_off, persisted=False):
        if persisted and self.region.persistent:
            raw = self.region.device.persisted_view(
                self.region.global_offset(block_off), HEADER_SIZE
            )
        else:
            raw = self.region.read(block_off, HEADER_SIZE)
        return HEADER.unpack(raw)

    # -- public API ----------------------------------------------------------

    def alloc(self, size, ctx=NULL_CONTEXT):
        """Allocate ``size`` usable bytes; returns the payload offset."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        ctx.charge(self.alloc_ns, self.charge_category)
        need = HEADER_SIZE + _align(size)
        block_off = self._take_hole(need)
        if block_off is None:
            block_off = self._heap_end
            if block_off + need > self.region.size:
                self.allocation_failures += 1
                raise AllocationError(
                    f"{self.region.name}: cannot allocate {size} bytes "
                    f"(heap_end={self._heap_end}, size={self.region.size})"
                )
            self._heap_end = block_off + need
            self._write_header(block_off, size, FLAG_LIVE, ctx)
            self._write_heap_end(ctx)
        else:
            self._write_header(block_off, size, FLAG_LIVE, ctx)
        payload_off = block_off + HEADER_SIZE
        self._live[payload_off] = size
        self._used_bytes += need
        self._update_pressure()
        return payload_off

    def free(self, payload_off, ctx=NULL_CONTEXT):
        """Release an allocation made by :meth:`alloc`."""
        if payload_off not in self._live:
            raise AllocationError(f"free of unknown offset {payload_off}")
        ctx.charge(self.free_ns, self.charge_category)
        size = self._live.pop(payload_off)
        self._used_bytes -= HEADER_SIZE + _align(size)
        block_off = payload_off - HEADER_SIZE
        self._write_header(block_off, size, FLAG_FREE, ctx)
        self._insert_hole(block_off, HEADER_SIZE + _align(size))
        self._update_pressure()

    def usable_size(self, payload_off):
        """Payload size of a live allocation."""
        if payload_off not in self._live:
            raise AllocationError(f"unknown offset {payload_off}")
        return self._live[payload_off]

    @property
    def live_allocations(self):
        return len(self._live)

    @property
    def live_offsets(self):
        """Snapshot of live payload offsets (sorted)."""
        return sorted(self._live)

    def used_bytes(self):
        return self._used_bytes

    # -- hole management -----------------------------------------------------

    def _take_hole(self, need):
        for index, (offset, size) in enumerate(self._holes):
            if size >= need:
                if size == need:
                    self._holes.pop(index)
                else:
                    # First-fit with a split: remainder stays a hole.
                    self._holes[index] = (offset + need, size - need)
                return offset
        return None

    def _insert_hole(self, offset, size):
        self._holes.append((offset, size))
        self._holes.sort()
        # Coalesce adjacent holes in one pass.
        merged = []
        for hole in self._holes:
            if merged and merged[-1][0] + merged[-1][1] == hole[0]:
                merged[-1] = (merged[-1][0], merged[-1][1] + hole[1])
            else:
                merged.append(list(hole))
        self._holes = [(off, size) for off, size in merged]

    # -- recovery ------------------------------------------------------------

    def recover(self):
        """Rebuild volatile state by walking persisted block headers.

        Returns the list of live payload offsets found.  Call after
        ``device.crash()`` on a freshly constructed allocator over the
        same region.
        """
        self._holes = []
        self._live = {}
        self._used_bytes = 0
        if self.region.persistent:
            raw = self.region.device.persisted_view(
                self.region.global_offset(0), 8
            )
        else:
            raw = self.region.read(0, 8)
        (heap_end,) = struct.unpack("<Q", raw)
        heap_end = max(HEAP_BASE, min(heap_end, self.region.size))
        self._heap_end = heap_end
        cursor = HEAP_BASE
        while cursor + HEADER_SIZE <= heap_end:
            magic, size, flags, _ = self._read_header(cursor, persisted=True)
            if magic != MAGIC or size <= 0:
                # Torn header at the frontier: everything beyond is garbage.
                self._heap_end = cursor
                break
            block = HEADER_SIZE + _align(size)
            if flags == FLAG_LIVE:
                self._live[cursor + HEADER_SIZE] = size
                self._used_bytes += block
            else:
                self._insert_hole(cursor, block)
            cursor += block
        self._write_heap_end(NULL_CONTEXT)
        self._update_pressure()
        return sorted(self._live)

    def __repr__(self):
        return (
            f"<PMAllocator {self.region.name} live={len(self._live)} "
            f"heap_end={self._heap_end}>"
        )
