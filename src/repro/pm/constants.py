"""Shared persistent-memory constants.

Latency figures follow the paper (§5.1), which cites Izraelevitz et
al.'s Optane DCPMM measurements: 346 ns PM access vs 70 ns DRAM.
Flush-path costs are calibrated so that flushing a 1 KB value plus its
store metadata (~18 cache lines) costs ≈ 1.94 µs, matching Table 1's
persistence row.
"""

#: Cache line size in bytes (x86).
CACHE_LINE = 64

#: Media access latency of persistent memory, ns (paper §5.1).
PM_ACCESS_NS = 346.0

#: Media access latency of DRAM, ns (paper §5.1).
DRAM_ACCESS_NS = 70.0

#: Cost of one clwb write-back of a dirty line, ns.  A NoveLSM 1 KB put
#: flushes ~20 node lines plus three small metadata ranges (level-0
#: link, allocator header, heap frontier), each with its own fence;
#: these constants make that sum ≈ 1.94 µs, Table 1's persistence row.
FLUSH_LINE_NS = 70.0

#: Cost of one sfence that drains outstanding write-backs, ns.
FENCE_NS = 75.0
