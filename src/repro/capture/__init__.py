"""Deterministic frame capture and replay (packets *are* the data).

The paper's thesis — packets as persistent in-memory data structures —
makes a frame capture more than a debugging artifact: because the
store's contents are exactly the payloads it was sent, a capture of
the delivered frame stream is simultaneously

- a repeatable workload (replay it through a wrk client against any
  fresh server: :class:`repro.capture.replay.CaptureSource`), and
- a disaster-recovery image (inject it into a fresh host's NIC and the
  store rebuilds itself: :func:`repro.capture.replay.rebuild_standby`),

with the rebuilt store verified against the live one by the same
durability oracles the crash sweeps trust.

Modules:

- :mod:`repro.capture.format` — versioned, CRC-framed record codec.
- :mod:`repro.capture.tap` — ring-buffered delivery tap on the fabric.
- :mod:`repro.capture.replay` — workload replay, standby rebuild,
  store-equivalence verification, cluster reseed.
- :mod:`repro.capture.cli` — the ``repro-capture`` tool.
"""

from repro.capture.format import (  # noqa: F401
    Capture,
    CaptureError,
    CaptureCorruptError,
    FrameRecord,
)
from repro.capture.tap import CaptureTap  # noqa: F401
from repro.capture.replay import (  # noqa: F401
    CaptureSource,
    RebuildReport,
    Standby,
    extract_ops,
    inject,
    plant_drop,
    rebuild_standby,
    reseed_from_capture,
    store_digest,
    verify_rebuild,
    verify_reseed,
)
