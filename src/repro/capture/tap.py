"""Ring-buffered frame tap on the fabric's delivery path.

The tap records frames at the *delivery* point — after the fault
plan, with the computed arrival timestamp — so a capture contains
exactly what each destination NIC will see, when: dropped frames are
absent, duplicates appear twice, corrupted frames carry the flipped
bits.  That is the property that makes a capture a recovery image —
rebuilding a standby replays what the server actually received, not
what clients intended to send.

The ring is bounded by ``max_frames`` and/or ``max_bytes``; when full,
the oldest records are evicted and counted (``dropped_frames``), like
a kernel pcap ring.  A capture with evictions still replays — it just
reconstructs the suffix of history, which the equivalence oracles will
judge on its merits.
"""

from collections import deque

from repro.capture.format import Capture, FrameRecord


class CaptureTap:
    """Attachable frame recorder; see :meth:`repro.net.fabric.Fabric.add_tap`.

    ``focus_ip`` (optional) records only frames to or from one address
    — a single server's view of the world — keeping ring memory
    proportional to the traffic of interest.
    """

    def __init__(self, fabric, max_frames=None, max_bytes=None,
                 focus_ip=None, meta=None):
        if max_frames is not None and max_frames <= 0:
            raise ValueError("max_frames must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.fabric = fabric
        self.max_frames = max_frames
        self.max_bytes = max_bytes
        self.focus_ip = focus_ip
        self.meta = dict(meta) if meta else {}
        self._ring = deque()
        self._ring_bytes = 0
        self.seen_frames = 0
        self.seen_bytes = 0
        self.dropped_frames = 0
        self.dropped_bytes = 0
        self._attached = False
        self.attach()

    # -- lifecycle -------------------------------------------------------------

    def attach(self):
        if not self._attached:
            self.fabric.add_tap(self._on_frame)
            self._attached = True
        return self

    def detach(self):
        if self._attached:
            self.fabric.remove_tap(self._on_frame)
            self._attached = False
        return self

    # -- recording -------------------------------------------------------------

    def _on_frame(self, t_ns, src_ip, dst_ip, frame):
        if self.focus_ip is not None and \
                src_ip != self.focus_ip and dst_ip != self.focus_ip:
            return
        self.seen_frames += 1
        self.seen_bytes += len(frame)
        self._ring.append(FrameRecord(t_ns, src_ip, dst_ip, bytes(frame)))
        self._ring_bytes += len(frame)
        while (self.max_frames is not None and
               len(self._ring) > self.max_frames) or \
              (self.max_bytes is not None and
               self._ring_bytes > self.max_bytes and len(self._ring) > 1):
            evicted = self._ring.popleft()
            self._ring_bytes -= len(evicted.frame)
            self.dropped_frames += 1
            self.dropped_bytes += len(evicted.frame)

    # -- export ----------------------------------------------------------------

    def capture(self):
        """Snapshot the ring as a :class:`Capture` (meta + provenance)."""
        meta = dict(self.meta)
        meta.update({
            "seen_frames": self.seen_frames,
            "dropped_frames": self.dropped_frames,
            "focus_ip": self.focus_ip,
        })
        return Capture(meta=meta, records=self._ring)

    def __len__(self):
        return len(self._ring)

    def __repr__(self):
        return (f"<CaptureTap {len(self._ring)} frames buffered, "
                f"{self.dropped_frames} evicted>")
