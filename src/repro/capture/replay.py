"""Replay: a capture is a workload *and* a disaster-recovery image.

Two replay modes, one file:

- :class:`CaptureSource` parses the captured client->server byte
  stream back into ``(method, key, value)`` operations — a
  :class:`~repro.bench.workloads.TrafficSource` like any other, so a
  capture drives wrk clients, chaos storms or ``repro-stats`` with no
  special-casing in the consumers.

- :func:`rebuild_standby` treats the capture as the store itself: it
  builds a fresh server (fresh simulator, fresh PM) from the capture's
  embedded ``ServerConfig`` and injects the recorded frames straight
  into the NIC at their recorded sim-clock times.  Because the network
  stack is deterministic (fixed initial sequence numbers, seedless
  timers), the standby walks the same protocol exchange the live
  server did and ends up with the same store — the paper's "packets
  are the data structure" made operational.

The standby's replies go nowhere: it is built on a private fabric with
no client ports, so its tx frames blackhole exactly like frames to an
unplugged host.  What matters is the rx side, and that is replayed
byte-for-byte (:func:`inject` re-records the delivered stream; its
digest must equal the capture's — the replay-determinism pin).

Equivalence is *verified*, not assumed: :func:`verify_rebuild` runs
the crash sweeps' :class:`~repro.testing.oracle.KVDurabilityOracle`
over the rebuilt store against the live one and compares recovery
digests (sorted key/value SHA-256).

:func:`reseed_from_capture` closes the cluster's re-replication gap:
after a kill + failover, a promoted shard has no backup until a new
host holds the dead one's data.  The capture has everything needed —
the dead host's delivered history plus every post-kill frame the
survivors applied — so the reseed rebuilds a standby from those,
swaps it onto the dead host's fabric port and revives it in the ring.
"""

import hashlib

from repro.bench.costmodel import CostModel
from repro.bench.workloads import TrafficSource
from repro.capture.format import Capture
from repro.capture.tap import CaptureTap
from repro.net.fabric import Fabric
from repro.net.headers import (
    ETH_HEADER_LEN,
    IPV4_HEADER_LEN,
    IPPROTO_TCP,
    IPv4Header,
    SYN,
    TCP_HEADER_LEN,
    TCPHeader,
    ip_to_int,
)
from repro.net.nic import NicFeatures
from repro.net.stack import Host
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim.context import NULL_CONTEXT
from repro.sim.engine import Simulator
from repro.storage.engines import direct_put
from repro.storage.server import ServerConfig, serve
from repro.testing.oracle import KVDurabilityOracle

#: Default world sizing for rebuilt standbys; mirrors the testbed's.
PM_BYTES = 192 << 20
PASTE_POOL_BYTES = 16 << 20

DEFAULT_MAX_EVENTS = 50_000_000


# -- frame injection -----------------------------------------------------------


def inject(capture, host, dst_ip=None, time_offset=0.0, echo=None):
    """Schedule every captured frame addressed to ``dst_ip`` (default:
    the host's own address) for delivery into ``host``'s NIC at its
    recorded timestamp (+ ``time_offset``).

    Records are scheduled in capture order, which the simulator's FIFO
    tie-break preserves for same-timestamp frames — the standby sees
    the stream in exactly the recorded delivery order.

    ``echo``, if given, is a :class:`Capture` that re-records each
    frame at the moment it is actually delivered; its digest equalling
    the injected stream's digest is the replay-determinism check.

    Returns the number of frames scheduled.
    """
    sim = host.sim
    nic = host.nic
    dst_ip = host.ip if dst_ip is None else ip_to_int(dst_ip)
    count = 0
    for record in capture.records:
        if record.dst_ip != dst_ip:
            continue
        when = record.t_ns + time_offset

        def deliver(record=record, when=when):
            if echo is not None:
                echo.append(when - time_offset, record.src_ip,
                            record.dst_ip, record.frame)
            nic.on_wire(record.frame)

        sim.at(when, deliver)
        count += 1
    return count


# -- standby rebuild -----------------------------------------------------------


def config_from_meta(meta):
    """Reconstruct the ServerConfig a capture's meta block recorded."""
    recorded = (meta or {}).get("server_config")
    if not recorded:
        raise ValueError(
            "capture has no server_config meta — record it through "
            "ServerConfig(capture=True) or pass config= explicitly"
        )
    return ServerConfig(
        transport=recorded.get("transport", "tcp"),
        engine=recorded.get("engine", "novelsm"),
        port=recorded.get("port", 80),
        cores=recorded.get("cores", 1),
        zero_copy_get=recorded.get("zero_copy_get", False),
        contain_errors=recorded.get("contain_errors", True),
        overload=True if recorded.get("overload") else None,
        reaper_idle_ns=recorded.get("reaper_idle_ns"),
        memtable_arena=recorded.get("memtable_arena", 48 << 20),
        engine_kwargs=dict(recorded.get("engine_kwargs") or {}),
        ack_policy=recorded.get("ack_policy"),
    )


class Standby:
    """A server rebuilt from a capture: its world and its verdicts."""

    def __init__(self, sim, fabric, host, server, injected, echo):
        self.sim = sim
        self.fabric = fabric
        self.host = host
        self.server = server
        self.engine = server.engine
        self.kv = server.kv
        #: Frames scheduled into the NIC.
        self.injected = injected
        #: Capture of what was actually delivered, in delivery order.
        self.echo = echo

    def digest(self):
        return store_digest(self.engine)

    def __repr__(self):
        return f"<Standby {self.injected} frames replayed>"


def rebuild_standby(capture, config=None, server_ip=None,
                    pm_bytes=None, paste_pool_bytes=None,
                    run=True, max_events=DEFAULT_MAX_EVENTS):
    """Rebuild a warm standby *from the capture alone*.

    Builds a fresh simulator + fabric + PM + host from the capture's
    embedded config (or ``config=``), injects every frame addressed to
    the captured server, and runs the simulator until the replayed
    protocol exchange drains.  No state from the live run is consulted
    — what the standby knows, the capture told it.
    """
    meta = capture.meta or {}
    if config is None:
        config = config_from_meta(meta)
    if config.capture:
        # The standby must not re-capture its own rebuild.
        config = config.with_overrides(
            capture=False, capture_max_frames=None, capture_max_bytes=None,
        )
    config.validate()
    if server_ip is None:
        server_ip = meta.get("server_ip")
    if server_ip is None:
        raise ValueError("capture meta has no server_ip; pass server_ip=")
    server_ip = ip_to_int(server_ip)
    # World sizing comes from the capture too: pool pressure (and its
    # evictions) is part of the history being replayed.
    if pm_bytes is None:
        pm_bytes = meta.get("pm_bytes") or PM_BYTES
    if paste_pool_bytes is None:
        paste_pool_bytes = meta.get("paste_pool_bytes", PASTE_POOL_BYTES)

    sim = Simulator()
    # A private fabric with a single port: the standby's replies target
    # clients that do not exist here and blackhole, like a LAN would.
    fabric = Fabric(sim)
    pm_device = PMDevice(pm_bytes, name="standby-pm")
    pm_ns = PMNamespace(pm_device)
    rx_pool_region = None
    if paste_pool_bytes is not None:
        rx_pool_region = pm_ns.create("paste-pktbufs", paste_pool_bytes)
    host = Host(
        sim, meta.get("server_name", "standby"), server_ip, fabric,
        CostModel.paste(), cores=config.cores,
        rx_pool_region=rx_pool_region, busy_poll=True,
        nic_features=NicFeatures(),
    )
    server = serve(host, config, pm_ns=pm_ns)

    echo = Capture(meta={"rebuild_of": capture.digest()})
    injected = inject(capture, host, dst_ip=server_ip, echo=echo)
    standby = Standby(sim, fabric, host, server, injected, echo)
    if run:
        sim.run_until_idle(max_events=max_events)
    return standby


# -- store equivalence ---------------------------------------------------------


def store_mapping(engine):
    """The engine's visible {key: value} dict (engines with ``scan``)."""
    scan = getattr(engine, "scan", None)
    if scan is None:
        raise ValueError(
            f"{type(engine).__name__} has no scan(); store equivalence "
            f"needs an enumerable engine (novelsm, pktstore)"
        )
    return {bytes(key): bytes(value) for key, value in scan()}


def store_digest(engine):
    """Recovery digest: SHA-256 over the sorted key/value mapping.

    The same shape as the bench lane's recovered-store digest: equal
    digests mean byte-identical visible stores.
    """
    digest = hashlib.sha256()
    for key in sorted(mapping := store_mapping(engine)):
        digest.update(hashlib.sha256(key).digest())
        digest.update(hashlib.sha256(mapping[key]).digest())
    return digest.hexdigest()


class _MappingView:
    """Adapter: a plain dict speaking the oracle's mapping protocol."""

    def __init__(self, mapping):
        self._mapping = dict(mapping)

    def mapping(self):
        return self._mapping


class _MappingJournal:
    """Adapter: the live store's mapping as the journal of record —
    each key's only allowed outcome is the value the live store holds."""

    def __init__(self, mapping):
        self._mapping = dict(mapping)

    def expectations(self, _event_index):
        return {key: {value} for key, value in self._mapping.items()}


class _FinalScenario:
    """Adapter: the 'crash point' is the end of history."""

    event_index = 0


class RebuildReport:
    """Outcome of one rebuild-equivalence check."""

    def __init__(self, live_digest, rebuilt_digest, violations):
        self.live_digest = live_digest
        self.rebuilt_digest = rebuilt_digest
        self.violations = list(violations)

    @property
    def ok(self):
        return not self.violations and self.live_digest == self.rebuilt_digest

    def summary(self):
        lines = [
            f"[capture] live store digest    {self.live_digest}",
            f"[capture] rebuilt store digest {self.rebuilt_digest}",
        ]
        if self.violations:
            lines.append(f"[capture] {len(self.violations)} violation(s):")
            lines.extend(f"[capture]   {v}" for v in self.violations[:10])
            if len(self.violations) > 10:
                lines.append(
                    f"[capture]   ... {len(self.violations) - 10} more")
        else:
            lines.append("[capture] equivalence held: identical recovery "
                         "digests, durability oracle clean")
        return "\n".join(lines)


def verify_rebuild(live_engine, rebuilt_engine):
    """Store equivalence via the crash sweeps' durability oracle.

    The live store's mapping becomes the journal of expectations; the
    rebuilt store is the recovered world.  The oracle flags any key
    whose rebuilt value differs (or is absent) and any key the rebuild
    invented; the report also carries both recovery digests.
    """
    live = store_mapping(live_engine)
    rebuilt = store_mapping(rebuilt_engine)
    oracle = KVDurabilityOracle()
    violations = oracle.check(
        _MappingView(rebuilt), _FinalScenario(), _MappingJournal(live)
    )
    return RebuildReport(
        _digest_of_mapping(live), _digest_of_mapping(rebuilt), violations
    )


def plant_drop(capture, live_engine, server_ip=None):
    """Damage a capture for the oracle's negative check.

    Removes the frame(s) that delivered some key's *surviving* value —
    dropping an arbitrary frame proves nothing (the put may have been
    rejected under overload, or overwritten later); dropping the one
    that produced a live value guarantees the rebuild must diverge and
    the durability oracle must say so.

    Returns ``(damaged_capture, key)``; raises if no deliverable put
    can be located (e.g. all values too short to match uniquely).
    """
    meta = capture.meta or {}
    if server_ip is None:
        server_ip = meta.get("server_ip")
    if server_ip is None:
        raise ValueError("capture meta has no server_ip; pass server_ip=")
    server_ip = ip_to_int(server_ip)
    mapping = store_mapping(live_engine)
    for key in sorted(mapping):
        value = mapping[key]
        if len(value) < 16:
            continue  # too short to locate uniquely in a frame
        needle = value[:48]
        hits = [i for i, record in enumerate(capture.records)
                if record.dst_ip == server_ip and needle in record.frame]
        if not hits:
            continue  # value head split across frames; try another key
        damaged = Capture(meta=dict(meta))
        damaged.records = [record for i, record in enumerate(capture.records)
                           if i not in set(hits)]
        return damaged, key
    raise ValueError("no droppable put found in capture")


def _digest_of_mapping(mapping):
    digest = hashlib.sha256()
    for key in sorted(mapping):
        digest.update(hashlib.sha256(key).digest())
        digest.update(hashlib.sha256(mapping[key]).digest())
    return digest.hexdigest()


# -- capture -> operations (replay as a workload) ------------------------------


def _tcp_payload(frame, ip_header, offset):
    """The TCP payload bytes of one frame (respecting total_len)."""
    tcp_raw = frame[offset:offset + TCP_HEADER_LEN]
    tcp = TCPHeader.unpack(tcp_raw)
    payload_len = ip_header.total_len - IPV4_HEADER_LEN - TCP_HEADER_LEN
    start = offset + TCP_HEADER_LEN
    return tcp, frame[start:start + max(0, payload_len)]


def _parse_http_requests(stream):
    """Scan a reassembled request byte stream into (method, key, value).

    A deliberately small scanner (request line + Content-Length), not
    the full parser: captures contain only what our clients emit.
    Returns (ops, leftover_bytes) — an incomplete trailing request
    stays in leftover.
    """
    ops = []
    offset = 0
    while True:
        end = stream.find(b"\r\n\r\n", offset)
        if end < 0:
            break
        head = stream[offset:end].decode("latin-1", "replace")
        lines = head.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) < 3:
            offset = end + 4  # not a request head; skip the block
            continue
        method, path = parts[0], parts[1]
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        body_start = end + 4
        if len(stream) < body_start + length:
            break  # incomplete tail; a later segment may complete it
        body = stream[body_start:body_start + length]
        ops.append((method, path.lstrip("/"), body if length else None))
        offset = body_start + length
    return ops, stream[offset:]


class _TcpFlowAssembler:
    """Reassemble one TCP flow's request stream from delivered frames.

    Duplicates (fault-injected or retransmitted) are dropped by
    sequence number; out-of-order segments wait in a reorder map until
    the stream catches up.  Corrupted frames were delivered corrupted —
    the live server dropped them on checksum, so the assembler drops
    any segment whose bytes disagree with an already-seen copy and
    otherwise trusts first-arrival (retransmits carry the clean copy
    later; the scanner's leftover handling absorbs the rare torn head).
    """

    def __init__(self):
        self.isn = None
        self.next_seq = None
        self.pending = {}
        self.stream = b""
        self.ops = []

    def feed(self, tcp, payload):
        if tcp.flags & SYN:
            self.isn = tcp.seq
            self.next_seq = tcp.seq + 1
            return
        if not payload or self.next_seq is None:
            return
        seq = tcp.seq
        if seq + len(payload) <= self.next_seq:
            return  # wholly duplicate
        self.pending.setdefault(seq, payload)
        while self.pending:
            advanced = False
            for seq in sorted(self.pending):
                payload = self.pending[seq]
                if seq + len(payload) <= self.next_seq:
                    del self.pending[seq]
                    advanced = True
                    break
                if seq <= self.next_seq:
                    del self.pending[seq]
                    self.stream += payload[self.next_seq - seq:]
                    self.next_seq = seq + len(payload)
                    advanced = True
                    break
            if not advanced:
                break
        parsed, self.stream = _parse_http_requests(self.stream)
        self.ops.extend(parsed)


class _HomaMessageAssembler:
    """Reassemble one Homa request message from its DATA packets."""

    def __init__(self, msg_len):
        self.msg_len = msg_len
        self.chunks = {}

    def feed(self, offset, payload):
        self.chunks.setdefault(offset, payload)

    def complete(self):
        data = bytearray()
        need = 0
        for offset in sorted(self.chunks):
            chunk = self.chunks[offset]
            if offset > need:
                return None
            if offset + len(chunk) > need:
                data += chunk[need - offset:]
                need = offset + len(chunk)
        if need < self.msg_len:
            return None
        return bytes(data[:self.msg_len])


def extract_ops(capture, server_ip=None, port=None):
    """Parse the captured client->server stream into operations.

    Returns ``[(loop_key, method, key, value), ...]`` in capture
    order, where ``loop_key`` identifies the originating flow (TCP
    connection or Homa requester address).  Works for both transports:
    TCP flows are reassembled per connection; Homa requests per
    (peer, rpc) with retransmit dedup.

    ``server_ip`` may be one address or an iterable (a cluster's nodes
    — ops are extracted in global capture order across all of them).
    """
    meta = capture.meta or {}
    if server_ip is None:
        server_ip = meta.get("server_ip")
    if server_ip is None:
        raise ValueError("capture meta has no server_ip; pass server_ip=")
    if isinstance(server_ip, (list, tuple, set, frozenset)):
        server_ips = {ip_to_int(ip) for ip in server_ip}
    else:
        server_ips = {ip_to_int(server_ip)}
    if port is None:
        port = (meta.get("server_config") or {}).get("port", 80)

    from repro.net.homa import DATA, HOMA_HEADER_LEN, HomaHeader, IPPROTO_HOMA

    tcp_flows = {}
    homa_messages = {}
    homa_done = set()
    ops = []
    for record in capture.records:
        if record.dst_ip not in server_ips:
            continue
        frame = record.frame
        if len(frame) < ETH_HEADER_LEN + IPV4_HEADER_LEN:
            continue
        try:
            ip_header = IPv4Header.unpack(frame[ETH_HEADER_LEN:])
        except ValueError:
            continue
        offset = ETH_HEADER_LEN + IPV4_HEADER_LEN
        if ip_header.proto == IPPROTO_TCP:
            if len(frame) < offset + TCP_HEADER_LEN:
                continue
            try:
                tcp, payload = _tcp_payload(frame, ip_header, offset)
            except ValueError:
                continue
            if tcp.dst_port != port:
                continue
            flow_key = (record.src_ip, tcp.src_port)
            flow = tcp_flows.setdefault(flow_key, _TcpFlowAssembler())
            before = len(flow.ops)
            flow.feed(tcp, payload)
            for op in flow.ops[before:]:
                ops.append((flow_key,) + op)
        elif ip_header.proto == IPPROTO_HOMA:
            if len(frame) < offset + HOMA_HEADER_LEN:
                continue
            header = HomaHeader.unpack(frame[offset:offset + HOMA_HEADER_LEN])
            if header.ptype != DATA or header.dport != port:
                continue
            msg_key = (record.src_ip, header.sport, header.rpc_id)
            if msg_key in homa_done:
                continue  # retransmit of a fully seen request
            message = homa_messages.setdefault(
                msg_key, _HomaMessageAssembler(header.msg_len))
            payload = frame[offset + HOMA_HEADER_LEN:
                            offset + HOMA_HEADER_LEN + header.payload_len]
            message.feed(header.offset, payload)
            data = message.complete()
            if data is None:
                continue
            homa_done.add(msg_key)
            del homa_messages[msg_key]
            parsed, _leftover = _parse_http_requests(data)
            # Homa ports are per-RPC, not per-connection: group by the
            # requesting host so replay loops don't degenerate to one
            # op each.
            flow_key = (record.src_ip, "homa")
            for op in parsed:
                ops.append((flow_key,) + op)
    return ops


# -- cluster reseed: re-replicate a promoted shard from the capture -----------


def _apply_op(engine, method, key_bytes, value):
    """Apply one parsed client op directly to a rebuilt engine.

    PUTs go through :func:`repro.storage.engines.direct_put` (which
    knows how to feed packet-native stores); reads don't mutate state.
    """
    if method == "DELETE":
        if hasattr(engine, "delete"):
            engine.delete(key_bytes, NULL_CONTEXT)
            return True
        return False
    if method != "PUT":
        return False
    direct_put(engine, key_bytes, value or b"", NULL_CONTEXT)
    return True


class ReseedReport:
    """Outcome of one capture-driven cluster reseed."""

    def __init__(self, dead_name, standby_node, injected, caught_up,
                 checked, violations, attached):
        self.dead_name = dead_name
        #: The rebuilt ClusterNode (in cluster.nodes once attached).
        self.node = standby_node
        self.injected = injected
        self.caught_up = caught_up
        self.checked = checked
        self.violations = list(violations)
        self.attached = attached

    @property
    def ok(self):
        return not self.violations

    def summary(self):
        lines = [
            f"[reseed] {self.dead_name}: {self.injected} frame(s) of its "
            f"own history replayed, {self.caught_up} post-kill op(s) "
            f"caught up from the survivors",
            f"[reseed] verified {self.checked} shard key(s) against the "
            f"promoted primaries: {len(self.violations)} violation(s)",
        ]
        lines.extend(f"[reseed]   {v}" for v in self.violations[:10])
        lines.append(f"[reseed] node {'re-attached to the ring' if self.attached else 'left detached'}")
        return "\n".join(lines)


def verify_reseed(cluster, standby_engine, dead_name, full_ring=None):
    """Check a rebuilt standby against the promoted primaries.

    For every key a revived ``dead_name`` would hold (primary or
    backup in the all-alive ring), the standby's value must equal the
    key's *current* primary's — the promoted shard and its fresh
    backup agree.  Returns ``(violations, checked)``.
    """
    from repro.cluster.hashring import HashRing

    if full_ring is None:
        full_ring = HashRing(list(cluster.nodes),
                             vnodes=cluster.config.vnodes)
    standby_map = store_mapping(standby_engine)
    survivor_maps = {
        name: store_mapping(cluster.nodes[name].engine)
        for name in cluster.ring.alive
    }
    violations = []
    checked = 0
    seen = set()
    for name, mapping in survivor_maps.items():
        for key in mapping:
            if key in seen:
                continue
            seen.add(key)
            if dead_name not in full_ring.route(key):
                continue
            primary = cluster.ring.primary(key)
            authority = survivor_maps[primary].get(key)
            if authority is None:
                continue  # not yet on its current primary; not checkable
            checked += 1
            actual = standby_map.get(key)
            if actual != authority:
                violations.append(
                    f"key {key!r}: standby has "
                    f"{'<absent>' if actual is None else f'{len(actual)}B'} "
                    f"!= primary {primary}'s {len(authority)}B value"
                )
    return violations, checked


def reseed_from_capture(cluster, dead_name, capture=None, attach=True,
                        max_events=DEFAULT_MAX_EVENTS):
    """Rebuild a killed cluster node from the fabric capture and
    re-attach it as the fresh backup for its promoted shards.

    Closes the failover gap: after ``kill`` + ``failover`` a promoted
    shard runs unreplicated until a new host holds the dead one's
    data.  The capture has everything needed — the corpse's delivered
    history up to the kill, and the survivors' post-kill traffic:

    1. a standby host is built on a *private* fabric (same simulator)
       with the dead node's name, address and sizing, and the corpse's
       pre-kill rx stream is injected at its recorded relative timing;
    2. post-kill client ops addressed to the survivors are parsed from
       the capture and applied for every shard the revived node will
       hold (the catch-up — this *is* re-replication, sourced from
       packets instead of a state-transfer protocol);
    3. the standby is verified key-by-key against the promoted
       primaries (:func:`verify_reseed`);
    4. if clean (and ``attach=True``), the standby's NIC takes over the
       dead host's fabric port, the ring marks the node alive, and the
       cluster's node table swaps to the rebuilt node.

    The shared metrics recorder keeps reporting the *old* node's
    gauges (its roles are already registered); re-seeded nodes serve
    and replicate but re-register no gauges.

    Returns a :class:`ReseedReport`.
    """
    from repro.cluster.backoff import Backoff
    from repro.cluster.hashring import HashRing
    from repro.cluster.replication import ReplicationApplier, Replicator
    from repro.cluster.topology import ClusterContext, ClusterNode

    config = cluster.config
    if capture is None:
        if cluster.capture_tap is None:
            raise ValueError(
                "no capture: build the cluster with "
                "ClusterConfig(capture=True) or pass capture="
            )
        capture = cluster.capture_tap.capture()
    node = cluster.nodes[dead_name]
    if dead_name in cluster.ring.alive:
        raise RuntimeError(f"{dead_name} is alive; reseed replaces corpses")
    killed_at = cluster.killed_at.get(dead_name)

    sim = cluster.sim
    private = Fabric(sim)
    pm_device = PMDevice(config.pm_bytes, name=f"{dead_name}-reseed-pm")
    pm_ns = PMNamespace(pm_device)
    rx_region = pm_ns.create("paste-pktbufs", config.paste_pool_bytes)
    host = Host(
        sim, dead_name, node.ip, private, CostModel.paste(),
        cores=config.cores, rx_pool_region=rx_region,
        pool_slots=config.pool_slots, busy_poll=True,
        nic_features=NicFeatures(),
    )
    replicator = Replicator(
        host, config.repl_port,
        backoff=config.backoff if config.backoff is not None else Backoff(),
    )
    peer_ips = {name: n.ip for name, n in cluster.nodes.items()}
    cluster_ctx = ClusterContext(
        node_name=dead_name, replicator=replicator, route=cluster.ring.route,
        peer_ips=peer_ips, ack_policy=config.ack_policy,
    )
    server_config = ServerConfig(
        transport="homa", engine=config.engine, port=config.port,
        cores=config.cores, contain_errors=config.contain_errors,
        overload=config.overload, ack_policy=config.ack_policy,
        engine_kwargs=dict(config.engine_kwargs),
    )
    handle = serve(host, server_config, pm_ns=pm_ns, cluster=cluster_ctx)
    applier = ReplicationApplier(handle.kv, config.repl_port)

    # Phase 1: replay the corpse's own delivered history (client puts
    # AND the replication stream it applied as a backup), shifted so
    # relative timing — and with it every protocol decision — repeats.
    history = capture.filter(dst_ip=ip_to_int(node.ip))
    if killed_at is not None:
        history.records = [r for r in history.records if r.t_ns < killed_at]
    offset = 0.0
    if history.records:
        offset = sim.now - history.records[0].t_ns + 1.0
    injected = inject(history, host, time_offset=offset)
    sim.run_until_idle(max_events=max_events)

    # Phase 2: catch up the post-kill delta from the survivors' inbound
    # client traffic, for every shard the revived node participates in.
    full_ring = HashRing(list(cluster.nodes), vnodes=config.vnodes)
    caught_up = 0
    if killed_at is not None:
        tail = Capture(meta=dict(capture.meta))
        tail.records = [r for r in capture.records if r.t_ns >= killed_at]
        alive_ips = [cluster.nodes[n].ip for n in cluster.ring.alive]
        for _flow, method, key, value in extract_ops(
                tail, server_ip=alive_ips, port=config.port):
            key_bytes = key.encode("utf-8")
            if dead_name not in full_ring.route(key_bytes):
                continue
            if _apply_op(handle.engine, method, key_bytes, value):
                caught_up += 1

    # Phase 3: the standby must agree with every promoted primary.
    violations, checked = verify_reseed(cluster, handle.engine, dead_name,
                                        full_ring)

    # Phase 4: take over the dead host's fabric port and rejoin.
    attached = False
    if attach and not violations:
        cluster.fabric.replace(host.nic)
        host.nic.fabric = cluster.fabric
        cluster.ring.mark_alive(dead_name)
        replicator.reset_suspicion()
        for survivor in cluster.alive_nodes():
            survivor.replicator.reset_suspicion()
        new_node = ClusterNode(dead_name, node.ip, host, handle, replicator,
                               applier, pm_device, pm_ns)
        cluster.nodes[dead_name] = new_node
        cluster.killed_at.pop(dead_name, None)
        attached = True
        standby_node = new_node
    else:
        standby_node = ClusterNode(dead_name, node.ip, host, handle,
                                   replicator, applier, pm_device, pm_ns)

    return ReseedReport(dead_name, standby_node, injected, caught_up,
                        checked, violations, attached)


class CaptureSource(TrafficSource):
    """Replay a capture's operations through any traffic consumer.

    ``per_flow=True`` (default) assigns each captured flow to one
    replay loop, preserving per-connection op order; consumers size
    their loop count from :attr:`loops`.  ``per_flow=False`` merges
    everything into one stream in capture order — useful when the
    replaying client has a different loop count than the original.
    """

    def __init__(self, capture, server_ip=None, port=None, per_flow=True):
        all_ops = extract_ops(capture, server_ip=server_ip, port=port)
        self.per_flow = per_flow
        self._merged = [op[1:] for op in all_ops]
        self._flows = []
        index = {}
        for flow_key, method, key, value in all_ops:
            if flow_key not in index:
                index[flow_key] = len(self._flows)
                self._flows.append([])
            self._flows[index[flow_key]].append((method, key, value))
        self._cursors = [0] * max(1, len(self._flows))
        self._merged_cursor = 0

    @property
    def loops(self):
        """Replay loop count (captured flows; at least 1)."""
        return max(1, len(self._flows)) if self.per_flow else 1

    @property
    def total_ops(self):
        return len(self._merged)

    def next_op(self, loop_id=0):
        if not self.per_flow:
            if self._merged_cursor >= len(self._merged):
                return None
            op = self._merged[self._merged_cursor]
            self._merged_cursor += 1
            return op
        if loop_id >= len(self._flows):
            return None
        cursor = self._cursors[loop_id]
        flow = self._flows[loop_id]
        if cursor >= len(flow):
            return None
        self._cursors[loop_id] = cursor + 1
        return flow[cursor]

    def describe(self):
        return {"source": "capture-replay", "ops": len(self._merged),
                "flows": len(self._flows), "per_flow": self.per_flow}
