"""``repro-capture``: record, inspect, replay and rebuild captures.

Subcommands::

    repro-capture record  --out run.rpcap [--transport homa ...]
        run a wrk session against a capture-enabled testbed and save
        the server's delivered frame stream

    repro-capture inspect run.rpcap [--frames 10] [--ops]
        print provenance meta, record stats, the stream digest and
        (optionally) per-frame / per-op summaries

    repro-capture replay  run.rpcap
        parse the capture back into operations and replay them as a
        workload (CaptureSource -> wrk) against a fresh server

    repro-capture rebuild run.rpcap [--expect-digest HEX]
        rebuild a warm standby from the capture alone and print its
        recovery digest (the replay-determinism echo is always checked)

    repro-capture smoke   [--plant-drop --expect-violations]
        CI entry point: record a short storm, rebuild a standby from
        the capture, run the durability oracle between live and
        rebuilt stores.  ``--plant-drop`` removes the frame carrying a
        surviving value first; with ``--expect-violations`` the run
        *fails unless* the oracle reports the divergence.
"""

import argparse
import sys

from repro.capture.format import Capture
from repro.capture.replay import (
    CaptureSource,
    extract_ops,
    plant_drop,
    rebuild_standby,
    store_digest,
    verify_rebuild,
)
from repro.net.headers import int_to_ip


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-capture",
        description="deterministic frame capture/replay "
                    "(record | inspect | replay | rebuild | smoke)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="capture a wrk serving session")
    record.add_argument("--out", required=True, help="capture file to write")
    record.add_argument("--transport", choices=("tcp", "homa"), default="tcp")
    record.add_argument("--engine", default="pktstore")
    record.add_argument("--cores", type=int, default=1)
    record.add_argument("--connections", type=int, default=8)
    record.add_argument("--value-size", type=int, default=1024)
    record.add_argument("--key-space", type=int, default=200)
    record.add_argument("--duration-us", type=float, default=3000.0)
    record.add_argument("--max-frames", type=int, default=None,
                        help="capture ring bound (oldest evicted)")

    inspect = sub.add_parser("inspect", help="describe a capture file")
    inspect.add_argument("capture")
    inspect.add_argument("--frames", type=int, default=0,
                         help="also print the first N frame records")
    inspect.add_argument("--ops", action="store_true",
                         help="parse and summarise the operation stream")

    replay = sub.add_parser("replay",
                            help="replay a capture as a live workload")
    replay.add_argument("capture")
    replay.add_argument("--merged", action="store_true",
                        help="single replay loop in capture order "
                             "(default: one loop per captured flow)")

    rebuild = sub.add_parser("rebuild",
                             help="rebuild a warm standby from a capture")
    rebuild.add_argument("capture")
    rebuild.add_argument("--expect-digest", default=None,
                         help="fail unless the rebuilt store digest matches")
    rebuild.add_argument("--max-events", type=int, default=50_000_000)

    smoke = sub.add_parser("smoke",
                           help="record + rebuild + oracle in one process")
    smoke.add_argument("--transport", choices=("tcp", "homa"), default="tcp")
    smoke.add_argument("--cores", type=int, default=1)
    smoke.add_argument("--connections", type=int, default=24)
    smoke.add_argument("--puts-per-conn", type=int, default=4)
    smoke.add_argument("--value-size", type=int, default=1200)
    smoke.add_argument("--seed", type=int, default=3)
    smoke.add_argument("--no-faults", action="store_true",
                       help="disable the storm's fault plan")
    smoke.add_argument("--plant-drop", action="store_true",
                       help="remove the frame carrying a surviving value "
                            "before the rebuild")
    smoke.add_argument("--expect-violations", action="store_true",
                       help="fail unless the oracle reports divergence")
    return parser


def _main_record(args):
    from repro.bench.testbed import make_testbed
    from repro.bench.wrk import HomaWrkClient, WrkClient
    from repro.storage.server import ServerConfig

    config = ServerConfig(
        transport=args.transport, engine=args.engine, cores=args.cores,
        capture=True, capture_max_frames=args.max_frames,
    )
    testbed = make_testbed(config=config)
    client_cls = HomaWrkClient if args.transport == "homa" else WrkClient
    duration_ns = args.duration_us * 1000.0
    wrk = client_cls(
        testbed.client, testbed.server.ip, connections=args.connections,
        value_size=args.value_size, key_space=args.key_space,
        duration_ns=duration_ns, warmup_ns=min(duration_ns / 4, 500_000.0),
    )
    wrk.start()
    testbed.sim.run_until_idle()

    capture = testbed.capture.capture()
    capture.save(args.out)
    print(f"[capture] recorded {len(capture)} frames "
          f"({sum(len(r.frame) for r in capture.records)} B) "
          f"over {capture.span_ns() / 1000.0:.1f} us -> {args.out}")
    print(f"[capture] completed requests: {wrk.stats.completed}, "
          f"stream digest {capture.digest()[:16]}…")
    print(f"[capture] live store digest {store_digest(testbed.engine)}")
    return 0


def _main_inspect(args):
    capture = Capture.load(args.capture)
    total_bytes = sum(len(r.frame) for r in capture.records)
    print(f"[capture] {args.capture}: {len(capture)} frames, "
          f"{total_bytes} B, span {capture.span_ns() / 1000.0:.1f} us")
    print(f"[capture] digest {capture.digest()}")
    if capture.truncated:
        print("[capture] WARNING: partial tail — file ends mid-record")
    for key in sorted(capture.meta):
        print(f"[capture]   meta.{key} = {capture.meta[key]!r}")
    for record in capture.records[:args.frames]:
        print(f"[capture]   {record.t_ns:14.1f} ns  "
              f"{int_to_ip(record.src_ip):>12} -> "
              f"{int_to_ip(record.dst_ip):<12} {len(record.frame):5d} B")
    if args.ops:
        ops = extract_ops(capture)
        flows = {op[0] for op in ops}
        puts = sum(1 for op in ops if op[1] == "PUT")
        print(f"[capture] ops: {len(ops)} ({puts} PUT, "
              f"{len(ops) - puts} other) across {len(flows)} flow(s)")
    return 0


def _main_replay(args):
    from repro.bench.testbed import make_testbed
    from repro.bench.wrk import HomaWrkClient, WrkClient
    from repro.capture.replay import config_from_meta

    capture = Capture.load(args.capture)
    source = CaptureSource(capture, per_flow=not args.merged)
    config = config_from_meta(capture.meta)
    testbed = make_testbed(config=config)
    client_cls = (HomaWrkClient if config.transport == "homa" else WrkClient)
    wrk = client_cls(testbed.client, testbed.server.ip,
                     connections=source.loops, duration_ns=1e15,
                     workload=source)
    wrk.start()
    testbed.sim.run_until_idle()
    print(f"[capture] replayed {wrk.stats.completed}/{source.total_ops} ops "
          f"through {source.loops} loop(s) "
          f"({config.transport}/{config.engine})")
    print(f"[capture] replayed store digest {store_digest(testbed.engine)}")
    return 0


def _main_rebuild(args):
    capture = Capture.load(args.capture)
    standby = rebuild_standby(capture, max_events=args.max_events)
    inbound = capture.filter(dst_ip=standby.host.ip)
    echo_ok = standby.echo.digest() == inbound.digest()
    print(f"[capture] rebuilt standby from {standby.injected} frames "
          f"({standby.sim.events_fired} events)")
    print(f"[capture] replay echo {'MATCHES' if echo_ok else 'DIVERGED from'} "
          f"the recorded stream")
    digest = standby.digest()
    print(f"[capture] rebuilt store digest {digest}")
    if not echo_ok:
        return 1
    if args.expect_digest and digest != args.expect_digest:
        print(f"[capture] FAIL: expected {args.expect_digest}")
        return 1
    return 0


def _main_smoke(args):
    from repro.storage.server import ServerConfig
    from repro.testing.chaos import OverloadStorm

    config = ServerConfig(
        transport=args.transport, engine="pktstore", cores=args.cores,
        contain_errors=True, overload=True, metrics=True, capture=True,
        engine_kwargs={"meta_bytes": 64 * 256},
    )
    storm = OverloadStorm(
        connections=args.connections, puts_per_conn=args.puts_per_conn,
        keys_per_conn=2, value_size=args.value_size, pool_slots=96,
        config=config, storm_faults=not args.no_faults, seed=args.seed,
    )
    storm_report = storm.run()
    if not storm_report.ok:
        print("[capture-smoke] FAIL: the storm itself violated its "
              "contract; capture verdicts would be meaningless")
        print(storm_report.summary())
        return 1
    capture = storm.testbed.capture.capture()
    print(f"[capture-smoke] storm clean; captured {len(capture)} frames")

    if args.plant_drop:
        capture, key = plant_drop(capture, storm.testbed.engine)
        print(f"[capture-smoke] planted drop: removed the frame carrying "
              f"{key!r}'s surviving value")

    standby = rebuild_standby(capture)
    inbound = capture.filter(dst_ip=storm.server.ip)
    if standby.echo.digest() != inbound.digest():
        print("[capture-smoke] FAIL: replay echo diverged from the "
              "recorded stream")
        return 1
    report = verify_rebuild(storm.testbed.engine, standby.engine)
    print(report.summary())

    if args.expect_violations:
        if report.ok:
            print("[capture-smoke] FAIL: expected the oracle to catch the "
                  "planted drop, but the rebuild matched")
            return 1
        print(f"[capture-smoke] OK: planted divergence caught "
              f"({len(report.violations)} violation(s), as expected)")
        return 0
    if not report.ok:
        print("[capture-smoke] FAIL: rebuilt store diverged from live")
        return 1
    print("[capture-smoke] OK: standby rebuilt from capture alone is "
          "equivalent to the live store")
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    handler = {
        "record": _main_record,
        "inspect": _main_inspect,
        "replay": _main_replay,
        "rebuild": _main_rebuild,
        "smoke": _main_smoke,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
