"""The capture file format: versioned, CRC-framed, exactly reversible.

A capture is a pcap-like byte stream of *delivered* frames::

    +--------------------------------------------------+
    | magic "RPCAP" | version u8 | meta_len u32 | meta |  header
    | header_crc u32                                   |
    +--------------------------------------------------+
    | frame_len u32 | t_ns f64 | src u32 | dst u32     |  record 0
    | frame bytes ... | record_crc u32                 |
    +--------------------------------------------------+
    | ...                                              |  record 1..N

All integers are big-endian; ``t_ns`` is the simulator clock as an
IEEE-754 double, so timestamps round-trip bit-exactly.  ``meta`` is a
canonical JSON object (sorted keys) carrying provenance: what was
captured, where the tap sat, and enough of the ``ServerConfig`` to
rebuild a standby from the file alone.  Every record and the header
carry a CRC32C over their own bytes.

Decoding guarantees (property-tested in ``test_capture_format``):

- ``Capture.from_bytes(capture.to_bytes())`` reproduces the records
  exactly — timestamps, addresses and frame bytes;
- a record whose CRC does not match raises
  :class:`CaptureCorruptError` — corruption is never silently decoded;
- a *partial tail* (the file ends mid-record, e.g. an interrupted
  write) is tolerated: complete records decode, ``truncated`` is set.
"""

import hashlib
import json
import struct
from collections import namedtuple

from repro.net.checksum import crc32c

MAGIC = b"RPCAP"
VERSION = 1

#: JSON schema tag embedded in every capture's meta block.
SCHEMA = "repro-capture/v1"

_HEAD = struct.Struct("!5sBI")       # magic, version, meta_len
_REC = struct.Struct("!IdII")        # frame_len, t_ns, src_ip, dst_ip
_CRC = struct.Struct("!I")

#: One delivered frame: sim-clock arrival time, fabric addresses (ints)
#: and the frame bytes as they hit the destination NIC.
FrameRecord = namedtuple("FrameRecord", ("t_ns", "src_ip", "dst_ip", "frame"))


class CaptureError(ValueError):
    """Structurally invalid capture (bad magic, version, header)."""


class CaptureCorruptError(CaptureError):
    """A complete record is present but its CRC does not match."""


def encode_record(record):
    """One record as bytes (header + frame + CRC over both)."""
    head = _REC.pack(len(record.frame), record.t_ns,
                     record.src_ip, record.dst_ip)
    body = head + bytes(record.frame)
    return body + _CRC.pack(crc32c(body))


class Capture:
    """An ordered list of :class:`FrameRecord` plus provenance meta.

    Records keep *append order* — the order the fabric scheduled the
    deliveries — which equals the simulator's FIFO tie-break for
    same-timestamp frames, so replaying in record order reproduces the
    original delivery order exactly.
    """

    def __init__(self, meta=None, records=None):
        self.meta = {"schema": SCHEMA}
        if meta:
            self.meta.update(meta)
        self.records = list(records) if records else []
        #: True when from_bytes hit a partial tail (file ended
        #: mid-record); the complete prefix decoded fine.
        self.truncated = False

    # -- building --------------------------------------------------------------

    def append(self, t_ns, src_ip, dst_ip, frame):
        self.records.append(FrameRecord(float(t_ns), int(src_ip),
                                        int(dst_ip), bytes(frame)))

    # -- serialisation ---------------------------------------------------------

    def to_bytes(self):
        meta_blob = json.dumps(self.meta, sort_keys=True,
                               separators=(",", ":")).encode()
        header = _HEAD.pack(MAGIC, VERSION, len(meta_blob)) + meta_blob
        chunks = [header, _CRC.pack(crc32c(header))]
        for record in self.records:
            chunks.append(encode_record(record))
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, data):
        data = bytes(data)
        if len(data) < _HEAD.size or not data.startswith(MAGIC):
            raise CaptureError("not a capture: bad magic")
        magic, version, meta_len = _HEAD.unpack_from(data, 0)
        if version != VERSION:
            raise CaptureError(f"unsupported capture version {version}")
        header_end = _HEAD.size + meta_len
        if len(data) < header_end + _CRC.size:
            raise CaptureError("capture header truncated")
        header = data[:header_end]
        (header_crc,) = _CRC.unpack_from(data, header_end)
        if crc32c(header) != header_crc:
            raise CaptureCorruptError("capture header CRC mismatch")
        try:
            meta = json.loads(data[_HEAD.size:header_end].decode())
        except ValueError as exc:
            raise CaptureError(f"capture meta is not JSON: {exc}") from exc

        capture = cls()
        capture.meta = meta
        offset = header_end + _CRC.size
        total = len(data)
        while offset < total:
            if total - offset < _REC.size:
                capture.truncated = True
                break
            frame_len, t_ns, src_ip, dst_ip = _REC.unpack_from(data, offset)
            record_end = offset + _REC.size + frame_len
            if total < record_end + _CRC.size:
                capture.truncated = True
                break
            (record_crc,) = _CRC.unpack_from(data, record_end)
            if crc32c(data[offset:record_end]) != record_crc:
                raise CaptureCorruptError(
                    f"record {len(capture.records)} CRC mismatch "
                    f"at byte {offset}"
                )
            capture.records.append(FrameRecord(
                t_ns, src_ip, dst_ip,
                data[offset + _REC.size:record_end],
            ))
            offset = record_end + _CRC.size
        return capture

    def save(self, path):
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    @classmethod
    def load(cls, path):
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())

    # -- inspection ------------------------------------------------------------

    def digest(self):
        """SHA-256 over the canonical record stream (meta excluded).

        Two captures of byte-identical delivery streams — e.g. a live
        run and its replay — have equal digests; this is the
        event-sequence pin the replay-determinism tests assert.
        """
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(encode_record(record))
        return digest.hexdigest()

    def filter(self, src_ip=None, dst_ip=None, since_ns=None):
        """A new Capture holding the matching records (same meta)."""
        out = Capture(meta=dict(self.meta))
        for record in self.records:
            if src_ip is not None and record.src_ip != src_ip:
                continue
            if dst_ip is not None and record.dst_ip != dst_ip:
                continue
            if since_ns is not None and record.t_ns < since_ns:
                continue
            out.records.append(record)
        return out

    def span_ns(self):
        if not self.records:
            return 0.0
        times = [record.t_ns for record in self.records]
        return max(times) - min(times)

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return (f"<Capture {len(self.records)} frames "
                f"{sum(len(r.frame) for r in self.records)} B>")
