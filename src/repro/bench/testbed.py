"""One-call construction of the paper's two-host testbed.

The §3 setup: a server (one core, PASTE stack, Optane PM in App-Direct
mode, busy polling) and a client (regular Linux stack + wrk, all
cores), both on 25 GbE through a switch, checksum offload on.

``make_testbed(ServerConfig(engine=...))`` builds the whole thing with
the chosen storage configuration:

================  ============================================================
``engine=``       server behaviour
================  ============================================================
``"null"``        discard requests (networking-only RTT: 26.71 µs row)
``"rawpm"``       copy + persist into PM (Figure 2's "net.+persist.")
``"novelsm"``     full NoveLSM with checksum (Figure 2's
                  "net.+data mgmt.+persist.", Table 1's 34.79 µs)
``"novelsm-nopersist"``  NoveLSM with persistence ops disabled (the
                  modified build used to split out persistence cost)
``"pktstore"``    the paper's *proposal*: packet-native persistent store
                  (zero-copy, checksum/timestamp/allocator reuse)
================  ============================================================
"""

from repro.bench.costmodel import CostModel
from repro.net.fabric import Fabric
from repro.net.nic import NicFeatures
from repro.net.stack import Host
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim.engine import Simulator
from repro.storage.server import ServerConfig, serve

SERVER_IP = "10.0.0.1"
CLIENT_IP = "10.0.0.2"

#: Paper: client has two Xeon E5-2620v3 (6 cores each), HT disabled.
CLIENT_CORES = 12

PM_BYTES = 192 << 20
PASTE_POOL_BYTES = 16 << 20


class Testbed:
    """Handles to everything the experiments touch."""

    def __init__(self, sim, fabric, server, client, engine, kv, pm_device,
                 pm_ns, config=None, overload=None, recorder=None,
                 capture=None):
        self.sim = sim
        self.fabric = fabric
        self.server = server
        self.client = client
        self.engine = engine
        self.kv = kv
        self.pm_device = pm_device
        self.pm_ns = pm_ns
        #: The ServerConfig the server side was built from.
        self.config = config
        #: OverloadController (None unless the config asked for one).
        self.overload = overload
        #: repro.obs Recorder (None unless the config asked for metrics).
        self.recorder = recorder
        #: repro.capture CaptureTap (None unless config.capture).
        self.capture = capture

    @property
    def metrics(self):
        """The live MetricsRegistry, or None when metrics are off."""
        return self.recorder.registry if self.recorder is not None else None


#: Pre-config keywords make_testbed once accepted, mapped to the
#: ServerConfig field that replaced each (for the migration error).
_RETIRED_KWARGS = {
    "engine": "engine",
    "transport": "transport",
    "server_cores": "cores",
    "memtable_arena": "memtable_arena",
    "engine_kwargs": "engine_kwargs",
    "kv_kwargs": "zero_copy_get/contain_errors/overload",
}


def make_testbed(config=None, *, server_features=None, client_features=None,
                 fabric_kwargs=None, pm_bytes=PM_BYTES, paste=True,
                 pm_device=None, paste_pool_bytes=PASTE_POOL_BYTES,
                 **retired):
    """Build the two-host testbed from a :class:`ServerConfig`.

    ``config`` is the one knob for everything server-shaped —
    transport, engine, cores, overload policy, zero-copy GET, idle
    reaper, metrics, capture.  The remaining keywords cover the *world*
    around the server: NIC features, fabric parameters, PM
    device/sizing, whether the rx pool lives in PM (``paste``).

    The pre-config keywords (``engine=``, ``transport=``,
    ``server_cores=``, ``memtable_arena=``, ``engine_kwargs=``,
    ``kv_kwargs=``) are retired; passing one raises with the
    ServerConfig field that replaced it.
    """
    if retired:
        hints = ", ".join(
            f"{kw}= -> ServerConfig({_RETIRED_KWARGS[kw]}=...)"
            for kw in sorted(retired) if kw in _RETIRED_KWARGS
        )
        unknown = sorted(kw for kw in retired if kw not in _RETIRED_KWARGS)
        if unknown:
            raise TypeError(
                f"make_testbed() got unexpected keyword(s) {unknown}"
            )
        raise TypeError(
            f"make_testbed() no longer takes {sorted(retired)}; build a "
            f"ServerConfig and pass it as config= instead: {hints} — e.g. "
            f"make_testbed(config=ServerConfig(engine='pktstore'))"
        )
    config = config or ServerConfig()
    config.validate()

    sim = Simulator()
    fabric = Fabric(sim, **(fabric_kwargs or {}))

    if pm_device is None:
        pm_device = PMDevice(pm_bytes, name="optane")
    elif not pm_device.persistent:
        raise ValueError("injected pm_device must be persistent")
    pm_ns = PMNamespace(pm_device)

    rx_pool_region = None
    if paste:
        rx_pool_region = pm_ns.create("paste-pktbufs", paste_pool_bytes)

    server = Host(
        sim, "server", SERVER_IP, fabric, CostModel.paste(),
        cores=config.cores, rx_pool_region=rx_pool_region, busy_poll=True,
        nic_features=server_features or NicFeatures(),
    )
    client = Host(
        sim, "client", CLIENT_IP, fabric, CostModel.kernel(), cores=CLIENT_CORES,
        busy_poll=False, irq_latency_ns=0.0,
        nic_features=client_features or NicFeatures(),
    )

    handle = serve(server, config, pm_ns=pm_ns)
    if handle.capture is not None:
        # The ServerConfig covers the server; the capture also needs the
        # *world* sizing (PM, rx pool) so a standby rebuilds into the
        # same pressure envelope (pool eviction is part of history).
        handle.capture.meta.update({
            "pm_bytes": pm_bytes,
            "paste_pool_bytes": paste_pool_bytes if paste else None,
        })
    if handle.recorder is not None:
        # The testbed owns both ends of the wire, so the registry can
        # account the full RTT: client slices + fabric frames included.
        handle.recorder.attach_host(client, "client")
        handle.recorder.attach_fabric(fabric)
    return Testbed(sim, fabric, server, client, handle.engine, handle.kv,
                   pm_device, pm_ns, config=config, overload=handle.overload,
                   recorder=handle.recorder, capture=handle.capture)


def preload(testbed, entries, value_size=1024, key_prefix="warm"):
    """Pre-populate the store so index traversal costs are steady-state.

    Inserts directly through the engine (no network), as the paper's
    continual-write experiment reaches steady state before measuring.
    """
    from repro.storage.engines import direct_put

    value = bytes(value_size)
    for index in range(entries):
        key = f"{key_prefix}-{index}".encode()
        direct_put(testbed.engine, key, value)
    return entries
