"""One-call construction of the paper's two-host testbed.

The §3 setup: a server (one core, PASTE stack, Optane PM in App-Direct
mode, busy polling) and a client (regular Linux stack + wrk, all
cores), both on 25 GbE through a switch, checksum offload on.

``make_testbed(engine=...)`` builds the whole thing with the chosen
storage configuration:

================  ============================================================
``engine=``       server behaviour
================  ============================================================
``"null"``        discard requests (networking-only RTT: 26.71 µs row)
``"rawpm"``       copy + persist into PM (Figure 2's "net.+persist.")
``"novelsm"``     full NoveLSM with checksum (Figure 2's
                  "net.+data mgmt.+persist.", Table 1's 34.79 µs)
``"novelsm-nopersist"``  NoveLSM with persistence ops disabled (the
                  modified build used to split out persistence cost)
``"pktstore"``    the paper's *proposal*: packet-native persistent store
                  (zero-copy, checksum/timestamp/allocator reuse)
================  ============================================================
"""

from repro.bench.costmodel import CostModel
from repro.net.fabric import Fabric
from repro.net.nic import NicFeatures
from repro.net.stack import Host
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim.engine import Simulator
from repro.storage.engines import (
    LevelDBEngine,
    NoveLSMEngine,
    NullEngine,
    RawPMEngine,
)
from repro.storage.kvserver import KVServer
from repro.storage.lsm import leveldb_store, novelsm_store

SERVER_IP = "10.0.0.1"
CLIENT_IP = "10.0.0.2"

#: Paper: client has two Xeon E5-2620v3 (6 cores each), HT disabled.
CLIENT_CORES = 12

PM_BYTES = 192 << 20
PASTE_POOL_BYTES = 16 << 20


class Testbed:
    """Handles to everything the experiments touch."""

    def __init__(self, sim, fabric, server, client, engine, kv, pm_device, pm_ns):
        self.sim = sim
        self.fabric = fabric
        self.server = server
        self.client = client
        self.engine = engine
        self.kv = kv
        self.pm_device = pm_device
        self.pm_ns = pm_ns


def make_testbed(engine="novelsm", server_features=None, client_features=None,
                 fabric_kwargs=None, pm_bytes=PM_BYTES, engine_kwargs=None,
                 paste=True, memtable_arena=48 << 20, transport="tcp",
                 server_cores=1, pm_device=None,
                 paste_pool_bytes=PASTE_POOL_BYTES, kv_kwargs=None):
    """Build the two-host testbed with the requested storage engine.

    ``transport="homa"`` serves the same engine over the Homa-like
    message transport (§5.2) instead of HTTP-over-TCP.
    ``server_cores`` lifts the paper's one-core restriction for the
    multicore ablation (§3: more cores shift, not remove, the queues).
    ``pm_device`` injects a pre-built persistent device (e.g. a
    recording device from ``repro.testing``) in place of the default
    Optane model; ``pm_bytes`` is ignored when it is given.
    ``paste_pool_bytes`` sizes the PM packet pool — the overload tests
    shrink it until a connection burst exhausts it.  ``kv_kwargs``
    passes through to the KV server (``zero_copy_get``, ``overload``,
    ``contain_errors``).
    """
    engine_kwargs = dict(engine_kwargs or {})
    kv_kwargs = dict(kv_kwargs or {})
    sim = Simulator()
    fabric = Fabric(sim, **(fabric_kwargs or {}))

    if pm_device is None:
        pm_device = PMDevice(pm_bytes, name="optane")
    elif not pm_device.persistent:
        raise ValueError("injected pm_device must be persistent")
    pm_ns = PMNamespace(pm_device)

    rx_pool_region = None
    if paste:
        rx_pool_region = pm_ns.create("paste-pktbufs", paste_pool_bytes)

    server = Host(
        sim, "server", SERVER_IP, fabric, CostModel.paste(), cores=server_cores,
        rx_pool_region=rx_pool_region, busy_poll=True,
        nic_features=server_features or NicFeatures(),
    )
    client = Host(
        sim, "client", CLIENT_IP, fabric, CostModel.kernel(), cores=CLIENT_CORES,
        busy_poll=False, irq_latency_ns=0.0,
        nic_features=client_features or NicFeatures(),
    )

    store_engine = _make_engine(engine, server, pm_ns, memtable_arena, engine_kwargs)
    if transport == "homa":
        from repro.storage.kvserver import HomaKVServer

        kv = HomaKVServer(server, store_engine, port=80, **kv_kwargs)
    else:
        kv = KVServer(server, store_engine, port=80, **kv_kwargs)
    return Testbed(sim, fabric, server, client, store_engine, kv, pm_device, pm_ns)


def _make_engine(engine, server, pm_ns, memtable_arena, engine_kwargs):
    if engine == "null":
        return NullEngine()
    if engine == "rawpm":
        region = pm_ns.create("rawpm-ring", 96 << 20)
        return RawPMEngine(region, server.costs)
    if engine == "leveldb-ssd":
        from repro.pm.device import DRAMDevice
        from repro.storage.blockdev import BlockDevice

        dram = DRAMDevice(256 << 20, name="server-dram")
        ssd = BlockDevice(512 << 20, name="server-ssd")
        store = leveldb_store(dram, ssd, arena_size=32 << 20)
        return LevelDBEngine(store, server.costs)
    if engine in ("novelsm", "novelsm-nopersist"):
        store = novelsm_store(pm_ns, arena_size=memtable_arena)
        return NoveLSMEngine(
            store, server.costs,
            persistence=(engine == "novelsm"),
            **engine_kwargs,
        )
    if engine == "pktstore":
        from repro.core.pktstore import PacketStoreEngine

        return PacketStoreEngine.build(server, pm_ns, **engine_kwargs)
    raise ValueError(f"unknown engine {engine!r}")


def preload(testbed, entries, value_size=1024, key_prefix="warm"):
    """Pre-populate the store so index traversal costs are steady-state.

    Inserts directly through the engine (no network), as the paper's
    continual-write experiment reaches steady state before measuring.
    """

    class _FakeMessage:
        def __init__(self, value):
            self._value = value
            self.body_slices = []
            self.hw_tstamp = None
            self.wire_csum = None

        @property
        def body(self):
            return self._value

        def release(self):
            pass

    from repro.sim.context import NULL_CONTEXT

    value = bytes(value_size)
    for index in range(entries):
        key = f"{key_prefix}-{index}".encode()
        testbed.engine.put(key, _FakeMessage(value), NULL_CONTEXT)
    return entries
