"""Per-operation CPU cost model, calibrated against the paper's Table 1.

Every stack component charges its modeled CPU time through one of the
``charge_*`` methods here, tagged with a category; the Table 1 harness
then reads the per-category totals off the request's execution context.

Two profiles exist, matching the paper's testbed:

- :meth:`CostModel.kernel` — the client's regular Linux stack driven by
  ``wrk``: syscall-crossing socket operations, heavier per-segment
  protocol costs.
- :meth:`CostModel.paste` — the server's PASTE stack: busy-polled,
  streamlined datapath, cheaper per-segment costs (the paper picked
  PASTE because it matches kernel-bypass performance while keeping the
  mature kernel TCP).

Calibration targets (paper Table 1, 1 KB write request):

====================  =========  =====================================
component             paper      how it emerges here
====================  =========  =====================================
networking RTT        26.71 µs   client tx+rx path + fabric + server
                                 rx+parse+respond path (null storage)
request preparation    0.70 µs   ``charge_request_prep``
checksum (CRC32C)      1.77 µs   ``charge_crc`` at ~1.71 ns/B + fixed
data copy              1.14 µs   ``charge_store_copy`` at ~1.08 ns/B
buffer alloc + insert  2.78 µs   PM allocator cost + persistent
                                 skip-list traversal (per-node device
                                 access charges, see storage layer)
flush CPU caches       1.94 µs   per-dirty-line clwb + sfence charges
                                 (see ``repro.pm.constants``)
====================  =========  =====================================

The absolute constants are *fits*, not first-principles numbers — the
paper's testbed is physical hardware — but they are per-operation, so
every derived experiment (Figure 2's concurrency sweep, the §4.2
projection benches, the ablations) moves them mechanistically.
"""


class CostModel:
    """Named per-operation CPU costs (all nanoseconds)."""

    def __init__(
        self,
        *,
        name,
        driver_rx,
        driver_tx,
        ip_rx,
        ip_tx,
        tcp_rx,
        tcp_tx,
        sock_deliver,
        sock_send,
        pktbuf_alloc,
        copy_per_byte,
        csum_per_byte,
        csum_fixed,
        ooo_insert,
        http_parse_fixed,
        http_parse_per_byte,
        http_build,
        app_fixed,
        request_prep,
        store_copy_per_byte,
        crc_per_byte,
        crc_fixed,
    ):
        self.name = name
        self.driver_rx = driver_rx
        self.driver_tx = driver_tx
        self.ip_rx = ip_rx
        self.ip_tx = ip_tx
        self.tcp_rx = tcp_rx
        self.tcp_tx = tcp_tx
        self.sock_deliver = sock_deliver
        self.sock_send = sock_send
        self.pktbuf_alloc = pktbuf_alloc
        self.copy_per_byte = copy_per_byte
        self.csum_per_byte = csum_per_byte
        self.csum_fixed = csum_fixed
        self.ooo_insert = ooo_insert
        self.http_parse_fixed = http_parse_fixed
        self.http_parse_per_byte = http_parse_per_byte
        self.http_build = http_build
        self.app_fixed = app_fixed
        self.request_prep = request_prep
        self.store_copy_per_byte = store_copy_per_byte
        self.crc_per_byte = crc_per_byte
        self.crc_fixed = crc_fixed
        self._rebuild_charge_table()

    def _rebuild_charge_table(self):
        """Precompute the flat (category, op) -> ns charge table.

        Fixed-cost charges are the bulk of the per-packet accounting
        (several per simulated frame), so the hot ``charge_*`` methods
        read one precomputed ``(ns, category)`` tuple instead of
        recombining attribute + category string on every call.  Byte-
        proportional charges keep their slope/intercept attributes.
        """
        fixed = {
            ("net.driver", "driver_rx"): self.driver_rx,
            ("net.driver", "driver_tx"): self.driver_tx,
            ("net.ip", "ip_rx"): self.ip_rx,
            ("net.ip", "ip_tx"): self.ip_tx,
            ("net.tcp", "tcp_rx"): self.tcp_rx,
            ("net.tcp", "tcp_tx"): self.tcp_tx,
            ("net.tcp", "ooo_insert"): self.ooo_insert,
            ("net.sock", "sock_deliver"): self.sock_deliver,
            ("net.sock", "sock_send"): self.sock_send,
            ("net.alloc", "pktbuf_alloc"): self.pktbuf_alloc,
            ("net.http", "http_build"): self.http_build,
            ("app", "app_fixed"): self.app_fixed,
            ("datamgmt.prep", "request_prep"): self.request_prep,
        }
        self._charge_table = fixed
        # Hot-path tuples, one per fixed-cost charge method.
        self._t_driver_rx = (self.driver_rx, "net.driver")
        self._t_driver_tx = (self.driver_tx, "net.driver")
        self._t_ip_rx = (self.ip_rx, "net.ip")
        self._t_ip_tx = (self.ip_tx, "net.ip")
        self._t_tcp_rx = (self.tcp_rx, "net.tcp")
        self._t_tcp_tx = (self.tcp_tx, "net.tcp")
        self._t_ooo_insert = (self.ooo_insert, "net.tcp")
        self._t_sock_deliver = (self.sock_deliver, "net.sock")
        self._t_sock_send = (self.sock_send, "net.sock")
        self._t_pktbuf_alloc = (self.pktbuf_alloc, "net.alloc")
        self._t_http_build = (self.http_build, "net.http")
        self._t_app = (self.app_fixed, "app")
        self._t_request_prep = (self.request_prep, "datamgmt.prep")

    @property
    def charge_table(self):
        """The precomputed flat ``(category, op) -> ns`` table (read-only)."""
        return dict(self._charge_table)

    # ------------------------------------------------------------- profiles

    @classmethod
    def paste(cls):
        """Server profile: PASTE busy-polling datapath (paper §3)."""
        return cls(
            name="paste",
            driver_rx=600.0,
            driver_tx=600.0,
            ip_rx=400.0,
            ip_tx=400.0,
            tcp_rx=2900.0,
            tcp_tx=2900.0,
            sock_deliver=600.0,
            sock_send=600.0,
            pktbuf_alloc=300.0,
            copy_per_byte=0.25,
            csum_per_byte=1.1,
            csum_fixed=150.0,
            ooo_insert=300.0,
            http_parse_fixed=1000.0,
            http_parse_per_byte=0.4,
            http_build=600.0,
            app_fixed=900.0,
            request_prep=700.0,
            store_copy_per_byte=1.08,
            crc_per_byte=1.71,
            crc_fixed=20.0,
        )

    @classmethod
    def kernel(cls):
        """Client profile: regular Linux stack + wrk (paper §3)."""
        return cls(
            name="kernel",
            driver_rx=700.0,
            driver_tx=700.0,
            ip_rx=600.0,
            ip_tx=600.0,
            tcp_rx=2100.0,
            tcp_tx=2100.0,
            sock_deliver=1000.0,
            sock_send=1000.0,
            pktbuf_alloc=400.0,
            copy_per_byte=0.25,
            csum_per_byte=1.1,
            csum_fixed=150.0,
            ooo_insert=300.0,
            http_parse_fixed=700.0,
            http_parse_per_byte=0.0,
            http_build=700.0,
            app_fixed=0.0,
            request_prep=700.0,
            store_copy_per_byte=1.08,
            crc_per_byte=1.71,
            crc_fixed=20.0,
        )

    def copy(self, **overrides):
        """A modified copy of this model (used by ablation benches)."""
        fields = {
            key: value for key, value in self.__dict__.items()
            if not key.startswith("_")
        }
        fields.update(overrides)
        return CostModel(**fields)

    # --------------------------------------------------------- network charges

    def charge_driver_rx(self, ctx):
        entry = self._t_driver_rx
        return ctx.charge(entry[0], entry[1])

    def charge_driver_tx(self, ctx):
        entry = self._t_driver_tx
        return ctx.charge(entry[0], entry[1])

    def charge_ip_rx(self, ctx):
        entry = self._t_ip_rx
        return ctx.charge(entry[0], entry[1])

    def charge_ip_tx(self, ctx):
        entry = self._t_ip_tx
        return ctx.charge(entry[0], entry[1])

    def charge_tcp_rx(self, ctx):
        entry = self._t_tcp_rx
        return ctx.charge(entry[0], entry[1])

    def charge_tcp_tx(self, ctx):
        entry = self._t_tcp_tx
        return ctx.charge(entry[0], entry[1])

    def charge_sock_deliver(self, ctx):
        entry = self._t_sock_deliver
        return ctx.charge(entry[0], entry[1])

    def charge_sock_send(self, ctx):
        entry = self._t_sock_send
        return ctx.charge(entry[0], entry[1])

    def charge_pktbuf_alloc(self, ctx):
        entry = self._t_pktbuf_alloc
        return ctx.charge(entry[0], entry[1])

    def charge_copy_to_skb(self, ctx, nbytes):
        return ctx.charge(nbytes * self.copy_per_byte, "net.copy")

    def charge_sw_checksum(self, ctx, nbytes):
        """Software TCP checksum (only when the NIC offload is off)."""
        return ctx.charge(self.csum_fixed + nbytes * self.csum_per_byte, "net.csum")

    def charge_ooo_insert(self, ctx):
        entry = self._t_ooo_insert
        return ctx.charge(entry[0], entry[1])

    def charge_http_parse(self, ctx, nbytes):
        return ctx.charge(
            self.http_parse_fixed + nbytes * self.http_parse_per_byte, "net.http"
        )

    def charge_http_build(self, ctx):
        entry = self._t_http_build
        return ctx.charge(entry[0], entry[1])

    def charge_app(self, ctx):
        """The application's own (non-storage) request handling."""
        entry = self._t_app
        return ctx.charge(entry[0], entry[1])

    # --------------------------------------------------------- storage charges

    def charge_request_prep(self, ctx):
        """Building the store's internal request structure (Table 1 row 1)."""
        entry = self._t_request_prep
        return ctx.charge(entry[0], entry[1])

    def charge_crc(self, ctx, nbytes):
        """Software CRC32C over a stored value (Table 1 row 2)."""
        return ctx.charge(
            self.crc_fixed + nbytes * self.crc_per_byte, "datamgmt.checksum"
        )

    def charge_store_copy(self, ctx, nbytes):
        """Copying the value into the store's own buffer (Table 1 row 3)."""
        return ctx.charge(nbytes * self.store_copy_per_byte, "datamgmt.copy")

    def __repr__(self):
        return f"<CostModel {self.name}>"
