"""Figure 2: latency and throughput over parallel persistent connections.

The paper plots continual 1 KB writes over {1, 25, 50, 75, 100}
connections for two servers — *net.+persist.* (raw copy+flush into PM)
and *net.+data mgmt.+persist.* (full NoveLSM) — and reports that data
management costs 9-28 % of throughput and 11-41 % of latency, growing
with concurrency because the single server core queues requests.

:func:`run_figure2` regenerates both series (optionally a third,
``pktstore``, for the §4.2 projection — Ext-B in DESIGN.md).  The
measurement window scales with the connection count so that each point
covers many queue drains.

Run as ``repro-figure2`` or call :func:`run_figure2`.
"""

from repro.bench.report import format_table, us
from repro.bench.testbed import make_testbed
from repro.storage.server import ServerConfig
from repro.bench.wrk import WrkClient

CONNECTIONS = (1, 25, 50, 75, 100)

#: The paper's headline bands for the NoveLSM-vs-raw penalty.
PAPER_THROUGHPUT_PENALTY = (9.0, 28.0)
PAPER_LATENCY_PENALTY = (11.0, 41.0)


class Figure2Point:
    __slots__ = ("engine", "connections", "avg_rtt_us", "p50_rtt_us",
                 "p99_rtt_us", "throughput_krps", "samples")

    def __init__(self, engine, connections, stats):
        self.engine = engine
        self.connections = connections
        self.avg_rtt_us = stats.avg_rtt_us
        # Exact order-statistic percentiles (linear interpolation), not
        # the truncated-index neighbour — see WrkStats.percentile_us.
        self.p50_rtt_us = stats.percentile_us(50)
        self.p99_rtt_us = stats.percentile_us(99)
        self.throughput_krps = stats.throughput_krps
        self.samples = len(stats.rtts_ns)

    def __repr__(self):
        return (
            f"<Figure2Point {self.engine} n={self.connections} "
            f"{self.avg_rtt_us:.1f}us {self.throughput_krps:.1f}krps>"
        )


def measure_point(engine, connections, value_size=1024,
                  base_duration_ns=5_000_000.0, base_warmup_ns=1_500_000.0):
    """One (engine, connection-count) cell of Figure 2."""
    duration = max(base_duration_ns, connections * 120_000.0)
    warmup = max(base_warmup_ns, connections * 40_000.0)
    testbed = make_testbed(ServerConfig(engine=engine))
    wrk = WrkClient(
        testbed.client, "10.0.0.1", connections=connections,
        value_size=value_size, duration_ns=duration, warmup_ns=warmup,
    )
    stats = wrk.run()
    return Figure2Point(engine, connections, stats)


def run_figure2(connections=CONNECTIONS, engines=("rawpm", "novelsm"), **kwargs):
    """The full sweep; returns {engine: [Figure2Point, ...]}."""
    series = {engine: [] for engine in engines}
    for count in connections:
        for engine in engines:
            series[engine].append(measure_point(engine, count, **kwargs))
    return series


def penalties(series):
    """Per-connection-count penalty of novelsm vs rawpm (percent)."""
    out = []
    for raw, nov in zip(series["rawpm"], series["novelsm"]):
        latency = (nov.avg_rtt_us / raw.avg_rtt_us - 1.0) * 100.0
        throughput = (1.0 - nov.throughput_krps / raw.throughput_krps) * 100.0
        out.append((raw.connections, latency, throughput))
    return out


def render(series):
    rows = []
    for engine, points in series.items():
        for point in points:
            rows.append((
                engine, point.connections, us(point.avg_rtt_us),
                us(point.p50_rtt_us), us(point.p99_rtt_us),
                us(point.throughput_krps), point.samples,
            ))
    table = format_table(
        "Figure 2: continual 1 KB writes over parallel TCP connections",
        ["series", "conns", "avg RTT (µs)", "p50 (µs)", "p99 (µs)",
         "tput (krps)", "samples"],
        rows,
    )
    if "rawpm" in series and "novelsm" in series:
        lines = [table, "", "Data-management penalty (novelsm vs rawpm):"]
        for conns, latency, throughput in penalties(series):
            lines.append(
                f"  n={conns:<4d} latency +{latency:.1f}%   throughput -{throughput:.1f}%"
            )
        lines.append(
            f"  paper: latency +{PAPER_LATENCY_PENALTY[0]:.0f}..{PAPER_LATENCY_PENALTY[1]:.0f}%"
            f"   throughput -{PAPER_THROUGHPUT_PENALTY[0]:.0f}..{PAPER_THROUGHPUT_PENALTY[1]:.0f}%"
        )
        return "\n".join(lines)
    return table


def main():
    import sys

    engines = ("rawpm", "novelsm")
    if "--with-pktstore" in sys.argv:
        engines = ("rawpm", "novelsm", "pktstore")
    print(render(run_figure2(engines=engines)))


if __name__ == "__main__":
    main()
