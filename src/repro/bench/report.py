"""Plain-text experiment reports: paper value vs measured, side by side."""


def format_table(title, headers, rows):
    """Render an aligned text table."""
    widths = [len(h) for h in headers]
    rendered = []
    for row in rows:
        cells = [str(cell) for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        rendered.append(cells)
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "-" * len(line)
    out = [title, sep, line, sep]
    for cells in rendered:
        out.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    out.append(sep)
    return "\n".join(out)


def us(value):
    return f"{value:.2f}"


def pct_delta(measured, paper):
    """Signed relative error of measured vs the paper's value."""
    if paper == 0:
        return "n/a"
    return f"{(measured - paper) / paper * 100:+.1f}%"
