"""Saturation soaks: sweep open-loop offered load past the knee.

The paper's Figure 2 stops at 100 closed-loop connections — a regime
where the load generator politely waits whenever the server is slow.
This driver is the opposite experiment (docs/WORKLOADS.md): the
:class:`~repro.bench.openloop.OpenLoopSource` offers load the server
cannot silence, a fresh testbed is built per offered-load point, and
the sweep walks straight past the capacity knee.  The system under
test is the PR 2 overload machinery: past the knee the *correct*
behaviour is to shed load fast and keep the latency of what it still
admits bounded.

Each point runs with an :class:`~repro.core.overload.OverloadController`
watching a :class:`~repro.core.overload.QueuePressure` source over the
server's cores — memory watermarks alone never fire when a bounded
socket pool caps in-flight requests, so queue delay is the signal that
makes admission control engage at CPU saturation.

Oracles (the soak fails, exit code 1, if any trips):

================  ==========================================================
oracle            asserts
================  ==========================================================
bounded-tail      admitted (status-200) p99, scheduled-arrival attribution,
                  stays under ``--p99-budget-us`` at every point
digest-conform    the mergeable t-digest p99 matches the exact order
                  statistic within 20 % (tails must be trustworthy)
shed-engages      the top offered-load point sheds (vacuity guard: a sweep
                  that never saturates proves nothing)
shed-before-      the server's rx pool never reports an exhaustion —
exhaustion        admission control must act *before* the allocator fails
rx-leak           after drain + settle, ``server.rx_pool.in_use`` equals
                  ``engine.store.owned`` (every live rx buffer is owned by
                  the store, none leaked by the request path)
tx-leak           ``server.tx_pool.in_use`` returns to its pre-run baseline
refcount          walking the store: each owned buffer's index references
                  are consistent (no use-after-free, no leaked refs)
churn-safety      the client never reused a churned-away connection
================  ==========================================================

``--no-containment`` removes the overload controller (the negative
control): the bounded-tail / exhaustion oracles must then trip, and CI
runs it with ``--expect-violations`` to prove the acceptance isn't
vacuous — the same pattern as ``repro-chaoscheck``.

The JSON export (``--json``, schema ``repro-bench-soak/v1``) carries
the latency-vs-offered-load curve: per point offered/goodput krps,
digest + exact p50/p99/p99.9, shed/degrade/backpressure counters, and
a knee estimate interpolated from where goodput stops tracking offered
load.  ``BENCH_soak.json`` at the repo root is a committed canned
sweep; ``tests/test_bench_soak.py`` asserts the knee shape on it.
"""

import argparse
import json
import sys

from repro.bench.openloop import (BurstModulation, DiurnalModulation,
                                  OpenLoopSource)
from repro.bench.testbed import SERVER_IP, make_testbed
from repro.bench.wrk import OpenLoopWrkClient
from repro.core.overload import OverloadController, QueuePressure
from repro.storage.server import ServerConfig

SOAK_SCHEMA = "repro-bench-soak/v1"

#: Rx-pool slot size (bytes) used to size under-provisioned testbeds,
#: mirroring the chaos harness.
SLOT = 2048

#: Goodput must track offered load within this factor for a point to
#: count as pre-knee.
KNEE_TRACKING = 0.95

#: Relative tolerance between the digest p99 and the exact-sample p99.
DIGEST_TOLERANCE = 0.20

#: Fewest admitted samples before the tail oracles are meaningful.
MIN_TAIL_SAMPLES = 50


class SoakReport:
    """Everything one sweep produced: points, oracles, knee estimate."""

    def __init__(self, config):
        self.config = config
        self.points = []
        self.violations = []

    @property
    def ok(self):
        return not self.violations

    def violate(self, kind, detail):
        self.violations.append((kind, detail))

    @property
    def knee_krps(self):
        """Offered load where goodput stops tracking, interpolated.

        Returns None while every point still tracks (the sweep never
        crossed the knee) — the shed-engages oracle catches that.
        """
        previous = None
        for point in self.points:
            offered = point["offered_krps"]
            if offered <= 0:
                continue
            tracking = point["goodput_krps"] / offered
            if tracking < KNEE_TRACKING:
                if previous is None:
                    return offered
                prev_offered, prev_tracking = previous
                span = prev_tracking - tracking
                if span <= 0:
                    return offered
                frac = (prev_tracking - KNEE_TRACKING) / span
                return prev_offered + frac * (offered - prev_offered)
            previous = (offered, tracking)
        return None

    def as_dict(self):
        return {
            "schema": SOAK_SCHEMA,
            "config": self.config,
            "points": self.points,
            "knee_krps": self.knee_krps,
            "violations": [f"{kind}: {detail}"
                           for kind, detail in self.violations],
            "ok": self.ok,
        }

    def render(self):
        lines = [
            f"[soak] {len(self.points)} offered-load points, "
            f"containment {'on' if self.config['containment'] else 'OFF'}"
        ]
        header = (f"{'offered':>9} {'goodput':>9} {'p50':>8} {'p99':>8} "
                  f"{'p99.9':>8} {'shed':>7} {'degr':>6} {'backlog':>7}")
        lines.append(f"[soak] {header}")
        for p in self.points:
            lines.append(
                f"[soak] {p['offered_krps']:>8.1f}k {p['goodput_krps']:>8.1f}k "
                f"{p['p50_us']:>7.1f}µ {p['p99_us']:>7.1f}µ "
                f"{p['p999_us']:>7.1f}µ {p['shed']:>7} "
                f"{p['degrade_decisions']:>6} {p['backlog_peak']:>7}"
            )
        knee = self.knee_krps
        lines.append(f"[soak] knee ≈ {knee:.1f} krps" if knee is not None
                     else "[soak] knee not reached")
        if self.violations:
            lines.append(f"[soak] {len(self.violations)} violation(s):")
            for kind, detail in self.violations[:10]:
                lines.append(f"[soak]   {kind}: {detail}")
        else:
            lines.append("[soak] all oracles clean")
        return "\n".join(lines)


def check_schema(doc):
    """Validate an exported soak document; returns it (CI gate)."""
    assert doc.get("schema") == SOAK_SCHEMA, doc.get("schema")
    for key in ("config", "points", "knee_krps", "violations", "ok"):
        assert key in doc, f"missing {key}"
    assert doc["points"], "no points"
    point_keys = {
        "rate_krps", "offered_krps", "goodput_krps", "admitted", "shed",
        "storage_full", "errors", "abandoned", "churns", "handshakes",
        "resets", "backlog_peak", "backlog_at_stop", "p50_us", "p99_us",
        "p999_us", "digest_p50_us", "digest_p99_us", "digest_p999_us",
        "avg_us", "degrade_decisions", "deferred", "reclaims",
        "pressure_transitions", "rx_exhaustions", "under_pressure_final",
    }
    for point in doc["points"]:
        missing = point_keys - set(point)
        assert not missing, f"point missing {sorted(missing)}"
        assert point["offered_krps"] >= 0
    rates = [p["rate_krps"] for p in doc["points"]]
    assert rates == sorted(rates), "points must be sorted by rate"
    return doc


def _build_point_testbed(args, containment):
    controller = None
    if containment:
        controller = OverloadController()
    config = ServerConfig(
        engine="pktstore", cores=args["cores"],
        overload=controller, metrics=True,
    )
    testbed = make_testbed(
        config=config, paste_pool_bytes=args["pool_slots"] * SLOT,
    )
    if controller is not None:
        controller.watch(QueuePressure(
            testbed.server,
            high_ns=args["pressure_high_us"] * 1_000.0,
            low_ns=args["pressure_low_us"] * 1_000.0,
        ))
    return testbed, controller


def _leak_oracles(report, label, testbed, tx_baseline):
    registry = testbed.metrics
    rx_in_use = registry.value("server.rx_pool.in_use")
    owned = registry.value("engine.store.owned")
    if rx_in_use != owned:
        report.violate(
            "rx-leak",
            f"{label}: rx_pool.in_use {rx_in_use:.0f} != "
            f"store.owned {owned:.0f} after drain",
        )
    tx_in_use = registry.value("server.tx_pool.in_use")
    if tx_in_use > tx_baseline:
        report.violate(
            "tx-leak",
            f"{label}: tx_pool.in_use {tx_in_use:.0f} > "
            f"baseline {tx_baseline:.0f} after drain",
        )
    store = getattr(testbed.engine, "store", None)
    if store is not None and hasattr(store, "_refs") and \
            hasattr(store, "_buffers"):
        # Refcount-exact walk (mirrors the chaos oracle): each adopted
        # buffer's refcount equals the references the store holds on it
        # — nothing else may pin storage buffers after the drain.
        held = {}
        for refs in store._refs.values():
            for buf in refs:
                held[buf.slot] = held.get(buf.slot, 0) + 1
        for slot, buf in store._buffers.items():
            expected = held.get(slot, 0)
            if buf.refcount != expected:
                report.violate(
                    "refcount",
                    f"{label}: slot {slot} refcount {buf.refcount}, "
                    f"store holds {expected}",
                )
                break


def run_point(rate_rps, args, report, containment=True):
    """One offered-load point on a fresh testbed; returns the record."""
    label = f"{rate_rps / 1e3:.0f}krps"
    testbed, controller = _build_point_testbed(args, containment)
    burst = None
    if args["burst_factor"] > 1.0:
        burst = BurstModulation(factor=args["burst_factor"])
    diurnal = None
    if args["diurnal_amplitude"] > 0.0:
        diurnal = DiurnalModulation(amplitude=args["diurnal_amplitude"])
    source = OpenLoopSource(
        rate_rps, clients=args["clients"], key_space=args["key_space"],
        value_size=args["value_size"], theta=args["theta"],
        read_fraction=args["read_fraction"], churn=args["churn"],
        seed=args["seed"], burst=burst, diurnal=diurnal,
    )
    client = OpenLoopWrkClient(
        testbed.client, SERVER_IP, source, sockets=args["sockets"],
        duration_ns=args["duration_us"] * 1_000.0,
        warmup_ns=args["warmup_us"] * 1_000.0,
    )
    testbed.recorder.attach_openloop(client)
    registry = testbed.metrics
    tx_baseline = registry.value("server.tx_pool.in_use")

    stats = client.run()
    # Settle: let retransmissions/FINs finish so gauges are at rest.
    testbed.sim.run(until=testbed.sim.now + 2_000_000.0)

    overload_stats = controller.stats if controller is not None else {}
    point = {
        "rate_krps": rate_rps / 1e3,
        "offered_krps": stats.offered_krps,
        "goodput_krps": stats.goodput_krps,
        "admitted": stats.admitted,
        "shed": stats.shed,
        "storage_full": stats.storage_full,
        "errors": stats.errors,
        "abandoned": stats.abandoned,
        "churns": stats.churns,
        "handshakes": stats.handshakes,
        "resets": stats.resets,
        "backlog_peak": stats.backlog_peak,
        "backlog_at_stop": stats.backlog_at_stop,
        "avg_us": stats.avg_rtt_us,
        "p50_us": stats.percentile_us(50),
        "p99_us": stats.percentile_us(99),
        "p999_us": stats.percentile_us(99.9),
        "digest_p50_us": stats.digest_percentile_us(50),
        "digest_p99_us": stats.digest_percentile_us(99),
        "digest_p999_us": stats.digest_percentile_us(99.9),
        "degrade_decisions": overload_stats.get("degrade_decisions", 0),
        "deferred": overload_stats.get("deferred", 0),
        "reclaims": overload_stats.get("reclaims", 0),
        "pressure_transitions": overload_stats.get("pressure_transitions", 0),
        "rx_exhaustions": testbed.server.rx_pool.exhaustions,
        "under_pressure_final": bool(
            controller.under_pressure) if controller is not None else False,
    }
    report.points.append(point)

    # -- point oracles --------------------------------------------------------
    if stats.admitted >= MIN_TAIL_SAMPLES:
        if point["p99_us"] > args["p99_budget_us"]:
            report.violate(
                "bounded-tail",
                f"{label}: admitted p99 {point['p99_us']:.1f}µs over the "
                f"{args['p99_budget_us']:.0f}µs budget",
            )
        exact, digest = point["p99_us"], point["digest_p99_us"]
        if exact > 0 and abs(digest - exact) > DIGEST_TOLERANCE * exact:
            report.violate(
                "digest-conform",
                f"{label}: digest p99 {digest:.1f}µs vs exact "
                f"{exact:.1f}µs (> {DIGEST_TOLERANCE:.0%})",
            )
    elif containment:
        report.violate(
            "bounded-tail",
            f"{label}: only {stats.admitted} admitted samples — the "
            f"point is vacuous (window too short or server wedged)",
        )
    if point["rx_exhaustions"] > 0:
        report.violate(
            "shed-before-exhaustion",
            f"{label}: rx pool reported {point['rx_exhaustions']} "
            f"exhaustions — admission control engaged too late",
        )
    if client.use_after_close > 0:
        report.violate(
            "churn-safety",
            f"{label}: {client.use_after_close} sends on churned "
            f"connections",
        )
    _leak_oracles(report, label, testbed, tx_baseline)
    return point


def run_soak(rates_rps, args, containment=True):
    """Sweep ``rates_rps`` (ascending), one fresh testbed per point."""
    config = dict(args)
    config["rates_krps"] = [r / 1e3 for r in rates_rps]
    config["containment"] = containment
    report = SoakReport(config)
    for rate in sorted(rates_rps):
        run_point(rate, args, report, containment=containment)
    if containment:
        # Vacuity guard: a sweep whose top point never sheds either
        # stopped short of the knee or proves admission control inert.
        top = report.points[-1]
        if top["shed"] <= 0:
            report.violate(
                "shed-engages",
                f"top point {top['rate_krps']:.0f}krps shed nothing — "
                f"the sweep never saturated the server",
            )
    return report


def default_args():
    """The canned-soak parameter set (BENCH_soak.json is built from
    these; tests and the CLI share them so the committed curve is
    reproducible by ``repro-bench-soak --json BENCH_soak.json``)."""
    return {
        "cores": 1,
        "sockets": 32,
        "clients": 200_000,
        "key_space": 2_000,
        "value_size": 256,
        "theta": 0.99,
        "read_fraction": 0.0,
        "churn": 0.002,
        "seed": 1,
        "duration_us": 30_000.0,
        "warmup_us": 5_000.0,
        "pool_slots": 4096,
        "pressure_high_us": 150.0,
        "pressure_low_us": 40.0,
        "p99_budget_us": 400.0,
        "burst_factor": 1.0,
        "diurnal_amplitude": 0.0,
    }


#: The committed sweep: below the knee (~42 krps on the calibrated
#: single-core testbed), at it, and past it — but inside the shed-path
#: CPU capacity (~80 krps), beyond which even answering 503s saturates
#: the core and nothing can bound the admitted tail (the "second knee",
#: docs/WORKLOADS.md).
DEFAULT_RATES_KRPS = (30.0, 45.0, 55.0, 60.0)


def build_parser():
    defaults = default_args()
    parser = argparse.ArgumentParser(
        prog="repro-bench-soak",
        description="Open-loop saturation soak: sweep offered load past "
                    "the knee, oracle-check the overload machinery, and "
                    "export the latency-vs-offered-load curve.",
    )
    parser.add_argument("--rates", default=None,
                        help="comma-separated offered loads in krps "
                             f"(default: {','.join(str(r) for r in DEFAULT_RATES_KRPS)})")
    parser.add_argument("--duration-us", type=float,
                        default=defaults["duration_us"],
                        help="measured window per point, µs of sim time")
    parser.add_argument("--warmup-us", type=float,
                        default=defaults["warmup_us"],
                        help="warmup before measuring")
    parser.add_argument("--sockets", type=int, default=defaults["sockets"],
                        help="bounded socket pool size")
    parser.add_argument("--clients", type=int, default=defaults["clients"],
                        help="logical client population")
    parser.add_argument("--key-space", type=int,
                        default=defaults["key_space"],
                        help="Zipf key universe")
    parser.add_argument("--theta", type=float, default=defaults["theta"],
                        help="Zipf skew")
    parser.add_argument("--churn", type=float, default=defaults["churn"],
                        help="per-arrival fresh-connection probability")
    parser.add_argument("--value-size", type=int,
                        default=defaults["value_size"],
                        help="PUT value bytes")
    parser.add_argument("--read-fraction", type=float,
                        default=defaults["read_fraction"],
                        help="GET fraction of the op mix")
    parser.add_argument("--cores", type=int, default=defaults["cores"],
                        help="server cores")
    parser.add_argument("--pool-slots", type=int,
                        default=defaults["pool_slots"],
                        help="server rx pool slots (x2048 bytes)")
    parser.add_argument("--seed", type=int, default=defaults["seed"])
    parser.add_argument("--burst-factor", type=float,
                        default=defaults["burst_factor"],
                        help="square-wave burst multiplier (1 = off)")
    parser.add_argument("--diurnal-amplitude", type=float,
                        default=defaults["diurnal_amplitude"],
                        help="sinusoidal swing amplitude (0 = off)")
    parser.add_argument("--p99-budget-us", type=float,
                        default=defaults["p99_budget_us"],
                        help="bounded-tail oracle budget for admitted p99")
    parser.add_argument("--pressure-high-us", type=float,
                        default=defaults["pressure_high_us"],
                        help="queue-delay shed threshold")
    parser.add_argument("--pressure-low-us", type=float,
                        default=defaults["pressure_low_us"],
                        help="queue-delay relief threshold")
    parser.add_argument("--no-containment", action="store_true",
                        help="drop the overload controller (negative "
                             "control; oracles should trip)")
    parser.add_argument("--expect-violations", action="store_true",
                        help="exit 0 only if the oracles DID trip")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the soak document as JSON "
                             "('-' for stdout)")
    return parser


def main(argv=None):
    parser = build_parser()
    cli = parser.parse_args(argv)
    rates_krps = DEFAULT_RATES_KRPS if cli.rates is None else tuple(
        float(r) for r in cli.rates.split(",")
    )
    args = default_args()
    args.update({
        "cores": cli.cores, "sockets": cli.sockets, "clients": cli.clients,
        "key_space": cli.key_space, "value_size": cli.value_size,
        "theta": cli.theta, "read_fraction": cli.read_fraction,
        "churn": cli.churn, "seed": cli.seed,
        "duration_us": cli.duration_us, "warmup_us": cli.warmup_us,
        "pool_slots": cli.pool_slots,
        "pressure_high_us": cli.pressure_high_us,
        "pressure_low_us": cli.pressure_low_us,
        "p99_budget_us": cli.p99_budget_us,
        "burst_factor": cli.burst_factor,
        "diurnal_amplitude": cli.diurnal_amplitude,
    })
    report = run_soak(
        [r * 1e3 for r in rates_krps], args,
        containment=not cli.no_containment,
    )
    print(report.render())
    if cli.json is not None:
        text = json.dumps(report.as_dict(), indent=2, sort_keys=True)
        if cli.json == "-":
            print(text)
        else:
            with open(cli.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"[soak] document written to {cli.json}")
    if cli.expect_violations:
        if report.ok:
            print("[soak] FAIL: expected violations, sweep was clean")
            return 1
        print(f"[soak] OK ({len(report.violations)} violations, "
              f"as expected)")
        return 0
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
