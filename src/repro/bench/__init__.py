"""Benchmark harness: cost model, workload generator, experiment drivers.

- :mod:`repro.bench.costmodel` — per-operation CPU costs, calibrated to
  the paper's Table 1.
- :mod:`repro.bench.wrk` — the ``wrk``-like closed-loop HTTP load
  generator used for every experiment.
- :mod:`repro.bench.testbed` — one-call construction of the paper's
  two-host testbed in every storage configuration.
- :mod:`repro.bench.table1` / :mod:`repro.bench.figure2` — drivers that
  regenerate the paper's Table 1 and Figure 2 (plus the extension
  experiments indexed in DESIGN.md).
"""

from repro.bench.costmodel import CostModel

__all__ = ["CostModel"]
