"""Wall-clock speed benchmark: how fast the *simulator itself* runs.

Everything else in :mod:`repro.bench` measures simulated time; this
module measures real time.  It runs canned, fully deterministic
scenarios (seeded workloads, fixed durations) and reports how much
simulated work the process gets through per wall-clock second:

- ``wrk-tcp``              — wrk closed loop over the full TCP stack
                             against a NoveLSM server (YCSB-A mix),
- ``homa-storm``           — Homa request storm against a 4-core
                             NoveLSM server,
- ``novelsm-ingest-recovery`` — direct NoveLSM ingest into PM, a
                             deterministic crash, and reattach.

The numbers land in ``BENCH_speed.json`` at the repo root — the perf
trajectory CI gates on (``repro-bench-speed --check``).  Because raw
ops/wall-second is machine-dependent, every run also measures a
calibration score (a fixed pure-Python workload) and the gate compares
*normalized* throughput: ops per second divided by calibration
iterations per second.  See docs/PERFORMANCE.md.

Determinism is non-negotiable: the *simulated* results of every
scenario (event sequence, op counts, recovered state, metric
snapshots) must be bit-identical run to run and before/after any
optimization — ``--golden`` captures exactly that for the equivalence
suite in tests/test_speed_equivalence.py.
"""

# pmlint: disable-file=DET-01 — this module's purpose is wall-clock
# measurement; all perf_counter() results feed wall-second reporting
# only and never influence simulated behaviour.

import argparse
import hashlib
import json
import sys
import time

from repro.bench.costmodel import CostModel
from repro.bench.testbed import SERVER_IP, make_testbed, preload
from repro.bench.workloads import YcsbWorkload, ZipfianGenerator
from repro.bench.wrk import HomaWrkClient, WrkClient
from repro.cluster.topology import ClusterConfig, build_cluster, \
    preload_cluster
from repro.net.checksum import crc32c
from repro.pm.device import PMDevice
from repro.pm.namespace import PMNamespace
from repro.sim.context import NULL_CONTEXT
from repro.storage.engines import NoveLSMEngine
from repro.storage.lsm import novelsm_reattach, novelsm_store
from repro.storage.server import ServerConfig
from repro.testing.journal import OpJournal

SCHEMA = "repro-bench-speed/v1"
DEFAULT_BASELINE = "BENCH_speed.json"
DEFAULT_TOLERANCE = 0.85


def _perf_counter():
    return time.perf_counter()


def _peak_rss_kb():
    """Process high-water RSS in KiB (0 where resource is unavailable)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":
        return int(usage // 1024)
    return int(usage)


# --------------------------------------------------------------- calibration

def _calibration_pass(n=120_000):
    """One fixed pure-Python workload pass; returns iterations/second."""
    data = bytes(range(256)) * 4
    start = _perf_counter()
    acc = 0
    for i in range(n):
        acc = (acc + i * i) & 0xFFFFFFFF
        if not i % 64:
            acc ^= data[i & 1023]
    elapsed = _perf_counter() - start
    if acc < 0:  # pragma: no cover - keeps the loop un-elidable
        raise AssertionError
    return n / elapsed


def calibrate(loops=3):
    """Machine-speed score: best of ``loops`` calibration passes.

    The score normalizes ops/wall-second across machines so the CI gate
    can compare a laptop-generated baseline against a CI runner.
    """
    return max(_calibration_pass() for _ in range(max(1, loops)))


# ------------------------------------------------------------ golden capture

class _EventDigest:
    """Watcher that folds the fired-event stream into one sha256.

    Hashing (time, seq, callback qualname) per event pins the *exact*
    dispatch order: any optimization that reorders, drops, duplicates,
    or re-times an event changes the digest.
    """

    def __init__(self, sim):
        self._hash = hashlib.sha256()
        self.count = 0
        sim.add_watcher(self)

    def __call__(self, event):
        fn = event.fn
        name = getattr(fn, "__qualname__", None) or repr(fn)
        self._hash.update(
            f"{event.time!r}|{event.seq}|{name}\n".encode()
        )
        self.count += 1

    def hexdigest(self):
        return self._hash.hexdigest()


def _stats_golden(stats):
    """Deterministic summary of one WrkStats (floats round-trip exactly)."""
    return {
        "completed": stats.completed,
        "errors": stats.errors,
        "rtt_count": len(stats.rtts_ns),
        "rtt_sum_ns": sum(stats.rtts_ns),
        "avg_rtt_us": stats.avg_rtt_us,
        "p50_us": stats.percentile_us(50),
        "p99_us": stats.percentile_us(99),
        "throughput_krps": stats.throughput_krps,
    }


# ------------------------------------------------------------------ scenarios

def scenario_wrk_tcp(scale=1.0, golden=False):
    """wrk closed loop (YCSB-A) over TCP against a 1-core NoveLSM server."""
    config = ServerConfig(engine="novelsm", metrics=golden)
    testbed = make_testbed(config=config)
    preload(testbed, entries=200, value_size=1024)
    workload = YcsbWorkload(mix="A", key_space=200, value_size=1024, seed=7)
    client = WrkClient(
        testbed.client, SERVER_IP, connections=8, value_size=1024,
        duration_ns=scale * 20_000_000.0, warmup_ns=2_000_000.0,
        workload=workload,
    )
    digest = _EventDigest(testbed.sim) if golden else None
    stats = client.run()
    result = {
        "ops": stats.completed,
        "events": testbed.sim.events_fired,
        "sim_ns": testbed.sim.now,
    }
    if golden:
        result["golden"] = {
            "event_digest": digest.hexdigest(),
            "events_fired": testbed.sim.events_fired,
            "sim_now_ns": testbed.sim.now,
            "stats": _stats_golden(stats),
            "reads": workload.issued_reads,
            "writes": workload.issued_writes,
            "metrics": testbed.metrics.snapshot(),
        }
    return result


def scenario_homa_storm(scale=1.0, golden=False):
    """12 closed loops of Homa RPCs against a 4-core NoveLSM server."""
    config = ServerConfig(transport="homa", engine="novelsm", cores=4,
                          metrics=golden)
    testbed = make_testbed(config=config)
    preload(testbed, entries=100, value_size=512)
    client = HomaWrkClient(
        testbed.client, SERVER_IP, connections=12, value_size=512,
        method="PUT", duration_ns=scale * 10_000_000.0,
        warmup_ns=2_000_000.0,
    )
    digest = _EventDigest(testbed.sim) if golden else None
    stats = client.run()
    result = {
        "ops": stats.completed,
        "events": testbed.sim.events_fired,
        "sim_ns": testbed.sim.now,
    }
    if golden:
        result["golden"] = {
            "event_digest": digest.hexdigest(),
            "events_fired": testbed.sim.events_fired,
            "sim_now_ns": testbed.sim.now,
            "stats": _stats_golden(stats),
            "metrics": testbed.metrics.snapshot(),
        }
    return result


class _Value:
    """Minimal message shim for driving an engine without a network."""

    __slots__ = ("body",)

    def __init__(self, body):
        self.body = body

    body_slices = ()
    hw_tstamp = None
    wire_csum = None

    def release(self):
        pass


def scenario_novelsm_ingest_recovery(scale=1.0, golden=False):
    """Zipf-keyed NoveLSM ingest into PM, deterministic crash, reattach."""
    n_ops = max(1, int(scale * 2500))
    device = PMDevice(96 << 20, name="speed-pm")
    ns = PMNamespace(device)
    store = novelsm_store(ns, arena_size=64 << 20, memtable_limit=1 << 30,
                          seed=5)
    engine = NoveLSMEngine(store, CostModel.paste())
    journal = OpJournal(lambda: device.tracker.stores)
    zipf = ZipfianGenerator(2000, seed=11)
    value = bytes((0x41 + (i % 26)) for i in range(1024))
    for index in range(n_ops):
        key = f"ik-{zipf.next():05d}".encode()
        op = journal.begin("put", key, index)
        engine.put(key, _Value(value), NULL_CONTEXT)
        journal.commit(op)
    dirty_at_crash = len(device.tracker.dirty)
    device.crash()  # rng=None: deterministic conservative drop
    recovered_ns = PMNamespace.reopen(device)
    recovered = novelsm_reattach(recovered_ns, arena_size=64 << 20, seed=5)
    events = (device.tracker.stores + device.tracker.flushes
              + device.tracker.fences)
    result = {
        "ops": n_ops + recovered.count_recovered,
        "events": events,
        "sim_ns": 0.0,
    }
    if golden:
        mapping_hash = hashlib.sha256()
        for key, val in sorted(recovered.scan()):
            mapping_hash.update(key)
            mapping_hash.update(hashlib.sha256(val).digest())
        journal_hash = hashlib.sha256()
        for op in journal.ops:
            journal_hash.update(
                f"{op.op_id}|{op.kind}|{op.key!r}|"
                f"{op.begin_event}|{op.commit_event}\n".encode()
            )
        result["golden"] = {
            "count_recovered": recovered.count_recovered,
            "recovered_digest": mapping_hash.hexdigest(),
            "journal_digest": journal_hash.hexdigest(),
            "stores": device.tracker.stores,
            "flushes": device.tracker.flushes,
            "fences": device.tracker.fences,
            "dirty_at_crash": dirty_at_crash,
            "value_crc": crc32c(value),
        }
    return result


def scenario_cluster_2shard(scale=1.0, golden=False):
    """Sharded PUT storm over a 2-host replicated cluster (sync acks).

    Every request crosses the fabric twice before its 200: client ->
    primary, then the forwarded packet primary -> backup.  The number
    this scenario guards is the whole replication hot path — ring
    routing, store-and-forward, backup apply, deferred acks.
    """
    cluster = build_cluster(ClusterConfig(hosts=2, metrics=golden))
    preload_cluster(cluster, entries=50, value_size=512)
    route = cluster.router.primary

    def route_ip(key):
        return cluster.nodes[route(key)].ip

    client = HomaWrkClient(
        cluster.client, None, port=cluster.config.port, connections=8,
        value_size=512, method="PUT", key_space=64,
        duration_ns=scale * 8_000_000.0, warmup_ns=2_000_000.0,
        route=route_ip,
    )
    digest = _EventDigest(cluster.sim) if golden else None
    stats = client.run()
    result = {
        "ops": stats.completed,
        "events": cluster.sim.events_fired,
        "sim_ns": cluster.sim.now,
    }
    if golden:
        repl = {name: dict(node.replicator.stats)
                for name, node in cluster.nodes.items()}
        apply_stats = {name: dict(node.applier.stats)
                       for name, node in cluster.nodes.items()}
        result["golden"] = {
            "event_digest": digest.hexdigest(),
            "events_fired": cluster.sim.events_fired,
            "sim_now_ns": cluster.sim.now,
            "stats": _stats_golden(stats),
            "replication": repl,
            "apply": apply_stats,
            "metrics": cluster.metrics.snapshot(),
        }
    return result


SCENARIOS = {
    "wrk-tcp": scenario_wrk_tcp,
    "homa-storm": scenario_homa_storm,
    "novelsm-ingest-recovery": scenario_novelsm_ingest_recovery,
    "cluster-2shard": scenario_cluster_2shard,
}


# ------------------------------------------------------------------- running

def run_scenario(name, scale=1.0, golden=False):
    """Run one scenario; returns its dict with wall-clock fields added."""
    fn = SCENARIOS[name]
    start = _perf_counter()
    result = fn(scale=scale, golden=golden)
    wall_s = _perf_counter() - start
    result["wall_s"] = wall_s
    result["ops_per_wall_s"] = result["ops"] / wall_s if wall_s > 0 else 0.0
    result["events_per_wall_s"] = (
        result["events"] / wall_s if wall_s > 0 else 0.0
    )
    result["peak_rss_kb"] = _peak_rss_kb()
    return result


def run_all(scale=1.0, scenarios=None, calibration_loops=3):
    """Run the canned scenarios; returns the schema'd document."""
    names = list(scenarios or SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r}; pick from {sorted(SCENARIOS)}"
            )
    score = calibrate(calibration_loops)
    doc = {
        "schema": SCHEMA,
        "scale": scale,
        "calibration": {"score": score, "loops": calibration_loops},
        "scenarios": {},
    }
    total_ops = 0
    total_wall = 0.0
    for name in names:
        result = run_scenario(name, scale=scale)
        result.pop("golden", None)
        result["normalized_ops_per_wall_s"] = result["ops_per_wall_s"] / score
        doc["scenarios"][name] = result
        total_ops += result["ops"]
        total_wall += result["wall_s"]
    aggregate_ops_per_s = total_ops / total_wall if total_wall > 0 else 0.0
    doc["aggregate"] = {
        "total_ops": total_ops,
        "total_wall_s": total_wall,
        "ops_per_wall_s": aggregate_ops_per_s,
        "normalized_ops_per_wall_s": aggregate_ops_per_s / score,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return doc


# --------------------------------------------------------------- schema check

def check_schema(doc, min_scenarios=3):
    """Validate a BENCH_speed document; raises ValueError on mismatch."""
    if not isinstance(doc, dict):
        raise ValueError("document must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"schema mismatch: want {SCHEMA!r}, got {doc.get('schema')!r}"
        )
    calibration = doc.get("calibration")
    if not isinstance(calibration, dict) or \
            not isinstance(calibration.get("score"), (int, float)) or \
            calibration["score"] <= 0:
        raise ValueError("calibration.score must be a positive number")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or len(scenarios) < min_scenarios:
        raise ValueError(
            f"scenarios must be an object with >= {min_scenarios} entries"
        )
    required = {
        "ops": int,
        "events": int,
        "sim_ns": (int, float),
        "wall_s": (int, float),
        "ops_per_wall_s": (int, float),
        "events_per_wall_s": (int, float),
        "normalized_ops_per_wall_s": (int, float),
        "peak_rss_kb": int,
    }
    for name, entry in scenarios.items():
        if not isinstance(entry, dict):
            raise ValueError(f"scenario {name!r} must be an object")
        for field, kind in required.items():
            if not isinstance(entry.get(field), kind) or \
                    isinstance(entry.get(field), bool):
                raise ValueError(
                    f"scenario {name!r} field {field!r} must be "
                    f"{getattr(kind, '__name__', kind)}"
                )
        if entry["ops"] <= 0 or entry["wall_s"] <= 0:
            raise ValueError(f"scenario {name!r} ran no work")
    aggregate = doc.get("aggregate")
    if not isinstance(aggregate, dict) or \
            not isinstance(aggregate.get("normalized_ops_per_wall_s"),
                           (int, float)):
        raise ValueError("aggregate.normalized_ops_per_wall_s missing")
    return doc


# -------------------------------------------------------------------- checks

def compare(current, baseline, tolerance=DEFAULT_TOLERANCE, require_all=True):
    """Per-scenario normalized-throughput ratios vs a baseline document.

    Returns (ok, rows): rows of (name, baseline_norm, current_norm,
    ratio, passed).  With ``require_all`` (the CI gate), a baseline
    scenario missing from the current run fails; without it (spot
    checks of a subset), only scenarios present in both are compared.
    """
    # Subset comparisons (require_all=False) accept subset baselines too;
    # the CI gate path keeps the full >=3-scenario baseline requirement.
    check_schema(baseline, min_scenarios=3 if require_all else 1)
    check_schema(current, min_scenarios=1)
    rows = []
    ok = True
    for name, base in sorted(baseline["scenarios"].items()):
        cur = current["scenarios"].get(name)
        base_norm = base["normalized_ops_per_wall_s"]
        if cur is None:
            if require_all:
                rows.append((name, base_norm, 0.0, 0.0, False))
                ok = False
            continue
        cur_norm = cur["normalized_ops_per_wall_s"]
        ratio = cur_norm / base_norm if base_norm > 0 else 0.0
        passed = ratio >= tolerance
        ok = ok and passed
        rows.append((name, base_norm, cur_norm, ratio, passed))
    return ok, rows


def merge_best(docs):
    """Best-of-N merge: per scenario, keep the fastest observation.

    Wall-clock noise only ever makes a run *slower* than the machine
    can go, so the gate compares the best of N repeats — standard
    practice for regression thresholds on shared CI runners.
    """
    best = json.loads(json.dumps(docs[0]))
    for doc in docs[1:]:
        if doc["calibration"]["score"] > best["calibration"]["score"]:
            best["calibration"] = dict(doc["calibration"])
        for name, entry in doc["scenarios"].items():
            cur = best["scenarios"].get(name)
            if cur is None or entry["ops_per_wall_s"] > cur["ops_per_wall_s"]:
                best["scenarios"][name] = dict(entry)
    score = best["calibration"]["score"]
    total_ops = 0
    total_wall = 0.0
    for entry in best["scenarios"].values():
        entry["normalized_ops_per_wall_s"] = entry["ops_per_wall_s"] / score
        total_ops += entry["ops"]
        total_wall += entry["wall_s"]
    aggregate_ops_per_s = total_ops / total_wall if total_wall > 0 else 0.0
    best["aggregate"] = {
        "total_ops": total_ops,
        "total_wall_s": total_wall,
        "ops_per_wall_s": aggregate_ops_per_s,
        "normalized_ops_per_wall_s": aggregate_ops_per_s / score,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return best


def capture_golden(scale=1.0, scenarios=None):
    """Golden (simulated-result) capture for the equivalence suite."""
    names = list(scenarios or SCENARIOS)
    return {
        name: run_scenario(name, scale=scale, golden=True)["golden"]
        for name in names
    }


# ----------------------------------------------------------------------- CLI

def _print_table(doc, file=sys.stdout):
    print(f"calibration score: {doc['calibration']['score']:,.0f} it/s",
          file=file)
    header = (f"{'scenario':<26} {'ops':>8} {'events':>10} {'wall_s':>8} "
              f"{'ops/s':>10} {'events/s':>12} {'norm':>10}")
    print(header, file=file)
    for name, entry in doc["scenarios"].items():
        print(
            f"{name:<26} {entry['ops']:>8} {entry['events']:>10} "
            f"{entry['wall_s']:>8.3f} {entry['ops_per_wall_s']:>10.0f} "
            f"{entry['events_per_wall_s']:>12.0f} "
            f"{entry['normalized_ops_per_wall_s']:>10.6f}",
            file=file,
        )
    agg = doc["aggregate"]
    print(
        f"{'aggregate':<26} {agg['total_ops']:>8} {'-':>10} "
        f"{agg['total_wall_s']:>8.3f} {agg['ops_per_wall_s']:>10.0f} "
        f"{'-':>12} {agg['normalized_ops_per_wall_s']:>10.6f}",
        file=file,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-bench-speed",
        description="Wall-clock speed benchmark and perf-regression gate.",
    )
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        metavar="NAME", choices=sorted(SCENARIOS),
                        help="run only this scenario (repeatable)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the result document to PATH ('-' stdout)")
    parser.add_argument("--update", action="store_true",
                        help=f"write the result to the baseline "
                             f"({DEFAULT_BASELINE})")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline; exit 1 "
                             "below tolerance")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help=f"minimum normalized-throughput ratio for "
                             f"--check (default {DEFAULT_TOLERANCE})")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline path (default {DEFAULT_BASELINE})")
    parser.add_argument("--repeat", type=int, default=None,
                        help="best-of-N runs (default 1; --check defaults 2)")
    parser.add_argument("--golden", metavar="DIR",
                        help="write per-scenario golden fixtures into DIR")
    args = parser.parse_args(argv)

    if args.golden:
        import os

        fixtures = capture_golden(scale=args.scale, scenarios=args.scenarios)
        os.makedirs(args.golden, exist_ok=True)
        for name, golden in fixtures.items():
            path = os.path.join(args.golden, f"speed_golden_{name}.json")
            with open(path, "w") as handle:
                json.dump(golden, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {path}")
        return 0

    repeat = args.repeat if args.repeat is not None else (2 if args.check else 1)
    docs = [run_all(scale=args.scale, scenarios=args.scenarios)
            for _ in range(max(1, repeat))]
    doc = merge_best(docs) if len(docs) > 1 else docs[0]
    check_schema(doc, min_scenarios=1 if args.scenarios else 3)

    if args.json == "-":
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        print()
    elif args.json:
        with open(args.json, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.update:
        with open(args.baseline, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written: {args.baseline}")

    if not args.check:
        if args.json != "-":
            _print_table(doc)
        return 0

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 2
    ok, rows = compare(doc, baseline, tolerance=args.tolerance,
                       require_all=not args.scenarios)
    print(f"{'scenario':<26} {'baseline':>12} {'current':>12} {'ratio':>7}  ")
    for name, base_norm, cur_norm, ratio, passed in rows:
        verdict = "ok" if passed else "REGRESSED"
        print(f"{name:<26} {base_norm:>12.6f} {cur_norm:>12.6f} "
              f"{ratio:>7.2f}  {verdict}")
    if not ok:
        print(f"FAIL: normalized throughput below {args.tolerance:.2f}x "
              f"baseline", file=sys.stderr)
        return 1
    print(f"ok: all scenarios within {args.tolerance:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
