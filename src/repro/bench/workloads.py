"""Traffic sources: one protocol for every workload generator.

The paper's measurement uses wrk's uniform continual writes; downstream
users of a KV store usually characterise it with the YCSB mixes.  This
module provides both behind a single :class:`TrafficSource` protocol —
the same interface the chaos storms' burst phases and the capture
replayer (:mod:`repro.capture.replay`) implement, so every consumer
(`repro-stats`, `repro-chaoscheck`, `repro-bench-speed`, `repro-capture
replay`) drives traffic the same way:

- ``next_op(loop_id)`` returns the next ``(method, key, value)``
  operation for one closed loop, or ``None`` when that loop's stream
  is exhausted (open-ended sources never return ``None``);
- sources are deterministic and seedable — two sources constructed
  with the same arguments emit byte-identical operation streams, which
  is what lets the bench-speed event digests pin runs exactly.

The YCSB mixes over a Zipfian key popularity distribution (Gray et
al.'s generator, as used by YCSB itself):

========  ======================  =======================
workload  operation mix           classic YCSB analogue
========  ======================  =======================
``A``     50 % reads, 50 % updates  session stores
``B``     95 % reads, 5 % updates   photo tagging
``C``     100 % reads               user-profile caches
``W``     100 % writes              the paper's §3 workload
========  ======================  =======================

Use with :class:`~repro.bench.wrk.WrkClient` via the ``workload=``
parameter; keys are drawn Zipf(θ)-skewed from a fixed key space that
should be preloaded (`repro.bench.testbed.preload`).
"""

import math
import random


class TrafficSource:
    """Protocol for deterministic operation generators.

    A source feeds one or more closed loops (connections, Homa
    requesters, replayed flows).  Consumers call
    ``next_op(loop_id)`` each time loop ``loop_id`` is ready to issue;
    the source answers ``(method, key_string, value_bytes_or_None)``
    or ``None`` to stop that loop.  Sources must be deterministic: no
    wall clock, no unseeded randomness (PMLint DET-01) — the same
    construction arguments must yield the same stream.
    """

    def next_op(self, loop_id=0):
        """The next operation for ``loop_id``, or ``None`` when done."""
        raise NotImplementedError

    def describe(self):
        """One-line JSON-able summary for reports."""
        return {"source": type(self).__name__}


class UniformSource(TrafficSource):
    """wrk's default workload: uniform keys, one method, fixed value.

    Reproduces the paper's §3 measurement traffic: a shared counter
    walks a fixed key space, each loop's keys namespaced by its id.
    The value is the classic wrk fill pattern.
    """

    def __init__(self, method="PUT", key_space=1000, value_size=1024,
                 key_prefix="key"):
        self.method = method
        self.key_space = key_space
        self.value_size = value_size
        self.key_prefix = key_prefix
        self._value = bytes((0x61 + (i % 23)) for i in range(value_size))
        self._counter = 0

    def next_op(self, loop_id=0):
        self._counter += 1
        key = f"{self.key_prefix}-{loop_id}-{self._counter % self.key_space}"
        if self.method == "GET":
            return "GET", key, None
        return self.method, key, self._value

    def describe(self):
        return {"source": "uniform", "method": self.method,
                "key_space": self.key_space, "value_size": self.value_size}


class StormBurstSource(TrafficSource):
    """The chaos storms' PUT bursts: small private key sets, finite.

    Each loop owns ``keys_per_loop`` keys (globally numbered in loop
    order) and issues ``puts_per_loop`` PUTs round-robin over them —
    more puts than keys forces overwrites, feeding the emergency GC.
    Values carry a ``{stamp_prefix}{loop}:{key}:{index}:`` stamp plus a
    deterministic filler, so the durability oracles can attribute any
    stored byte string back to the op that wrote it.
    """

    def __init__(self, loops, puts_per_loop, keys_per_loop, value_size,
                 key_prefix="k", stamp_prefix="c"):
        self.loops = loops
        self.value_size = value_size
        self.stamp_prefix = stamp_prefix
        self._keys = [
            [f"{key_prefix}{loop_id * keys_per_loop + i}"
             for i in range(keys_per_loop)]
            for loop_id in range(loops)
        ]
        self._sent = [0] * loops
        self._limit = [puts_per_loop] * loops

    def keys_for(self, loop_id):
        """The private key set of one loop (oracle bookkeeping)."""
        return list(self._keys[loop_id])

    def extend(self, loop_id, extra):
        """Grant a loop ``extra`` more puts (the kill storm's second
        burst resumes exhausted loops this way)."""
        self._limit[loop_id] += extra

    def value_for(self, loop_id, key, index):
        stamp = f"{self.stamp_prefix}{loop_id}:{key}:{index}:".encode()
        filler = bytes((loop_id * 31 + index * 7 + i) % 256
                       for i in range(max(0, self.value_size - len(stamp))))
        return stamp + filler

    def next_op(self, loop_id=0):
        index = self._sent[loop_id]
        if index >= self._limit[loop_id]:
            return None
        self._sent[loop_id] = index + 1
        keys = self._keys[loop_id]
        key = keys[index % len(keys)]
        return "PUT", key, self.value_for(loop_id, key, index)

    def describe(self):
        return {"source": "storm-burst", "loops": self.loops,
                "puts_per_loop": self._limit[0] if self._limit else 0,
                "value_size": self.value_size}


class ZipfianGenerator:
    """Zipf-distributed integers in [0, nitems) (Gray et al. / YCSB).

    θ = 0.99 is YCSB's default skew; θ → 0 approaches uniform.

    This is the one Zipf implementation in the tree — the YCSB mixes
    and the open-loop arrival generator (:mod:`repro.bench.openloop`)
    both draw from it, and ``tests/test_bench_workloads.py`` holds the
    shape-conformance suite shared by both call sites.  Two costs are
    engineered out of the common paths:

    - ``next()`` is branch + multiply only: the ``1 + 0.5**θ`` second-
      rank threshold and the ``1 - η`` affine term are precomputed, and
      the underlying ``Random.random`` is bound once (the old code
      re-evaluated ``0.5 ** theta`` on every single draw);
    - the O(n) generalized-harmonic constant ζ(n, θ) is memoised per θ
      and extended *incrementally* — a saturation sweep that builds one
      generator per offered-load point over the same million-key space
      pays the sum once, not once per point.
    """

    #: θ → (largest n computed, ζ(n, θ)); extended incrementally.
    _ZETA_CACHE = {}

    def __init__(self, nitems, theta=0.99, seed=1):
        if nitems < 1:
            raise ValueError("need at least one item")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.nitems = nitems
        self.theta = theta
        self._rng = random.Random(seed)
        self._random = self._rng.random
        self._zetan = self._zeta(nitems, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._rank2_threshold = 1.0 + 0.5 ** theta
        if nitems <= 2:
            # zeta(n) == zeta(2) makes eta's denominator zero, but next()
            # resolves every draw through its first two branches before
            # eta is consulted (uz < zetan == 1 + 0.5**theta always).
            self._eta = 0.0
        else:
            self._eta = (1.0 - (2.0 / nitems) ** (1.0 - theta)) / (
                1.0 - self._zeta2 / self._zetan
            )
        self._one_minus_eta = 1.0 - self._eta

    @classmethod
    def _zeta(cls, n, theta):
        """ζ(n, θ) = Σ_{i=1..n} i^-θ, memoised and extended per θ.

        The cache keeps the largest prefix computed for each θ; asking
        for a larger n only sums the new tail, and asking for a smaller
        one (the ζ(2) term above) is computed directly — it's two terms.
        """
        if n <= 2:
            return 1.0 if n == 1 else 1.0 + 0.5 ** theta
        cached_n, cached = cls._ZETA_CACHE.get(theta, (2, 1.0 + 0.5 ** theta))
        if cached_n == n:
            return cached
        if cached_n < n:
            cached += sum(1.0 / i ** theta for i in range(cached_n + 1, n + 1))
            cls._ZETA_CACHE[theta] = (n, cached)
            return cached
        return sum(1.0 / i ** theta for i in range(1, n + 1))

    def next(self):
        u = self._random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._rank2_threshold:
            return 1
        return int(
            self.nitems * (self._eta * u + self._one_minus_eta) ** self._alpha
        )

    def sample(self, count):
        return [self.next() for _ in range(count)]


def check_zipf_shape(samples, nitems, theta, tolerance=0.35):
    """Verify a sample stream follows the Zipf(θ) rank-frequency shape.

    The conformance contract shared by every consumer of
    :class:`ZipfianGenerator` (the YCSB mixes, the open-loop key
    stream): the observed probability mass on the top-ranked items must
    match the analytic mass ``ζ(k, θ) / ζ(n, θ)`` within ``tolerance``
    (relative), at several prefix widths.  Raises ``AssertionError``
    with the failing prefix; returns the per-prefix (expected, observed)
    map on success so tests can report it.
    """
    if not samples:
        raise AssertionError("no samples to check")
    total = len(samples)
    zetan = ZipfianGenerator._zeta(nitems, theta)
    checked = {}
    prefixes = sorted({1, 10, max(1, nitems // 100), max(1, nitems // 10)})
    for k in prefixes:
        if k >= nitems:
            continue
        expected = ZipfianGenerator._zeta(k, theta) / zetan
        observed = sum(1 for s in samples if s < k) / total
        checked[k] = (expected, observed)
        if abs(observed - expected) > tolerance * expected:
            raise AssertionError(
                f"top-{k} mass {observed:.4f} outside ±{tolerance:.0%} of "
                f"the analytic Zipf({theta}) mass {expected:.4f} "
                f"(n={nitems}, {total} samples)"
            )
    return checked


class YcsbWorkload(TrafficSource):
    """An operation-mix + key-distribution bundle for the wrk clients.

    One shared Zipfian stream serves every loop — YCSB's key popularity
    is a property of the workload, not of any one connection — so
    ``loop_id`` is accepted (TrafficSource protocol) but ignored.
    """

    MIXES = {
        "A": 0.5,
        "B": 0.95,
        "C": 1.0,
        "W": 0.0,
    }

    def __init__(self, mix="A", key_space=1000, value_size=1024,
                 theta=0.99, seed=1, key_prefix="warm"):
        if mix not in self.MIXES:
            raise ValueError(f"unknown mix {mix!r}; pick one of {sorted(self.MIXES)}")
        self.mix = mix
        self.read_fraction = self.MIXES[mix]
        self.key_space = key_space
        self.value_size = value_size
        self.key_prefix = key_prefix
        self._zipf = ZipfianGenerator(key_space, theta, seed)
        self._rng = random.Random(seed ^ 0x5EED)
        self._value = bytes((0x41 + (i % 26)) for i in range(value_size))
        self.issued_reads = 0
        self.issued_writes = 0

    def next_op(self, loop_id=0):
        """(method, key_string, value_bytes_or_None) for the next request."""
        key = f"{self.key_prefix}-{self._zipf.next()}"
        if self._rng.random() < self.read_fraction:
            self.issued_reads += 1
            return "GET", key, None
        self.issued_writes += 1
        return "PUT", key, self._value

    def describe(self):
        return {"source": "ycsb", "mix": self.mix,
                "key_space": self.key_space, "value_size": self.value_size}

    def __repr__(self):
        return (
            f"<YcsbWorkload {self.mix} keys={self.key_space} "
            f"value={self.value_size}B θ={self._zipf.theta}>"
        )
