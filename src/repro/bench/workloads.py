"""YCSB-style workload generation for the KV benchmarks.

The paper's measurement uses wrk's uniform continual writes; downstream
users of a KV store usually characterise it with the YCSB mixes.  This
module provides the standard ones over a Zipfian key popularity
distribution (Gray et al.'s generator, as used by YCSB itself):

========  ======================  =======================
workload  operation mix           classic YCSB analogue
========  ======================  =======================
``A``     50 % reads, 50 % updates  session stores
``B``     95 % reads, 5 % updates   photo tagging
``C``     100 % reads               user-profile caches
``W``     100 % writes              the paper's §3 workload
========  ======================  =======================

Use with :class:`~repro.bench.wrk.WrkClient` via the ``workload=``
parameter; keys are drawn Zipf(θ)-skewed from a fixed key space that
should be preloaded (`repro.bench.testbed.preload`).
"""

import math
import random


class ZipfianGenerator:
    """Zipf-distributed integers in [0, nitems) (Gray et al. / YCSB).

    θ = 0.99 is YCSB's default skew; θ → 0 approaches uniform.
    """

    def __init__(self, nitems, theta=0.99, seed=1):
        if nitems < 1:
            raise ValueError("need at least one item")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.nitems = nitems
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = self._zeta(nitems, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        if nitems <= 2:
            # zeta(n) == zeta(2) makes eta's denominator zero, but next()
            # resolves every draw through its first two branches before
            # eta is consulted (uz < zetan == 1 + 0.5**theta always).
            self._eta = 0.0
        else:
            self._eta = (1.0 - (2.0 / nitems) ** (1.0 - theta)) / (
                1.0 - self._zeta2 / self._zetan
            )

    @staticmethod
    def _zeta(n, theta):
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self):
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.nitems * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def sample(self, count):
        return [self.next() for _ in range(count)]


class YcsbWorkload:
    """An operation-mix + key-distribution bundle for the wrk clients."""

    MIXES = {
        "A": 0.5,
        "B": 0.95,
        "C": 1.0,
        "W": 0.0,
    }

    def __init__(self, mix="A", key_space=1000, value_size=1024,
                 theta=0.99, seed=1, key_prefix="warm"):
        if mix not in self.MIXES:
            raise ValueError(f"unknown mix {mix!r}; pick one of {sorted(self.MIXES)}")
        self.mix = mix
        self.read_fraction = self.MIXES[mix]
        self.key_space = key_space
        self.value_size = value_size
        self.key_prefix = key_prefix
        self._zipf = ZipfianGenerator(key_space, theta, seed)
        self._rng = random.Random(seed ^ 0x5EED)
        self._value = bytes((0x41 + (i % 26)) for i in range(value_size))
        self.issued_reads = 0
        self.issued_writes = 0

    def next_op(self):
        """(method, key_string, value_bytes_or_None) for the next request."""
        key = f"{self.key_prefix}-{self._zipf.next()}"
        if self._rng.random() < self.read_fraction:
            self.issued_reads += 1
            return "GET", key, None
        self.issued_writes += 1
        return "PUT", key, self._value

    def __repr__(self):
        return (
            f"<YcsbWorkload {self.mix} keys={self.key_space} "
            f"value={self.value_size}B θ={self._zipf.theta}>"
        )
