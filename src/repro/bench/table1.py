"""Table 1: latency breakdown of the RTT for a 1 KB write request.

The paper measures a single persistent connection issuing 1 KB HTTP
PUTs and decomposes the 34.79 µs RTT into networking (26.71),
data-management rows (prep 0.70, checksum 1.77, copy 1.14,
alloc+insert 2.78 — 6.39 total) and persistence (1.94).

Reproduction method mirrors the paper's:

- **networking** = mean RTT against the networking-only (null) server;
- **total** = mean RTT against full NoveLSM;
- the **row breakdown** comes from the server's per-category CPU
  accounting over the NoveLSM run, divided by the request count —
  equivalent to the paper's source-level instrumentation.

Run as ``repro-table1`` or call :func:`run_table1`.
"""

from repro.bench.report import format_table, pct_delta, us
from repro.bench.testbed import make_testbed
from repro.storage.server import ServerConfig
from repro.bench.wrk import WrkClient
from repro.sim.units import ns_to_us

PAPER = {
    "networking": 26.71,
    "prep": 0.70,
    "checksum": 1.77,
    "copy": 1.14,
    "alloc_insert": 2.78,
    "datamgmt": 6.39,
    "persistence": 1.94,
    "total": 34.79,
}


class Table1Result:
    """Measured microsecond values for every Table 1 row."""

    def __init__(self, networking, prep, checksum, copy, alloc_insert,
                 persistence, total):
        self.networking = networking
        self.prep = prep
        self.checksum = checksum
        self.copy = copy
        self.alloc_insert = alloc_insert
        self.datamgmt = prep + checksum + copy + alloc_insert
        self.persistence = persistence
        self.total = total

    def rows(self):
        return [
            ("Networking", "networking", self.networking),
            ("Request preparation", "prep", self.prep),
            ("Checksum calculation", "checksum", self.checksum),
            ("Data copy", "copy", self.copy),
            ("Buffer allocation and insertion", "alloc_insert", self.alloc_insert),
            ("Data management (sum)", "datamgmt", self.datamgmt),
            ("Flush CPU caches to PM", "persistence", self.persistence),
            ("Total", "total", self.total),
        ]

    def as_dict(self):
        return {key: value for _label, key, value in self.rows()}


def _measure_rtt(engine, duration_ns, warmup_ns, value_size):
    testbed = make_testbed(ServerConfig(engine=engine))
    wrk = WrkClient(
        testbed.client, "10.0.0.1", connections=1, value_size=value_size,
        duration_ns=duration_ns, warmup_ns=warmup_ns,
    )
    stats = wrk.run()
    return stats, testbed


def run_table1(duration_ns=3_000_000.0, warmup_ns=500_000.0, value_size=1024):
    """Measure every Table 1 row; returns a :class:`Table1Result`."""
    null_stats, _ = _measure_rtt("null", duration_ns, warmup_ns, value_size)
    full_stats, testbed = _measure_rtt("novelsm", duration_ns, warmup_ns, value_size)

    puts = max(1, testbed.kv.stats["puts"])
    acct = testbed.server.accounting
    per_request = lambda category: ns_to_us(acct.category(category) / puts)

    return Table1Result(
        networking=null_stats.avg_rtt_us,
        prep=per_request("datamgmt.prep"),
        checksum=per_request("datamgmt.checksum"),
        copy=per_request("datamgmt.copy"),
        alloc_insert=per_request("datamgmt.insert"),
        persistence=per_request("persist"),
        total=full_stats.avg_rtt_us,
    )


def run_live_crosscheck(duration_ns=3_000_000.0, warmup_ns=500_000.0,
                        value_size=1024):
    """Cross-check the offline accounting against the live trace recorder.

    Runs the same NoveLSM PUT workload with ``metrics=True`` and returns
    ``(offline, live)`` — two dicts of per-request microseconds keyed by
    Table 1 row.  The offline side divides the server's cumulative CPU
    accounting by the request count; the live side is the span-based
    breakdown a production server would export (``repro-stats --table1``).
    The two take completely different paths through the code, so
    agreement (within a few percent; spans exclude partial slices at the
    window edges) validates both.
    """
    from repro.storage import ServerConfig

    config = ServerConfig(engine="novelsm", metrics=True)
    testbed = make_testbed(config=config)
    wrk = WrkClient(
        testbed.client, "10.0.0.1", connections=1, value_size=value_size,
        duration_ns=duration_ns, warmup_ns=warmup_ns,
    )
    stats = wrk.run()

    puts = max(1, testbed.kv.stats["puts"])
    acct = testbed.server.accounting
    per_request = lambda category: ns_to_us(acct.category(category) / puts)
    offline = {
        "prep": per_request("datamgmt.prep"),
        "checksum": per_request("datamgmt.checksum"),
        "copy": per_request("datamgmt.copy"),
        "alloc_insert": per_request("datamgmt.insert"),
        "persistence": per_request("persist") + per_request("pm.flush"),
        "total": stats.avg_rtt_us,
    }

    table1 = testbed.recorder.table1()
    live = {key: ns_to_us(table1[key])
            for key in ("prep", "checksum", "copy", "alloc_insert",
                        "persistence", "total")}
    return offline, live


def render(result):
    rows = []
    for label, key, measured in result.rows():
        paper = PAPER[key]
        rows.append((label, us(paper), us(measured), pct_delta(measured, paper)))
    return format_table(
        "Table 1: latency breakdown of a 1 KB write RTT (µs)",
        ["Operation", "paper", "measured", "delta"],
        rows,
    )


def render_crosscheck(offline, live):
    rows = [(key, us(offline[key]), us(live[key]),
             pct_delta(live[key], offline[key]))
            for key in offline]
    return format_table(
        "Offline accounting vs live trace recorder (µs per request)",
        ["Row", "offline", "live", "delta"],
        rows,
    )


def main():
    import sys

    print(render(run_table1()))
    if "--crosscheck" in sys.argv[1:]:
        print(render_crosscheck(*run_live_crosscheck()))


if __name__ == "__main__":
    main()
