"""Open-loop arrival generation: offered load the server cannot silence.

The paper's Figure 2 drives the server with *closed* loops — each
connection issues its next request only after the previous response
lands.  That protocol has a well-known blind spot, **coordinated
omission**: the moment the server stalls, every closed loop stops
offering load, so the stall suppresses exactly the samples that would
have measured it.  A harness like that can't test the overload
machinery (shedding, degradation, backpressure) because the harness
itself backs off before the server has to.

This module generates *open-loop* traffic: arrivals follow a clock-
driven stochastic process that does not know or care how the server is
doing, the way requests from 10⁵–10⁶ independent users do.  Pieces:

- :class:`OpenLoopSource` — a :class:`~repro.bench.workloads.TrafficSource`
  whose ``next_arrival()`` additionally yields *when* each request
  arrives: Poisson base arrivals (exponential interarrivals at the
  offered rate), optionally modulated by :class:`BurstModulation`
  (square-wave flash crowds) and :class:`DiurnalModulation` (sinusoidal
  day/night swing), realised by Lewis–Shedler thinning against the peak
  rate.  Keys are heavy-tailed Zipf over a shared key space (the one
  :class:`~repro.bench.workloads.ZipfianGenerator`, not a second
  implementation), attributed to one of ``clients`` logical clients,
  and a seeded churn coin marks arrivals that open a **fresh
  connection** (real handshake cost) instead of reusing a pooled one.
- :func:`plant_stall` — the deterministic server freeze the
  coordinated-omission regression test measures against.

The consumer is :class:`~repro.bench.wrk.OpenLoopWrkClient`, which
multiplexes these arrivals over a bounded socket pool and timestamps
every request at its *scheduled arrival* — so time spent waiting for a
socket (i.e. server-induced queueing) lands in the RTT tail instead of
vanishing.  The saturation-soak driver on top lives in
:mod:`repro.bench.soak`; see docs/WORKLOADS.md for the full story.

Everything here is seeded and sim-clock driven (PMLint DET-01): the
same construction arguments yield byte-identical arrival streams.
"""

import math
import random

from repro.bench.workloads import TrafficSource, ZipfianGenerator


class BurstModulation:
    """Square-wave rate bursts: flash crowds at a fixed cadence.

    For the first ``duty`` fraction of every ``period_ns`` window the
    offered rate is multiplied by ``factor``; the rest of the window
    runs at the base rate.  ``factor`` may be < 1 to model lulls.
    """

    def __init__(self, factor=3.0, period_ns=2_000_000.0, duty=0.25,
                 phase_ns=0.0):
        if factor <= 0:
            raise ValueError("burst factor must be positive")
        if period_ns <= 0:
            raise ValueError("burst period must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        self.factor = factor
        self.period_ns = period_ns
        self.duty = duty
        self.phase_ns = phase_ns

    @property
    def peak_factor(self):
        return max(1.0, self.factor)

    def factor_at(self, t_ns):
        offset = (t_ns + self.phase_ns) % self.period_ns
        return self.factor if offset < self.duty * self.period_ns else 1.0

    def describe(self):
        return {"kind": "burst", "factor": self.factor,
                "period_ns": self.period_ns, "duty": self.duty}


class DiurnalModulation:
    """Sinusoidal day/night swing scaled into simulated time.

    Rate factor is ``1 + amplitude * sin(2π t / period + phase)`` —
    a "day" compressed to ``period_ns`` of sim time so a soak can cross
    several peaks.  ``amplitude`` must stay below 1 so the rate never
    goes negative.
    """

    def __init__(self, amplitude=0.5, period_ns=20_000_000.0, phase=0.0):
        if not 0.0 < amplitude < 1.0:
            raise ValueError("amplitude must be in (0, 1)")
        if period_ns <= 0:
            raise ValueError("diurnal period must be positive")
        self.amplitude = amplitude
        self.period_ns = period_ns
        self.phase = phase
        self._omega = 2.0 * math.pi / period_ns

    @property
    def peak_factor(self):
        return 1.0 + self.amplitude

    def factor_at(self, t_ns):
        return 1.0 + self.amplitude * math.sin(self._omega * t_ns + self.phase)

    def describe(self):
        return {"kind": "diurnal", "amplitude": self.amplitude,
                "period_ns": self.period_ns}


class Arrival:
    """One scheduled request: who issues it, what it asks, how it connects."""

    __slots__ = ("client_id", "new_connection", "method", "key", "value")

    def __init__(self, client_id, new_connection, method, key, value):
        self.client_id = client_id
        self.new_connection = new_connection
        self.method = method
        self.key = key
        self.value = value

    def op(self):
        """The (method, key, value) triple the TrafficSource protocol speaks."""
        return self.method, self.key, self.value

    def __repr__(self):
        conn = " new-conn" if self.new_connection else ""
        return (f"<Arrival client={self.client_id} {self.method} "
                f"{self.key}{conn}>")


class OpenLoopSource(TrafficSource):
    """Clock-driven arrivals from a large population of logical clients.

    ``rate_rps`` is the *offered* load in requests per second of
    simulated time — what the population sends regardless of how the
    server responds.  ``next_arrival(now_ns)`` advances an internal
    arrival clock and returns ``(arrival_time_ns, Arrival)``; the
    stream is a (possibly non-homogeneous) Poisson process realised by
    thinning candidate exponential steps at the peak rate.

    As a plain :class:`TrafficSource`, ``next_op`` yields the same
    operation stream without timing — so the protocol conformance and
    determinism contracts (and every closed-loop consumer) hold
    unchanged.

    ========== =========================================================
    knob        meaning
    ========== =========================================================
    clients     logical client population; each arrival is attributed
                uniformly to one of them (10⁵–10⁶ models the north-star
                regime; connection state stays O(socket pool))
    key_space   Zipf(θ) key universe shared by the whole population
    churn       per-arrival probability the issuing client has no warm
                connection — the consumer must pay a fresh handshake
    burst /     optional :class:`BurstModulation` /
    diurnal     :class:`DiurnalModulation` instances
    ========== =========================================================
    """

    def __init__(self, rate_rps, clients=100_000, key_space=10_000,
                 value_size=256, theta=0.99, read_fraction=0.0,
                 churn=0.0, seed=1, key_prefix="ol", burst=None,
                 diurnal=None):
        if rate_rps <= 0:
            raise ValueError("offered rate must be positive")
        if clients < 1:
            raise ValueError("need at least one logical client")
        if not 0.0 <= churn <= 1.0:
            raise ValueError("churn must be in [0, 1]")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.rate_rps = rate_rps
        self.clients = clients
        self.key_space = key_space
        self.value_size = value_size
        self.theta = theta
        self.read_fraction = read_fraction
        self.churn = churn
        self.seed = seed
        self.key_prefix = key_prefix
        self.burst = burst
        self.diurnal = diurnal
        # Separate streams so the op sequence (keys, methods) is
        # identical whether consumed open-loop or via next_op.
        self._timing_rng = random.Random(seed)
        self._op_rng = random.Random(seed ^ 0x0431)
        self._zipf = ZipfianGenerator(key_space, theta, seed ^ 0x21F)
        self._value = bytes((0x61 + (i % 23)) for i in range(value_size))
        self._base_per_ns = rate_rps / 1e9
        self._peak_per_ns = self._base_per_ns
        if burst is not None:
            self._peak_per_ns *= burst.peak_factor
        if diurnal is not None:
            self._peak_per_ns *= diurnal.peak_factor
        #: Arrival clock: where the stochastic process has advanced to.
        self.arrival_clock_ns = None
        self.generated = 0

    # -- rate -----------------------------------------------------------------

    def rate_at(self, t_ns):
        """Instantaneous offered rate (requests per *second*) at ``t_ns``."""
        factor = 1.0
        if self.burst is not None:
            factor *= self.burst.factor_at(t_ns)
        if self.diurnal is not None:
            factor *= self.diurnal.factor_at(t_ns)
        return self.rate_rps * factor

    @property
    def peak_rate_rps(self):
        return self._peak_per_ns * 1e9

    # -- arrival stream -------------------------------------------------------

    def next_arrival(self, now_ns=None):
        """Advance the arrival process; returns ``(t_ns, Arrival)``.

        The clock starts at ``now_ns`` on the first call and is purely
        self-advancing afterwards (``now_ns`` is then ignored): arrival
        times never depend on when the consumer got around to asking —
        that independence IS the open loop.
        """
        if self.arrival_clock_ns is None:
            self.arrival_clock_ns = float(now_ns or 0.0)
        t = self.arrival_clock_ns
        timing = self._timing_rng
        peak = self._peak_per_ns
        # Lewis–Shedler thinning: candidate steps at the peak rate,
        # accepted with probability rate(t)/peak.  With no modulation
        # peak == rate and every candidate is accepted — plain Poisson.
        while True:
            t += -math.log(1.0 - timing.random()) / peak
            if self.burst is None and self.diurnal is None:
                break
            if timing.random() * peak <= self.rate_at(t) / 1e9:
                break
        self.arrival_clock_ns = t
        self.generated += 1
        client_id = timing.randrange(self.clients)
        new_connection = self.churn > 0.0 and timing.random() < self.churn
        method, key, value = self._draw_op()
        return t, Arrival(client_id, new_connection, method, key, value)

    def _draw_op(self):
        key = f"{self.key_prefix}-{self._zipf.next()}"
        if self.read_fraction > 0.0 and \
                self._op_rng.random() < self.read_fraction:
            return "GET", key, None
        return "PUT", key, self._value

    # -- TrafficSource protocol -----------------------------------------------

    def next_op(self, loop_id=0):
        """The op stream without timing (closed-loop / replay consumers)."""
        return self._draw_op()

    def describe(self):
        description = {
            "source": "openloop",
            "rate_rps": self.rate_rps,
            "clients": self.clients,
            "key_space": self.key_space,
            "value_size": self.value_size,
            "theta": self.theta,
            "read_fraction": self.read_fraction,
            "churn": self.churn,
            "seed": self.seed,
        }
        if self.burst is not None:
            description["burst"] = self.burst.describe()
        if self.diurnal is not None:
            description["diurnal"] = self.diurnal.describe()
        return description

    def __repr__(self):
        return (f"<OpenLoopSource {self.rate_rps:.0f} rps "
                f"clients={self.clients} θ={self.theta} "
                f"churn={self.churn}>")


def plant_stall(host, at_ns, duration_ns, core_index=0):
    """Freeze one of ``host``'s cores for ``duration_ns`` at ``at_ns``.

    Deterministic fault injection for the coordinated-omission
    regression: the core simply accepts no new work until the stall
    ends, as if a GC pause or an SMI took it away.  Everything queued
    behind the stall (and everything scheduled *during* it) is delayed
    by up to ``duration_ns`` — a closed-loop harness records one
    inflated sample per connection and goes quiet, while an open-loop
    harness keeps offering load and records the whole queueing wave.
    Returns the scheduled event so tests can cancel it.
    """
    if duration_ns <= 0:
        raise ValueError("stall duration must be positive")
    core = host.cpus[core_index]

    def freeze():
        end = host.sim.now + duration_ns
        if core.free_at < end:
            core.free_at = end

    return host.sim.at(at_ns, freeze)
