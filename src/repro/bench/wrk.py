"""``wrk``-like closed-loop HTTP load generator.

The paper's client runs wrk over one or more persistent TCP
connections; each connection issues the next request the moment the
previous response lands.  This module reproduces that: per-connection
closed loops, RTT measured from the completion of the processing slice
that *sent* the request to the completion of the slice that *parsed*
its response (i.e. syscall-to-syscall, like wrk), with a warmup cut.

Latency/throughput statistics follow the paper's reporting: average
RTT over the measurement window and completed requests per second.
"""

from repro.bench.workloads import UniformSource
from repro.net.http import HttpParser, build_request
from repro.sim.units import ns_to_us


def _op_to_request(op):
    """Render one TrafficSource op as HTTP request bytes (or None)."""
    if op is None:
        return None
    method, key, value = op
    if value is None:
        return build_request(method, f"/{key}")
    return build_request(method, f"/{key}", value)


class WrkStats:
    """Collected results of one run."""

    def __init__(self):
        self.rtts_ns = []
        self.completed = 0
        self.errors = 0
        self.measure_start = None
        self.measure_end = None

    @property
    def avg_rtt_us(self):
        if not self.rtts_ns:
            return 0.0
        return ns_to_us(sum(self.rtts_ns) / len(self.rtts_ns))

    def percentile_us(self, p):
        """Exact sample percentile with linear interpolation.

        ``p`` is in percent.  ``p=0`` returns the minimum, ``p=100``
        the maximum, and a single sample answers every percentile with
        itself.  Interior percentiles interpolate between the two
        nearest order statistics at ``rank = p/100 * (n-1)`` (numpy's
        default "linear" definition), so p99 over 5k samples is the
        exact percentile — not the truncated-index neighbour the old
        ``int(p/100*n)`` produced.
        """
        if not self.rtts_ns:
            return 0.0
        ordered = sorted(self.rtts_ns)
        if p <= 0:
            return ns_to_us(ordered[0])
        if p >= 100:
            return ns_to_us(ordered[-1])
        rank = p / 100.0 * (len(ordered) - 1)
        low = int(rank)
        frac = rank - low
        if frac == 0.0 or low + 1 >= len(ordered):
            return ns_to_us(ordered[low])
        return ns_to_us(ordered[low] + (ordered[low + 1] - ordered[low]) * frac)

    @property
    def throughput_krps(self):
        if self.measure_start is None or self.measure_end is None or \
                self.measure_end <= self.measure_start:
            return 0.0
        window_s = (self.measure_end - self.measure_start) / 1e9
        return len(self.rtts_ns) / window_s / 1e3

    def __repr__(self):
        return (
            f"<WrkStats n={len(self.rtts_ns)} avg={self.avg_rtt_us:.2f}us "
            f"tput={self.throughput_krps:.1f}krps>"
        )


class _Connection:
    """One closed-loop persistent connection."""

    def __init__(self, client, conn_id):
        self.client = client
        self.conn_id = conn_id
        self.parser = HttpParser(is_response=True)
        self.sock = None
        self.inflight_since = None
        self.sent = 0
        self.stopped = False

    def open(self):
        host = self.client.host
        core = host.cpus.assign()

        def do_connect(ctx):
            self.sock = host.stack.connect(
                self.client.server_ip, self.client.port, ctx, core=core
            )
            self.sock.on_established = self._established
            self.sock.on_reset = lambda s: self.client._conn_error(self)

        host.process_on_core(core, do_connect)

    def _established(self, sock, ctx):
        sock.on_data = self._on_data
        self._send_next(ctx)

    def _send_next(self, ctx):
        """Issue the next request within the current processing slice."""
        if self.stopped or self.client.host.sim.now >= self.client.stop_at:
            self.stopped = True
            self.client._conn_finished(self)
            return
        request = self.client.next_request(self)
        if request is None:
            # The traffic source is exhausted (finite workloads, replay).
            self.stopped = True
            self.client._conn_finished(self)
            return
        self.sent += 1
        self.client.costs.charge_http_build(ctx)
        self.sock.send(request, ctx)
        self.client.host.call_at_completion(self._mark_sent)

    def _mark_sent(self, t_end, ctx):
        self.inflight_since = t_end

    def _on_data(self, sock, segment, ctx):
        messages = self.parser.feed(segment, ctx, self.client.costs)
        for message in messages:
            status = message.status
            if status is not None and status >= 500:
                self.client.stats.errors += 1
            message.release()
            started = self.inflight_since
            self.client.host.call_at_completion(
                lambda t_end, c, started=started, status=status:
                    self.client._record(started, t_end, status)
            )
            self._send_next(ctx)


class WrkClient:
    """Drives N closed-loop connections against one server."""

    def __init__(self, host, server_ip, port=80, connections=1,
                 value_size=1024, method="PUT", key_space=1000,
                 duration_ns=20_000_000.0, warmup_ns=5_000_000.0,
                 key_prefix="key", workload=None):
        self.host = host
        self.costs = host.costs
        self.server_ip = server_ip
        self.port = port
        self.connections = connections
        self.value_size = value_size
        self.method = method
        self.key_space = key_space
        self.duration_ns = duration_ns
        self.warmup_ns = warmup_ns
        self.key_prefix = key_prefix
        #: The TrafficSource driving every loop (see
        #: repro.bench.workloads); defaults to wrk's uniform writes.
        self.workload = workload if workload is not None else UniformSource(
            method=method, key_space=key_space, value_size=value_size,
            key_prefix=key_prefix,
        )
        self.stats = WrkStats()
        self._conns = []
        self._active = 0
        self.started_at = None
        self.stop_at = None

    # -- workload -----------------------------------------------------------

    def next_request(self, conn):
        return _op_to_request(self.workload.next_op(conn.conn_id))

    # -- lifecycle ------------------------------------------------------------

    def start(self):
        """Open every connection; the loops then self-sustain."""
        sim = self.host.sim
        self.started_at = sim.now
        self.stop_at = sim.now + self.warmup_ns + self.duration_ns
        self.stats.measure_start = sim.now + self.warmup_ns
        self.stats.measure_end = self.stop_at
        for conn_id in range(self.connections):
            conn = _Connection(self, conn_id)
            self._conns.append(conn)
            self._active += 1
            conn.open()
        return self

    def run(self):
        """Start (if needed) and run the simulator until all loops stop."""
        if self.started_at is None:
            self.start()
        # Loops stop by themselves at stop_at; allow trailing ACK traffic.
        self.host.sim.run(until=self.stop_at + 5_000_000.0)
        return self.stats

    def _record(self, started, finished, status=None):
        """Count a completion; it lands in the stats if it *finished*
        inside the measurement window (standard load-generator practice
        — requiring the start inside too would bias throughput down
        whenever RTT is comparable to the window)."""
        self.stats.completed += 1
        if started is None:
            return
        if self.stats.measure_start <= finished <= self.stats.measure_end:
            rtt_ns = finished - started
            self.stats.rtts_ns.append(rtt_ns)
            recorder = self.host.recorder
            if recorder is not None:
                verdict = "error" if (status is not None and status >= 500) \
                    else "ok"
                recorder.client_request("http", verdict, rtt_ns)

    def _conn_finished(self, conn):
        self._active -= 1

    def _conn_error(self, conn):
        self.stats.errors += 1
        self._active -= 1

    def __repr__(self):
        return f"<WrkClient {self.connections} conns {self.method} {self.value_size}B>"


class HomaWrkClient:
    """Closed-loop load generator over the Homa-like transport (§5.2).

    Same workload and statistics as :class:`WrkClient`, but each
    request/response pair is a pair of Homa messages — no connections,
    no handshake, receiver-driven flow control.  ``connections`` here
    means independent closed loops.

    ``route``, when given, is a callable ``key -> server_ip`` consulted
    per request — that's how the cluster benchmark shards a single
    closed-loop workload across hosts.  Without it every request goes
    to ``server_ip``.
    """

    def __init__(self, host, server_ip, port=80, connections=1,
                 value_size=1024, method="PUT", key_space=1000,
                 duration_ns=20_000_000.0, warmup_ns=5_000_000.0,
                 key_prefix="key", route=None, workload=None):
        self.host = host
        self.costs = host.costs
        self.transport = host.enable_homa()
        self.server_ip = server_ip
        self.route = route
        self.port = port
        self.connections = connections
        self.value_size = value_size
        self.method = method
        self.key_space = key_space
        self.duration_ns = duration_ns
        self.warmup_ns = warmup_ns
        self.key_prefix = key_prefix
        #: The TrafficSource driving every loop, as in WrkClient.
        self.workload = workload if workload is not None else UniformSource(
            method=method, key_space=key_space, value_size=value_size,
            key_prefix=key_prefix,
        )
        self.stats = WrkStats()
        self._last_key = None
        self.stop_at = None

    def _request_bytes(self, loop_id):
        op = self.workload.next_op(loop_id)
        if op is None:
            return None
        self._last_key = op[1]
        return _op_to_request(op)

    def start(self):
        sim = self.host.sim
        self.stop_at = sim.now + self.warmup_ns + self.duration_ns
        self.stats.measure_start = sim.now + self.warmup_ns
        self.stats.measure_end = self.stop_at
        for loop_id in range(self.connections):
            core = self.host.cpus.assign()
            self.host.process_on_core(
                core, lambda ctx, lid=loop_id: self._fire(lid, ctx)
            )
        return self

    def _fire(self, loop_id, ctx):
        if self.host.sim.now >= self.stop_at:
            return
        state = {"sent_at": None, "status": None}
        self.costs.charge_http_build(ctx)
        self.costs.charge_sock_send(ctx)

        def on_reply(segments, reply_ctx):
            # Parse (and charge) the response like wrk would.
            parser = HttpParser(is_response=True)
            for segment in segments:
                for message in parser.feed(segment, reply_ctx, self.costs):
                    if message.status is not None and message.status >= 500:
                        self.stats.errors += 1
                    state["status"] = message.status
                    message.release()
            self.host.call_at_completion(
                lambda t_end, c:
                    self._done(loop_id, state["sent_at"], t_end,
                               state["status"], rpc_id)
            )

        payload = self._request_bytes(loop_id)
        if payload is None:
            return  # the traffic source is exhausted; this loop ends
        dst_ip = self.route(self._last_key) if self.route is not None \
            else self.server_ip
        rpc_id = self.transport.send_request(
            dst_ip, self.port, payload, ctx, on_reply=on_reply,
        )
        self.host.call_at_completion(
            lambda t_end, c: state.update(sent_at=t_end)
        )

    def _done(self, loop_id, started, finished, status=None, rpc_id=None):
        self.stats.completed += 1
        if started is not None and \
                self.stats.measure_start <= finished <= self.stats.measure_end:
            rtt_ns = finished - started
            self.stats.rtts_ns.append(rtt_ns)
            recorder = self.host.recorder
            if recorder is not None:
                verdict = "error" if (status is not None and status >= 500) \
                    else "ok"
                # RTT is first-send -> reply (sent_at is set once), so a
                # retransmitted RPC contributes ONE sample; the span's
                # retransmit count carries the retry attribution.
                recorder.client_request("homa", verdict, rtt_ns,
                                        rpc_id=rpc_id)
        core = self.host.cpus.assign()
        self.host.process_on_core(core, lambda ctx: self._fire(loop_id, ctx))

    def run(self):
        if self.stop_at is None:
            self.start()
        self.host.sim.run(until=self.stop_at + 5_000_000.0)
        return self.stats
