"""``wrk``-like closed-loop HTTP load generator, and its open-loop twin.

The paper's client runs wrk over one or more persistent TCP
connections; each connection issues the next request the moment the
previous response lands.  This module reproduces that: per-connection
closed loops, RTT measured from the completion of the processing slice
that *sent* the request to the completion of the slice that *parsed*
its response (i.e. syscall-to-syscall, like wrk), with a warmup cut.

Latency/throughput statistics follow the paper's reporting: average
RTT over the measurement window and completed requests per second.

:class:`OpenLoopWrkClient` is the coordinated-omission-honest
counterpart (docs/WORKLOADS.md): arrivals come from an
:class:`~repro.bench.openloop.OpenLoopSource` on a clock the server
cannot slow down, are multiplexed over a **bounded socket pool** (the
way 10⁵–10⁶ logical clients share an edge proxy's connections), and —
the load-bearing difference — every request's RTT is measured from its
*scheduled arrival* time, not from when a socket finally came free to
send it.  A stalled server therefore shows up as a queueing wave in
the recorded tail instead of silencing its own load generator.
"""

from collections import deque

from repro.bench.workloads import UniformSource
from repro.net.http import HttpParser, build_request
from repro.sim.units import ns_to_us


def _op_to_request(op):
    """Render one TrafficSource op as HTTP request bytes (or None)."""
    if op is None:
        return None
    method, key, value = op
    if value is None:
        return build_request(method, f"/{key}")
    return build_request(method, f"/{key}", value)


class WrkStats:
    """Collected results of one run."""

    def __init__(self):
        self.rtts_ns = []
        self.completed = 0
        self.errors = 0
        self.measure_start = None
        self.measure_end = None

    @property
    def avg_rtt_us(self):
        if not self.rtts_ns:
            return 0.0
        return ns_to_us(sum(self.rtts_ns) / len(self.rtts_ns))

    def percentile_us(self, p):
        """Exact sample percentile with linear interpolation.

        ``p`` is in percent.  ``p=0`` returns the minimum, ``p=100``
        the maximum, and a single sample answers every percentile with
        itself.  Interior percentiles interpolate between the two
        nearest order statistics at ``rank = p/100 * (n-1)`` (numpy's
        default "linear" definition), so p99 over 5k samples is the
        exact percentile — not the truncated-index neighbour the old
        ``int(p/100*n)`` produced.
        """
        if not self.rtts_ns:
            return 0.0
        ordered = sorted(self.rtts_ns)
        if p <= 0:
            return ns_to_us(ordered[0])
        if p >= 100:
            return ns_to_us(ordered[-1])
        rank = p / 100.0 * (len(ordered) - 1)
        low = int(rank)
        frac = rank - low
        if frac == 0.0 or low + 1 >= len(ordered):
            return ns_to_us(ordered[low])
        return ns_to_us(ordered[low] + (ordered[low + 1] - ordered[low]) * frac)

    @property
    def throughput_krps(self):
        if self.measure_start is None or self.measure_end is None or \
                self.measure_end <= self.measure_start:
            return 0.0
        window_s = (self.measure_end - self.measure_start) / 1e9
        return len(self.rtts_ns) / window_s / 1e3

    def __repr__(self):
        return (
            f"<WrkStats n={len(self.rtts_ns)} avg={self.avg_rtt_us:.2f}us "
            f"tput={self.throughput_krps:.1f}krps>"
        )


class _Connection:
    """One closed-loop persistent connection."""

    def __init__(self, client, conn_id):
        self.client = client
        self.conn_id = conn_id
        self.parser = HttpParser(is_response=True)
        self.sock = None
        self.inflight_since = None
        self.sent = 0
        self.stopped = False

    def open(self):
        host = self.client.host
        core = host.cpus.assign()

        def do_connect(ctx):
            self.sock = host.stack.connect(
                self.client.server_ip, self.client.port, ctx, core=core
            )
            self.sock.on_established = self._established
            self.sock.on_reset = lambda s: self.client._conn_error(self)

        host.process_on_core(core, do_connect)

    def _established(self, sock, ctx):
        sock.on_data = self._on_data
        self._send_next(ctx)

    def _send_next(self, ctx):
        """Issue the next request within the current processing slice."""
        if self.stopped or self.client.host.sim.now >= self.client.stop_at:
            self.stopped = True
            self.client._conn_finished(self)
            return
        request = self.client.next_request(self)
        if request is None:
            # The traffic source is exhausted (finite workloads, replay).
            self.stopped = True
            self.client._conn_finished(self)
            return
        self.sent += 1
        self.client.costs.charge_http_build(ctx)
        self.sock.send(request, ctx)
        self.client.host.call_at_completion(self._mark_sent)

    def _mark_sent(self, t_end, ctx):
        self.inflight_since = t_end

    def _on_data(self, sock, segment, ctx):
        messages = self.parser.feed(segment, ctx, self.client.costs)
        for message in messages:
            status = message.status
            if status is not None and status >= 500:
                self.client.stats.errors += 1
            message.release()
            started = self.inflight_since
            self.client.host.call_at_completion(
                lambda t_end, c, started=started, status=status:
                    self.client._record(started, t_end, status)
            )
            self._send_next(ctx)


class WrkClient:
    """Drives N closed-loop connections against one server."""

    def __init__(self, host, server_ip, port=80, connections=1,
                 value_size=1024, method="PUT", key_space=1000,
                 duration_ns=20_000_000.0, warmup_ns=5_000_000.0,
                 key_prefix="key", workload=None):
        self.host = host
        self.costs = host.costs
        self.server_ip = server_ip
        self.port = port
        self.connections = connections
        self.value_size = value_size
        self.method = method
        self.key_space = key_space
        self.duration_ns = duration_ns
        self.warmup_ns = warmup_ns
        self.key_prefix = key_prefix
        #: The TrafficSource driving every loop (see
        #: repro.bench.workloads); defaults to wrk's uniform writes.
        self.workload = workload if workload is not None else UniformSource(
            method=method, key_space=key_space, value_size=value_size,
            key_prefix=key_prefix,
        )
        self.stats = WrkStats()
        self._conns = []
        self._active = 0
        self.started_at = None
        self.stop_at = None

    # -- workload -----------------------------------------------------------

    def next_request(self, conn):
        return _op_to_request(self.workload.next_op(conn.conn_id))

    # -- lifecycle ------------------------------------------------------------

    def start(self):
        """Open every connection; the loops then self-sustain."""
        sim = self.host.sim
        self.started_at = sim.now
        self.stop_at = sim.now + self.warmup_ns + self.duration_ns
        self.stats.measure_start = sim.now + self.warmup_ns
        self.stats.measure_end = self.stop_at
        for conn_id in range(self.connections):
            conn = _Connection(self, conn_id)
            self._conns.append(conn)
            self._active += 1
            conn.open()
        return self

    def run(self):
        """Start (if needed) and run the simulator until all loops stop."""
        if self.started_at is None:
            self.start()
        # Loops stop by themselves at stop_at; allow trailing ACK traffic.
        self.host.sim.run(until=self.stop_at + 5_000_000.0)
        return self.stats

    def _record(self, started, finished, status=None):
        """Count a completion; it lands in the stats if it *finished*
        inside the measurement window (standard load-generator practice
        — requiring the start inside too would bias throughput down
        whenever RTT is comparable to the window)."""
        self.stats.completed += 1
        if started is None:
            return
        if self.stats.measure_start <= finished <= self.stats.measure_end:
            rtt_ns = finished - started
            self.stats.rtts_ns.append(rtt_ns)
            recorder = self.host.recorder
            if recorder is not None:
                verdict = "error" if (status is not None and status >= 500) \
                    else "ok"
                recorder.client_request("http", verdict, rtt_ns)

    def _conn_finished(self, conn):
        self._active -= 1

    def _conn_error(self, conn):
        self.stats.errors += 1
        self._active -= 1

    def __repr__(self):
        return f"<WrkClient {self.connections} conns {self.method} {self.value_size}B>"


class HomaWrkClient:
    """Closed-loop load generator over the Homa-like transport (§5.2).

    Same workload and statistics as :class:`WrkClient`, but each
    request/response pair is a pair of Homa messages — no connections,
    no handshake, receiver-driven flow control.  ``connections`` here
    means independent closed loops.

    ``route``, when given, is a callable ``key -> server_ip`` consulted
    per request — that's how the cluster benchmark shards a single
    closed-loop workload across hosts.  Without it every request goes
    to ``server_ip``.
    """

    def __init__(self, host, server_ip, port=80, connections=1,
                 value_size=1024, method="PUT", key_space=1000,
                 duration_ns=20_000_000.0, warmup_ns=5_000_000.0,
                 key_prefix="key", route=None, workload=None):
        self.host = host
        self.costs = host.costs
        self.transport = host.enable_homa()
        self.server_ip = server_ip
        self.route = route
        self.port = port
        self.connections = connections
        self.value_size = value_size
        self.method = method
        self.key_space = key_space
        self.duration_ns = duration_ns
        self.warmup_ns = warmup_ns
        self.key_prefix = key_prefix
        #: The TrafficSource driving every loop, as in WrkClient.
        self.workload = workload if workload is not None else UniformSource(
            method=method, key_space=key_space, value_size=value_size,
            key_prefix=key_prefix,
        )
        self.stats = WrkStats()
        self._last_key = None
        self.stop_at = None

    def _request_bytes(self, loop_id):
        op = self.workload.next_op(loop_id)
        if op is None:
            return None
        self._last_key = op[1]
        return _op_to_request(op)

    def start(self):
        sim = self.host.sim
        self.stop_at = sim.now + self.warmup_ns + self.duration_ns
        self.stats.measure_start = sim.now + self.warmup_ns
        self.stats.measure_end = self.stop_at
        for loop_id in range(self.connections):
            core = self.host.cpus.assign()
            self.host.process_on_core(
                core, lambda ctx, lid=loop_id: self._fire(lid, ctx)
            )
        return self

    def _fire(self, loop_id, ctx):
        if self.host.sim.now >= self.stop_at:
            return
        state = {"sent_at": None, "status": None}
        self.costs.charge_http_build(ctx)
        self.costs.charge_sock_send(ctx)

        def on_reply(segments, reply_ctx):
            # Parse (and charge) the response like wrk would.
            parser = HttpParser(is_response=True)
            for segment in segments:
                for message in parser.feed(segment, reply_ctx, self.costs):
                    if message.status is not None and message.status >= 500:
                        self.stats.errors += 1
                    state["status"] = message.status
                    message.release()
            self.host.call_at_completion(
                lambda t_end, c:
                    self._done(loop_id, state["sent_at"], t_end,
                               state["status"], rpc_id)
            )

        payload = self._request_bytes(loop_id)
        if payload is None:
            return  # the traffic source is exhausted; this loop ends
        dst_ip = self.route(self._last_key) if self.route is not None \
            else self.server_ip
        rpc_id = self.transport.send_request(
            dst_ip, self.port, payload, ctx, on_reply=on_reply,
        )
        self.host.call_at_completion(
            lambda t_end, c: state.update(sent_at=t_end)
        )

    def _done(self, loop_id, started, finished, status=None, rpc_id=None):
        self.stats.completed += 1
        if started is not None and \
                self.stats.measure_start <= finished <= self.stats.measure_end:
            rtt_ns = finished - started
            self.stats.rtts_ns.append(rtt_ns)
            recorder = self.host.recorder
            if recorder is not None:
                verdict = "error" if (status is not None and status >= 500) \
                    else "ok"
                # RTT is first-send -> reply (sent_at is set once), so a
                # retransmitted RPC contributes ONE sample; the span's
                # retransmit count carries the retry attribution.
                recorder.client_request("homa", verdict, rtt_ns,
                                        rpc_id=rpc_id)
        core = self.host.cpus.assign()
        self.host.process_on_core(core, lambda ctx: self._fire(loop_id, ctx))

    def run(self):
        if self.stop_at is None:
            self.start()
        self.host.sim.run(until=self.stop_at + 5_000_000.0)
        return self.stats


class OpenLoopStats(WrkStats):
    """Results of one open-loop run.

    ``rtts_ns`` (and therefore :meth:`~WrkStats.percentile_us` /
    :attr:`~WrkStats.avg_rtt_us`) hold **admitted** (status-200)
    requests only, measured from *scheduled arrival* to completion —
    the tail the soak oracles bound.  The same samples also feed a
    mergeable t-digest so sweep reports carry digest-backed quantiles
    cross-checked against the exact order statistics.  Shed (503) and
    storage-full (507) answers are counted, not mixed into the tail:
    past the knee they are the *correct* server behaviour.
    """

    def __init__(self):
        super().__init__()
        from repro.obs.tdigest import TDigest

        self.digest = TDigest()
        #: Arrivals whose scheduled time fell inside the measure window.
        self.offered = 0
        self.arrivals_total = 0
        self.admitted = 0
        self.shed = 0
        self.storage_full = 0
        self.resets = 0
        self.abandoned = 0
        self.churns = 0
        self.handshakes = 0
        self.backlog_peak = 0
        self.backlog_at_stop = 0

    @property
    def offered_krps(self):
        if self.measure_start is None or self.measure_end is None or \
                self.measure_end <= self.measure_start:
            return 0.0
        window_s = (self.measure_end - self.measure_start) / 1e9
        return self.offered / window_s / 1e3

    @property
    def goodput_krps(self):
        """Admitted completions per second — inherited throughput."""
        return self.throughput_krps

    def digest_percentile_us(self, p):
        """Digest-backed percentile (µs), mergeable across clients."""
        if not len(self.digest):
            return 0.0
        return ns_to_us(self.digest.quantile(p / 100.0))

    def __repr__(self):
        return (
            f"<OpenLoopStats offered={self.offered} admitted={self.admitted} "
            f"shed={self.shed} p99={self.percentile_us(99):.1f}us>"
        )


class _OpenLoopConn:
    """One pooled socket of the open-loop client.

    Unlike the closed-loop :class:`_Connection`, it does not *generate*
    anything: it carries whatever pending arrival the client hands it,
    and reports back for more when the response lands.  ``closed``
    connections must never send again — the churn invariant the
    property tests pin (`use_after_close` stays zero).
    """

    __slots__ = ("client", "conn_id", "parser", "sock", "pending",
                 "closed", "established")

    def __init__(self, client, conn_id):
        self.client = client
        self.conn_id = conn_id
        self.parser = HttpParser(is_response=True)
        self.sock = None
        self.pending = None       # (scheduled_ns, Arrival) in flight / queued
        self.closed = False
        self.established = False

    def open(self):
        host = self.client.host
        core = host.cpus.assign()

        def do_connect(ctx):
            self.sock = host.stack.connect(
                self.client.server_ip, self.client.port, ctx, core=core
            )
            self.sock.on_established = self._established
            self.sock.on_reset = lambda s: self.client._conn_reset(self)

        host.process_on_core(core, do_connect)

    def _established(self, sock, ctx):
        self.established = True
        self.client.stats.handshakes += 1
        sock.on_data = self._on_data
        if self.pending is not None:
            self.send_pending(ctx)
        else:
            self.client._conn_idle(self)

    def send_pending(self, ctx):
        """Issue the carried arrival inside the current slice."""
        if self.closed:
            # Never legal: a churned-away socket got work.  Count it
            # (the invariant tests read this) and refuse loudly.
            self.client.use_after_close += 1
            raise RuntimeError(
                f"open-loop conn {self.conn_id} used after close"
            )
        _scheduled, arrival = self.pending
        self.client.costs.charge_http_build(ctx)
        self.sock.send(_op_to_request(arrival.op()), ctx)

    def retire(self, ctx=None):
        """Close this socket for good (churn or end of run)."""
        if self.closed:
            return
        self.closed = True
        self.client._forget_conn(self)
        sock = self.sock
        if sock is None or sock.state.value == "CLOSED":
            return
        if ctx is not None:
            sock.close(ctx)
        else:
            self.client.host.process_on_core(
                sock.core, lambda c: sock.close(c)
            )

    def _on_data(self, sock, segment, ctx):
        for message in self.parser.feed(segment, ctx, self.client.costs):
            status = message.status
            message.release()
            pending, self.pending = self.pending, None
            if pending is not None:
                self.client.host.call_at_completion(
                    lambda t_end, c, p=pending, s=status:
                        self.client._record(p, t_end, s)
                )
            self.client._conn_ready(self, ctx)


class OpenLoopWrkClient:
    """Open-loop load over a bounded socket pool (docs/WORKLOADS.md).

    ``source`` is an :class:`~repro.bench.openloop.OpenLoopSource`;
    its arrival clock drives everything.  At each arrival the request
    is stamped with its scheduled time, then:

    - an idle pooled socket sends it immediately;
    - if the arrival is marked ``new_connection`` (churn), one pooled
      socket is retired and a **fresh connection** — three-way
      handshake and all — carries the request;
    - otherwise it queues in the client-side backlog until a socket
      frees up.  Backlog wait is *included in the RTT*: that is the
      coordinated-omission honesty this client exists for.

    Arrivals stop at the end of the measurement window; whatever is
    still queued then is counted (``backlog_at_stop``) and dropped,
    in-flight requests drain, and every socket closes so leak oracles
    can compare pools against store ownership.
    """

    def __init__(self, host, server_ip, source, port=80, sockets=32,
                 duration_ns=20_000_000.0, warmup_ns=5_000_000.0,
                 drain_grace_ns=10_000_000.0, max_backlog=None):
        if sockets < 1:
            raise ValueError("need at least one pooled socket")
        self.host = host
        self.costs = host.costs
        self.server_ip = server_ip
        self.port = port
        self.sockets = sockets
        self.source = source
        self.duration_ns = duration_ns
        self.warmup_ns = warmup_ns
        self.drain_grace_ns = drain_grace_ns
        self.max_backlog = max_backlog
        self.stats = OpenLoopStats()
        self.use_after_close = 0
        self.inflight = 0
        self._conns = []
        self._idle = []
        self._backlog = deque()
        self._next_conn_id = 0
        self.started_at = None
        self.stop_at = None

    # -- introspection (soak gauges read these) -------------------------------

    @property
    def backlog(self):
        return len(self._backlog)

    @property
    def open_sockets(self):
        return len(self._conns)

    def current_rate_rps(self):
        return self.source.rate_at(self.host.sim.now)

    # -- lifecycle ------------------------------------------------------------

    def start(self):
        sim = self.host.sim
        self.started_at = sim.now
        self.stop_at = sim.now + self.warmup_ns + self.duration_ns
        self.stats.measure_start = sim.now + self.warmup_ns
        self.stats.measure_end = self.stop_at
        for _ in range(self.sockets):
            self._spawn_conn()
        self._schedule_next_arrival(sim.now)
        return self

    def run(self, max_events=50_000_000):
        if self.started_at is None:
            self.start()
        sim = self.host.sim
        sim.run(until=self.stop_at)
        # Clients hang up at the end of the window: queued-but-unsent
        # arrivals are recorded, not silently replayed after the test.
        self.stats.backlog_at_stop = len(self._backlog)
        self._backlog.clear()
        sim.run(until=self.stop_at + self.drain_grace_ns,
                max_events=max_events)
        for conn in list(self._conns):
            conn.retire()
        # Settle FIN handshakes so pool gauges reach their resting state.
        sim.run(until=sim.now + 5_000_000.0, max_events=max_events)
        return self.stats

    def _spawn_conn(self, pending=None):
        conn = _OpenLoopConn(self, self._next_conn_id)
        self._next_conn_id += 1
        conn.pending = pending
        self._conns.append(conn)
        conn.open()
        return conn

    def _forget_conn(self, conn):
        if conn in self._conns:
            self._conns.remove(conn)
        if conn in self._idle:
            self._idle.remove(conn)

    # -- arrival plumbing -----------------------------------------------------

    def _schedule_next_arrival(self, now):
        t, arrival = self.source.next_arrival(now)
        if t >= self.stop_at:
            return  # the offered-load window is over; stop generating
        self.host.sim.at(t, self._arrival, t, arrival)

    def _arrival(self, t, arrival):
        # Chain first: the next arrival's time must never depend on how
        # long this one takes to find a socket.
        self._schedule_next_arrival(t)
        stats = self.stats
        stats.arrivals_total += 1
        if stats.measure_start <= t <= stats.measure_end:
            stats.offered += 1
        pending = (t, arrival)
        if self._idle:
            self._dispatch(self._idle.pop(), pending)
        elif self.max_backlog is not None and \
                len(self._backlog) >= self.max_backlog:
            stats.abandoned += 1
        else:
            self._backlog.append(pending)
            if len(self._backlog) > stats.backlog_peak:
                stats.backlog_peak = len(self._backlog)

    def _dispatch(self, conn, pending):
        """Put ``pending`` on the wire via ``conn`` (or a churned one).

        Runs outside any processing slice (arrival events, deferred
        churn) — sends get their own slice on the socket's core.
        """
        self.inflight += 1
        arrival = pending[1]
        if arrival.new_connection:
            # Churn: this logical client has no warm connection.  A
            # pooled socket is retired and a fresh one pays the real
            # handshake before the request goes out — the arrival keeps
            # its original timestamp, so connection-setup latency lands
            # in the RTT like it does for a real first-time client.
            self.stats.churns += 1
            conn.retire()
            self._spawn_conn(pending)
            return
        conn.pending = pending
        self.host.process_on_core(conn.sock.core, conn.send_pending)

    def _conn_idle(self, conn):
        if not conn.closed and conn not in self._idle:
            self._idle.append(conn)

    def _conn_ready(self, conn, ctx):
        """A response landed on ``conn`` inside the current slice."""
        self.inflight -= 1
        if conn.closed:
            return
        if not self._backlog:
            self._conn_idle(conn)
            return
        pending = self._backlog.popleft()
        if pending[1].new_connection:
            # Churn retires sockets — never from inside this slice;
            # re-dispatch as a fresh event.
            self.host.sim.schedule(
                0.0, lambda c=conn, p=pending: self._dispatch(c, p)
            )
            return
        self.inflight += 1
        conn.pending = pending
        conn.send_pending(ctx)

    def _conn_reset(self, conn):
        self.stats.resets += 1
        if conn.pending is not None:
            conn.pending = None
            self.inflight -= 1
            self.stats.errors += 1
        conn.closed = True
        self._forget_conn(conn)
        if self.host.sim.now < self.stop_at:
            self._spawn_conn()  # keep the pool at size

    # -- accounting -----------------------------------------------------------

    def _record(self, pending, finished, status):
        """Scheduled-arrival RTT attribution — the whole point.

        ``rtt = completion - scheduled arrival``: time spent queued
        behind a stall (client backlog, handshake, server queue) is in
        the sample.  Only status-200 requests enter the latency tail;
        shed/full answers are counted as what they are.
        """
        scheduled, _arrival = pending
        stats = self.stats
        stats.completed += 1
        if not (stats.measure_start <= finished <= stats.measure_end):
            return
        if status == 200:
            stats.admitted += 1
            rtt_ns = finished - scheduled
            stats.rtts_ns.append(rtt_ns)
            stats.digest.add(rtt_ns)
            recorder = self.host.recorder
            if recorder is not None:
                recorder.client_request("http", "ok", rtt_ns)
        elif status == 503:
            stats.shed += 1
        elif status == 507:
            stats.storage_full += 1
        else:
            stats.errors += 1

    def __repr__(self):
        return (
            f"<OpenLoopWrkClient {self.source.rate_rps:.0f} rps over "
            f"{self.sockets} sockets>"
        )
