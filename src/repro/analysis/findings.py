"""The shared finding model for PMLint and PMSan.

One :class:`Finding` is one defect (or diagnostic) at one place: a rule
id, a severity, a human message, a ``file:line`` location and a fix
hint.  Static findings come from the linter's AST walk; runtime
findings carry the call site PMSan extracted from the stack at the
moment the violation was observed — either way the report reads the
same, which is what lets CI treat both tools as one gate.

Severities:

- ``error`` — a protocol violation; fails the lint run / sanitized test.
- ``warn``  — suspicious but not certainly wrong; fails the lint run
  (suppress with a reason if deliberate), reported-only at runtime.
- ``perf``  — a performance diagnostic (e.g. a redundant flush); never
  fails anything, surfaced in the report tail.
"""

SEVERITIES = ("error", "warn", "perf")


class Finding:
    """One rule violation (or diagnostic) at one location."""

    __slots__ = ("rule", "message", "path", "line", "hint", "severity",
                 "suppressed", "reason")

    def __init__(self, rule, message, path=None, line=None, hint=None,
                 severity="error"):
        if severity not in SEVERITIES:
            raise ValueError(f"severity {severity!r} not in {SEVERITIES}")
        self.rule = rule
        self.message = message
        self.path = path
        self.line = line
        self.hint = hint
        self.severity = severity
        #: Set by the linter when an inline suppression covers this
        #: finding; ``reason`` then carries the suppression's reason.
        self.suppressed = False
        self.reason = None

    @property
    def location(self):
        if self.path is None:
            return "<runtime>"
        if self.line is None:
            return str(self.path)
        return f"{self.path}:{self.line}"

    def format(self, show_hint=True):
        tag = {"error": "E", "warn": "W", "perf": "P"}[self.severity]
        head = f"{self.location}: {tag}:{self.rule}: {self.message}"
        if self.suppressed:
            head += f"  [suppressed: {self.reason}]"
        if show_hint and self.hint and not self.suppressed:
            head += f"\n    hint: {self.hint}"
        return head

    def __repr__(self):
        return f"<Finding {self.rule} @ {self.location}>"


class AnalysisReport:
    """Findings from one analysis run, active and suppressed apart."""

    def __init__(self, tool="analysis"):
        self.tool = tool
        self.findings = []
        self.suppressed = []
        self.files_checked = 0

    def add(self, finding):
        (self.suppressed if finding.suppressed else self.findings).append(finding)
        return finding

    def extend(self, findings):
        for finding in findings:
            self.add(finding)

    def by_severity(self, severity):
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self):
        return self.by_severity("error")

    @property
    def warnings(self):
        return self.by_severity("warn")

    @property
    def diagnostics(self):
        return self.by_severity("perf")

    @property
    def failures(self):
        """Findings that should fail a gate: errors and warnings."""
        return self.errors + self.warnings

    @property
    def ok(self):
        return not self.failures

    def counts(self):
        out = {}
        for finding in self.findings + self.suppressed:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out

    def summary(self):
        lines = []
        for finding in sorted(
            self.failures, key=lambda f: (f.path or "", f.line or 0, f.rule)
        ):
            lines.append(finding.format())
        for finding in self.diagnostics:
            lines.append(finding.format())
        tally = (
            f"[{self.tool}] {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} diagnostic(s), "
            f"{len(self.suppressed)} suppressed"
        )
        if self.files_checked:
            tally += f" across {self.files_checked} file(s)"
        lines.append(tally)
        if self.suppressed:
            for finding in self.suppressed:
                lines.append(f"  suppressed {finding.rule} at {finding.location}: "
                             f"{finding.reason}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"<AnalysisReport {self.tool}: {len(self.findings)} findings, "
                f"{len(self.suppressed)} suppressed>")
