"""PMSan: a runtime sanitizer for persistence ordering and refcounts.

Where PMLint judges the *shape* of the code, PMSan watches it run: it
attaches to every :class:`~repro.pm.device.PMDevice` through the
observer hook and to the two refcounted packet classes
(:class:`~repro.net.pktbuf.PktBuf`, :class:`~repro.net.pool.
PacketBuffer`) through class patching, and reports through the same
:class:`~repro.analysis.findings.Finding` model the linter uses.

Violation classes
-----------------

- ``PM-S01`` *unflushed store at fence* (strict): a fence ran while a
  line stored **before** the draining lines was still dirty — the
  older store stayed volatile while a newer one persisted.
- ``PM-S02`` *flush without fence at a crash-visible read* (strict):
  ``persisted_view``/``is_durable``/``crash`` observed written-back
  but unfenced lines — durability was assumed that a crash could void.
- ``PM-S03`` *redundant flush* (perf diagnostic): a flush call that
  wrote back zero lines, i.e. pure modelled latency.  Aggregated per
  call site; never fails anything.
- ``PM-S04`` *store-ordering violation* (strict): at a fence, a
  pending line's write-back captured a store **newer** than a store
  that is still dirty — the persist order inverts the program's store
  order (the link-before-persist bug class).
- ``PM-S05`` *refcount leak*: a packet handle was garbage-collected
  while it still held references — nobody could ever release them.
  Handles whose backing device crashed after they were created are
  exempt (crash tests legitimately abandon pre-crash references).
- ``PM-S06`` *slot-lifecycle violation*: a :class:`~repro.core.ppktbuf.
  PMetaSlab` slot left the free→armed(alloc)→written(write_record)→
  committed(linked/rooted)→reclaimed(free) protocol — a
  ``write_record`` over a committed slot (in-place rewrite of a
  reachable record: the double-commit bug), a link or root pointing at
  an armed-but-never-written slot, a write into an unallocated slot.
  Tracked per slot on every slab created while the sanitizer is live,
  so *all* engine paths (put, unlink, gc, recovery truncation,
  replication apply) are covered, not just dedicated gates.  Committed
  slots may be re-linked freely (skip-list relinks at unlink) and
  freed from any armed-or-later state (rollback and unlink both
  reclaim); ``adopt_reachable`` resets the map to what recovery
  proved reachable.

Strict vs. suite mode
---------------------

The fence/ordering checks (S01/S02/S04) assume the watched device
carries one protocol at a time; under the full simulator a later
request's DMA-landed payload legitimately sits dirty during an earlier
request's index fences.  So those checks run only in ``strict`` mode —
dedicated unit/integration tests on dedicated devices — while leak
detection (S05) and the redundant-flush diagnostic (S03) are safe
everywhere and make up the suite-wide ``pytest --pmsan`` lane.

``python -m repro.analysis.pmsan --self-test`` plants a missing fence,
a fence-less flush, a redundant flush and a leaked reference, and
exits non-zero unless every plant is detected and a clean protocol
run stays clean — the negative check CI runs.
"""

import gc
import os
import sys
import weakref

from repro.analysis.findings import AnalysisReport, Finding
from repro.pm import device as pm_device

_HERE = os.path.dirname(os.path.abspath(__file__))
_PM_DIR = os.path.dirname(os.path.abspath(pm_device.__file__))


def _call_site(skip_dirs=(_HERE, _PM_DIR), skip_files=()):
    """(path, line) of the nearest frame outside the pm/analysis layers."""
    frame = sys._getframe(1)
    while frame is not None:
        path = frame.f_code.co_filename
        here = os.path.dirname(os.path.abspath(path))
        if (not any(here.startswith(d) for d in skip_dirs)
                and os.path.abspath(path) not in skip_files):
            try:
                shown = os.path.relpath(path)
            except ValueError:
                shown = path
            return shown, frame.f_lineno
        frame = frame.f_back
    return "<unknown>", None


class _DeviceState:
    """Per-device store bookkeeping (line -> sequence/site)."""

    __slots__ = ("store_seq", "store_site", "flush_seq")

    def __init__(self):
        #: line index -> global sequence of its most recent store.
        self.store_seq = {}
        #: line index -> call site of that store (strict mode only).
        self.store_site = {}
        #: pending line index -> store sequence captured at write-back.
        self.flush_seq = {}


class PMSan:
    """The sanitizer.  Use as a context manager around the code under test.

    ``strict=True`` additionally arms the fence/ordering checks — only
    do that around a dedicated device exercising one protocol.
    """

    def __init__(self, strict=False):
        self.strict = strict
        self.report = AnalysisReport(tool="pmsan")
        self._seq = 0
        self._devices = weakref.WeakKeyDictionary()
        self._previous_factory = None
        self._enabled = False
        #: (rule, path, line) triples already reported, for dedup.
        self._emitted = set()
        #: call site -> count of zero-line flushes.
        self._redundant = {}
        #: id(handle) -> (kind, path, line, device, crash_epoch).
        self._live = {}
        #: (kind, path, line, refcount, pool weakref) for handles that
        #: died holding references; judged at :meth:`disable`.
        self._leak_candidates = []
        self._patched = []
        self._alloc_files = ()
        #: slab -> {slot: "armed" | "written" | "committed"}; absent
        #: slot = free.  Only slabs created while enabled are tracked.
        self._slabs = weakref.WeakKeyDictionary()
        self._slab_patches = []

    # ------------------------------------------------------------ lifecycle

    def enable(self):
        if self._enabled:
            raise RuntimeError("PMSan already enabled")
        self._previous_factory = pm_device.set_observer_factory(self._attach)
        self._patch_refcounts()
        self._patch_slabs()
        self._enabled = True
        return self

    def disable(self):
        """Detach everything, then fold aggregates into the report.

        Must run *before* the caller's teardown drops long-lived
        structures (stores legitimately hold references at scope exit;
        only handles collected while the sanitizer is live are leaks).
        """
        if not self._enabled:
            return self.report
        # Finalize stragglers (cycles) while the patches are still in
        # place, so their leak candidates are recorded.
        gc.collect()
        pm_device.set_observer_factory(self._previous_factory)
        for device in list(self._devices):
            if device.observer is self:
                device.observer = None
        self._unpatch_refcounts()
        self._unpatch_slabs()
        self._slabs = weakref.WeakKeyDictionary()
        self._live.clear()
        for kind, path, line, refcount, pool_ref in self._leak_candidates:
            # A dead handle is only a *leak* if its pool outlived it —
            # a slot lost in a living pool.  When the pool died too
            # (a test's whole world dropped at scope exit), nothing
            # was lost.
            if pool_ref is not None and pool_ref() is None:
                continue
            self._emit(
                "PM-S05",
                f"{kind} allocated at {path}:{line} was garbage-collected "
                f"holding {refcount} reference(s) — nothing can release "
                f"them now",
                (path, line),
                hint="release()/put() on every path (try/finally), or "
                     "keep the handle reachable for its owner",
            )
        self._leak_candidates = []
        for (path, line), count in sorted(self._redundant.items()):
            self.report.add(Finding(
                "PM-S03",
                f"{count} flush call(s) wrote back zero lines",
                path=path, line=line, severity="perf",
                hint="the range was already clean — drop the flush or "
                     "widen the preceding one",
            ))
        self._redundant.clear()
        self._enabled = False
        return self.report

    def __enter__(self):
        return self.enable()

    def __exit__(self, exc_type, exc, tb):
        self.disable()
        return False

    def attach(self, device):
        """Watch a device that existed before the sanitizer was enabled."""
        if getattr(device, "tracker", None) is None:
            raise TypeError(f"{device!r} is not a PM device")
        device.observer = self._attach(device)
        return device

    def _attach(self, device):
        self._devices[device] = _DeviceState()
        return self

    def _state(self, device):
        state = self._devices.get(device)
        if state is None:
            state = self._devices[device] = _DeviceState()
        return state

    # ------------------------------------------------------------- findings

    def _emit(self, rule, message, site, severity="error", hint=None):
        path, line = site
        key = (rule, path, line)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self.report.add(Finding(
            rule, message, path=path, line=line,
            severity=severity, hint=hint,
        ))

    # ------------------------------------------------------- device hooks

    def on_store(self, device, offset, length):
        self._seq += 1
        state = self._state(device)
        site = _call_site() if self.strict else None
        for line in device.tracker.lines_for(offset, length):
            state.store_seq[line] = self._seq
            if site is not None:
                state.store_site[line] = site

    def on_flush(self, device, offset, length, lines_written):
        state = self._state(device)
        if lines_written == 0:
            path, line = _call_site()
            self._redundant[(path, line)] = (
                self._redundant.get((path, line), 0) + 1
            )
        tracker = device.tracker
        for line in tracker.lines_for(offset, length):
            if line in tracker.pending:
                state.flush_seq[line] = state.store_seq.get(line, 0)

    def on_fence(self, device):
        if not self.strict:
            return
        state = self._state(device)
        tracker = device.tracker
        if not tracker.dirty:
            return
        draining = [
            state.flush_seq.get(line, 0) for line in tracker.pending
        ]
        newest_draining = max(draining, default=0)
        for line in sorted(tracker.dirty):
            stored = state.store_seq.get(line, 0)
            if stored < newest_draining:
                where = state.store_site.get(line, ("<unknown>", None))
                self._emit(
                    "PM-S04",
                    f"fence on {device.name} persists a newer store while "
                    f"the store to line {line} (from {where[0]}:{where[1]}) "
                    f"is still dirty — persist order inverts store order",
                    _call_site(),
                    hint="flush+fence the earlier store before the "
                         "dependent one (persist-before-link)",
                )
                self._emit(
                    "PM-S01",
                    f"fence on {device.name} ran with line {line} still "
                    f"dirty — that store stays volatile across the fence",
                    where if where[0] != "<unknown>" else _call_site(),
                    hint="write-back (flush) the line before fencing",
                )

    def on_crash_visible_read(self, device, offset, length):
        if not self.strict:
            return
        tracker = device.tracker
        touched = [
            line for line in tracker.lines_for(offset, length)
            if line in tracker.pending
        ]
        if touched:
            self._emit(
                "PM-S02",
                f"crash-visible read of {device.name} with "
                f"{len(touched)} written-back but unfenced line(s) in "
                f"range — flushed data is not durable until the fence",
                _call_site(),
                hint="fence before treating the range as persisted",
            )

    def on_crash(self, device):
        if not self.strict:
            return
        tracker = device.tracker
        if tracker.pending:
            self._emit(
                "PM-S02",
                f"crash of {device.name} with {len(tracker.pending)} "
                f"written-back but unfenced line(s) in limbo",
                _call_site(),
                hint="a commit point must fence; only post-commit "
                     "hint writes may ride unfenced into a crash",
            )

    # --------------------------------------------------- refcount patching

    def _patch_refcounts(self):
        from repro.net.pktbuf import PktBuf
        from repro.net.pool import PacketBuffer

        sanitizer = self

        import repro.net.pktbuf as pktbuf_mod
        import repro.net.pool as pool_mod

        self._alloc_files = (
            os.path.abspath(pktbuf_mod.__file__),
            os.path.abspath(pool_mod.__file__),
        )

        for cls in (PktBuf, PacketBuffer):
            original_init = cls.__init__
            # Keyed lookup, not attribute lookup: with nested sanitizers
            # (a strict test inside the --pmsan suite lane) the outer
            # instance's hooks must survive the inner unpatch.
            original_del = cls.__dict__.get("__del__")

            def make_init(original):
                def __init__(obj, *args, **kwargs):
                    original(obj, *args, **kwargs)
                    sanitizer._register_handle(obj)
                return __init__

            def make_del():
                def __del__(obj):
                    sanitizer._finalize_handle(obj)
                return __del__

            cls.__init__ = make_init(original_init)
            cls.__del__ = make_del()
            self._patched.append((cls, original_init, original_del))

    def _unpatch_refcounts(self):
        for cls, original_init, original_del in self._patched:
            cls.__init__ = original_init
            if original_del is None:
                del cls.__del__
            else:
                cls.__del__ = original_del
        self._patched = []

    # ------------------------------------------------ slot-lifecycle patching

    _SLAB_METHODS = ("__init__", "alloc", "free", "write_record",
                     "write_next", "write_root", "adopt_reachable")

    def _patch_slabs(self):
        """Arm PM-S06: wrap PMetaSlab so every slot transition is seen.

        Only slabs backed by a device *this* sanitizer observes are
        tracked: a pre-existing fixture's slots have unknown history,
        and with nested sanitizers (a planted self-test inside the
        --pmsan suite lane) the inner plant must not surface in the
        outer report.  The checks are exact protocol state, not
        cross-request heuristics, so they run in suite mode too.
        """
        from repro.core.ppktbuf import PMetaSlab

        sanitizer = self
        # Keyed lookup for nesting, same as _patch_refcounts: the inner
        # sanitizer must restore the *outer* sanitizer's wrappers.
        originals = {name: PMetaSlab.__dict__[name]
                     for name in self._SLAB_METHODS}

        def __init__(slab, *args, **kwargs):
            originals["__init__"](slab, *args, **kwargs)
            device = getattr(getattr(slab, "region", None), "device", None)
            if device is not None and device in sanitizer._devices:
                sanitizer._slabs[slab] = {}

        def alloc(slab, *args, **kwargs):
            slot = originals["alloc"](slab, *args, **kwargs)
            states = sanitizer._slabs.get(slab)
            if states is not None:
                stale = states.get(slot)
                if stale is not None:
                    sanitizer._emit(
                        "PM-S06",
                        f"alloc returned slot {slot} still in state "
                        f"'{stale}' — the free list handed out a live "
                        f"record",
                        _call_site(),
                        hint="a slot must be freed (or proven "
                             "unreachable by recovery) before it can "
                             "be allocated again",
                    )
                states[slot] = "armed"
            return slot

        def free(slab, slot, *args, **kwargs):
            originals["free"](slab, slot, *args, **kwargs)
            states = sanitizer._slabs.get(slab)
            if states is not None:
                # Reclaim is legal from any armed-or-later state:
                # rollback frees armed/written slots, unlink frees
                # committed ones.
                states.pop(slot, None)

        def write_record(slab, slot, record, *args, **kwargs):
            states = sanitizer._slabs.get(slab)
            if states is not None:
                prev = states.get(slot)
                if prev == "committed":
                    sanitizer._emit(
                        "PM-S06",
                        f"write_record over committed slot {slot} — "
                        f"in-place rewrite of a reachable record "
                        f"(double commit): a crash mid-write tears a "
                        f"record readers can already reach",
                        _call_site(),
                        hint="allocate a fresh slot, write it, then "
                             "swing the link (persist-before-link); "
                             "never rewrite a reachable slot in place",
                    )
                elif prev is None:
                    sanitizer._emit(
                        "PM-S06",
                        f"write_record into slot {slot} that was never "
                        f"alloc()ed (or already freed)",
                        _call_site(),
                        hint="take the slot from alloc() so the free "
                             "list and the written set agree",
                    )
            result = originals["write_record"](slab, slot, record,
                                               *args, **kwargs)
            if states is not None and states.get(slot) != "committed":
                states[slot] = "written"
            return result

        def write_next(slab, slot, level, target, *args, **kwargs):
            states = sanitizer._slabs.get(slab)
            if states is not None and target:
                sanitizer._check_link(states, target - 1, "write_next")
            result = originals["write_next"](slab, slot, level, target,
                                             *args, **kwargs)
            if states is not None and target:
                if states.get(target - 1) == "written":
                    states[target - 1] = "committed"
            return result

        def write_root(slab, head_slot, *args, **kwargs):
            states = sanitizer._slabs.get(slab)
            if states is not None:
                sanitizer._check_link(states, head_slot, "write_root")
            result = originals["write_root"](slab, head_slot,
                                             *args, **kwargs)
            if states is not None and states.get(head_slot) == "written":
                states[head_slot] = "committed"
            return result

        def adopt_reachable(slab, reachable, *args, **kwargs):
            result = originals["adopt_reachable"](slab, reachable,
                                                  *args, **kwargs)
            states = sanitizer._slabs.get(slab)
            if states is not None:
                states.clear()
                states.update((slot, "committed") for slot in reachable)
            return result

        wrappers = {
            "__init__": __init__, "alloc": alloc, "free": free,
            "write_record": write_record, "write_next": write_next,
            "write_root": write_root, "adopt_reachable": adopt_reachable,
        }
        for name in self._SLAB_METHODS:
            setattr(PMetaSlab, name, wrappers[name])
        self._slab_patches.append((PMetaSlab, originals))

    def _check_link(self, states, slot, op):
        # Only the *armed* state is a provable violation: the slot was
        # taken off the free list but its record was never written, so
        # a crash recovers a reachable slot with garbage bytes.  An
        # untracked target stays silent — codec-level tests (and
        # recovery walking pre-existing layouts) link raw slot numbers
        # the sanitizer never saw alloc()ed.
        if states.get(slot) == "armed":
            self._emit(
                "PM-S06",
                f"{op} links slot {slot} whose record was never "
                f"written — a crash here recovers a reachable slot "
                f"with garbage bytes",
                _call_site(),
                hint="write_record (and persist it) before making the "
                     "slot reachable",
            )

    def _unpatch_slabs(self):
        for cls, originals in self._slab_patches:
            for name, func in originals.items():
                setattr(cls, name, func)
        self._slab_patches = []

    @staticmethod
    def _backing_device(obj):
        pool = getattr(obj, "pool", None)
        if pool is None:
            buf = getattr(obj, "buf", None)
            pool = getattr(buf, "pool", None)
        region = getattr(pool, "region", None)
        return getattr(region, "device", None)

    def _register_handle(self, obj):
        device = self._backing_device(obj)
        # Attribute the handle to the caller of the allocation primitive,
        # not to pktbuf/pool internals.
        path, line = _call_site(skip_files=self._alloc_files)
        self._live[id(obj)] = (
            type(obj).__name__, path, line, device,
            getattr(device, "crashes", 0),
        )

    def _finalize_handle(self, obj):
        info = self._live.pop(id(obj), None)
        if info is None:
            return  # allocated outside this sanitizer's lifetime
        kind, path, line, device, epoch = info
        if getattr(device, "crashes", 0) != epoch:
            return  # the power-cycle legitimately voided the reference
        refcount = getattr(obj, "refcount", 0)
        leaked = refcount > 0 and not getattr(obj, "freed", False)
        if leaked:
            pool = getattr(obj, "pool", None)
            if pool is None:
                pool = getattr(getattr(obj, "buf", None), "pool", None)
            self._leak_candidates.append((
                kind, path, line, refcount,
                weakref.ref(pool) if pool is not None else None,
            ))


def _selftest():
    """Plant one of each violation; fail unless every plant is caught."""
    from repro.net.pktbuf import PktBuf
    from repro.net.pool import BufferPool
    from repro.pm.device import PMDevice
    from repro.sim.context import NULL_CONTEXT

    failures = []

    # 1. A clean persist-before-link protocol must produce no findings.
    with PMSan(strict=True) as clean:
        device = PMDevice(16 * 1024, name="selftest-clean")
        device.write(0, b"node")
        device.flush(0, 64, NULL_CONTEXT)
        device.fence(NULL_CONTEXT)
        device.write(128, b"link")
        device.flush(128, 64, NULL_CONTEXT)
        device.fence(NULL_CONTEXT)
        device.persisted_view(0, 64)
    if not clean.report.ok or clean.report.diagnostics:
        failures.append(
            "clean protocol raised findings:\n" + clean.report.summary()
        )

    # 2. Planted missing fence: link flushed+fenced while the node's
    #    store was never written back (the link-before-persist bug).
    with PMSan(strict=True) as missing_fence:
        device = PMDevice(16 * 1024, name="selftest-marred")
        device.write(0, b"node")            # never flushed
        device.write(128, b"link")
        device.flush(128, 64, NULL_CONTEXT)
        device.fence(NULL_CONTEXT)                       # node still dirty
    rules = {f.rule for f in missing_fence.report.findings}
    if "PM-S04" not in rules or "PM-S01" not in rules:
        failures.append(
            f"planted missing fence NOT detected (got {sorted(rules)})"
        )

    # 3. Planted flush-without-fence at a crash-visible read.
    with PMSan(strict=True) as no_fence:
        device = PMDevice(16 * 1024, name="selftest-unfenced")
        device.write(0, b"record")
        device.flush(0, 64, NULL_CONTEXT)
        device.is_durable(0, 64)             # pending, never fenced
    rules = {f.rule for f in no_fence.report.findings}
    if "PM-S02" not in rules:
        failures.append(
            f"planted flush-without-fence NOT detected (got {sorted(rules)})"
        )

    # 4. Planted redundant flush (perf diagnostic only — must not fail).
    with PMSan(strict=True) as redundant:
        device = PMDevice(16 * 1024, name="selftest-redundant")
        device.write(0, b"x")
        device.flush(0, 64, NULL_CONTEXT)
        device.flush(0, 64, NULL_CONTEXT)                  # zero lines written back
        device.fence(NULL_CONTEXT)
    diags = {f.rule for f in redundant.report.diagnostics}
    if "PM-S03" not in diags:
        failures.append("planted redundant flush NOT diagnosed")
    if not redundant.report.ok:
        failures.append("redundant flush wrongly escalated to a failure")

    # 5. Planted refcount leak: the handle dies holding its reference.
    with PMSan() as leak:
        device = PMDevice(64 * 1024, name="selftest-leak")
        pool = BufferPool(device.region(0, 64 * 1024), slot_size=2048,
                          name="selftest-pool")
        pkt = PktBuf.alloc(pool)
        del pkt                              # dropped without release()
        gc.collect()
    rules = {f.rule for f in leak.report.findings}
    if "PM-S05" not in rules:
        failures.append(f"planted refcount leak NOT detected (got {sorted(rules)})")

    # 6. A released handle must not be reported.
    with PMSan() as ok_release:
        device = PMDevice(64 * 1024, name="selftest-release")
        pool = BufferPool(device.region(0, 64 * 1024), slot_size=2048,
                          name="selftest-pool-ok")
        pkt = PktBuf.alloc(pool)
        pkt.release()
        del pkt
        gc.collect()
    if not ok_release.report.ok:
        failures.append(
            "released handle wrongly reported:\n" + ok_release.report.summary()
        )

    # 7. Planted double commit: a slot is rooted (reachable) and then
    #    rewritten in place — a crash mid-rewrite tears a record readers
    #    can already find.
    from repro.core.ppktbuf import KIND_HEAD, PMetaSlab, PPktRecord

    with PMSan() as double_commit:
        device = PMDevice(64 * 1024, name="selftest-double-commit")
        slab = PMetaSlab(device.region(0, 64 * 1024))
        slot = slab.alloc()
        slab.write_record(slot, PPktRecord(kind=KIND_HEAD, height=1))
        slab.write_root(slot)                # slot is now reachable
        slab.write_record(slot, PPktRecord(kind=KIND_HEAD, height=2))
    rules = {f.rule for f in double_commit.report.findings}
    if "PM-S06" not in rules:
        failures.append(
            f"planted double commit NOT detected (got {sorted(rules)})"
        )

    # 8. The legal lifecycle — alloc, write, link, retarget a committed
    #    link, free — must stay clean.
    with PMSan() as lifecycle:
        device = PMDevice(64 * 1024, name="selftest-lifecycle")
        slab = PMetaSlab(device.region(0, 64 * 1024))
        head = slab.alloc()
        slab.write_record(head, PPktRecord(kind=KIND_HEAD, height=1))
        slab.write_root(head)
        node = slab.alloc()
        slab.write_record(node, PPktRecord(height=1, key=b"a"))
        slab.write_next(head, 0, node + 1)   # persist-before-link
        other = slab.alloc()
        slab.write_record(other, PPktRecord(height=1, key=b"b"))
        slab.write_next(node, 0, other + 1)
        slab.write_next(head, 0, other + 1)  # unlink: retarget committed
        slab.free(node)                      # reclaim the unlinked slot
    if not lifecycle.report.ok:
        failures.append(
            "legal slot lifecycle wrongly reported:\n"
            + lifecycle.report.summary()
        )

    return failures


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.pmsan",
        description="PMSan negative self-test (planted-bug detection)",
    )
    parser.add_argument("--self-test", action="store_true", required=True,
                        help="plant one of each violation class and "
                             "verify the sanitizer catches them all")
    parser.parse_args(argv)

    failures = _selftest()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(f"self-test FAILED: {len(failures)} planted check(s) missed",
              file=sys.stderr)
        return 1
    print("self-test OK: every planted violation was detected and the "
          "clean runs stayed clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
