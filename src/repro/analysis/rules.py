"""The PMLint rule catalogue.

Every rule here is tuned to this repo's idioms — see docs/ANALYSIS.md
for the catalogue in prose and for how to add a rule.  The short
version: subclass :class:`~repro.analysis.pmlint.Rule`, decorate with
:func:`~repro.analysis.pmlint.register`, and ship a planted ``BAD``
snippet the rule detects plus a ``GOOD`` snippet it stays silent on —
``repro-lint --self-test`` fails the build if either stops holding.

The rules are heuristic (textual order approximates domination; no
inter-procedural data flow).  That is deliberate: the repo's
persistence protocols are written so that the *local* shape of a
function is enough to judge it — a commit helper that flushes must
fence (or take a ``fence=`` parameter so its caller decides), an
allocation on a packet path must sit in a try.  Where a function is
correct for a non-local reason, the suppression comment records that
reason in place.
"""

from repro.analysis.pmlint import (
    Rule,
    arg_names,
    enclosing_tries,
    inside_any,
    method_calls,
    register,
)

#: Function names that merely forward persistence calls down a layer
#: (Region.flush -> device.flush, ...).  Their bodies are the mechanism
#: the rules check *call sites of*, not call sites themselves.
FORWARDER_NAMES = frozenset({
    "flush", "fence", "persist", "write", "writeback", "write_bytes",
})

#: Receivers whose .flush() has nothing to do with persistent memory.
_IO_RECEIVERS = ("stdout", "stderr", "stream", "sock", "file")


def _is_io_receiver(receiver):
    return receiver is not None and any(
        receiver.endswith(name) for name in _IO_RECEIVERS
    )


def _defers_to_caller(func_node):
    """True when the function takes a fence/persist decision parameter.

    ``write_next(..., fence=True)``-style helpers deliberately leave
    the fence to the caller; the protocol-level rule then applies at
    the call site, not inside the helper.
    """
    names = arg_names(func_node)
    return "fence" in names or "persist" in names


def _persistence_events(func_node):
    """(kind, call) for flush/fence/persist traffic, in source order.

    A call with a ``fence=`` keyword (write_next-style helpers) counts
    as a fence event: the callee fences on the caller's behalf.
    """
    events = []
    for call, name, receiver in method_calls(func_node):
        if any(kw.arg == "fence" for kw in call.keywords):
            events.append(("fence", call))
            continue
        if name == "fence":
            events.append(("fence", call))
        elif name == "persist" or name.startswith(("persist", "_persist")):
            events.append(("persist", call))
        elif name == "sync":
            # Block-device durability: sync() is the fence of that layer.
            events.append(("persist", call))
        elif name == "flush" and not _is_io_receiver(receiver):
            events.append(("flush", call))
    return events


@register
class FlushWithoutFence(Rule):
    """A flushed store is not durable until the fence drains it."""

    id = "PM-W01"
    title = "flush with no later fence/persist in the same function"
    severity = "warn"
    hint = ("clwb without sfence only *schedules* write-back — follow the "
            "flush with .fence(ctx) or use .persist(...), or take a "
            "fence= parameter if the caller owns the ordering decision")

    BAD = (
        "class Slab:\n"
        "    def commit(self, ctx):\n"
        "        self.region.write(0, b'x', ctx)\n"
        "        self.region.flush(0, 1, ctx, 'persist')\n"
        "        self.committed = True\n"
    )
    GOOD = (
        "class Slab:\n"
        "    def commit(self, ctx):\n"
        "        self.region.write(0, b'x', ctx)\n"
        "        self.region.flush(0, 1, ctx, 'persist')\n"
        "        self.region.fence(ctx)\n"
        "        self.committed = True\n"
    )

    def check(self, module):
        for func, qualname in module.functions():
            if func.name in FORWARDER_NAMES or _defers_to_caller(func):
                continue
            events = _persistence_events(func)
            for index, (kind, call) in enumerate(events):
                if kind != "flush":
                    continue
                drained = any(
                    later_kind in ("fence", "persist")
                    for later_kind, _ in events[index + 1:]
                )
                if not drained:
                    yield self.finding(
                        module, call.lineno,
                        f"{qualname} flushes but never fences afterwards",
                    )


@register
class WriteWithoutWriteback(Rule):
    """A PM store that is never flushed sits dirty in the cache model."""

    id = "PM-W02"
    title = "PM region write with no flush/persist anywhere after it"
    severity = "warn"
    hint = ("a store to a PM region stays in the (volatile) cache model "
            "until written back — follow it with .flush()+.fence() or "
            ".persist(), or take a fence=/persist= parameter")

    BAD = (
        "class Node:\n"
        "    def link(self, ctx):\n"
        "        self.region.write(8, b'ptr', ctx)\n"
        "        return True\n"
    )
    GOOD = (
        "class Node:\n"
        "    def link(self, ctx):\n"
        "        self.region.write(8, b'ptr', ctx)\n"
        "        self.region.persist(8, 3, ctx, 'persist')\n"
        "        return True\n"
    )

    def check(self, module):
        for func, qualname in module.functions():
            if func.name in FORWARDER_NAMES or _defers_to_caller(func):
                continue
            calls = method_calls(func)
            writes = [
                call for call, name, receiver in calls
                if name == "write" and receiver is not None
                and ("region" in receiver or "device" in receiver)
            ]
            if not writes:
                continue
            events = _persistence_events(func)
            for call in writes:
                key = (call.lineno, call.col_offset)
                drained = any(
                    (event.lineno, event.col_offset) > key
                    for _kind, event in events
                )
                if not drained:
                    yield self.finding(
                        module, call.lineno,
                        f"{qualname} writes a PM region but never "
                        f"flushes it",
                    )


@register
class UnguardedPacketAlloc(Rule):
    """Allocation failure on a packet path must not unwind the stack."""

    id = "REF-01"
    title = "pool/slab alloc outside try on a packet-processing path"
    severity = "warn"
    hint = ("PoolExhausted/SlabExhausted escaping a receive or timer "
            "slice leaks every reference the frames above hold — wrap "
            "the alloc in try/except (drop, degrade, or 503) like "
            "nic.on_wire and tcp._emit_segment do")

    #: Setup/recovery entry points run before traffic exists; an
    #: exhausted pool there is a configuration error and *should* raise.
    #: A function literally named ``alloc`` is the allocation primitive
    #: itself (PktBuf.alloc, BufferPool.alloc) — the rule applies to its
    #: call sites, not its body.
    EXEMPT_FUNCTIONS = frozenset({
        "create", "recover", "reattach", "open_or_create", "main",
        "__init__", "setup", "from_config", "alloc",
    })
    #: Only packet-processing layers; testing/ and bench setup allocate
    #: eagerly on purpose.
    PATH_SCOPE = ("/net/", "/core/", "/storage/")

    BAD_PATH = "src/repro/net/_selftest.py"
    BAD = (
        "class Proto:\n"
        "    def _build(self, ctx):\n"
        "        pkt = PktBuf.alloc(self.tx_pool, 64, ctx)\n"
        "        return pkt\n"
    )
    GOOD = (
        "class Proto:\n"
        "    def _build(self, ctx):\n"
        "        try:\n"
        "            pkt = PktBuf.alloc(self.tx_pool, 64, ctx)\n"
        "        except PoolExhausted:\n"
        "            return None\n"
        "        return pkt\n"
    )

    def _in_scope(self, module):
        path = str(module.path).replace("\\", "/")
        return any(part in path for part in self.PATH_SCOPE)

    def check(self, module):
        if not self._in_scope(module):
            return
        for func, qualname in module.functions():
            if func.name in self.EXEMPT_FUNCTIONS:
                continue
            spans = enclosing_tries(func)
            for call, name, receiver in method_calls(func):
                if name != "alloc":
                    continue
                if not inside_any(call.lineno, spans):
                    yield self.finding(
                        module, call.lineno,
                        f"{qualname} calls "
                        f"{receiver + '.' if receiver else ''}alloc() "
                        f"outside any try block",
                    )


@register
class UnseededNondeterminism(Rule):
    """The simulation must replay byte-identically from its seeds."""

    id = "DET-01"
    title = "unseeded or wall-clock nondeterminism in simulation code"
    severity = "error"
    hint = ("derive randomness from random.Random(seed) threaded through "
            "the world/config, and take time from the Simulator clock — "
            "wall-clock or global-rng values make crash replay diverge")

    BAD = (
        "import random\n"
        "def jitter():\n"
        "    return random.random()\n"
    )
    GOOD = (
        "import random\n"
        "def make_rng(seed):\n"
        "    return random.Random(seed)\n"
    )

    _TIME_METHODS = frozenset({
        "time", "monotonic", "perf_counter", "time_ns", "monotonic_ns",
        "perf_counter_ns",
    })
    _DATE_METHODS = frozenset({"now", "utcnow", "today"})

    def check(self, module):
        for func, qualname in module.functions():
            for call, name, receiver in method_calls(func):
                if receiver == "random":
                    if name == "Random" and (call.args or call.keywords):
                        continue  # random.Random(seed) is the idiom
                    what = (f"random.Random() with no seed" if name == "Random"
                            else f"global-state random.{name}()")
                    yield self.finding(
                        module, call.lineno, f"{qualname} uses {what}",
                    )
                elif receiver == "time" and name in self._TIME_METHODS:
                    yield self.finding(
                        module, call.lineno,
                        f"{qualname} reads wall-clock time.{name}()",
                    )
                elif (receiver is not None
                      and receiver.split(".")[-1] == "datetime"
                      and name in self._DATE_METHODS):
                    yield self.finding(
                        module, call.lineno,
                        f"{qualname} reads wall-clock datetime.{name}()",
                    )
                elif receiver == "uuid":
                    yield self.finding(
                        module, call.lineno,
                        f"{qualname} uses nondeterministic uuid.{name}()",
                    )


@register
class UnchargedPersistence(Rule):
    """Every modelled flush/fence costs simulated nanoseconds."""

    id = "CTX-01"
    title = "flush/fence/persist call without an execution context"
    severity = "warn"
    hint = ("pass the ExecutionContext so the operation charges "
            "flush_line_ns/fence_ns to the right core (pass NULL_CONTEXT "
            "explicitly when not charging is the point)")

    BAD = (
        "class Slab:\n"
        "    def commit(self):\n"
        "        self.region.flush(0, 64)\n"
        "        self.region.fence()\n"
    )
    GOOD = (
        "class Slab:\n"
        "    def commit(self, ctx):\n"
        "        self.region.flush(0, 64, ctx, 'persist')\n"
        "        self.region.fence(ctx)\n"
    )

    #: positional slot the ctx occupies per method (0-based).
    _CTX_SLOT = {"flush": 2, "persist": 2, "fence": 0}

    def check(self, module):
        for func, qualname in module.functions():
            if func.name in FORWARDER_NAMES:
                continue
            for call, name, receiver in method_calls(func):
                slot = self._CTX_SLOT.get(name)
                if slot is None or _is_io_receiver(receiver):
                    continue
                if receiver is not None and "tracker" in receiver:
                    continue  # cache-layer internals charge via the device
                has_ctx = (
                    len(call.args) > slot
                    or any(kw.arg == "ctx" for kw in call.keywords)
                )
                if not has_ctx:
                    yield self.finding(
                        module, call.lineno,
                        f"{qualname} calls .{name}() without a ctx — "
                        f"its latency is charged to nobody",
                    )


@register
class SuppressionHygiene(Rule):
    """A suppression is an argument; it must state its reason."""

    id = "SUP-01"
    title = "pmlint suppression without a reason"
    severity = "error"
    hint = "write '# pmlint: disable=RULE — reason'"

    # The marker string is split so the linter's own source does not
    # read as a suppression comment when it lints itself.
    BAD = "X = 1  # pmlint" ": disable=PM-W01\n"
    GOOD = ("X = 1  # pmlint" ": disable=PM-W01 — "
            "planted example with a reason\n")

    def check(self, module):
        return list(module.suppression_findings)
