"""PMLint: AST-based static analysis of the persistence/refcount idioms.

The linter is a small framework plus a registry of repo-specific rules
(:mod:`repro.analysis.rules`).  A rule is a class with an ``id``, a
``check(module)`` generator yielding :class:`~repro.analysis.findings.
Finding` objects, and two planted example snippets (``BAD``/``GOOD``)
that :func:`self_test` uses to prove the rule actually detects what it
claims — the negative check CI runs.

Suppressions are inline and **must carry a reason**::

    self.region.flush(addr, 4, ctx, "persist")  # pmlint: disable=PM-W01 — reachability is the commit point

A suppression with no reason is itself a finding (``SUP-01``).  A
comment-only suppression line covers the next source line; a trailing
comment covers its own line (put it on the first physical line of a
multi-line call).  ``# pmlint: disable-file=RULE — reason`` anywhere in
a file covers the whole file.
"""

import ast
import os
import re
import tokenize

from repro.analysis.findings import AnalysisReport, Finding

#: rule id -> rule class.  Populated by :func:`register` (see rules.py).
RULES = {}

_SUPPRESS_RE = re.compile(
    r"#\s*pmlint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\- ]+?)"
    r"(?:\s*(?:—|--|:|\()\s*(.*?))?\)?\s*$"
)


def register(rule_cls):
    """Class decorator adding a rule to the registry."""
    if rule_cls.id in RULES:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    RULES[rule_cls.id] = rule_cls
    return rule_cls


class Suppression:
    __slots__ = ("rules", "reason", "line", "file_wide", "used")

    def __init__(self, rules, reason, line, file_wide):
        self.rules = rules
        self.reason = reason
        self.line = line
        self.file_wide = file_wide
        self.used = False


class ModuleSource:
    """One parsed source file plus its suppression table."""

    def __init__(self, path, source, display_path=None):
        self.path = display_path or path
        self.source = source
        self.tree = ast.parse(source, filename=self.path)
        self.lines = source.splitlines()
        #: target line -> [Suppression]; file-wide entries under key None.
        self.suppressions = {}
        #: SUP-01 findings produced while parsing suppressions.
        self.suppression_findings = []
        self._parse_suppressions()

    @classmethod
    def load(cls, path, root=None):
        with tokenize.open(path) as handle:
            source = handle.read()
        display = os.path.relpath(path, root) if root else path
        return cls(path, source, display_path=display)

    def _parse_suppressions(self):
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                # Marker split so this file does not flag itself.
                if ("pmlint" ": disable") in text:
                    self.suppression_findings.append(Finding(
                        "SUP-01",
                        "unparseable pmlint control comment",
                        path=self.path, line=lineno,
                        hint="use '# pmlint: disable=RULE — reason'",
                    ))
                continue
            kind, rule_list, reason = match.groups()
            rules = tuple(r.strip() for r in rule_list.split(",") if r.strip())
            reason = (reason or "").strip()
            if not reason:
                self.suppression_findings.append(Finding(
                    "SUP-01",
                    f"suppression of {', '.join(rules)} has no reason",
                    path=self.path, line=lineno,
                    hint="every suppression must say why the finding is "
                         "deliberate: '# pmlint: disable=RULE — reason'",
                ))
                continue
            file_wide = kind == "disable-file"
            code_before = text[:match.start()].strip()
            target = None if file_wide else (
                lineno if code_before else lineno + 1
            )
            entry = Suppression(rules, reason, lineno, file_wide)
            self.suppressions.setdefault(target, []).append(entry)

    def suppression_for(self, line, rule_id):
        """The suppression covering (line, rule), or None."""
        for target in (line, None):
            for entry in self.suppressions.get(target, ()):
                if rule_id in entry.rules:
                    entry.used = True
                    return entry
        return None

    def functions(self):
        """Every function/method def as (node, qualified name)."""
        out = []

        def walk(node, prefix):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((child, f"{prefix}{child.name}"))
                    walk(child, f"{prefix}{child.name}.")
                elif isinstance(child, ast.ClassDef):
                    walk(child, f"{prefix}{child.name}.")
                else:
                    walk(child, prefix)

        walk(self.tree, "")
        return out


def dotted_name(node):
    """Best-effort dotted source text of an expression (or None)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Call):
        base = dotted_name(node.func)
        return f"{base}()" if base else None
    return None


def method_calls(node):
    """All attribute calls under ``node`` in source order.

    Yields ``(call, method_name, receiver_text)`` where receiver_text
    may be None for complex expressions.
    """
    calls = []
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            calls.append(
                (child, child.func.attr, dotted_name(child.func.value))
            )
        elif isinstance(child, ast.Call) and isinstance(child.func, ast.Name):
            calls.append((child, child.func.id, None))
    calls.sort(key=lambda item: (item[0].lineno, item[0].col_offset))
    return calls


def enclosing_tries(func_node):
    """Line spans of try-block bodies and handlers inside ``func_node``."""
    spans = []
    for child in ast.walk(func_node):
        if isinstance(child, ast.Try):
            last = child.body[-1]
            spans.append((child.body[0].lineno,
                          getattr(last, "end_lineno", last.lineno)))
            for handler in child.handlers:
                if handler.body:
                    last = handler.body[-1]
                    spans.append((handler.body[0].lineno,
                                  getattr(last, "end_lineno", last.lineno)))
            if child.finalbody:
                last = child.finalbody[-1]
                spans.append((child.finalbody[0].lineno,
                              getattr(last, "end_lineno", last.lineno)))
    return spans


def inside_any(lineno, spans):
    return any(start <= lineno <= end for start, end in spans)


def arg_names(func_node):
    args = func_node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


class Rule:
    """Base class: subclass, set the attributes, implement check()."""

    id = "RULE"
    title = "untitled rule"
    severity = "error"
    hint = None
    #: Whole-program rules run once over the solved call graph
    #: (:func:`lint_program`), not per module.
    interprocedural = False
    #: Planted snippets for the negative self-test.  BAD must trip the
    #: rule; GOOD must not.  BAD_PATH positions the virtual module for
    #: rules that are path-scoped.
    BAD = None
    GOOD = None
    BAD_PATH = "src/repro/net/_selftest.py"

    def check(self, module):
        raise NotImplementedError

    def finding(self, module, line, message, hint=None, severity=None):
        out = Finding(
            self.id, message, path=module.path, line=line,
            hint=hint or self.hint, severity=severity or self.severity,
        )
        entry = module.suppression_for(line, self.id)
        if entry is not None:
            out.suppressed = True
            out.reason = entry.reason
        return out


#: Intraprocedural rules superseded by a whole-program rule.  When the
#: interprocedural pass runs (the default), these stay off unless the
#: user --selects them explicitly: their blanket exemptions (forwarder
#: names, fence= deferral, "every alloc needs a try") are exactly what
#: PM-I01/REF-I01 replace with call-chain reasoning.
SUPERSEDED_BY_INTERPROC = frozenset({"PM-W01", "REF-01"})


def iter_rules(select=None):
    import repro.analysis.rules  # noqa: F401 — populate the registry
    import repro.analysis.rules_interproc  # noqa: F401

    for rule_id in sorted(RULES):
        if select is None or rule_id in select:
            yield RULES[rule_id]()


def lint_module(module, select=None, interprocedural=False):
    """All findings (active + suppressed) for one parsed module.

    Suppression-syntax findings (SUP-01) are emitted by the SUP-01 rule
    itself, so selecting rules also selects whether they are reported.
    Interprocedural rules never run here (they need the whole program);
    with ``interprocedural`` set, the rules they supersede are skipped
    too unless explicitly selected.
    """
    found = []
    for rule in iter_rules(select):
        if rule.interprocedural:
            continue
        if (interprocedural and select is None
                and rule.id in SUPERSEDED_BY_INTERPROC):
            continue
        found.extend(rule.check(module))
    return found


def lint_program(modules, select=None, cache_path=None):
    """Run the whole-program rules once over all parsed modules."""
    from repro.analysis.interproc import Program, SummaryCache

    cache = SummaryCache(cache_path) if cache_path else None
    program = Program(modules, cache=cache)
    found = []
    for rule in iter_rules(select):
        if rule.interprocedural:
            found.extend(rule.check_program(program))
    return found, program


def collect_files(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(set(files))


def run_lint(paths, select=None, root=None, interprocedural=True,
             cache_path=None):
    """Lint files/directories; returns an :class:`AnalysisReport`.

    ``interprocedural`` (the default) additionally builds the
    whole-program call graph and runs PM-I01/REF-I01, superseding
    PM-W01/REF-01; ``cache_path`` names the per-file summary cache.
    """
    report = AnalysisReport(tool="pmlint")
    modules = []
    for path in collect_files(paths):
        module = ModuleSource.load(path, root=root)
        modules.append(module)
        report.extend(lint_module(module, select,
                                  interprocedural=interprocedural))
        report.files_checked += 1
    if interprocedural and modules:
        found, _program = lint_program(modules, select,
                                       cache_path=cache_path)
        report.extend(found)
    return report


def self_test():
    """Prove every registered rule fires on its planted bad example.

    Returns an :class:`AnalysisReport` of *rule-engine* defects: a rule
    whose BAD snippet produces no finding, or whose GOOD snippet
    produces one, is reported here.  An empty report means the negative
    checks all passed.
    """
    report = AnalysisReport(tool="pmlint-selftest")
    for rule in iter_rules():
        if rule.BAD is None or rule.GOOD is None:
            report.add(Finding(
                rule.id, "rule ships no planted BAD/GOOD example",
                path=f"<selftest:{rule.id}>",
                hint="every rule must carry its own negative check",
            ))
            continue
        for snippet, expect_hit, label in (
            (rule.BAD, True, "BAD"), (rule.GOOD, False, "GOOD"),
        ):
            # The virtual module keeps BAD_PATH as its path so that
            # path-scoped rules see themselves in scope.
            module = ModuleSource(rule.BAD_PATH, snippet)
            hits = [f for f in rule.check(module)
                    if f.rule == rule.id and not f.suppressed]
            if expect_hit and not hits:
                report.add(Finding(
                    rule.id,
                    f"planted {label} example was NOT detected",
                    path=f"<selftest:{rule.id}>",
                    hint="the detector does not detect; fix the rule",
                ))
            elif not expect_hit and hits:
                report.add(Finding(
                    rule.id,
                    f"clean {label} example raised {len(hits)} finding(s)",
                    path=f"<selftest:{rule.id}>",
                    hint="the rule is too eager; fix the rule",
                ))
        report.files_checked += 2
    return report
