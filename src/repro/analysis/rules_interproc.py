"""Interprocedural PMLint rules: PM-I01 and REF-I01.

These are the whole-program replacements for the blanket exemptions the
intraprocedural rules need.  PM-W01 must skip any helper taking a
``fence=`` parameter — so nobody checks that some caller actually
fences; REF-01 demands a ``try`` around every alloc — even where the
function holds nothing else and an unwind leaks nothing.  With the
:class:`~repro.analysis.interproc.Program` call graph and the
fixed-point effect summaries, both questions are asked where they are
answerable: across the call chains.

In the default (interprocedural) lint mode these rules *replace*
PM-W01 and REF-01; ``--no-interprocedural`` (or an explicit
``--select``) brings the local rules back.
"""

from repro.analysis.interproc import Program
from repro.analysis.pmlint import Rule, register


class InterprocRule(Rule):
    """Base for whole-program rules.

    ``check_program(program)`` is the real entry point, used once per
    lint run over the full tree (:func:`repro.analysis.pmlint
    .lint_program`).  ``check(module)`` wraps a single module in its
    own one-file program so the planted-example self-test machinery
    works unchanged.
    """

    interprocedural = True

    def check(self, module):
        return self.check_program(Program([module]))

    def check_program(self, program):
        raise NotImplementedError


@register
class InterprocFenceDomination(InterprocRule):
    """A flush nobody — not the function, not any caller chain — drains."""

    id = "PM-I01"
    title = "flush never fenced in the function nor in any caller chain"
    severity = "warn"
    hint = ("a clwb that no sfence ever drains is not durable on any "
            "path — fence after the flush, fence in the caller that owns "
            "the ordering (fence=True at the call site), or pass the "
            "deferred flush further up explicitly with fence=False")

    # Two-hop chain: the flush sits in _stage, and neither commit nor
    # handle (the whole caller chain) ever fences.
    BAD = (
        "class Store:\n"
        "    def _stage(self, ctx):\n"
        "        self.region.write(0, b'x', ctx)\n"
        "        self.region.flush(0, 1, ctx, 'persist')\n"
        "\n"
        "    def commit(self, ctx):\n"
        "        self._stage(ctx)\n"
        "        self.log.append('commit')\n"
        "\n"
        "    def handle(self, ctx):\n"
        "        self.commit(ctx)\n"
        "        return True\n"
    )
    # Identical shape, but the top of the chain fences: the deferred
    # flush is dominated and every function stays silent.
    GOOD = (
        "class Store:\n"
        "    def _stage(self, ctx):\n"
        "        self.region.write(0, b'x', ctx)\n"
        "        self.region.flush(0, 1, ctx, 'persist')\n"
        "\n"
        "    def commit(self, ctx):\n"
        "        self._stage(ctx)\n"
        "        self.log.append('commit')\n"
        "\n"
        "    def handle(self, ctx):\n"
        "        self.commit(ctx)\n"
        "        self.region.fence(ctx)\n"
        "        return True\n"
    )

    def check_program(self, program):
        for key in sorted(program.functions):
            info = program.functions[key]
            for line, message in program.fence_violations(key):
                yield self.finding(info.module, line, message)


@register
class InterprocRefcountBalance(InterprocRule):
    """Every acquisition must settle on every exit path, through callees."""

    id = "REF-I01"
    title = "acquired reference unreleased on a normal or exception path"
    severity = "warn"
    hint = ("release the handle (or hand it to an owner) on every path: "
            "guard the may-raise region with try/finally, release in the "
            "except arm, or pass the handle to a callee that releases it")

    #: Same scope as REF-01: the packet-processing layers.  Setup and
    #: bench code allocates eagerly on purpose.
    PATH_SCOPE = ("/net/", "/core/", "/storage/", "/cluster/")

    #: Setup/recovery entry points run before traffic exists; an
    #: allocation failure there should raise, and an unwind abandons
    #: the whole store rather than leaking one reference out of a
    #: running system.  Same policy REF-01 applied.
    EXEMPT_FUNCTIONS = frozenset({
        "create", "recover", "reattach", "open_or_create", "main",
        "__init__", "setup", "from_config",
    })

    BAD_PATH = "src/repro/net/_selftest.py"
    # Exception-path leak: _stamp can raise between the alloc and the
    # release, and nothing guards the gap.
    BAD = (
        "class Proto:\n"
        "    def deliver(self, ctx):\n"
        "        pkt = PktBuf.alloc(self.tx_pool, 64, ctx)\n"
        "        self._stamp(pkt, ctx)\n"
        "        pkt.release()\n"
        "\n"
        "    def _stamp(self, pkt, ctx):\n"
        "        if pkt is None:\n"
        "            raise ValueError('no pkt')\n"
        "        pkt.meta = ctx\n"
    )
    # try/finally closes the gap: the exception path releases too.
    GOOD = (
        "class Proto:\n"
        "    def deliver(self, ctx):\n"
        "        pkt = PktBuf.alloc(self.tx_pool, 64, ctx)\n"
        "        try:\n"
        "            self._stamp(pkt, ctx)\n"
        "        finally:\n"
        "            pkt.release()\n"
        "\n"
        "    def _stamp(self, pkt, ctx):\n"
        "        if pkt is None:\n"
        "            raise ValueError('no pkt')\n"
        "        pkt.meta = ctx\n"
    )

    def _in_scope(self, module):
        path = str(module.path).replace("\\", "/")
        return any(part in path for part in self.PATH_SCOPE)

    def check_program(self, program):
        for key in sorted(program.functions):
            info = program.functions[key]
            if not self._in_scope(info.module):
                continue
            if info.name in self.EXEMPT_FUNCTIONS:
                continue
            for line, message in program.refcount_violations(key):
                yield self.finding(info.module, line, message)
