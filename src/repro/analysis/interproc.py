"""Interprocedural dataflow engine for PMLint.

The intraprocedural rules (:mod:`repro.analysis.rules`) judge one
function body at a time, which forces blanket exemptions exactly where
the interesting bugs hide: a helper taking a ``fence=`` parameter
defers the ordering decision to its caller, so PM-W01 must skip it —
and then nobody checks that *some caller actually fences*.  Likewise
REF-01 demands a ``try`` around every alloc, even in functions that
hold no other references and therefore cannot leak anything when the
alloc unwinds.

This module replaces those exemptions with whole-program reasoning:

1. **Program index / call graph** (:class:`Program`).  Every function
   and method under the linted tree, with call edges resolved by (in
   order) enclosing-class methods (``self.m()``, walking base-class
   names), same-module functions, imported names, a program-wide
   unique-name match, and finally a receiver-shape hint (``self.slab
   .write_next`` matches ``PMetaSlab.write_next`` because "slab" is a
   substring of the class name).  An ambiguous call resolves to
   *nothing* rather than to the wrong function — deliberate
   under-approximation.

2. **Per-function effect summaries** (:class:`FunctionSummary`).  For
   persistence: the function's flush/fence event sequence reduced to
   ``(drains, pending_sites)`` — does calling it fence, and does it
   leave written-back-but-undrained lines at exit.  A call carrying
   ``fence=False`` injects the callee's deferred flush into the
   caller; ``fence=True`` (or a truthy default on a deferring callee)
   injects a fence.  For refcounts: which acquisitions
   (``alloc``/zero-arg ``get``/``clone``) stay unreleased and
   un-escaped, which may-raise calls can unwind the function between
   an acquire and its release, and which *parameters* the function
   releases (so ``self._teardown(pkt)`` counts as a release of ``pkt``
   in the caller).

3. **Fixed-point propagation** (:meth:`Program.solve`).  Summaries
   reference callee summaries; Kleene iteration over the finite
   boolean/set lattice converges in a few rounds even with recursion.

4. **Two rules** over the solved program (registered in
   :mod:`repro.analysis.rules_interproc`):

   - **PM-I01** — *interprocedural fence domination*: a flush (direct,
     or deferred via ``fence=False``) that is never drained by a fence
     in the same function **nor in any caller chain**.  A function
     whose pending flush is drained by at least one caller chain is
     the legitimate deferral pattern and stays silent.
   - **REF-I01** — *interprocedural refcount balance*: an acquisition
     that on some normal-or-exception exit path is neither released
     (directly or through a releasing callee) nor escapes to an owner.

Summaries are cached per file, keyed by a hash of the source
(:class:`SummaryCache`), so a warm full-tree run re-extracts nothing;
the propagation step is recomputed every run because it is cross-file
and cheap.
"""

import ast
import hashlib
import json
import os

#: Method names that are persistence primitives when called on a
#: region/device-like receiver.  ``sync`` is the block-device layer's
#: fence; ``persist``/``persist_payload`` are flush+fence in one call.
_FLUSH_NAMES = frozenset({"flush"})
_FENCE_NAMES = frozenset({"fence"})
_DRAIN_NAMES = frozenset({"persist", "sync", "persist_payload"})

#: The persistence primitives themselves (Region.flush forwarding to
#: device.flush, ...).  Their bodies are the mechanism the events
#: model; PM-I01 never reports inside them.
PRIMITIVE_FORWARDERS = frozenset({
    "flush", "fence", "persist", "sync", "persist_payload",
    "write", "writeback", "write_bytes",
})

#: Receivers whose .flush() has nothing to do with persistent memory.
_IO_RECEIVERS = ("stdout", "stderr", "stream", "sock", "file")

#: Acquisition method names.  ``get``/``clone`` count only with zero
#: arguments on a buffer-shaped receiver (dict.get takes arguments).
_ACQ_ALWAYS = frozenset({"alloc"})
_ACQ_ZERO_ARG = frozenset({"get", "clone"})
_BUF_RECEIVER_HINTS = ("buf", "buffer", "pkt", "segment", "handle", "frag",
                       "payload", "chunk", "clone")

#: Release method names (zero positional args, on a tracked handle).
_RELEASE_NAMES = frozenset({"release", "put"})

#: Functions whose body IS an allocation/release primitive; their
#: internal bookkeeping is not subject to the balance rule.
_PRIMITIVE_REFCOUNT = frozenset({
    "alloc", "free", "get", "put", "release", "clone",
})

#: Container-mutation method names that transfer ownership of their
#: arguments into the container.
_ESCAPE_METHODS = frozenset({
    "append", "add", "push", "extend", "appendleft", "insert",
    "setdefault", "update",
})


def _is_io_receiver(receiver):
    return receiver is not None and any(
        receiver.endswith(name) for name in _IO_RECEIVERS
    )


def _buffer_like(receiver):
    if receiver is None:
        return False
    last = receiver.split(".")[-1].lower()
    return any(hint in last for hint in _BUF_RECEIVER_HINTS)


def _receiver_text(node):
    """Best-effort dotted source text of an expression (or None)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _receiver_text(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Call):
        base = _receiver_text(node.func)
        return f"{base}()" if base else None
    return None


def _receiver_matches_class(receiver, class_name):
    """Shape heuristic: `self.slab.x` plausibly targets PMetaSlab."""
    if receiver is None or class_name is None:
        return False
    last = receiver.split(".")[-1].lower().strip("_")
    if not last:
        return False
    return last in class_name.lower()


def _arg_names(func_node):
    args = func_node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _fence_param(func_node):
    """('fence'|'persist', default) when the function defers the
    ordering decision to its caller, else (None, None)."""
    args = func_node.args
    positional = args.posonlyargs + args.args
    defaults = [None] * (len(positional) - len(args.defaults)) + list(args.defaults)
    pairs = list(zip(positional, defaults)) + \
        list(zip(args.kwonlyargs, args.kw_defaults))
    for arg, default in pairs:
        if arg.arg in ("fence", "persist"):
            value = True
            if isinstance(default, ast.Constant):
                value = bool(default.value)
            return arg.arg, value
    return None, None


def _walk_defs(tree):
    """Yield (func_node, qualified_name, class_name) for every def."""
    out = []

    def walk(node, prefix, class_name):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((child, f"{prefix}{child.name}", class_name))
                walk(child, f"{prefix}{child.name}.", class_name)
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.", child.name)
            else:
                walk(child, prefix, class_name)

    walk(tree, "", None)
    return out


# --------------------------------------------------------------------------
# local facts (per-function, cacheable)
# --------------------------------------------------------------------------


class _Event:
    """One persistence event in a function body, in textual order.

    ``kind`` is "flush", "fence" or "call"; a call event carries the
    unresolved callee (name, receiver, constant fence kwarg) and is
    interpreted against the program during propagation.
    """

    __slots__ = ("kind", "line", "what", "callee")

    def __init__(self, kind, line, what, callee=None):
        self.kind = kind
        self.line = line
        self.what = what
        self.callee = callee

    def to_doc(self):
        return [self.kind, self.line, self.what,
                list(self.callee) if self.callee else None]

    @classmethod
    def from_doc(cls, doc):
        callee = tuple(doc[3]) if doc[3] else None
        return cls(doc[0], doc[1], doc[2], callee)


class Acquisition:
    """One local refcount acquisition and its (textual-path) fate."""

    __slots__ = ("line", "what", "var", "released", "escaped", "guarded",
                 "settle_line")

    def __init__(self, line, what, var):
        self.line = line
        self.what = what
        self.var = var
        self.released = False      # a release of var exists in the body
        self.escaped = False       # ownership transferred out
        self.guarded = False       # acquire sits inside a try body
        self.settle_line = None    # first release/escape line after acquire

    def to_doc(self):
        return [self.line, self.what, self.var, self.released,
                self.escaped, self.guarded, self.settle_line]

    @classmethod
    def from_doc(cls, doc):
        out = cls(doc[0], doc[1], doc[2])
        out.released, out.escaped, out.guarded, out.settle_line = doc[3:7]
        return out


class LocalFacts:
    """Everything extractable from one function body in isolation.

    This is the unit the :class:`SummaryCache` stores: it depends only
    on the function's own source, never on other files.
    """

    __slots__ = ("events", "acquisitions", "releases_params",
                 "stores_params", "raises", "calls", "fence_param",
                 "fence_default")

    def __init__(self):
        self.events = []
        self.acquisitions = []
        self.releases_params = set()
        self.stores_params = set()
        self.raises = False
        #: [(line, name, receiver, fence_kwarg, arg_vars, kwarg_vars,
        #:   in_try)] — kwarg_vars is ((kw_name, var), ...).
        self.calls = []
        self.fence_param = None
        self.fence_default = None

    def to_doc(self):
        return {
            "events": [e.to_doc() for e in self.events],
            "acquisitions": [a.to_doc() for a in self.acquisitions],
            "releases_params": sorted(self.releases_params),
            "stores_params": sorted(self.stores_params),
            "raises": self.raises,
            "calls": [[c[0], c[1], c[2], c[3], list(c[4]),
                       [list(kv) for kv in c[5]], c[6]]
                      for c in self.calls],
            "fence_param": self.fence_param,
            "fence_default": self.fence_default,
        }

    @classmethod
    def from_doc(cls, doc):
        out = cls()
        out.events = [_Event.from_doc(e) for e in doc["events"]]
        out.acquisitions = [Acquisition.from_doc(a)
                            for a in doc["acquisitions"]]
        out.releases_params = set(doc["releases_params"])
        out.stores_params = set(doc["stores_params"])
        out.raises = doc["raises"]
        out.calls = [(c[0], c[1], c[2],
                      None if c[3] is None else c[3],
                      tuple(c[4]),
                      tuple((kv[0], kv[1]) for kv in c[5]),
                      c[6])
                     for c in doc["calls"]]
        out.fence_param = doc["fence_param"]
        out.fence_default = doc["fence_default"]
        return out


def _own_calls(func_node):
    """Calls belonging to ``func_node`` itself (not to nested defs)."""
    calls = []

    def walk(node):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Call):
                if isinstance(child.func, ast.Attribute):
                    calls.append((child, child.func.attr,
                                  _receiver_text(child.func.value)))
                elif isinstance(child.func, ast.Name):
                    calls.append((child, child.func.id, None))
            walk(child)

    walk(func_node)
    calls.sort(key=lambda item: (item[0].lineno, item[0].col_offset))
    return calls


def _try_body_spans(func_node):
    """Line spans of try-block *bodies* (the guarded region)."""
    spans = []
    for child in ast.walk(func_node):
        if isinstance(child, ast.Try):
            last = child.body[-1]
            spans.append((child.body[0].lineno,
                          getattr(last, "end_lineno", last.lineno)))
    return spans


def _constant_kwarg(call, names=("fence", "persist")):
    """The fence=/persist= keyword: True/False for constants, "dynamic"
    for expressions, None when absent."""
    for kw in call.keywords:
        if kw.arg in names:
            if isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
            return "dynamic"
    return None


def _release_sites(func_node):
    """[(var, line)] for every ``var.release()``/``var.put()`` and every
    ``*.free(var)`` under the function."""
    out = []
    for child in ast.walk(func_node):
        if not isinstance(child, ast.Call):
            continue
        if isinstance(child.func, ast.Attribute):
            if (child.func.attr in _RELEASE_NAMES and not child.args
                    and isinstance(child.func.value, ast.Name)):
                out.append((child.func.value.id, child.lineno))
            elif child.func.attr == "free" and child.args:
                first = child.args[0]
                if isinstance(first, ast.Name):
                    out.append((first.id, child.lineno))
    return out


def _escape_sites(func_node):
    """[(var, line)] where a name's value escapes the function: it is
    returned/yielded, stored through an attribute/subscript target, or
    pushed into a container."""
    out = []
    for child in ast.walk(func_node):
        sources = ()
        if isinstance(child, (ast.Return, ast.Yield, ast.YieldFrom)):
            if child.value is not None:
                sources = (child.value,)
        elif isinstance(child, ast.Assign):
            if any(not isinstance(t, ast.Name) for t in child.targets):
                sources = (child.value,)
        elif isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            if child.func.attr in _ESCAPE_METHODS:
                sources = tuple(child.args)
        for source in sources:
            for node in ast.walk(source):
                if isinstance(node, ast.Name):
                    out.append((node.id, child.lineno))
    return out


def _param_stores(func_node, param_names):
    """Parameters whose value is stored into an attribute, subscript or
    container — the function adopts ownership of them (PktBuf.__init__
    keeping ``buf``, ip_output appending ``pkt`` to the tx queue)."""
    stored = set()
    for child in ast.walk(func_node):
        sources = ()
        if isinstance(child, ast.Assign):
            if any(not isinstance(t, ast.Name) for t in child.targets):
                sources = (child.value,)
        elif isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            if child.func.attr in _ESCAPE_METHODS:
                sources = tuple(child.args) + tuple(
                    kw.value for kw in child.keywords)
        for source in sources:
            for node in ast.walk(source):
                if isinstance(node, ast.Name) and node.id in param_names:
                    stored.add(node.id)
    return stored


def _escape_line_spans(func_node):
    """Line ranges whose expressions transfer ownership (for acquires
    used inline, e.g. ``refs.append((buf.get(), off, len))`` or
    ``return self.allocator.alloc(size, ctx) + ROOT_SIZE``)."""
    lines = set()
    for child in ast.walk(func_node):
        hit = False
        if isinstance(child, (ast.Return, ast.Yield, ast.YieldFrom)):
            hit = child.value is not None
        elif isinstance(child, ast.Assign):
            hit = any(not isinstance(t, ast.Name) for t in child.targets)
        elif isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            hit = child.func.attr in _ESCAPE_METHODS
        if hit:
            lines.update(range(child.lineno,
                               getattr(child, "end_lineno", child.lineno) + 1))
    return lines


def _fence_guard_spans(func_node, fence_param):
    """Line spans of ``if <fence_param>:`` bodies — fences inside them
    only run when the caller opts in."""
    spans = []
    for node in ast.walk(func_node):
        if not isinstance(node, ast.If):
            continue
        if any(isinstance(sub, ast.Name) and sub.id == fence_param
               for sub in ast.walk(node.test)):
            for stmt in node.body:
                spans.append((stmt.lineno,
                              getattr(stmt, "end_lineno", stmt.lineno)))
    return spans


def extract_local_facts(func_node):
    """Pull the intraprocedural facts out of one function body."""
    facts = LocalFacts()
    facts.fence_param, facts.fence_default = _fence_param(func_node)
    calls = _own_calls(func_node)
    try_spans = _try_body_spans(func_node)
    param_names = set(_arg_names(func_node))

    # A fence under ``if fence:`` in a fence=False-defaulting helper
    # does not run on the default path — dropping the event leaves the
    # flush pending, so call sites taking the default get charged (the
    # deferral pattern).  With a True default the guarded fence IS the
    # default path and stays a drain.
    guard_spans = []
    if facts.fence_param is not None and not facts.fence_default:
        guard_spans = _fence_guard_spans(func_node, facts.fence_param)

    def in_try(line):
        return any(start <= line <= end for start, end in try_spans)

    def guard_skipped(line):
        return any(start <= line <= end for start, end in guard_spans)

    # --- persistence events + call records --------------------------------
    for call, name, receiver in calls:
        fence_kwarg = _constant_kwarg(call)
        arg_vars = tuple(
            arg.id if isinstance(arg, ast.Name) else ""
            for arg in call.args
        )
        kwarg_vars = tuple(
            (kw.arg, kw.value.id) for kw in call.keywords
            if kw.arg is not None and isinstance(kw.value, ast.Name)
        )
        facts.calls.append((call.lineno, name, receiver, fence_kwarg,
                            arg_vars, kwarg_vars, in_try(call.lineno)))
        shown = f"{receiver + '.' if receiver else ''}{name}"
        if fence_kwarg is not None:
            facts.events.append(_Event(
                "call", call.lineno, f"{shown}(fence={fence_kwarg})",
                callee=(name, receiver, fence_kwarg),
            ))
        elif name in _FENCE_NAMES or name in _DRAIN_NAMES:
            if not guard_skipped(call.lineno):
                facts.events.append(_Event("fence", call.lineno, shown))
        elif name in _FLUSH_NAMES and not _is_io_receiver(receiver):
            facts.events.append(_Event("flush", call.lineno, f"{shown}(...)"))
        else:
            facts.events.append(_Event(
                "call", call.lineno, f"{shown}(...)",
                callee=(name, receiver, None),
            ))

    # --- parameter releases / ownership adoption ----------------------------
    releases = _release_sites(func_node)
    facts.releases_params = {var for var, _line in releases} & param_names
    facts.stores_params = _param_stores(func_node, param_names)

    # --- explicit raise anywhere in the body --------------------------------
    facts.raises = any(isinstance(node, ast.Raise)
                       for node in ast.walk(func_node))

    # --- acquisitions --------------------------------------------------------
    if func_node.name not in _PRIMITIVE_REFCOUNT:
        facts.acquisitions = _extract_acquisitions(
            func_node, calls, try_spans, releases)
    return facts


def _is_acquire(call, name, receiver):
    if name in _ACQ_ALWAYS:
        return True
    if name in _ACQ_ZERO_ARG and not call.args and not call.keywords:
        return _buffer_like(receiver)
    return False


def _extract_acquisitions(func_node, calls, try_spans, releases):
    acquisitions = []
    escapes = _escape_sites(func_node)
    escape_lines = _escape_line_spans(func_node)

    assigns = {}
    for child in ast.walk(func_node):
        if (isinstance(child, ast.Assign) and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Name)):
            assigns[(child.value.lineno, child.value.col_offset)] = \
                child.targets[0].id

    for call, name, receiver in calls:
        if not _is_acquire(call, name, receiver):
            continue
        var = assigns.get((call.lineno, call.col_offset))
        if (var is None and name == "get" and receiver is not None
                and "." not in receiver):
            # get() returns self: a bare ``buf.get()`` statement leaves
            # the reference in ``buf`` itself, so track that name.
            var = receiver
        what = f"{receiver + '.' if receiver else ''}{name}()"
        acq = Acquisition(call.lineno, what, var)
        if var is not None:
            release_lines = [line for v, line in releases if v == var]
            escape_var_lines = [line for v, line in escapes if v == var]
            acq.released = bool(release_lines)
            acq.escaped = bool(escape_var_lines)
            settled = [line for line in release_lines + escape_var_lines
                       if line >= call.lineno]
            acq.settle_line = min(settled) if settled else None
        else:
            acq.escaped = call.lineno in escape_lines
            if acq.escaped:
                acq.settle_line = call.lineno
        acq.guarded = any(start <= call.lineno <= end
                          for start, end in try_spans)
        acquisitions.append(acq)
    return acquisitions


# --------------------------------------------------------------------------
# summaries + the program
# --------------------------------------------------------------------------

#: pending-site origin tags.  "local": a flush written in this very
#: function; "defer": this function passed fence=False, taking the
#: drain duty on itself; "transitive": inherited from a plain call to a
#: pending function (reported there, not here).
ORIGIN_LOCAL = "local"
ORIGIN_DEFER = "defer"
ORIGIN_TRANSITIVE = "transitive"


class FunctionSummary:
    """The solved effect summary of one function."""

    __slots__ = ("drains", "pending_sites", "releases_params",
                 "stores_params", "may_raise")

    def __init__(self):
        self.drains = False
        #: [(line, description, origin)] flushes undrained at exit.
        self.pending_sites = []
        self.releases_params = set()
        self.stores_params = set()
        self.may_raise = False

    def state(self):
        return (self.drains, tuple(self.pending_sites),
                frozenset(self.releases_params),
                frozenset(self.stores_params), self.may_raise)


class FunctionInfo:
    """One function/method definition in the program."""

    __slots__ = ("node", "module", "qualname", "name", "class_name",
                 "params", "key")

    def __init__(self, node, module, qualname, class_name):
        self.node = node
        self.module = module
        self.qualname = qualname
        self.name = node.name
        self.class_name = class_name
        self.params = _arg_names(node)
        self.key = f"{module.path}::{qualname}"

    def __repr__(self):
        return f"<FunctionInfo {self.key}>"


class SummaryCache:
    """File-backed per-module LocalFacts cache keyed by source hash.

    The cache only ever stores *local* facts — everything derivable
    from one file alone — so a stale entry can never survive a source
    edit (the hash moves) and cross-file effects are re-propagated on
    every run regardless.
    """

    VERSION = "pmlint-summaries/v3"

    def __init__(self, path):
        self.path = path
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._entries = {}
        if path and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
                if doc.get("version") == self.VERSION:
                    self._entries = doc.get("files", {})
            except (OSError, ValueError):
                self._entries = {}

    def lookup(self, module_path, source_hash):
        entry = self._entries.get(str(module_path))
        if entry is None or entry.get("hash") != source_hash:
            self.misses += 1
            return None
        self.hits += 1
        try:
            return {qualname: LocalFacts.from_doc(doc)
                    for qualname, doc in entry["facts"].items()}
        except (KeyError, IndexError, TypeError):
            self.misses += 1
            self.hits -= 1
            return None

    def store(self, module_path, source_hash, facts_by_qualname):
        self._entries[str(module_path)] = {
            "hash": source_hash,
            "facts": {qualname: facts.to_doc()
                      for qualname, facts in facts_by_qualname.items()},
        }
        self._dirty = True

    def save(self):
        if not (self.path and self._dirty):
            return
        try:
            with open(self.path, "w", encoding="utf-8") as handle:
                json.dump({"version": self.VERSION, "files": self._entries},
                          handle)
            self._dirty = False
        except OSError:
            pass  # caching is best-effort; linting must not fail on it


class Program:
    """Whole-program index, call graph, and solved summaries."""

    def __init__(self, modules, cache=None):
        self.modules = list(modules)
        self.functions = {}
        self.by_name = {}
        self.by_class = {}
        self.class_bases = {}
        self.module_funcs = {}
        self.imports = {}
        self.local_facts = {}
        self.summaries = {}
        self.callers = {}
        self._resolve_memo = {}
        self._index(cache)
        self._build_edges()
        self.solve()
        if cache is not None:
            cache.save()

    # ------------------------------------------------------------- indexing

    def _index(self, cache):
        for module in self.modules:
            source_hash = hashlib.sha256(
                module.source.encode("utf-8")).hexdigest()
            cached = cache.lookup(module.path, source_hash) if cache else None
            fresh = {}
            for node, qualname, class_name in _walk_defs(module.tree):
                info = FunctionInfo(node, module, qualname, class_name)
                self.functions[info.key] = info
                self.by_name.setdefault(info.name, []).append(info)
                if class_name is not None:
                    self.by_class.setdefault((class_name, info.name), info)
                else:
                    self.module_funcs.setdefault(
                        (module.path, info.name), info)
                if cached is not None and qualname in cached:
                    self.local_facts[info.key] = cached[qualname]
                else:
                    facts = extract_local_facts(node)
                    self.local_facts[info.key] = facts
                    fresh[qualname] = facts
            if cache is not None and cached is None:
                cache.store(module.path, source_hash, fresh)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    self.class_bases[node.name] = [
                        base.id for base in node.bases
                        if isinstance(base, ast.Name)
                    ]
                elif isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        self.imports[(module.path, alias.asname or alias.name)] \
                            = alias.name

    # ------------------------------------------------------ call resolution

    def resolve_call(self, caller, name, receiver):
        """The FunctionInfo a call resolves to, or None (ambiguous)."""
        memo_key = (caller.key, name, receiver)
        if memo_key in self._resolve_memo:
            return self._resolve_memo[memo_key]
        found = self._resolve_uncached(caller, name, receiver)
        self._resolve_memo[memo_key] = found
        return found

    def _resolve_uncached(self, caller, name, receiver):
        if receiver is not None:
            head = receiver.split(".")[0]
            if head in ("self", "cls"):
                if receiver in ("self", "cls") and caller.class_name:
                    found = self._method_on(caller.class_name, name)
                    if found is not None:
                        return found
                    return None
                receiver = receiver.split(".")[-1]
        if receiver is None:
            found = self.module_funcs.get((caller.module.path, name))
            if found is not None:
                return found
            imported = self.imports.get((caller.module.path, name))
            if imported is not None:
                candidates = [f for f in self.by_name.get(imported, [])
                              if f.class_name is None]
                if len(candidates) == 1:
                    return candidates[0]
            init = self.by_class.get((name, "__init__"))
            if init is not None:
                return init
            return None
        found = self.by_class.get((receiver, name))
        if found is not None:
            return found
        candidates = [f for f in self.by_name.get(name, [])
                      if f.class_name is not None]
        if len(candidates) == 1:
            return candidates[0]
        if candidates:
            hinted = [f for f in candidates
                      if _receiver_matches_class(receiver, f.class_name)]
            if len(hinted) == 1:
                return hinted[0]
        return None

    def _method_on(self, class_name, name, seen=None):
        seen = seen if seen is not None else set()
        if class_name in seen:
            return None
        seen.add(class_name)
        found = self.by_class.get((class_name, name))
        if found is not None:
            return found
        for base in self.class_bases.get(class_name, ()):
            found = self._method_on(base, name, seen)
            if found is not None:
                return found
        return None

    def _build_edges(self):
        for key, facts in self.local_facts.items():
            caller = self.functions[key]
            for line, name, receiver, _kw, _avars, _kwvars, _t in facts.calls:
                callee = self.resolve_call(caller, name, receiver)
                if callee is None:
                    continue
                self.callers.setdefault(callee.key, []).append((caller, line))

    # ---------------------------------------------------------- propagation

    def _call_effect(self, caller, event):
        """(drains, pending_site_or_None) of one call event under the
        current summaries."""
        name, receiver, fence_kwarg = event.callee
        if fence_kwarg is not None:
            if fence_kwarg is False:
                return False, (event.line,
                               f"{event.what} leaves its flush to this "
                               f"caller", ORIGIN_DEFER)
            return True, None
        callee = self.resolve_call(caller, name, receiver)
        if callee is None:
            return False, None
        summary = self.summaries.get(callee.key)
        if summary is None:
            return False, None
        facts = self.local_facts[callee.key]
        if facts.fence_param is not None:
            if facts.fence_default:
                return (summary.drains or bool(summary.pending_sites)), None
            if summary.pending_sites:
                return False, (event.line,
                               f"{event.what} defaults to "
                               f"{facts.fence_param}=False and leaves its "
                               f"flush undrained", ORIGIN_DEFER)
            return summary.drains, None
        if summary.pending_sites:
            line, what, _origin = summary.pending_sites[0]
            return summary.drains, (
                event.line,
                f"{event.what} leaves an undrained flush "
                f"(from line {line}: {what})", ORIGIN_TRANSITIVE)
        return summary.drains, None

    def _solve_function(self, key):
        info = self.functions[key]
        facts = self.local_facts[key]
        new = FunctionSummary()

        # persistence: replay the textual event sequence.
        pending = []
        for event in facts.events:
            if event.kind == "flush":
                pending.append((event.line, event.what, ORIGIN_LOCAL))
            elif event.kind == "fence":
                new.drains = True
                pending = []
            else:
                drains, inject = self._call_effect(info, event)
                if drains:
                    new.drains = True
                    pending = []
                if inject is not None:
                    pending.append(inject)
        new.pending_sites = pending

        # parameter releases / stores, directly or through callees.
        new.releases_params = set(facts.releases_params)
        new.stores_params = set(facts.stores_params)
        for _line, name, receiver, _kw, arg_vars, kwarg_vars, _t \
                in facts.calls:
            callee = self.resolve_call(info, name, receiver)
            summary = self.summaries.get(callee.key) if callee else None
            if summary is None:
                continue
            callee_params = [p for p in callee.params
                             if p not in ("self", "cls")]
            for index, var in enumerate(arg_vars):
                if not var or index >= len(callee_params):
                    continue
                if callee_params[index] in summary.releases_params:
                    new.releases_params.add(var)
                if callee_params[index] in summary.stores_params:
                    new.stores_params.add(var)
            for kw_name, var in kwarg_vars:
                if kw_name in summary.releases_params:
                    new.releases_params.add(var)
                if kw_name in summary.stores_params:
                    new.stores_params.add(var)
        new.releases_params &= set(info.params)
        new.stores_params &= set(info.params)

        # may_raise: an explicit raise, an allocation primitive outside
        # every try, or a raising callee outside every try.
        new.may_raise = facts.raises
        if not new.may_raise:
            for _line, name, receiver, _kw, _avars, _kwvars, in_try \
                    in facts.calls:
                if in_try:
                    continue
                if name in _ACQ_ALWAYS:
                    new.may_raise = True
                    break
                callee = self.resolve_call(info, name, receiver)
                if callee is not None:
                    summary = self.summaries.get(callee.key)
                    if summary is not None and summary.may_raise:
                        new.may_raise = True
                        break

        old = self.summaries.get(key)
        changed = old is None or old.state() != new.state()
        self.summaries[key] = new
        return changed

    def solve(self, max_rounds=12):
        keys = sorted(self.functions)
        for _round in range(max_rounds):
            changed = False
            for key in keys:
                if self._solve_function(key):
                    changed = True
            if not changed:
                break

    # ----------------------------------------------------------- PM-I01 core

    def drained_by_some_caller(self, key, _seen=None):
        """True when at least one caller chain fences after the call."""
        seen = _seen if _seen is not None else set()
        if key in seen:
            return False
        seen.add(key)
        for caller, line in self.callers.get(key, ()):
            caller_facts = self.local_facts[caller.key]
            drained_here = False
            for event in caller_facts.events:
                if event.line <= line:
                    continue
                if event.kind == "fence":
                    drained_here = True
                    break
                if event.kind == "call":
                    drains, _ = self._call_effect(caller, event)
                    if drains:
                        drained_here = True
                        break
            if drained_here:
                return True
            if self.drained_by_some_caller(caller.key, seen):
                return True
        return False

    def caller_chain(self, key, depth=4):
        """A short "f <- g <- h" witness naming an undraining chain."""
        names = [self.functions[key].qualname]
        current = key
        seen = {key}
        for _ in range(depth):
            sites = self.callers.get(current, ())
            if not sites:
                break
            caller = sites[0][0]
            if caller.key in seen:
                break
            seen.add(caller.key)
            names.append(caller.qualname)
            current = caller.key
        return " <- ".join(names)

    # ---------------------------------------------------------- REF-I01 core

    def refcount_violations(self, key):
        """[(line, message)] unbalanced acquisitions in one function."""
        info = self.functions[key]
        facts = self.local_facts[key]
        out = []
        for acq in facts.acquisitions:
            released = acq.released
            escaped = acq.escaped
            settle = acq.settle_line
            # A handle passed whole to a callee that releases it, or
            # that stores it into something it owns, settles at that
            # call line.
            if not (released or escaped) and acq.var is not None:
                for line, name, receiver, _kw, arg_vars, kwarg_vars, _t \
                        in facts.calls:
                    if line < acq.line:
                        continue
                    hit_params = []
                    callee = self.resolve_call(info, name, receiver)
                    if callee is None:
                        continue
                    callee_params = [p for p in callee.params
                                     if p not in ("self", "cls")]
                    for index, var in enumerate(arg_vars):
                        if var == acq.var and index < len(callee_params):
                            hit_params.append(callee_params[index])
                    hit_params.extend(kw_name for kw_name, var in kwarg_vars
                                      if var == acq.var)
                    if not hit_params:
                        continue
                    summary = self.summaries.get(callee.key)
                    if summary is None:
                        continue
                    if any(p in summary.releases_params for p in hit_params):
                        released = True
                    elif any(p in summary.stores_params for p in hit_params):
                        escaped = True
                    else:
                        continue
                    if settle is None or line < settle:
                        settle = line
                    break
            if not released and not escaped:
                out.append((
                    acq.line,
                    f"{info.qualname} acquires {acq.what} but neither "
                    f"releases it nor hands it to an owner on any exit "
                    f"path",
                ))
                continue
            if acq.guarded:
                continue
            # Exception gap: a may-raise call strictly between the
            # acquire and the line where the handle settles.
            horizon = settle if settle is not None else float("inf")
            for line, name, receiver, _kw, _avars, _kwvars, in_try \
                    in facts.calls:
                if line <= acq.line or line >= horizon or in_try:
                    continue
                raising = name in _ACQ_ALWAYS
                if not raising:
                    callee = self.resolve_call(info, name, receiver)
                    if callee is not None:
                        summary = self.summaries.get(callee.key)
                        raising = summary is not None and summary.may_raise
                if raising:
                    what = f"{receiver + '.' if receiver else ''}{name}()"
                    out.append((
                        acq.line,
                        f"{info.qualname} acquires {acq.what} but "
                        f"{what} (line {line}) can raise before the "
                        f"release on line "
                        f"{settle if settle is not None else '?'} — the "
                        f"exception path leaks the reference",
                    ))
                    break
        return out

    # -------------------------------------------------------------- findings

    def fence_violations(self, key):
        """[(line, message)] undominated flushes in one function."""
        info = self.functions[key]
        summary = self.summaries.get(key)
        if summary is None or not summary.pending_sites:
            return []
        if info.name in PRIMITIVE_FORWARDERS:
            return []
        facts = self.local_facts[key]
        if facts.fence_param is not None and not facts.fence_default:
            # A fence=False-defaulting helper's own pending flush is its
            # contract; call sites taking the default are charged instead.
            reportable = [site for site in summary.pending_sites
                          if site[2] == ORIGIN_DEFER]
        else:
            reportable = [site for site in summary.pending_sites
                          if site[2] in (ORIGIN_LOCAL, ORIGIN_DEFER)]
        if not reportable:
            return []
        if self.drained_by_some_caller(key):
            return []
        chain = self.caller_chain(key)
        out = []
        for line, what, _origin in reportable:
            out.append((
                line,
                f"{info.qualname}: {what} is never fenced — not here and "
                f"not in any caller chain ({chain})",
            ))
        return out
