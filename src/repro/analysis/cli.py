"""``repro-lint``: the PMLint command-line front end.

Exit codes: 0 clean (suppressions allowed), 1 findings (or a blown
``--max-seconds`` budget), 2 usage error.  ``--self-test`` runs the
planted-example negative checks instead of linting — CI runs it first
so a silently broken rule cannot greenlight the tree.

The interprocedural pass (call graph + effect summaries, rules PM-I01
and REF-I01) is on by default and supersedes PM-W01/REF-01; turn it
off with ``--no-interprocedural`` or pick rules with ``--select``.
``--fix`` applies the mechanical CTX-01/SUP-01 rewrites (``--diff``
previews without writing); ``--format sarif`` emits GitHub
code-scanning input.
"""

import argparse
import sys
import time

from repro.analysis import pmlint

DEFAULT_CACHE = ".pmlint-cache.json"


def _list_rules():
    lines = []
    for rule in pmlint.iter_rules():
        tag = " [interprocedural]" if rule.interprocedural else ""
        lines.append(f"{rule.id}  [{rule.severity}]  {rule.title}{tag}")
        if rule.hint:
            lines.append(f"    hint: {rule.hint}")
    return "\n".join(lines)


def _run_fix(args, parser):
    from repro.analysis import autofix

    try:
        results = autofix.fix_paths(args.paths, write=not args.diff)
    except (FileNotFoundError, SyntaxError) as exc:
        parser.error(str(exc))
    applied = refused = 0
    for result in results:
        if args.diff and result.changed:
            sys.stdout.write(result.unified_diff())
        for fix in result.fixes:
            applied += fix.applied
            refused += not fix.applied
            verb = "fixed" if fix.applied else "refused"
            if fix.applied and args.diff:
                verb = "would fix"
            print(f"{result.path}:{fix.line}: {verb} [{fix.rule}] "
                  f"{fix.description}")
    mode = "previewed" if args.diff else "applied"
    print(f"[pmlint-fix] {applied} fix(es) {mode}, {refused} refused "
          f"across {len(results)} file(s)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="static persistence-ordering and refcount linter "
                    "for the repro tree",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (e.g. src/repro)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule detects its planted bad "
                             "example (the lint negative check)")
    parser.add_argument("--no-hints", action="store_true",
                        help="omit fix hints from the output")
    parser.add_argument("--no-interprocedural", dest="interprocedural",
                        action="store_false", default=True,
                        help="skip the whole-program pass (PM-I01/REF-I01) "
                             "and run the superseded local rules instead")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical CTX-01/SUP-01 rewrites "
                             "instead of reporting")
    parser.add_argument("--diff", action="store_true",
                        help="with --fix: print unified diffs, write "
                             "nothing")
    parser.add_argument("--format", choices=("text", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report there instead of stdout")
    parser.add_argument("--cache", metavar="PATH", default=DEFAULT_CACHE,
                        help="summary-cache file for the interprocedural "
                             f"pass (default: {DEFAULT_CACHE})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the summary cache")
    parser.add_argument("--max-seconds", type=float, metavar="N",
                        help="fail (exit 1) if the lint run takes longer — "
                             "the CI wall-clock budget assertion")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.self_test:
        report = pmlint.self_test()
        print(report.summary())
        if report.ok:
            print("self-test OK: every rule detects its planted example")
            return 0
        print("self-test FAILED: the linter does not detect what it claims",
              file=sys.stderr)
        return 1

    if args.diff and not args.fix:
        parser.error("--diff only makes sense with --fix")

    if not args.paths:
        parser.error("no paths given (try: repro-lint src/repro)")

    if args.fix:
        return _run_fix(args, parser)

    select = None
    if args.select:
        select = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = select - {rule.id for rule in pmlint.iter_rules()}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    cache_path = None if args.no_cache else args.cache
    started = time.monotonic()  # pmlint: disable=DET-01 — the --max-seconds CI budget measures real wall-clock by design
    try:
        report = pmlint.run_lint(
            args.paths, select=select,
            interprocedural=args.interprocedural, cache_path=cache_path,
        )
    except (FileNotFoundError, SyntaxError) as exc:
        parser.error(str(exc))
    elapsed = time.monotonic() - started  # pmlint: disable=DET-01 — same wall-clock budget measurement as above

    if args.format == "sarif":
        from repro.analysis.sarif import dump_sarif

        rules = list(pmlint.iter_rules(select))
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                dump_sarif(report, rules, handle)
            print(f"wrote {len(report.findings + report.suppressed)} "
                  f"result(s) to {args.output}")
        else:
            dump_sarif(report, rules, sys.stdout)
    else:
        text = report.summary()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        else:
            print(text)

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"lint took {elapsed:.1f}s, over the --max-seconds "
              f"{args.max_seconds:.1f}s budget", file=sys.stderr)
        return 1
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
