"""``repro-lint``: the PMLint command-line front end.

Exit codes: 0 clean (suppressions allowed), 1 findings, 2 usage error.
``--self-test`` runs the planted-example negative checks instead of
linting — CI runs it first so a silently broken rule cannot greenlight
the tree.
"""

import argparse
import sys

from repro.analysis import pmlint


def _list_rules():
    lines = []
    for rule in pmlint.iter_rules():
        lines.append(f"{rule.id}  [{rule.severity}]  {rule.title}")
        if rule.hint:
            lines.append(f"    hint: {rule.hint}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="static persistence-ordering and refcount linter "
                    "for the repro tree",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (e.g. src/repro)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule detects its planted bad "
                             "example (the lint negative check)")
    parser.add_argument("--no-hints", action="store_true",
                        help="omit fix hints from the output")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.self_test:
        report = pmlint.self_test()
        print(report.summary())
        if report.ok:
            print("self-test OK: every rule detects its planted example")
            return 0
        print("self-test FAILED: the linter does not detect what it claims",
              file=sys.stderr)
        return 1

    if not args.paths:
        parser.error("no paths given (try: repro-lint src/repro)")

    select = None
    if args.select:
        select = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = select - {rule.id for rule in pmlint.iter_rules()}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    try:
        report = pmlint.run_lint(args.paths, select=select)
    except (FileNotFoundError, SyntaxError) as exc:
        parser.error(str(exc))

    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
