"""SARIF 2.1.0 emitter for PMLint reports.

SARIF (Static Analysis Results Interchange Format) is what GitHub
code-scanning ingests: uploading the file annotates findings inline on
the PR diff.  One run, one ``tool.driver`` carrying the rule
catalogue, one ``result`` per finding.  Suppressed findings are
included with an ``inSource`` suppression object carrying the reason —
code-scanning then shows them as dismissed rather than dropping the
record entirely.
"""

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: PMLint severity -> SARIF level.
_LEVELS = {"error": "error", "warn": "warning", "perf": "note"}


def _rule_descriptor(rule):
    out = {
        "id": rule.id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }
    if rule.hint:
        out["help"] = {"text": rule.hint}
    return out


def _result(finding):
    out = {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
    }
    if finding.path is not None:
        location = {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": str(finding.path).replace("\\", "/"),
                },
            },
        }
        if finding.line is not None:
            location["physicalLocation"]["region"] = {
                "startLine": finding.line,
            }
        out["locations"] = [location]
    if finding.suppressed:
        out["suppressions"] = [{
            "kind": "inSource",
            "justification": finding.reason or "",
        }]
    return out


def to_sarif(report, rules):
    """The report as a SARIF 2.1.0 document (a plain dict)."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": report.tool,
                    "informationUri":
                        "https://github.com/repro/repro/blob/main/docs/"
                        "ANALYSIS.md",
                    "rules": [_rule_descriptor(rule) for rule in rules],
                },
            },
            "results": [
                _result(finding)
                for finding in report.findings + report.suppressed
            ],
        }],
    }


def dump_sarif(report, rules, stream):
    json.dump(to_sarif(report, rules), stream, indent=2, sort_keys=True)
    stream.write("\n")
