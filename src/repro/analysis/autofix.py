"""``repro-lint --fix``: mechanical rewrites for CTX-01 and SUP-01.

Only rewrites with exactly one correct answer are applied:

- **CTX-01** — an uncharged ``flush``/``fence``/``persist`` call inside
  a function that already has an ``ExecutionContext`` in scope (a
  ``ctx`` parameter or local) gets that context threaded in.  The call
  must sit on a single line; multi-line calls and functions with no
  in-scope context are refused, not guessed at.
- **SUP-01** — a malformed-but-recoverable suppression comment (wrong
  separator, stray spacing) is normalized to the canonical
  ``# pmlint: disable=RULE — reason`` form.  A suppression with no
  reason text is refused: the fixer will not invent an argument.

A line already carrying a pmlint suppression is never rewritten — the
suppression records a human judgement the fixer must not disturb.

Fixing is idempotent: the output of a fix run produces no further
fixes, which ``tests/test_analysis_fix.py`` pins.
"""

import ast
import difflib
import re

from repro.analysis.pmlint import ModuleSource, arg_names, collect_files
from repro.analysis.rules import UnchargedPersistence

#: The marker is assembled so this file does not read as a suppression.
_MARKER = "# pmlint" ": disable"

#: Lenient re-parse of a malformed control comment: tolerate a missing
#: '=', odd separators ('-', '->', ';'), and stray parentheses, as long
#: as a rule list and a non-empty reason can both be recovered.
_LENIENT_RE = re.compile(
    r"#\s*pmlint\s*[:,]?\s*(disable(?:-file)?)\s*[=:\s]\s*"
    r"([A-Z][A-Za-z0-9_-]*(?:\s*,\s*[A-Z][A-Za-z0-9_-]*)*)"
    r"\s*(?:—|--|->|[:;(]|-\s)\s*(.*?)\)?\s*$"
)


class Fix:
    """One applied (or refused) rewrite."""

    __slots__ = ("rule", "line", "description", "applied")

    def __init__(self, rule, line, description, applied):
        self.rule = rule
        self.line = line
        self.description = description
        self.applied = applied


class FixResult:
    """All rewrites for one file."""

    def __init__(self, path, original):
        self.path = path
        self.original = original
        self.fixed = original
        self.fixes = []

    @property
    def applied(self):
        return [f for f in self.fixes if f.applied]

    @property
    def refused(self):
        return [f for f in self.fixes if not f.applied]

    @property
    def changed(self):
        return self.fixed != self.original

    def unified_diff(self):
        if not self.changed:
            return ""
        return "".join(difflib.unified_diff(
            self.original.splitlines(keepends=True),
            self.fixed.splitlines(keepends=True),
            fromfile=str(self.path), tofile=f"{self.path} (fixed)",
        ))


def _functions_with_ctx(module):
    """Line spans of functions that have an ExecutionContext in scope:
    a ``ctx`` parameter or a local ``ctx = ...`` binding."""
    spans = []
    for func, _qualname in module.functions():
        has_ctx = "ctx" in arg_names(func)
        if not has_ctx:
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "ctx"
                    for t in node.targets
                ):
                    has_ctx = True
                    break
        if has_ctx:
            end = getattr(func, "end_lineno", func.lineno)
            spans.append((func.lineno, end))
    return spans


def _fix_ctx_call(line_text, call):
    """Thread ctx into one single-line call, or None if not mechanical.

    When the call's positional arguments exactly fill the slots before
    the ctx slot and it has no keywords, ctx goes in positionally
    (matching the tree's idiom); otherwise it is passed as ``ctx=ctx``,
    which every flush/fence/persist signature accepts.
    """
    slot = UnchargedPersistence._CTX_SLOT[call.func.attr]
    close = call.end_col_offset - 1
    if close >= len(line_text) or line_text[close] != ")":
        return None
    if len(call.args) == slot and not call.keywords:
        insert = "ctx" if not call.args else ", ctx"
    else:
        insert = "ctx=ctx" if not (call.args or call.keywords) else ", ctx=ctx"
    return line_text[:close] + insert + line_text[close:]


def _ctx_fixes(module, lines, result):
    spans = _functions_with_ctx(module)
    rule = UnchargedPersistence()
    touched = set()
    for finding in rule.check(module):
        index = finding.line - 1
        text = lines[index]
        if index in touched:
            # A second call on an already-rewritten line: the AST
            # column offsets are stale now; fix on the next run.
            result.fixes.append(Fix(
                "CTX-01", finding.line, "line already rewritten this "
                "run — re-run --fix for the remaining call",
                applied=False))
            continue
        if _MARKER in text:
            result.fixes.append(Fix(
                "CTX-01", finding.line, "line carries a suppression — "
                "a recorded human judgement the fixer must not disturb",
                applied=False))
            continue
        if not any(start <= finding.line <= end for start, end in spans):
            result.fixes.append(Fix(
                "CTX-01", finding.line, "no ExecutionContext in scope "
                "(no ctx parameter or local) — threading one is a "
                "signature change, not a mechanical fix", applied=False))
            continue
        # Locate the offending call on its (single) line.
        fixed_text = None
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.lineno == finding.line
                    and node.func.attr in UnchargedPersistence._CTX_SLOT
                    and getattr(node, "end_lineno", node.lineno) == node.lineno):
                fixed_text = _fix_ctx_call(text, node)
                if fixed_text is not None:
                    break
        if fixed_text is None:
            result.fixes.append(Fix(
                "CTX-01", finding.line, "call spans multiple lines — "
                "fix it by hand", applied=False))
            continue
        lines[index] = fixed_text
        touched.add(index)
        result.fixes.append(Fix(
            "CTX-01", finding.line,
            f"threaded ctx into .{_call_name(text, finding.line)}()",
            applied=True))


def _call_name(line_text, _line):
    for name in ("flush", "persist", "fence"):
        if f".{name}(" in line_text:
            return name
    return "flush"


def _sup_fixes(module, lines, result):
    for finding in module.suppression_findings:
        index = finding.line - 1
        text = lines[index]
        match = _LENIENT_RE.search(text)
        if match is None or not match.group(3).strip():
            why = ("suppression has no reason text — the fixer will not "
                   "invent the argument; write why or delete the "
                   "suppression"
                   if "no reason" in finding.message else
                   "comment too malformed to recover a rule list and "
                   "reason — rewrite it by hand")
            result.fixes.append(Fix("SUP-01", finding.line, why,
                                    applied=False))
            continue
        kind, rule_list, reason = match.groups()
        rules = ", ".join(r.strip() for r in rule_list.split(",") if r.strip())
        canonical = f"# pmlint: {kind}={rules} — {reason.strip()}"
        prefix = text[:match.start()]
        if prefix.strip():
            lines[index] = prefix.rstrip() + "  " + canonical
        else:
            lines[index] = prefix + canonical
        result.fixes.append(Fix(
            "SUP-01", finding.line,
            f"normalized suppression to canonical form", applied=True))


def fix_module(module):
    """Compute all mechanical fixes for one parsed module."""
    result = FixResult(module.path, module.source)
    lines = module.source.splitlines()
    _ctx_fixes(module, lines, result)
    _sup_fixes(module, lines, result)
    trailer = "\n" if module.source.endswith("\n") else ""
    result.fixed = "\n".join(lines) + trailer
    return result


def fix_paths(paths, root=None, write=True):
    """Fix every file under ``paths``; returns the per-file results.

    With ``write`` unset (``--fix --diff``) nothing touches disk — the
    caller prints :meth:`FixResult.unified_diff` instead.
    """
    results = []
    for path in collect_files(paths):
        module = ModuleSource.load(path, root=root)
        result = fix_module(module)
        results.append(result)
        if write and result.changed:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(result.fixed)
    return results
