"""Correctness analysis for the persistence and refcount protocols.

The reproduction's central bet — packet metadata reused as persistent
storage structures — holds only while two disciplines hold everywhere:

- every store to persistent memory is made durable by the clwb+sfence
  sequence the simulator models (:mod:`repro.pm.cache`) *before* the
  write becomes crash-visible or acknowledged, and
- every packet reference (data and metadata refcounts, Figure 3) taken
  on any path is released on every path, including exception paths.

The crash sweep and chaos storms enforce these indirectly — they must
*happen* to hit the buggy interleaving.  This package enforces them
directly, pmemcheck/PMTest-style:

- :mod:`repro.analysis.pmlint` — **PMLint**, an AST-based static linter
  (``repro-lint``) with repo-specific rules over the persistence and
  refcount idioms.
- :mod:`repro.analysis.pmsan` — **PMSan**, a runtime sanitizer that
  observes :class:`~repro.pm.device.PMDevice` flush/fence traffic and
  packet refcounts while tests run (``pytest --pmsan``).

Both report through the shared :class:`~repro.analysis.findings.Finding`
model, and both ship negative self-tests proving the detectors detect.
"""

from repro.analysis.findings import AnalysisReport, Finding

__all__ = ["AnalysisReport", "Finding"]
