"""A deterministic merging t-digest: percentile-exact streaming quantiles.

The paper's claims are *tail* claims — Figure 2's data-management
penalty grows with concurrency because the single-core server queues
requests — so the live metrics pipeline must estimate p99 without
bucket-edge error.  Fixed ``le`` histograms report the upper bound of
whichever bucket the quantile lands in; with power-of-two bounds that
is up to 2x off.  The t-digest (Dunning & Ertl, "Computing extremely
accurate quantiles using t-digests") keeps a bounded set of centroids
whose sizes follow a *scale function*, small near the tails and large
in the middle, giving quantile estimates whose error shrinks exactly
where Figure 2 needs it.

This implementation is the **merging** variant:

- New points land in a buffer; when it fills, buffer + existing
  centroids are sorted by mean and greedily re-clustered in one pass.
- The scale function is ``k1``:  ``k(q) = (delta / 2pi) * asin(2q - 1)``
  with ``delta`` the compression.  A cluster may span at most one unit
  of ``k``, which caps its quantile width at
  ``(2pi / delta) * sqrt(q(1-q))`` — tight at both tails.
- After compaction the digest holds at most ``compression`` centroids
  (the k-range is ``delta/2`` and adjacent clusters cannot both be
  half-full, so the count sits near ``delta/2`` in practice).

**Error bound** (what the conformance suite checks): the estimate for
quantile ``q`` corresponds to a true sample quantile ``q_hat`` with

    |q_hat - q|  <=  2 * 2pi * sqrt(q * (1 - q)) / compression  +  1/n

— *two* nominal cluster widths in q-space, plus sample
discretisation.  One width is the k1 scale-function cap on a single
cluster; the second absorbs what the *merging* variant costs: repeated
buffer compactions (and cross-digest merges) re-cluster existing
centroids, which can stretch a cluster to up to twice its nominal
k-width.  Interior interpolation usually does several times better;
the bound is what the structure guarantees.  ``error_bound(q)``
returns the one-cluster width ``2pi*sqrt(q(1-q))/compression``;
callers compose the factor and the ``1/n`` term.

**Determinism** (PMLint DET-01): no randomness, no wall clock.  The
digest is a pure function of the insertion sequence — an instrumented
run replays byte-identically.  (Dunning's reference implementation
shuffles the merge buffer; we keep a stable sort instead and accept
the slightly more ordered clustering.)

**Merging across cores**: ``merge`` folds another digest's centroids
into this one, and ``to_dict``/``from_dict`` serialise the full state,
so per-core digests combine into one server-wide quantile view —
``merge(a, b)`` answers within the same bound as a single digest fed
both streams.

``python -m repro.obs.tdigest --self-test`` proves the conformance
properties are *able* to fail: a deliberately mis-merged digest (it
drops every other centroid during compaction, a plausible bug) must
violate the quantile bound that the honest digest satisfies.
"""

import math
from bisect import bisect_right

#: Default compression (delta).  ~100-ish centroids, q-space error
#: under 1.6% at the median and under 0.4% at p99 — far below one
#: power-of-two bucket.
DEFAULT_COMPRESSION = 200

#: Buffered points per compaction, as a multiple of the compression.
_BUFFER_FACTOR = 5


class TDigest:
    """Mergeable streaming quantile sketch (merging t-digest, k1 scale).

    >>> d = TDigest()
    >>> for v in range(10000):
    ...     d.add(float(v))
    >>> 9890 < d.quantile(0.99) < 9910
    True
    """

    __slots__ = ("compression", "_means", "_weights", "_buffer", "count",
                 "min", "max")

    def __init__(self, compression=DEFAULT_COMPRESSION):
        if compression < 20:
            raise ValueError(
                f"compression {compression} too small; the error bound "
                f"2pi*sqrt(q(1-q))/delta is vacuous below ~20"
            )
        self.compression = float(compression)
        self._means = []        # centroid means, sorted after compaction
        self._weights = []      # centroid weights, parallel to _means
        self._buffer = []       # (value, weight) awaiting compaction
        self.count = 0.0
        self.min = None
        self.max = None

    # -- scale function --------------------------------------------------------

    def _k(self, q):
        """k1 scale: k(q) = (delta/2pi) * asin(2q - 1)."""
        return self.compression / (2.0 * math.pi) * math.asin(
            max(-1.0, min(1.0, 2.0 * q - 1.0))
        )

    def _k_inv(self, k):
        """Inverse scale: q(k) = (sin(2pi k / delta) + 1) / 2."""
        return (math.sin(2.0 * math.pi * k / self.compression) + 1.0) / 2.0

    # -- ingest ----------------------------------------------------------------

    def add(self, value, weight=1.0):
        """Fold one observation (or a pre-weighted point) in."""
        value = float(value)
        if weight <= 0:
            raise ValueError(f"t-digest weight must be positive, got {weight}")
        if value != value:  # NaN poisons every later quantile
            raise ValueError("t-digest cannot absorb NaN")
        self._buffer.append((value, float(weight)))
        self.count += weight
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._buffer) >= _BUFFER_FACTOR * int(self.compression):
            self._compress()

    def merge(self, other):
        """Fold another digest's centroids into this one (other unchanged)."""
        other._compress()
        for mean, weight in zip(other._means, other._weights):
            self._buffer.append((mean, weight))
            self.count += weight
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        self._compress()
        return self

    def _compress(self):
        """One merge pass: sort centroids + buffer, greedily re-cluster."""
        if not self._buffer:
            return
        points = sorted(
            [(m, w) for m, w in zip(self._means, self._weights)]
            + self._buffer
        )
        self._buffer = []
        total = self.count
        means, weights = [], []
        cur_mean, cur_weight = points[0]
        q0 = 0.0                       # quantile mass left of current cluster
        k_limit = self._k(q0) + 1.0
        for mean, weight in points[1:]:
            q = q0 + (cur_weight + weight) / total
            if q <= self._k_inv(k_limit):
                # Still within one k-unit: absorb into the cluster.
                cur_mean += (mean - cur_mean) * weight / (cur_weight + weight)
                cur_weight += weight
            else:
                means.append(cur_mean)
                weights.append(cur_weight)
                q0 += cur_weight / total
                k_limit = self._k(q0) + 1.0
                cur_mean, cur_weight = mean, weight
        means.append(cur_mean)
        weights.append(cur_weight)
        self._means = means
        self._weights = weights

    # -- query -----------------------------------------------------------------

    @property
    def centroid_count(self):
        self._compress()
        return len(self._means)

    def centroids(self):
        """[(mean, weight), ...] after compaction — sorted, bounded."""
        self._compress()
        return list(zip(self._means, self._weights))

    def quantile(self, q):
        """Estimate the ``q``-quantile of everything added so far.

        Piecewise-linear interpolation between adjacent centroid means,
        clamped to the observed ``min``/``max`` (so ``q=0``/``q=1`` are
        exact, and a single-sample digest returns that sample for any
        ``q``).  Empty digest: 0.0, matching ``Histogram.quantile``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        self._compress()
        if not self._means:
            return 0.0
        if len(self._means) == 1:
            return self._means[0]
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        # Cumulative weight through the *middle* of each centroid: a
        # centroid of weight w centred at cum-w/2 represents its mean.
        cum = 0.0
        mids = []
        for weight in self._weights:
            mids.append(cum + weight / 2.0)
            cum += weight
        index = bisect_right(mids, target)
        if index == 0:
            lo_x, lo_v = 0.0, self.min
            hi_x, hi_v = mids[0], self._means[0]
        elif index == len(mids):
            lo_x, lo_v = mids[-1], self._means[-1]
            hi_x, hi_v = self.count, self.max
        else:
            lo_x, lo_v = mids[index - 1], self._means[index - 1]
            hi_x, hi_v = mids[index], self._means[index]
        if hi_x <= lo_x:
            return hi_v
        frac = (target - lo_x) / (hi_x - lo_x)
        return lo_v + (hi_v - lo_v) * frac

    def error_bound(self, q):
        """Documented q-space error bound at quantile ``q`` (excludes
        the 1/n sample-discretisation term, which is the caller's)."""
        return 2.0 * math.pi * math.sqrt(max(0.0, q * (1.0 - q))) \
            / self.compression

    # -- serialization ---------------------------------------------------------

    def to_dict(self):
        """JSON-ready state; ``from_dict`` round-trips it exactly."""
        self._compress()
        return {
            "compression": self.compression,
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "centroids": [[m, w] for m, w in
                          zip(self._means, self._weights)],
        }

    @classmethod
    def from_dict(cls, state):
        digest = cls(compression=state["compression"])
        digest.count = float(state["count"])
        digest.min = state["min"]
        digest.max = state["max"]
        digest._means = [float(m) for m, _w in state["centroids"]]
        digest._weights = [float(w) for _m, w in state["centroids"]]
        return digest

    def reset(self):
        self._means = []
        self._weights = []
        self._buffer = []
        self.count = 0.0
        self.min = None
        self.max = None

    def __len__(self):
        return int(self.count)

    def __repr__(self):
        return (
            f"<TDigest n={self.count:.0f} centroids={self.centroid_count} "
            f"delta={self.compression:.0f}>"
        )


def merged(digests, compression=None):
    """One digest combining many (e.g. per-core) digests; inputs unchanged."""
    digests = list(digests)
    if compression is None:
        compression = max((d.compression for d in digests),
                          default=DEFAULT_COMPRESSION)
    out = TDigest(compression=compression)
    for digest in digests:
        out.merge(digest)
    return out


# -- conformance self-test ------------------------------------------------------
#
# The same checks tests/test_obs_tdigest.py runs under hypothesis, in
# library form so CI can also run them against a *deliberately broken*
# digest and require them to fail (the planted-bug negative check).


class _MisMergedDigest(TDigest):
    """Planted bug: compaction silently drops every other centroid.

    The kind of off-by-one a real merge loop can ship with — the digest
    still answers, monotonically, with bounded memory; only the
    *statistics* are wrong.  The conformance bound must catch it.
    """

    def _compress(self):
        super()._compress()
        if len(self._means) > 8:
            self._means = self._means[::2]
            self._weights = self._weights[::2]


def check_conformance(digest_cls, samples, quantiles=(0.01, 0.1, 0.25, 0.5,
                                                      0.75, 0.9, 0.99, 0.999)):
    """Check ``digest_cls`` against exact quantiles of ``samples``.

    Returns a list of violation strings (empty = conformant).  The
    check is the documented bound: the digest's estimate at ``q`` must
    sit between the exact sample quantiles at ``q ± 2*error_bound(q) +
    1/n`` (two nominal cluster widths — see the module docstring for
    why the merging variant needs the second).
    """
    digest = digest_cls()
    for value in samples:
        digest.add(value)
    ordered = sorted(samples)
    n = len(ordered)
    violations = []
    for q in quantiles:
        estimate = digest.quantile(q)
        eps = 2.0 * digest.error_bound(q) + 1.0 / n
        lo_rank = max(0, int(math.floor((q - eps) * (n - 1))))
        hi_rank = min(n - 1, int(math.ceil((q + eps) * (n - 1))))
        lo, hi = ordered[lo_rank], ordered[hi_rank]
        if not (lo <= estimate <= hi):
            violations.append(
                f"q={q}: estimate {estimate!r} outside exact-quantile "
                f"corridor [{lo!r}, {hi!r}] (eps={eps:.5f}, n={n})"
            )
    cap = int(digest.compression) + 1
    if digest.centroid_count > cap:
        violations.append(
            f"centroid count {digest.centroid_count} exceeds bound {cap}"
        )
    return violations


def _self_test():
    # Adversarial-ish deterministic sample: heavy-tailed, clustered,
    # with duplicates — no RNG (DET-01).
    samples = []
    for i in range(5000):
        samples.append(float(i % 97))              # clustered body
        samples.append(1000.0 + (i * i % 9973))    # spread tail
    honest = check_conformance(TDigest, samples)
    broken = check_conformance(_MisMergedDigest, samples)
    print(f"[tdigest] honest digest: {len(honest)} violations")
    for violation in honest:
        print(f"[tdigest]   {violation}")
    print(f"[tdigest] mis-merged digest: {len(broken)} violations "
          f"(must be > 0)")
    for violation in broken[:4]:
        print(f"[tdigest]   {violation}")
    if honest:
        print("[tdigest] FAIL: conformant digest violated its own bound")
        return 1
    if not broken:
        print("[tdigest] FAIL: the planted mis-merge went undetected — "
              "the conformance bound has no teeth")
        return 1
    print("[tdigest] OK: bound holds for the honest digest and catches "
          "the planted mis-merge")
    return 0


if __name__ == "__main__":
    import sys

    if "--self-test" in sys.argv:
        sys.exit(_self_test())
    print(__doc__)
