"""Live observability: metrics registry + per-request stage tracing.

The bench harness (:mod:`repro.bench.table1`) reproduces the paper's
Table 1 *offline*.  This package makes the running system emit the
same breakdown **live**: a :class:`~repro.obs.registry.MetricsRegistry`
of sim-clock counters/gauges/histograms, a
:class:`~repro.obs.trace.Recorder` that hosts, the fabric and the KV
dispatch layer report into through nullable hooks (zero cost when no
recorder is attached), and the ``repro-stats`` CLI
(:mod:`repro.obs.cli`) to run a workload and export/print the result.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and CLI usage.
"""

from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.stages import (
    STAGE_DATAMGMT,
    STAGE_NETWORKING,
    STAGE_OTHER,
    STAGE_PERSISTENCE,
    STAGES,
    classify,
    fold,
)
from repro.obs.trace import Recorder, Span, TraceRing

__all__ = [
    "DEFAULT_TIME_BUCKETS_NS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STAGES",
    "STAGE_NETWORKING",
    "STAGE_DATAMGMT",
    "STAGE_PERSISTENCE",
    "STAGE_OTHER",
    "classify",
    "fold",
    "Recorder",
    "Span",
    "TraceRing",
]
