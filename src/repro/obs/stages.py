"""Mapping charge categories onto the paper's Table 1 stage classes.

Every component in the reproduction charges its modeled CPU/device time
to an :class:`~repro.sim.context.ExecutionContext` under a category
string.  The paper's §3 breakdown groups those costs into three
classes; this module is the single place that grouping lives:

==============  ============================================================
stage           charge categories
==============  ============================================================
networking      ``net.*`` (driver, ip, tcp, homa, sock, alloc, copy, csum,
                http) and ``app`` — everything the networking-only (null)
                server also pays, i.e. the paper's 26.71 µs row
datamgmt        ``datamgmt.*`` (prep, checksum, copy, insert), ``pm.alloc``
                and ``mem.access`` — request preparation through index
                insertion, the 6.39 µs block
persistence     ``persist``, ``pm.flush`` and ``blockdev.*`` — flushing CPU
                caches to PM (1.94 µs) or, for the disk-era baseline,
                syncing the WAL
other           anything else (``uncategorized`` and future categories) —
                kept visible rather than silently folded away
==============  ============================================================

The classifier is a tiny prefix match, memoised per category string, so
folding a context's categories into stages is a dict walk with no
string scanning in the steady state.
"""

STAGE_NETWORKING = "networking"
STAGE_DATAMGMT = "datamgmt"
STAGE_PERSISTENCE = "persistence"
STAGE_OTHER = "other"

#: The three paper classes plus the honesty bucket, in display order.
STAGES = (STAGE_NETWORKING, STAGE_DATAMGMT, STAGE_PERSISTENCE, STAGE_OTHER)

_EXACT = {
    "app": STAGE_NETWORKING,
    "pm.alloc": STAGE_DATAMGMT,
    "mem.access": STAGE_DATAMGMT,
    "persist": STAGE_PERSISTENCE,
    "pm.flush": STAGE_PERSISTENCE,
}

_PREFIXES = (
    ("net.", STAGE_NETWORKING),
    ("datamgmt.", STAGE_DATAMGMT),
    ("blockdev.", STAGE_PERSISTENCE),
)

#: category -> stage memo; grows to the handful of categories in use.
_MEMO = dict(_EXACT)


def classify(category):
    """Stage class for one charge category."""
    stage = _MEMO.get(category)
    if stage is not None:
        return stage
    stage = STAGE_OTHER
    for prefix, candidate in _PREFIXES:
        if category.startswith(prefix):
            stage = candidate
            break
    _MEMO[category] = stage
    return stage


def fold(by_category, into=None):
    """Fold a ``{category: ns}`` dict into ``{stage: ns}`` totals.

    ``into`` accumulates in place when given (it must hold all four
    stage keys); otherwise a fresh dict is returned.
    """
    stages = into if into is not None else {stage: 0.0 for stage in STAGES}
    for category, ns in by_category.items():
        stages[classify(category)] += ns
    return stages
