"""Span-based request tracing and the live recorder.

The bench harness produces Table 1 *offline*: run a workload, divide
``host.accounting`` by the request count.  The :class:`Recorder` makes
the same attribution **live**: hosts, the fabric and the KV dispatch
layer call nullable hooks on their hot paths, and the recorder folds
every charge into a :class:`~repro.obs.registry.MetricsRegistry` —
per-stage totals (the paper's networking / data-management /
persistence classes, see :mod:`repro.obs.stages`), per-category
totals, per-request spans in a fixed-size ring buffer for post-mortem,
and callback gauges over queue depth, utilisation, pools and
connections.

Overhead discipline (the tentpole requirement):

- **Disabled is free.**  Every hook site is guarded by
  ``if recorder is not None`` — one attribute load and branch, zero
  allocation, zero metric samples.
- **Enabled is cheap.**  A slice record is one walk over the context's
  category dict (a handful of keys) against cached counter handles; a
  request span is the same walk plus one ring append.  Gauges are
  callback-backed, so keeping them "current" costs nothing between
  snapshots.

Request spans use consumed-prefix attribution: within one
run-to-completion slice, the charges accumulated *before* the dispatch
layer sees a request (driver/IP/TCP receive, HTTP parse) belong to
that request; the recorder tracks how much of the context each span
has consumed, so back-to-back requests in one slice split the slice
correctly and response transmission lands in the span that sent it.
"""

from collections import deque

from repro.obs.registry import MetricsRegistry
from repro.obs.stages import STAGES, classify

#: Ring-buffer capacity when the caller does not choose one.
DEFAULT_TRACE_CAPACITY = 1024


class Span:
    """One request's lifecycle: stage-classed cost plus identity."""

    __slots__ = ("kind", "status", "core", "t_end", "total_ns", "stages")

    def __init__(self, kind, status, core, t_end, total_ns, stages):
        self.kind = kind
        self.status = status
        self.core = core
        self.t_end = t_end
        self.total_ns = total_ns
        self.stages = stages

    def as_dict(self):
        return {
            "kind": self.kind,
            "status": self.status,
            "core": self.core,
            "t_end_ns": self.t_end,
            "total_ns": self.total_ns,
            "stages": dict(self.stages),
        }

    def __repr__(self):
        return (
            f"<Span {self.kind} {self.status} core={self.core} "
            f"total={self.total_ns:.0f}ns>"
        )


class TraceRing:
    """Fixed-capacity ring of completed spans (oldest evicted first)."""

    def __init__(self, capacity=DEFAULT_TRACE_CAPACITY):
        if capacity < 1:
            raise ValueError("trace ring needs capacity >= 1")
        self.capacity = capacity
        self._spans = deque(maxlen=capacity)
        self.appended = 0

    def append(self, span):
        self._spans.append(span)
        self.appended += 1

    def __len__(self):
        return len(self._spans)

    def __iter__(self):
        return iter(self._spans)

    @property
    def dropped(self):
        return max(0, self.appended - self.capacity)

    def spans(self, last=None):
        items = list(self._spans)
        return items if last is None else items[-last:]

    def dump(self, last=None):
        """JSON-ready list of the newest ``last`` spans (all by default)."""
        return [span.as_dict() for span in self.spans(last)]

    def clear(self):
        self._spans.clear()
        self.appended = 0


class _HostHandles:
    """Cached per-host counter handles so slice recording is dict-walk cheap."""

    __slots__ = ("role", "stage", "category", "slices", "slice_ns")

    def __init__(self, registry, role):
        self.role = role
        self.stage = {s: registry.counter(f"{role}.stage.{s}_ns") for s in STAGES}
        self.category = {}
        self.slices = registry.counter(f"{role}.slices")
        self.slice_ns = registry.counter(f"{role}.slice_ns")


class Recorder:
    """The live observability hub: hosts/fabric/servers report into it.

    Construct one (optionally around an existing registry), then attach
    the pieces of the world it should watch::

        recorder = Recorder(sim=testbed.sim)
        recorder.attach_host(testbed.server, "server")
        recorder.attach_host(testbed.client, "client")
        recorder.attach_fabric(testbed.fabric)
        recorder.attach_server(testbed.kv)          # request spans + kv stats
        recorder.attach_overload(controller)        # shed/reclaim/degrade

    ``repro.storage.serve`` does all of this when its config enables
    metrics.  Everything lands in :attr:`registry`; completed request
    spans additionally land in :attr:`ring`.
    """

    def __init__(self, sim=None, registry=None, trace_capacity=DEFAULT_TRACE_CAPACITY):
        self.sim = sim
        self.registry = registry if registry is not None else MetricsRegistry(sim)
        if self.registry.sim is None and sim is not None:
            self.registry.sim = sim
        self.ring = TraceRing(trace_capacity)
        self._hosts = {}          # host -> _HostHandles
        self._busy_baseline = {}  # (host, core_index) -> busy_ns at window start
        # Request-span consumed-prefix state (single in-flight slice:
        # the simulator is sequential, so one cursor suffices).
        self._span_ctx = None
        self._span_consumed = {}
        self._span_elapsed = 0.0
        # Cached hot-path handles (created lazily on first use).
        self._wire_ns = self.registry.counter("fabric.wire_ns")
        self._wire_frames = self.registry.counter("fabric.wire_frames")
        self._requests = self.registry.counter("server.requests")
        self._request_ns = self.registry.histogram("server.request_ns")
        self._request_stage = {
            s: self.registry.counter(f"server.request.stage.{s}_ns") for s in STAGES
        }
        self._kind_counters = {}
        self._status_counters = {}

    # -- attachment ------------------------------------------------------------

    def attach_host(self, host, role=None):
        """Watch a host: slice recording plus core/pool/stack gauges."""
        role = role or host.name
        if host in self._hosts:
            return self
        if self.sim is None:
            self.sim = host.sim
            if self.registry.sim is None:
                self.registry.sim = host.sim
        self._hosts[host] = _HostHandles(self.registry, role)
        host.recorder = self
        registry = self.registry
        sim = host.sim
        for core in host.cpus.cores:
            key = (host, core.index)
            self._busy_baseline[key] = core.busy_time
            prefix = f"{role}.core{core.index}"
            registry.gauge(f"{prefix}.busy_ns",
                           fn=lambda c=core: c.busy_time)
            registry.gauge(f"{prefix}.queue_ns",
                           fn=lambda c=core, s=sim: c.queue_delay(s.now))
            registry.gauge(f"{prefix}.work_items",
                           fn=lambda c=core: float(c.work_items))
            registry.gauge(
                f"{prefix}.utilisation",
                fn=lambda c=core, k=key: self._utilisation(c, k),
            )
        registry.gauge(f"{role}.connections",
                       fn=lambda stack=host.stack: float(stack.connection_count()))
        for pool_name, pool in (("rx_pool", host.rx_pool), ("tx_pool", host.tx_pool)):
            prefix = f"{role}.{pool_name}"
            registry.gauge(f"{prefix}.in_use",
                           fn=lambda p=pool: float(p.in_use))
            registry.gauge(f"{prefix}.slots",
                           fn=lambda p=pool: float(p.nslots))
            registry.gauge(f"{prefix}.occupancy",
                           fn=lambda p=pool: p.occupancy)
        return self

    def _utilisation(self, core, key):
        window = self.registry.window_ns
        if window <= 0:
            return 0.0
        busy = core.busy_time - self._busy_baseline.get(key, 0.0)
        return min(1.0, max(0.0, busy / window))

    def attach_fabric(self, fabric):
        """Watch the fabric: per-frame wire time (queue + links + switch)."""
        fabric.recorder = self
        self.registry.gauge("fabric.frames",
                            fn=lambda f=fabric: float(f.frames))
        self.registry.gauge("fabric.bytes",
                            fn=lambda f=fabric: float(f.bytes))
        return self

    def attach_server(self, kv, role="server"):
        """Watch a KV front-end: request spans plus its stats dict."""
        kv.recorder = self
        for key in kv.stats:
            self.registry.gauge(
                f"{role}.kv.{key}",
                fn=lambda stats=kv.stats, k=key: float(stats.get(k, 0)),
            )
        return self

    def attach_engine(self, engine, role="engine"):
        """Ownership gauges over a packet-native store, if the engine
        has one: how many rx slots the store owns and how many
        references it holds — the counts the chaos leak oracles compare
        against the pool gauges instead of walking store internals."""
        store = getattr(engine, "store", None)
        if store is None:
            return self
        if hasattr(store, "_buffers"):
            self.registry.gauge(
                f"{role}.store.owned",
                fn=lambda s=store: float(len(s._buffers)),
            )
        if hasattr(store, "_refs"):
            self.registry.gauge(
                f"{role}.store.held_refs",
                fn=lambda s=store: float(
                    sum(len(refs) for refs in s._refs.values())
                ),
            )
        return self

    def attach_overload(self, controller, role="overload"):
        """Surface shed/reclaim/degrade decisions as snapshot values."""
        for key in controller.stats:
            self.registry.gauge(
                f"{role}.{key}",
                fn=lambda stats=controller.stats, k=key: float(stats.get(k, 0)),
            )
        self.registry.gauge(
            f"{role}.under_pressure",
            fn=lambda c=controller: 1.0 if c.under_pressure else 0.0,
        )
        return self

    # -- hot-path hooks --------------------------------------------------------

    def record_slice(self, host, core, ctx, t_end):
        """Fold one completed processing slice into the registry."""
        handles = self._hosts.get(host)
        if handles is None:
            return
        handles.slices.inc()
        elapsed = ctx.elapsed
        if elapsed:
            handles.slice_ns.inc(elapsed)
        categories = handles.category
        stage_counters = handles.stage
        for category, ns in ctx.by_category.items():
            if not ns:
                continue
            counter = categories.get(category)
            if counter is None:
                counter = self.registry.counter(
                    f"{handles.role}.cat.{category}_ns"
                )
                categories[category] = counter
            counter.inc(ns)
            stage_counters[classify(category)].inc(ns)

    def record_wire(self, ns):
        """One frame's time on the wire (serialisation + queueing + hops)."""
        self._wire_frames.inc()
        self._wire_ns.inc(ns)

    def request_begin(self, ctx):
        """Mark the dispatch layer picking up a request in ``ctx``.

        Charges already in the context but not consumed by an earlier
        span in the same slice (the receive/parse prefix) will belong
        to this request.
        """
        if ctx is not self._span_ctx:
            self._span_ctx = ctx
            self._span_consumed = {}
            self._span_elapsed = 0.0

    def request_end(self, kind, status, core, ctx):
        """Close the current request span and record it."""
        if ctx is not self._span_ctx:
            # begin was never called for this slice; attribute the
            # whole context to the span rather than dropping it.
            self._span_consumed = {}
            self._span_elapsed = 0.0
        consumed = self._span_consumed
        stages = {stage: 0.0 for stage in STAGES}
        for category, ns in ctx.by_category.items():
            delta = ns - consumed.get(category, 0.0)
            if delta > 0:
                stages[classify(category)] += delta
        total_ns = max(0.0, ctx.elapsed - self._span_elapsed)
        self._span_ctx = ctx
        self._span_consumed = dict(ctx.by_category)
        self._span_elapsed = ctx.elapsed
        t_end = self.sim.now if self.sim is not None else 0.0
        self.ring.append(Span(kind, status, core, t_end, total_ns, stages))
        self._requests.inc()
        self._request_ns.observe(total_ns)
        for stage, ns in stages.items():
            if ns:
                self._request_stage[stage].inc(ns)
        kind_counter = self._kind_counters.get(kind)
        if kind_counter is None:
            kind_counter = self.registry.counter(f"server.requests.{kind}")
            self._kind_counters[kind] = kind_counter
        kind_counter.inc()
        status_counter = self._status_counters.get(status)
        if status_counter is None:
            status_counter = self.registry.counter(f"server.status.{status}")
            self._status_counters[status] = status_counter
        status_counter.inc()

    # -- derived views ---------------------------------------------------------

    def reset(self):
        """Zero the registry and re-anchor utilisation windows."""
        self.registry.reset()
        self.ring.clear()
        for (host, index), _ in list(self._busy_baseline.items()):
            self._busy_baseline[(host, index)] = host.cpus[index].busy_time

    def stage_totals(self):
        """{stage: ns} summed over every attached host."""
        totals = {stage: 0.0 for stage in STAGES}
        for handles in self._hosts.values():
            for stage, counter in handles.stage.items():
                totals[stage] += counter.value
        return totals

    def per_request(self, name, requests=None):
        """A counter's value divided by completed request spans."""
        n = requests if requests is not None else self._requests.value
        if n <= 0:
            return 0.0
        return self.registry.value(name) / n

    def table1(self, requests=None):
        """Live Table-1 view: per-request nanoseconds for every row.

        Stage classes sum over every attached host plus wire time, so
        with the whole testbed attached ``total`` approximates the
        request RTT; with only the server attached it is the server-side
        request cost.  Rows mirror :class:`repro.bench.table1.PAPER`
        (a pure-PUT workload reproduces the paper's numbers; mixed
        workloads get the same classes averaged over all requests).
        """
        n = requests if requests is not None else self._requests.value
        if n <= 0:
            return None
        totals = self.stage_totals()
        wire = self._wire_ns.value
        rows = {
            "requests": n,
            "networking": (totals["networking"] + wire) / n,
            "datamgmt": totals["datamgmt"] / n,
            "persistence": totals["persistence"] / n,
            "other": totals["other"] / n,
            "wire": wire / n,
        }
        # Data-management sub-rows, summed over attached hosts.
        for row, category in (
            ("prep", "datamgmt.prep"),
            ("checksum", "datamgmt.checksum"),
            ("copy", "datamgmt.copy"),
            ("alloc_insert", "datamgmt.insert"),
        ):
            total = 0.0
            for handles in self._hosts.values():
                counter = handles.category.get(category)
                if counter is not None:
                    total += counter.value
            rows[row] = total / n
        rows["total"] = (
            rows["networking"] + rows["datamgmt"]
            + rows["persistence"] + rows["other"]
        )
        return rows

    def __repr__(self):
        return (
            f"<Recorder hosts={len(self._hosts)} "
            f"requests={self._requests.value:.0f} ring={len(self.ring)}>"
        )
